#include "mobility/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace d2dhb::mobility {

double length(Vec2 v) { return std::hypot(v.x, v.y); }

Meters distance(Vec2 a, Vec2 b) { return Meters{length(a - b)}; }

RandomWaypoint::RandomWaypoint(Params params, Vec2 start, Rng rng)
    : params_(params), rng_(rng) {
  legs_.push_back(Leg{TimePoint{}, TimePoint{}, TimePoint{}, start, start});
}

void RandomWaypoint::extend_to(TimePoint t) const {
  while (legs_.back().end_time < t) {
    const Leg& prev = legs_.back();
    Leg leg;
    leg.start_time = prev.end_time;
    leg.from = prev.to;
    leg.to = Vec2{rng_.uniform(params_.area_min.x, params_.area_max.x),
                  rng_.uniform(params_.area_min.y, params_.area_max.y)};
    const double speed =
        rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
    const double travel_s = length(leg.to - leg.from) / std::max(speed, 1e-9);
    leg.arrive_time = leg.start_time + seconds(travel_s);
    const double pause_s =
        rng_.uniform(0.0, to_seconds(params_.max_pause));
    leg.end_time = leg.arrive_time + seconds(pause_s);
    legs_.push_back(leg);
  }
}

Vec2 RandomWaypoint::position_at(TimePoint t) const {
  extend_to(t);
  // Binary search for the leg containing t.
  auto it = std::upper_bound(
      legs_.begin(), legs_.end(), t,
      [](TimePoint tp, const Leg& leg) { return tp < leg.end_time; });
  if (it == legs_.end()) it = std::prev(legs_.end());
  const Leg& leg = *it;
  if (t >= leg.arrive_time) return leg.to;
  const double total_s = to_seconds(leg.arrive_time - leg.start_time);
  if (total_s <= 0.0) return leg.to;
  const double frac = to_seconds(t - leg.start_time) / total_s;
  return leg.from + (leg.to - leg.from) * frac;
}

DepartureMobility::DepartureMobility(Vec2 start, Vec2 target,
                                     TimePoint depart_at, double speed_mps)
    : start_(start),
      target_(target),
      depart_at_(depart_at),
      speed_mps_(speed_mps) {
  const double travel_s =
      length(target - start) / std::max(speed_mps, 1e-9);
  arrive_at_ = depart_at + seconds(travel_s);
}

Vec2 DepartureMobility::position_at(TimePoint t) const {
  if (t <= depart_at_) return start_;
  if (t >= arrive_at_) return target_;
  const double frac = to_seconds(t - depart_at_) /
                      to_seconds(arrive_at_ - depart_at_);
  return start_ + (target_ - start_) * frac;
}

std::vector<Vec2> clustered_crowd(std::size_t nodes, std::size_t clusters,
                                  Vec2 area_min, Vec2 area_max,
                                  double cluster_stddev_m, Rng& rng) {
  std::vector<Vec2> centers;
  centers.reserve(std::max<std::size_t>(clusters, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(clusters, 1); ++i) {
    centers.push_back(Vec2{rng.uniform(area_min.x, area_max.x),
                           rng.uniform(area_min.y, area_max.y)});
  }
  std::vector<Vec2> positions;
  positions.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const Vec2 c = centers[rng.uniform_int(0, centers.size() - 1)];
    Vec2 p{rng.normal(c.x, cluster_stddev_m), rng.normal(c.y, cluster_stddev_m)};
    p.x = std::clamp(p.x, area_min.x, area_max.x);
    p.y = std::clamp(p.y, area_min.y, area_max.y);
    positions.push_back(p);
  }
  return positions;
}

}  // namespace d2dhb::mobility
