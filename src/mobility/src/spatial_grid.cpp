#include "mobility/spatial_grid.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace d2dhb::mobility {

// ---------------------------------------------------------------------------
// PointGrid
// ---------------------------------------------------------------------------

PointGrid::PointGrid(Meters cell_size) : cell_size_(cell_size.value) {
  if (!(cell_size_ > 0.0)) {
    throw std::invalid_argument("PointGrid: cell size must be > 0");
  }
}

void PointGrid::insert(std::size_t index, Vec2 position) {
  const auto slot = static_cast<std::uint32_t>(points_.size());
  points_.push_back(Point{index, position});
  buckets_[detail::cell_key(detail::cell_coord(position.x, cell_size_),
                            detail::cell_coord(position.y, cell_size_))]
      .push_back(slot);
}

template <typename Visit>
void PointGrid::visit_cells(Vec2 center, Meters radius, Visit&& visit) const {
  const double r = radius.value;
  const std::int64_t x0 = detail::cell_coord(center.x - r, cell_size_);
  const std::int64_t x1 = detail::cell_coord(center.x + r, cell_size_);
  const std::int64_t y0 = detail::cell_coord(center.y - r, cell_size_);
  const std::int64_t y1 = detail::cell_coord(center.y + r, cell_size_);
  for (std::int64_t cx = x0; cx <= x1; ++cx) {
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      const auto it = buckets_.find(detail::cell_key(cx, cy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t slot : it->second) {
        if (visit(points_[slot])) return;
      }
    }
  }
}

void PointGrid::query_radius(Vec2 center, Meters radius,
                             std::vector<std::size_t>& out) const {
  out.clear();
  visit_cells(center, radius, [&](const Point& p) {
    if (distance(center, p.position).value <= radius.value) {
      out.push_back(p.index);
    }
    return false;
  });
  std::sort(out.begin(), out.end());
}

std::size_t PointGrid::count_within(Vec2 center, Meters radius) const {
  std::size_t n = 0;
  visit_cells(center, radius, [&](const Point& p) {
    if (distance(center, p.position).value <= radius.value) ++n;
    return false;
  });
  return n;
}

bool PointGrid::any_within(Vec2 center, Meters radius) const {
  bool found = false;
  visit_cells(center, radius, [&](const Point& p) {
    if (distance(center, p.position).value <= radius.value) {
      found = true;
      return true;  // stop
    }
    return false;
  });
  return found;
}

std::size_t PointGrid::nearest(Vec2 center) const {
  if (points_.empty()) {
    throw std::out_of_range("PointGrid::nearest: grid is empty");
  }
  // Expanding ring search: try radius = cell, 2*cell, ... and keep the
  // lexicographic (distance, index) minimum — the same winner as a
  // first-strictly-closer linear scan. A ring's answer is final once
  // the best distance is covered by the searched radius.
  double best_d = std::numeric_limits<double>::max();
  std::size_t best_index = 0;
  for (double r = cell_size_;; r *= 2.0) {
    visit_cells(center, Meters{r}, [&](const Point& p) {
      const double d = distance(center, p.position).value;
      if (d < best_d || (d == best_d && p.index < best_index)) {
        best_d = d;
        best_index = p.index;
      }
      return false;
    });
    if (best_d <= r) return best_index;
    // Nothing (or nothing close enough) yet — widen. Bail to a full
    // scan once the ring has grown absurd relative to the data.
    if (r > cell_size_ * 1e6) break;
  }
  for (const Point& p : points_) {
    const double d = distance(center, p.position).value;
    if (d < best_d || (d == best_d && p.index < best_index)) {
      best_d = d;
      best_index = p.index;
    }
  }
  return best_index;
}

// ---------------------------------------------------------------------------
// SpatialGrid
// ---------------------------------------------------------------------------

SpatialGrid::SpatialGrid(Meters cell_size) : cell_size_(cell_size.value) {
  if (!(cell_size_ > 0.0)) {
    throw std::invalid_argument("SpatialGrid: cell size must be > 0");
  }
}

SpatialGrid::Slot* SpatialGrid::slot_of(NodeId node) {
  if (node.value >= slots_.size()) return nullptr;
  Slot& s = slots_[node.value];
  return s.model == nullptr ? nullptr : &s;
}

const SpatialGrid::Slot* SpatialGrid::slot_of(NodeId node) const {
  if (node.value >= slots_.size()) return nullptr;
  const Slot& s = slots_[node.value];
  return s.model == nullptr ? nullptr : &s;
}

void SpatialGrid::bin(std::uint64_t id, Slot& slot, Vec2 at) {
  slot.cached = at;
  slot.cell = detail::cell_key(detail::cell_coord(at.x, cell_size_),
                               detail::cell_coord(at.y, cell_size_));
  buckets_[slot.cell].push_back(static_cast<std::uint32_t>(id));
}

void SpatialGrid::unbin(std::uint64_t id, Slot& slot) {
  auto& bucket = buckets_[slot.cell];
  const auto it =
      std::find(bucket.begin(), bucket.end(), static_cast<std::uint32_t>(id));
  if (it != bucket.end()) {
    *it = bucket.back();
    bucket.pop_back();
  }
}

void SpatialGrid::insert(NodeId node, const MobilityModel& model) {
  if (!node.valid()) {
    throw std::invalid_argument("SpatialGrid::insert: invalid node id");
  }
  if (node.value >= slots_.size()) slots_.resize(node.value + 1);
  Slot& slot = slots_[node.value];
  if (slot.model != nullptr) remove(node);
  slot.model = &model;
  slot.is_static = model.is_static();
  // Bin at the last refreshed time (static nodes are time-invariant, and
  // moving nodes are re-binned by the next refresh anyway).
  bin(node.value, slot, model.position_at(cached_time_));
  if (!slot.is_static) {
    moving_.push_back(static_cast<std::uint32_t>(node.value));
  }
  ++active_;
}

void SpatialGrid::remove(NodeId node) {
  Slot* slot = slot_of(node);
  if (slot == nullptr) return;
  unbin(node.value, *slot);
  if (!slot->is_static) {
    const auto it = std::find(moving_.begin(), moving_.end(),
                              static_cast<std::uint32_t>(node.value));
    if (it != moving_.end()) {
      *it = moving_.back();
      moving_.pop_back();
    }
  }
  *slot = Slot{};
  --active_;
}

bool SpatialGrid::contains(NodeId node) const {
  return slot_of(node) != nullptr;
}

Vec2 SpatialGrid::position(NodeId node, TimePoint t) const {
  const Slot* slot = slot_of(node);
  if (slot == nullptr) {
    throw std::out_of_range("SpatialGrid: unknown node #" +
                            std::to_string(node.value));
  }
  return slot->model->position_at(t);
}

const MobilityModel* SpatialGrid::model(NodeId node) const {
  const Slot* slot = slot_of(node);
  return slot == nullptr ? nullptr : slot->model;
}

void SpatialGrid::refresh(TimePoint t, std::uint64_t epoch) const {
  if (cache_primed_ && epoch == cached_epoch_ && t == cached_time_) return;
  for (const std::uint32_t id : moving_) {
    Slot& slot = slots_[id];
    const Vec2 at = slot.model->position_at(t);
    const std::uint64_t cell =
        detail::cell_key(detail::cell_coord(at.x, cell_size_),
                         detail::cell_coord(at.y, cell_size_));
    slot.cached = at;
    if (cell == slot.cell) continue;
    // Re-bin: cheap removal by swap, order inside buckets is
    // irrelevant because queries sort by NodeId.
    auto& old_bucket = buckets_[slot.cell];
    const auto it = std::find(old_bucket.begin(), old_bucket.end(), id);
    if (it != old_bucket.end()) {
      *it = old_bucket.back();
      old_bucket.pop_back();
    }
    slot.cell = cell;
    buckets_[cell].push_back(id);
  }
  cached_time_ = t;
  cached_epoch_ = epoch;
  cache_primed_ = true;
}

void SpatialGrid::query_radius(Vec2 center, Meters radius, TimePoint t,
                               std::uint64_t epoch,
                               std::vector<Neighbor>& out,
                               NodeId exclude) const {
  out.clear();
  refresh(t, epoch);
  const double r = radius.value;
  const std::int64_t x0 = detail::cell_coord(center.x - r, cell_size_);
  const std::int64_t x1 = detail::cell_coord(center.x + r, cell_size_);
  const std::int64_t y0 = detail::cell_coord(center.y - r, cell_size_);
  const std::int64_t y1 = detail::cell_coord(center.y + r, cell_size_);
  for (std::int64_t cx = x0; cx <= x1; ++cx) {
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      const auto it = buckets_.find(detail::cell_key(cx, cy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t id : it->second) {
        if (id == exclude.value) continue;
        // The cached position IS the position at t (refresh above), so
        // the distance test matches a brute-force scan bit for bit.
        const Meters d = distance(center, slots_[id].cached);
        if (d.value <= r) out.push_back(Neighbor{NodeId{id}, d});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.node < b.node;
            });
}

namespace {
[[noreturn]] void grid_audit_fail(const std::string& what) {
  throw std::logic_error("SpatialGrid audit: " + what);
}
}  // namespace

void SpatialGrid::audit(TimePoint t, std::uint64_t epoch) const {
  refresh(t, epoch);
  if (!cache_primed_ || cached_time_ != t || cached_epoch_ != epoch) {
    grid_audit_fail("cache not fresh after refresh (epoch key ignored)");
  }
  std::size_t active_seen = 0;
  std::size_t moving_seen = 0;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.model == nullptr) continue;
    ++active_seen;
    const Vec2 truth = slot.model->position_at(t);
    if (slot.cached.x != truth.x || slot.cached.y != truth.y) {
      grid_audit_fail("node #" + std::to_string(id) +
                      " cached position is stale at the refreshed time");
    }
    const std::uint64_t cell =
        detail::cell_key(detail::cell_coord(slot.cached.x, cell_size_),
                         detail::cell_coord(slot.cached.y, cell_size_));
    if (cell != slot.cell) {
      grid_audit_fail("node #" + std::to_string(id) +
                      " cell key does not match its cached position");
    }
    const auto bucket_it = buckets_.find(slot.cell);
    if (bucket_it == buckets_.end()) {
      grid_audit_fail("node #" + std::to_string(id) +
                      " cell has no bucket");
    }
    const auto& bucket = bucket_it->second;
    if (std::count(bucket.begin(), bucket.end(),
                   static_cast<std::uint32_t>(id)) != 1) {
      grid_audit_fail("node #" + std::to_string(id) +
                      " is not binned exactly once in its bucket");
    }
    const bool moving =
        std::find(moving_.begin(), moving_.end(),
                  static_cast<std::uint32_t>(id)) != moving_.end();
    if (moving == slot.is_static) {
      grid_audit_fail("node #" + std::to_string(id) +
                      " static flag disagrees with the moving list");
    }
    if (moving) ++moving_seen;
  }
  if (active_seen != active_) {
    grid_audit_fail("active slot count " + std::to_string(active_seen) +
                    " != size() " + std::to_string(active_));
  }
  if (moving_seen != moving_.size()) {
    grid_audit_fail("moving list holds nodes that are not active");
  }
  // Order-insensitive total: a node binned into a *wrong* bucket shows
  // up here as an excess entry even though its own-bucket check passed.
  std::size_t binned = 0;
  // Audit-only commutative sum — the result is independent of bucket
  // iteration order.
  for (const auto& [cell, bucket] : buckets_) binned += bucket.size();
  if (binned != active_) {
    grid_audit_fail("bucket membership total " + std::to_string(binned) +
                    " != active node count " + std::to_string(active_));
  }
}

std::size_t SpatialGrid::count_within(Vec2 center, Meters radius,
                                      TimePoint t, std::uint64_t epoch,
                                      NodeId exclude) const {
  refresh(t, epoch);
  const double r = radius.value;
  std::size_t n = 0;
  const std::int64_t x0 = detail::cell_coord(center.x - r, cell_size_);
  const std::int64_t x1 = detail::cell_coord(center.x + r, cell_size_);
  const std::int64_t y0 = detail::cell_coord(center.y - r, cell_size_);
  const std::int64_t y1 = detail::cell_coord(center.y + r, cell_size_);
  for (std::int64_t cx = x0; cx <= x1; ++cx) {
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      const auto it = buckets_.find(detail::cell_key(cx, cy));
      if (it == buckets_.end()) continue;
      for (const std::uint32_t id : it->second) {
        if (id == exclude.value) continue;
        if (distance(center, slots_[id].cached).value <= r) ++n;
      }
    }
  }
  return n;
}

}  // namespace d2dhb::mobility
