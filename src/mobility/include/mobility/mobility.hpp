// Node placement and movement.
//
// The paper's framework must cope with "the inherent mobility of
// smartphones" — D2D links break when peers drift past the radio range.
// These models drive the distance inputs of the D2D substrate: static
// placement for the controlled experiments (Figs. 8-13, 15), linear
// walk-away for disconnect tests, random-waypoint and clustered crowds
// for the high-density scenarios Section II-D motivates.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace d2dhb::mobility {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;
};

double length(Vec2 v);
Meters distance(Vec2 a, Vec2 b);

/// A node's trajectory through simulated time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 position_at(TimePoint t) const = 0;
  /// True when position_at is time-invariant. The world index
  /// (mobility::SpatialGrid) bins static nodes once and only refreshes
  /// the moving ones; a model may only report true if its position
  /// never changes.
  virtual bool is_static() const { return false; }
};

/// Fixed position — the paper's bench-top experiments (devices at a set
/// distance on a desk).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 position) : position_(position) {}
  Vec2 position_at(TimePoint) const override { return position_; }
  bool is_static() const override { return true; }

 private:
  Vec2 position_;
};

/// Constant-velocity motion from a start point; used to walk a UE out of
/// D2D range deterministically.
class LinearMobility final : public MobilityModel {
 public:
  /// `velocity` is in meters per second.
  LinearMobility(Vec2 start, Vec2 velocity)
      : start_(start), velocity_(velocity) {}
  Vec2 position_at(TimePoint t) const override {
    return start_ + velocity_ * to_seconds(t);
  }

 private:
  Vec2 start_;
  Vec2 velocity_;
};

/// Classic random-waypoint over a rectangular area. Legs are generated
/// lazily from a private RNG stream and cached, so position queries are
/// deterministic and may arrive in any order.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    Vec2 area_min{0.0, 0.0};
    Vec2 area_max{100.0, 100.0};
    double min_speed_mps{0.5};
    double max_speed_mps{1.5};
    Duration max_pause{seconds(30)};
  };

  RandomWaypoint(Params params, Vec2 start, Rng rng);
  Vec2 position_at(TimePoint t) const override;

 private:
  struct Leg {
    TimePoint start_time;
    TimePoint end_time;  ///< includes the pause at the destination
    TimePoint arrive_time;
    Vec2 from;
    Vec2 to;
  };

  void extend_to(TimePoint t) const;

  Params params_;
  mutable Rng rng_;
  mutable std::vector<Leg> legs_;
};

/// Follows another trajectory at a fixed offset — members of a group
/// (a family walking together) share one leader path.
class OffsetMobility final : public MobilityModel {
 public:
  OffsetMobility(const MobilityModel& leader, Vec2 offset)
      : leader_(leader), offset_(offset) {}
  Vec2 position_at(TimePoint t) const override {
    return leader_.position_at(t) + offset_;
  }
  bool is_static() const override { return leader_.is_static(); }

 private:
  const MobilityModel& leader_;
  Vec2 offset_;
};

/// Stationary until `depart_at`, then walks straight toward `target` at
/// `speed_mps` and stays there — the "stadium exodus" motion where a
/// whole crowd leaves at once.
class DepartureMobility final : public MobilityModel {
 public:
  DepartureMobility(Vec2 start, Vec2 target, TimePoint depart_at,
                    double speed_mps);
  Vec2 position_at(TimePoint t) const override;
  TimePoint arrival_time() const { return arrive_at_; }

 private:
  Vec2 start_;
  Vec2 target_;
  TimePoint depart_at_;
  TimePoint arrive_at_;
  double speed_mps_;
};

/// Generates clustered positions for a crowd: `clusters` hotspot centers
/// uniformly in the area, nodes normally scattered around a random
/// hotspot. Models the "high-density crowd" regions where signaling
/// storms occur (Section II-D).
std::vector<Vec2> clustered_crowd(std::size_t nodes, std::size_t clusters,
                                  Vec2 area_min, Vec2 area_max,
                                  double cluster_stddev_m, Rng& rng);

}  // namespace d2dhb::mobility
