// World index: uniform-cell spatial hashing over node positions.
//
// Every dense-proximity consumer (D2D discovery scans, range-exit
// sweeps, operator relay selection, nearest-cell attach) used to walk
// all nodes; at crowd scale those all-pairs loops dominate the run.
// The grid answers "who is within r of here" by visiting only the
// overlapping cells, with results in deterministic NodeId/index order
// so seeded runs stay bit-identical regardless of bucket layout.
//
// Two layers:
//  * PointGrid — static Vec2 points with a caller-chosen index. Built
//    once; used for layout-time queries (relay selection, coverage
//    accounting, cell-site attach).
//  * SpatialGrid — NodeId-keyed index over live MobilityModel
//    trajectories. Positions are cached and refreshed lazily, keyed on
//    sim time (see refresh()): static nodes are binned once, moving
//    nodes re-bin only when a query arrives at a new timestamp, so all
//    queries within one event instant share a single refresh.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"

namespace d2dhb::mobility {

namespace detail {
/// Integer cell coordinate of a position along one axis.
inline std::int64_t cell_coord(double v, double cell_size) {
  return static_cast<std::int64_t>(std::floor(v / cell_size));
}
/// Packs the two 32-bit-ish cell coordinates into one hashable key.
inline std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
  return (static_cast<std::uint64_t>(cx) << 32) ^
         static_cast<std::uint64_t>(cy & 0xffffffff);
}
}  // namespace detail

/// Spatial hash over immutable points. Indices are caller-defined
/// (e.g. candidate array offsets or cell-site numbers); queries return
/// them sorted ascending, which makes downstream iteration order — and
/// therefore any RNG consumption — independent of bucket layout.
class PointGrid {
 public:
  /// `cell_size` is normally the query radius of interest (one ring of
  /// neighbour cells then suffices); must be > 0.
  explicit PointGrid(Meters cell_size);

  void insert(std::size_t index, Vec2 position);
  std::size_t size() const { return points_.size(); }
  Meters cell_size() const { return Meters{cell_size_}; }

  /// Indices of all points with distance(center, p) <= radius, sorted
  /// ascending. `out` is cleared first.
  void query_radius(Vec2 center, Meters radius,
                    std::vector<std::size_t>& out) const;

  /// Number of points within `radius` of `center`.
  std::size_t count_within(Vec2 center, Meters radius) const;

  /// True if any point lies within `radius` of `center` (early exit).
  bool any_within(Vec2 center, Meters radius) const;

  /// Index of the nearest point (ties broken by lowest index — the same
  /// rule as a first-strictly-closer linear scan). Requires size() > 0.
  std::size_t nearest(Vec2 center) const;

 private:
  struct Point {
    std::size_t index;
    Vec2 position;
  };

  template <typename Visit>
  void visit_cells(Vec2 center, Meters radius, Visit&& visit) const;

  double cell_size_;
  std::vector<Point> points_;
  // detlint: allow(unordered-state): buckets are looked up by key only,
  // never iterated; query results are sorted before they escape.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
};

/// Live world index over MobilityModel trajectories, keyed by NodeId.
///
/// Determinism rules (relied on by the seeded-run equivalence tests):
///  * query results are sorted by NodeId ascending;
///  * distances are computed with the exact same `mobility::distance`
///    arithmetic as a brute-force scan, so the admitted set is
///    identical bit for bit;
///  * the grid never reorders or batches RNG draws itself — it only
///    produces candidate sets.
///
/// Refresh policy: `position_at` is authoritative and is what queries
/// compare against; the cached cell binning is refreshed lazily when a
/// query's (time, epoch) key differs from the cache's. Nodes whose
/// model reports `is_static()` are binned once on insert and never
/// touched again; only moving nodes pay the per-timestamp re-bin.
class SpatialGrid {
 public:
  explicit SpatialGrid(Meters cell_size);

  void insert(NodeId node, const MobilityModel& model);
  void remove(NodeId node);
  bool contains(NodeId node) const;
  std::size_t size() const { return active_; }
  Meters cell_size() const { return Meters{cell_size_}; }

  /// Exact position of a registered node at `t` (straight from the
  /// model — never the cached copy).
  Vec2 position(NodeId node, TimePoint t) const;
  const MobilityModel* model(NodeId node) const;

  /// One query hit: the node and its exact distance from the center.
  struct Neighbor {
    NodeId node;
    Meters distance;
  };

  /// All registered nodes (minus `exclude`) within `radius` of
  /// `center` at time `t`, sorted by NodeId ascending. `out` is
  /// cleared first. `epoch` keys the lazy refresh — pass the
  /// simulator's time epoch so repeated queries within one event
  /// instant skip the re-bin (see sim::Simulator::time_epoch()).
  void query_radius(Vec2 center, Meters radius, TimePoint t,
                    std::uint64_t epoch, std::vector<Neighbor>& out,
                    NodeId exclude = NodeId::invalid()) const;

  /// Number of nodes (minus `exclude`) within `radius` of `center`.
  std::size_t count_within(Vec2 center, Meters radius, TimePoint t,
                           std::uint64_t epoch,
                           NodeId exclude = NodeId::invalid()) const;

  /// Invariant audit (the D2DHB_AUDIT layer): refreshes to (t, epoch)
  /// and verifies cache freshness and binning consistency — every
  /// cached position matches its model at t, every slot's cell key
  /// matches its cached position, every active node sits in exactly one
  /// bucket (the right one), and `moving_` lists exactly the non-static
  /// active nodes. Throws std::logic_error naming the violation.
  void audit(TimePoint t, std::uint64_t epoch) const;

 private:
  struct Slot {
    const MobilityModel* model{nullptr};
    Vec2 cached{};
    std::uint64_t cell{0};
    bool is_static{false};
  };

  Slot* slot_of(NodeId node);
  const Slot* slot_of(NodeId node) const;
  void bin(std::uint64_t id, Slot& slot, Vec2 at);
  void unbin(std::uint64_t id, Slot& slot);
  void refresh(TimePoint t, std::uint64_t epoch) const;

  double cell_size_;
  std::size_t active_{0};
  /// Dense slot table indexed by NodeId value (ids are contiguous from
  /// 1 in every scenario, so this is a flat array, not a hash).
  mutable std::vector<Slot> slots_;
  // detlint: allow(unordered-state): key-only lookups; every query
  // sorts its hits by NodeId before returning, so bucket layout never
  // reaches sim-visible state (see determinism rules above).
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
      buckets_;
  /// Ids of nodes whose model is not static — the only ones refreshed.
  mutable std::vector<std::uint32_t> moving_;
  mutable TimePoint cached_time_{};
  mutable std::uint64_t cached_epoch_{0};
  mutable bool cache_primed_{false};
};

}  // namespace d2dhb::mobility
