#include "world/node_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace d2dhb::world {

void NodeTable::add(NodeId id, const mobility::MobilityModel* mobility) {
  if (!id.valid()) {
    throw std::invalid_argument("NodeTable::add: invalid node id");
  }
  if (mobility == nullptr) {
    throw std::invalid_argument("NodeTable::add: mobility required");
  }
  if (id.value >= mobility_.size()) {
    const std::size_t rows = id.value + 1;
    mobility_.resize(rows, nullptr);
    cell_.resize(rows, kNoCell);
    role_.resize(rows, NodeRole::none);
    battery_.resize(rows, 1.0);
    d2d_slot_.resize(rows, kNoD2dSlot);
    shard_.resize(rows, 0);
    agent_slot_.resize(rows, kNoAgentSlot);
  }
  if (mobility_[id.value] == nullptr) ++registered_;
  mobility_[id.value] = mobility;
}

void NodeTable::remove(NodeId id) {
  if (!contains(id)) return;
  mobility_[id.value] = nullptr;
  cell_[id.value] = kNoCell;
  role_[id.value] = NodeRole::none;
  battery_[id.value] = 1.0;
  d2d_slot_[id.value] = kNoD2dSlot;
  shard_[id.value] = 0;
  agent_slot_[id.value] = kNoAgentSlot;
  --registered_;
}

void NodeTable::set_battery(NodeId id, double level) {
  if (level < 0.0 || level > 1.0) {
    throw std::invalid_argument("NodeTable::set_battery: level outside [0, 1]");
  }
  battery_[check_row(id)] = level;
}

const mobility::MobilityModel* NodeTable::checked(NodeId id) const {
  const mobility::MobilityModel* model =
      id.value < mobility_.size() ? mobility_[id.value] : nullptr;
  if (model == nullptr) {
    throw std::out_of_range("NodeTable: unknown node #" +
                            std::to_string(id.value));
  }
  return model;
}

std::size_t NodeTable::check_row(NodeId id) const {
  (void)checked(id);
  return static_cast<std::size_t>(id.value);
}

std::vector<NodeId> NodeTable::ids() const {
  std::vector<NodeId> out;
  out.reserve(registered_);
  for (std::uint64_t row = 1; row < mobility_.size(); ++row) {
    if (mobility_[row] != nullptr) out.push_back(NodeId{row});
  }
  return out;
}

namespace {
[[noreturn]] void audit_fail(const std::string& what) {
  throw std::logic_error("NodeTable audit: " + what);
}
}  // namespace

void NodeTable::audit() const {
  const std::size_t rows = mobility_.size();
  if (cell_.size() != rows || role_.size() != rows ||
      battery_.size() != rows || d2d_slot_.size() != rows ||
      shard_.size() != rows || agent_slot_.size() != rows) {
    audit_fail("column lengths diverged");
  }
  if (rows > 0 && mobility_[0] != nullptr) {
    audit_fail("row 0 is registered (id 0 is reserved for invalid)");
  }
  std::size_t registered = 0;
  std::vector<std::uint32_t> slots;
  for (std::size_t row = 0; row < rows; ++row) {
    if (mobility_[row] != nullptr) {
      ++registered;
      if (battery_[row] < 0.0 || battery_[row] > 1.0) {
        audit_fail("row " + std::to_string(row) +
                   " battery level outside [0, 1]");
      }
      if (d2d_slot_[row] != kNoD2dSlot) slots.push_back(d2d_slot_[row]);
      if (agent_slot_[row] != kNoAgentSlot &&
          role_[row] == NodeRole::none) {
        audit_fail("row " + std::to_string(row) +
                   " holds an agent slot but no role");
      }
    } else {
      if (cell_[row] != kNoCell || role_[row] != NodeRole::none ||
          battery_[row] != 1.0 || d2d_slot_[row] != kNoD2dSlot ||
          shard_[row] != 0 || agent_slot_[row] != kNoAgentSlot) {
        audit_fail("unregistered row " + std::to_string(row) +
                   " holds non-default column values");
      }
    }
  }
  std::sort(slots.begin(), slots.end());
  const auto dup = std::adjacent_find(slots.begin(), slots.end());
  if (dup != slots.end()) {
    audit_fail("two rows share D2D slot " + std::to_string(*dup));
  }
  if (registered != registered_) {
    audit_fail("registered count " + std::to_string(registered_) +
               " != mobility column population " + std::to_string(registered));
  }
}

}  // namespace d2dhb::world
