#include "world/sharded_world.hpp"

#include <algorithm>
#include <stdexcept>

namespace d2dhb::world {

ShardedWorld::ShardedWorld(sim::Simulator& sim, Duration window)
    : sim_(sim), window_(window) {
  if (window_ <= Duration::zero()) {
    throw std::invalid_argument("ShardedWorld: window must be positive");
  }
}

void ShardedWorld::run_until(TimePoint t) {
  while (sim_.now() < t) {
    // Everything before the window start has executed and drained, so
    // the horizons may conservatively advance to it; a later attempt to
    // post below this point is a lookahead violation and throws.
    const TimePoint window_start = sim_.now();
    for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
      sim_.mailbox(s).drain_window(sim_.kernel(s), window_start);
    }
    sim_.run_until(std::min(t, window_start + window_));
    ++windows_;
  }
}

ShardedWorld::Stats ShardedWorld::stats() const {
  Stats out;
  out.windows = windows_;
  for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
    const auto& mailbox = sim_.mailbox(s);
    out.cross_posted += mailbox.posted();
    out.cross_delivered += mailbox.delivered();
  }
  out.min_slack_us = sim_.cross_min_slack_us();
  return out;
}

}  // namespace d2dhb::world
