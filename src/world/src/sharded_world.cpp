#include "world/sharded_world.hpp"

#include <stdexcept>

#include "sim/engine.hpp"

namespace d2dhb::world {

ShardedWorld::ShardedWorld(sim::Simulator& sim, Duration window)
    : sim_(sim), window_(window) {
  if (window_ <= Duration::zero()) {
    throw std::invalid_argument("ShardedWorld: window must be positive");
  }
}

void ShardedWorld::run_until(TimePoint t) {
  // One worker thread and the engine's own window: identical results to
  // the historical round-robin loop (the executor never affects them),
  // same horizon auditing, one code path to maintain.
  sim::RunOptions options;
  options.threads = 1;
  const sim::RunStats stats = sim::run(sim_, t, options);
  windows_ += stats.windows;
}

ShardedWorld::Stats ShardedWorld::stats() const {
  Stats out;
  out.windows = windows_;
  for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
    const auto& mailbox = sim_.mailbox(s);
    out.cross_posted += mailbox.posted();
    out.cross_delivered += mailbox.delivered();
  }
  out.min_slack_us = sim_.cross_min_slack_us();
  return out;
}

}  // namespace d2dhb::world
