// Spatial partitioning rule for the sharded world.
//
// Shards are vertical strips of the scenario area: shard k owns
// x ∈ [min_x + k·(width/shards), min_x + (k+1)·(width/shards)). A
// node's home shard is fixed at creation time from its initial
// position — mobility may carry a phone across a strip boundary, and
// that is fine: shard assignment only decides WHICH kernel hosts the
// node's timers, while interactions with nodes homed elsewhere travel
// through the shard mailboxes. Strip partitioning keeps most D2D
// neighbourhoods (range ~30 m, strips hundreds of meters at crowd
// scale) within one shard, so cross-shard traffic stays a border
// phenomenon.
#pragma once

#include <algorithm>
#include <cstdint>

#include "mobility/mobility.hpp"

namespace d2dhb::world {

struct ShardPlan {
  /// Number of kernels in the world. 1 = the classic single-kernel run.
  std::size_t shards{1};
  /// Strip geometry. width <= 0 places every node on shard 0 (useful
  /// when the scenario has no meaningful extent).
  double min_x{0.0};
  double width{0.0};

  std::uint32_t shard_for(mobility::Vec2 position) const {
    if (shards <= 1 || width <= 0.0) return 0;
    const double strip = width / static_cast<double>(shards);
    const auto raw = static_cast<std::int64_t>((position.x - min_x) / strip);
    const auto last = static_cast<std::int64_t>(shards) - 1;
    return static_cast<std::uint32_t>(std::clamp<std::int64_t>(raw, 0, last));
  }
};

}  // namespace d2dhb::world
