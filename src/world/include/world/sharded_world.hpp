// DEPRECATED shim over the unified engine entrypoint (sim/engine.hpp).
//
// ShardedWorld was the single-threaded N-shard executor: round-robin
// conservative time windows over a multi-kernel Simulator. That role —
// and its multi-threaded successor — now lives behind sim::run() with
// sim::RunOptions; every scenario, bench, and tool goes through that
// API. This wrapper survives for exactly one release so out-of-tree
// callers keep compiling: it forwards to sim::run() on one worker
// thread. The `window` constructor argument is validated but otherwise
// ignored — the engine derives its synchronization quantum from the
// cross-shard latency floor instead (a wide window would let a kernel
// run past a point another kernel still needs to post into).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::world {

class ShardedWorld {
 public:
  struct Stats {
    std::uint64_t windows{0};
    /// Cross-shard envelopes posted / delivered over the run (summed
    /// over all mailboxes; plain counters, never in the metrics
    /// registry — the registry must stay byte-identical across shard
    /// counts).
    std::uint64_t cross_posted{0};
    std::uint64_t cross_delivered{0};
    /// Smallest (when - post time) over all cross-shard posts, in
    /// microseconds; the conservative lookahead actually available.
    /// INT64_MAX when nothing crossed.
    std::int64_t min_slack_us{INT64_MAX};
  };

  /// Deprecated — call sim::run(sim, t, sim::RunOptions{...}) instead.
  /// `window` must still be positive (historical contract) but the
  /// engine chooses the actual quantum.
  ShardedWorld(sim::Simulator& sim, Duration window);

  /// Runs the world to `t` through the engine, serially.
  void run_until(TimePoint t);

  Duration window() const { return window_; }
  Stats stats() const;

 private:
  sim::Simulator& sim_;
  Duration window_;
  std::uint64_t windows_{0};
};

}  // namespace d2dhb::world
