// The N-shard executor: runs a multi-kernel Simulator in round-robin
// conservative time windows on one thread.
//
// Correctness does not depend on the window at all — the Simulator
// merge-steps whichever kernel holds the globally smallest (when, seq)
// head and drains mailboxes eagerly, so execution order (and every
// metric) is byte-identical to the 1-shard run for any window and any
// partition. What the windows add is the conservative-synchronization
// bookkeeping a parallel executor needs: at each window boundary every
// mailbox's horizon advances to the window start, enforcing (and
// auditing) the rule that nothing may be posted into a shard's already-
// executed past. The lookahead math is favourable: heartbeat periods
// are 240–300 s while the latencies that cross shards (D2D transfer,
// backhaul) are milliseconds, so windows of seconds still leave every
// cross-shard event far beyond its destination's horizon — the
// min-slack statistic below measures exactly how far, and is the input
// for choosing the window of the multi-threaded follow-up.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::world {

class ShardedWorld {
 public:
  struct Stats {
    std::uint64_t windows{0};
    /// Cross-shard envelopes posted / delivered over the run (summed
    /// over all mailboxes; plain counters, never in the metrics
    /// registry — the registry must stay byte-identical across shard
    /// counts).
    std::uint64_t cross_posted{0};
    std::uint64_t cross_delivered{0};
    /// Smallest (when - post time) over all cross-shard posts, in
    /// microseconds; the conservative lookahead actually available.
    /// INT64_MAX when nothing crossed.
    std::int64_t min_slack_us{INT64_MAX};
  };

  /// `window` is the round-robin synchronization quantum. Must be
  /// positive; it only affects horizon bookkeeping, never results.
  ShardedWorld(sim::Simulator& sim, Duration window);

  /// Runs the world to `t`, window by window, advancing every mailbox
  /// horizon at each boundary.
  void run_until(TimePoint t);

  Duration window() const { return window_; }
  Stats stats() const;

 private:
  sim::Simulator& sim_;
  Duration window_;
  std::uint64_t windows_{0};
};

}  // namespace d2dhb::world
