// Dense per-node world state, structure-of-arrays.
//
// Every scenario assigns contiguous NodeIds (1, 2, 3, ...), and before
// this layer each substrate kept its own parallel table indexed by
// them: the Wi-Fi Direct medium had radio+mobility entries, the
// Scenario had serving-cell and phone-pointer vectors, relay selection
// rebuilt candidate lists from scratch. The NodeTable is the single
// dense-state layer those substrates now index into — one column per
// attribute, NodeId value as the row index — so a future million-phone
// world pays one cache-friendly array per attribute instead of N
// scattered maps, and cross-substrate consistency is auditable in one
// place.
//
// Columns: mobility model (position source), serving cell, role,
// battery level (the operator-selection eligibility input), the D2D
// medium's compact radio slot, and the home shard of the partitioned
// executor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"

namespace d2dhb::world {

/// Serving-cell column value for "not attached to any cell".
inline constexpr std::uint32_t kNoCell = UINT32_MAX;
/// D2D-slot column value for "no radio on the medium".
inline constexpr std::uint32_t kNoD2dSlot = UINT32_MAX;
/// Agent-slot column value for "no agent attached to this node".
inline constexpr std::uint32_t kNoAgentSlot = UINT32_MAX;

enum class NodeRole : std::uint8_t {
  none,      ///< Registered but no agent yet.
  ue,        ///< Heartbeats via a relay (D2D system).
  relay,     ///< Forwards others' heartbeats (D2D system).
  original,  ///< Per-phone cellular heartbeats (the paper's baseline).
};

class NodeTable {
 public:
  NodeTable() = default;
  NodeTable(const NodeTable&) = delete;
  NodeTable& operator=(const NodeTable&) = delete;

  /// Registers a node with its position source. Ids must be valid
  /// (non-zero); re-registering an id overwrites its mobility and keeps
  /// the other columns. `mobility` must outlive the table (scenarios
  /// own the models; the table only reads positions).
  void add(NodeId id, const mobility::MobilityModel* mobility);

  /// Forgets a node entirely (all columns back to defaults).
  void remove(NodeId id);

  bool contains(NodeId id) const {
    return id.value < mobility_.size() && mobility_[id.value] != nullptr;
  }
  /// Number of registered nodes.
  std::size_t size() const { return registered_; }
  /// One past the largest row index (ids are rows; row 0 is unused).
  std::uint64_t id_limit() const { return mobility_.size(); }

  const mobility::MobilityModel& mobility_of(NodeId id) const {
    return *checked(id);
  }
  mobility::Vec2 position_of(NodeId id, TimePoint t) const {
    return checked(id)->position_at(t);
  }

  std::uint32_t cell_of(NodeId id) const { return cell_[check_row(id)]; }
  void set_cell(NodeId id, std::uint32_t cell) { cell_[check_row(id)] = cell; }

  NodeRole role_of(NodeId id) const { return role_[check_row(id)]; }
  void set_role(NodeId id, NodeRole role) { role_[check_row(id)] = role; }

  /// Remaining battery fraction in [0, 1] — the relay-eligibility input
  /// of operator selection (low-battery phones are not drafted).
  double battery_of(NodeId id) const { return battery_[check_row(id)]; }
  void set_battery(NodeId id, double level);

  /// Index into the D2D medium's compact radio array (kNoD2dSlot when
  /// the node has no radio attached). Owned by WifiDirectMedium.
  std::uint32_t d2d_slot(NodeId id) const { return d2d_slot_[check_row(id)]; }
  void set_d2d_slot(NodeId id, std::uint32_t slot) {
    d2d_slot_[check_row(id)] = slot;
  }

  /// Home shard of the partitioned executor (0 in a 1-shard world).
  std::uint32_t shard_of(NodeId id) const { return shard_[check_row(id)]; }
  void set_shard(NodeId id, std::uint32_t shard) {
    shard_[check_row(id)] = shard;
  }

  /// Index into the scenario's dense per-role agent store (the row of
  /// this node's UeAgent/RelayAgent/OriginalAgent; kNoAgentSlot for
  /// nodes without an agent). Owned by the Scenario, which assigns the
  /// slot together with the role.
  std::uint32_t agent_slot(NodeId id) const {
    return agent_slot_[check_row(id)];
  }
  void set_agent_slot(NodeId id, std::uint32_t slot) {
    agent_slot_[check_row(id)] = slot;
  }

  /// Registered ids in ascending order (freshly built; for iteration-
  /// order-sensitive callers like relay selection).
  std::vector<NodeId> ids() const;

  /// Invariant audit (the D2DHB_AUDIT layer): row 0 unused, registered
  /// count matches the mobility column, unregistered rows hold default
  /// column values, battery levels in [0, 1], no two nodes share a
  /// D2D slot, and agent slots only attach to rows that hold a role.
  /// Throws std::logic_error naming the offending row.
  void audit() const;

 private:
  const mobility::MobilityModel* checked(NodeId id) const;
  std::size_t check_row(NodeId id) const;

  // One column per attribute, NodeId value as row index. All columns
  // grow together in add(); nullptr mobility marks an unregistered row.
  std::vector<const mobility::MobilityModel*> mobility_;
  std::vector<std::uint32_t> cell_;
  std::vector<NodeRole> role_;
  std::vector<double> battery_;
  std::vector<std::uint32_t> d2d_slot_;
  std::vector<std::uint32_t> shard_;
  std::vector<std::uint32_t> agent_slot_;
  std::size_t registered_{0};
};

}  // namespace d2dhb::world
