// D2D technology catalog — Section IV-A's design discussion made
// runnable. The paper picks Wi-Fi Direct for its range and ubiquity;
// Bluetooth "has the potential to complete D2D communication with low
// energy [but] its communication range is typically less than 10 m";
// LTE Direct "enables the discovery of thousands of devices in proximity
// of approximately 500 meters" but lacks deployment. Each technology
// bundles a radio range/medium behaviour with a per-phase energy
// profile, so the choice can be swept in benches.
#pragma once

#include <string>
#include <vector>

#include "d2d/energy_profile.hpp"
#include "d2d/medium.hpp"

namespace d2dhb::d2d {

struct D2dTechnology {
  std::string name;
  WifiDirectMedium::Params medium;
  D2dEnergyProfile energy;
  /// True where the technique is actually deployable today (the paper
  /// rules out LTE Direct "for generality consideration").
  bool widely_deployed{true};
};

/// The paper's choice: 30 m range, Table III/IV-calibrated energy.
D2dTechnology wifi_direct_tech();

/// Classic Bluetooth: < 10 m range, cheaper per-phase energy, lossier
/// discovery, steeper distance penalty. (Synthetic calibration — the
/// paper only argues qualitatively; see EXPERIMENTS.md.)
D2dTechnology bluetooth_tech();

/// LTE Direct: ~500 m discovery range, network-assisted (very cheap)
/// discovery, licensed-band transfer energy. Marked not widely deployed.
D2dTechnology lte_direct_tech();

/// All three, in the order the paper discusses them.
std::vector<D2dTechnology> all_technologies();

}  // namespace d2dhb::d2d
