// Wi-Fi Direct per-phase energy calibration.
//
// The paper measures the D2D side of the framework in three phases —
// discovery, connection, forwarding (Table III) — plus the relay's
// per-message receive cost (Table IV). Each phase here is a current
// shape (segments with relative weights) scaled so its integral hits the
// paper's measured charge exactly; the shape only matters for the
// Fig. 6 current trace, the integral for everything else.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {

/// Piecewise-constant current shape with relative segment weights.
struct PhaseShape {
  struct Segment {
    Duration duration;
    double weight;  ///< Relative current during this segment.
  };
  std::vector<Segment> segments;

  Duration total_duration() const;
  /// Sum of weight·duration_seconds — the scaling denominator.
  double weighted_seconds() const;
};

/// Schedules the phase's segments as transient loads on `component`,
/// with currents scaled so the phase integrates to exactly `target`.
/// Returns the phase's total duration.
Duration apply_phase(sim::Simulator& sim, energy::EnergyMeter& meter,
                     energy::ComponentHandle component,
                     const PhaseShape& shape, MicroAmpHours target);

/// All Wi-Fi Direct calibration constants. Defaults reproduce the
/// paper's Tables III and IV at the 1 m reference distance.
struct D2dEnergyProfile {
  // --- Table III: per-phase charge ---
  MicroAmpHours ue_discovery{132.24};
  MicroAmpHours relay_discovery{122.50};
  MicroAmpHours ue_connection{63.74};
  MicroAmpHours relay_connection{60.29};
  MicroAmpHours ue_send_reference{73.09};   ///< Per message at 1 m, 54 B.
  // --- Table IV: linear receive cost, ~131.3 µAh per message ---
  MicroAmpHours relay_receive{131.3};

  /// Idle draw while at least one D2D link is connected (power-save
  /// client keepalives). Small but not zero.
  MilliAmps idle_connected{1.0};

  /// Tiny control frames (feedback acks): per-frame charge on each end.
  MicroAmpHours control_send{4.0};
  MicroAmpHours control_receive{4.0};

  // --- Distance model (Fig. 12) ---
  /// Send cost scales as 1 + distance_factor·(d - reference)² beyond the
  /// 1 m reference: at 15 m a send costs ~12× the reference, crossing
  /// the cellular per-heartbeat cost well before that.
  Meters reference_distance{1.0};
  double distance_factor{0.0577};

  // --- Size model (Fig. 13) ---
  /// Marginal charge per payload byte beyond the 54 B standard size.
  /// Tiny: a 5× message costs only ~11 µAh more ("almost constant").
  double per_byte_uah{0.05};

  // --- Timing ---
  Duration discovery_scan{seconds(8)};
  Duration connection_setup{seconds(2.5)};
  Duration transfer_latency{milliseconds(350)};  ///< Send start -> delivery.

  /// Send-phase charge for a payload of `size` at distance `d`.
  MicroAmpHours send_charge(Bytes size, Meters d) const;
  /// Receive-phase charge for a payload of `size` (distance-independent;
  /// the receiver's radio listens at fixed gain).
  MicroAmpHours receive_charge(Bytes size) const;

  // --- Current shapes (scaled to the charges above when applied) ---
  static PhaseShape discovery_shape();
  static PhaseShape connection_shape();
  static PhaseShape send_shape();     ///< Spike + fast decay (Fig. 6).
  static PhaseShape receive_shape();
};

}  // namespace d2dhb::d2d
