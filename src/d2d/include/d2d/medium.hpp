// Shared Wi-Fi Direct medium: the "air" between radios.
//
// Tracks every registered radio with its mobility model, answers range
// and discovery queries, and adds measurement noise to RSSI-derived
// distance estimates (the pre-judgment input of Section III-C).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {

class WifiDirectRadio;

/// What a relay advertises in its discovery beacon.
struct RelayAdvert {
  bool offers_relay{false};
  std::uint32_t capacity_remaining{0};  ///< Heartbeats it will still accept.
};

/// One entry of a discovery scan result.
struct DiscoveredPeer {
  NodeId node;
  Meters estimated_distance;  ///< RSSI-derived, noisy.
  RelayAdvert advert;
};

class WifiDirectMedium {
 public:
  struct Params {
    Meters range{30.0};            ///< Nominal Wi-Fi Direct reach.
    double rssi_noise_stddev_m{0.3};
    double discovery_miss_probability{0.0};  ///< Per-peer scan miss.
    /// A group owner accepts at most this many clients (Android GOs top
    /// out around 8); further connect attempts are refused.
    std::size_t max_group_clients{8};
  };

  WifiDirectMedium(sim::Simulator& sim, Params params, Rng rng)
      : sim_(sim), params_(params), rng_(rng) {}

  /// Radios register on construction and unregister on destruction.
  void attach(WifiDirectRadio& radio, const mobility::MobilityModel& mobility);
  void detach(NodeId node);

  /// True distance between two registered radios right now.
  Meters distance(NodeId a, NodeId b) const;
  bool in_range(NodeId a, NodeId b) const;
  mobility::Vec2 position_of(NodeId node) const;

  /// Peers currently discoverable and in range of `scanner`, with noisy
  /// distance estimates. Peers may be missed per the miss probability.
  std::vector<DiscoveredPeer> scan_from(NodeId scanner);

  WifiDirectRadio* radio(NodeId node) const;
  const Params& params() const { return params_; }

 private:
  struct Entry {
    WifiDirectRadio* radio;
    const mobility::MobilityModel* mobility;
  };

  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace d2dhb::d2d
