// Shared Wi-Fi Direct medium: the "air" between radios.
//
// Tracks every registered radio with its mobility model, answers range
// and discovery queries, and adds measurement noise to RSSI-derived
// distance estimates (the pre-judgment input of Section III-C).
//
// Radios live in a dense slot table indexed by NodeId, and proximity
// queries (discovery scans, range-exit sweeps) go through the
// mobility::SpatialGrid world index instead of walking every radio —
// the difference between O(population) and O(neighbourhood) per scan
// at crowd scale. A legacy linear-scan path is kept behind
// Params::legacy_scan for the grid-vs-scan ablation; both paths visit
// peers in ascending NodeId order and draw the RNG identically, so a
// seeded run is bit-identical whichever path answers it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"
#include "mobility/spatial_grid.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {

class WifiDirectRadio;

/// What a relay advertises in its discovery beacon.
struct RelayAdvert {
  bool offers_relay{false};
  std::uint32_t capacity_remaining{0};  ///< Heartbeats it will still accept.
};

/// One entry of a discovery scan result.
struct DiscoveredPeer {
  NodeId node;
  Meters estimated_distance;  ///< RSSI-derived, noisy.
  RelayAdvert advert;
};

class WifiDirectMedium {
 public:
  struct Params {
    Meters range{30.0};            ///< Nominal Wi-Fi Direct reach.
    double rssi_noise_stddev_m{0.3};
    double discovery_miss_probability{0.0};  ///< Per-peer scan miss.
    /// A group owner accepts at most this many clients (Android GOs top
    /// out around 8); further connect attempts are refused.
    std::size_t max_group_clients{8};
    /// World-index cell size in meters; 0 picks the D2D range (one
    /// neighbour-ring then covers every scan). Exposed for the grid
    /// ablation (`d2dhb_sim crowd --grid-cell`).
    double grid_cell_m{0.0};
    /// Ablation: answer scans by walking the whole dense radio table
    /// (in NodeId order) instead of querying the grid.
    bool legacy_scan{false};
  };

  WifiDirectMedium(sim::Simulator& sim, Params params, Rng rng);
  ~WifiDirectMedium();
  WifiDirectMedium(const WifiDirectMedium&) = delete;
  WifiDirectMedium& operator=(const WifiDirectMedium&) = delete;

  /// Radios register on construction and unregister on destruction.
  void attach(WifiDirectRadio& radio, const mobility::MobilityModel& mobility);
  void detach(NodeId node);

  /// Next group id for a freshly negotiated group. Owned by the medium
  /// (not a process-wide static) so concurrent simulations in a sweep
  /// never share the counter: ids are deterministic per run and there is
  /// no cross-thread data race.
  GroupId allocate_group() { return GroupId{next_group_++}; }

  /// Invariant audit (the D2DHB_AUDIT layer): checks the world index
  /// (SpatialGrid::audit at the current sim time) and link-table
  /// symmetry — for every attached radio, each link (peer, group) must
  /// be mirrored by an identical link back from the peer. Registered
  /// with the simulator's auditor list on construction, so audit builds
  /// run it automatically every audit interval.
  void audit() const;

  /// True distance between two registered radios right now.
  Meters distance(NodeId a, NodeId b) const;
  bool in_range(NodeId a, NodeId b) const;
  mobility::Vec2 position_of(NodeId node) const;

  /// Peers currently discoverable and in range of `scanner`, with noisy
  /// distance estimates, in ascending NodeId order. Peers may be missed
  /// per the miss probability.
  std::vector<DiscoveredPeer> scan_from(NodeId scanner);

  /// Range-exit sweep: which of `peers` are now gone (detached or out
  /// of range of `node`), in `peers`' order. O(links) exact distance
  /// checks over the dense slot table — links are capped at
  /// max_group_clients, so this beats a radius query per poll.
  std::vector<NodeId> lost_peers(NodeId node,
                                 const std::vector<NodeId>& peers) const;

  WifiDirectRadio* radio(NodeId node) const;
  const Params& params() const { return params_; }
  /// The world index the medium maintains (exposed for diagnostics).
  const mobility::SpatialGrid& grid() const { return grid_; }

 private:
  struct Entry {
    WifiDirectRadio* radio{nullptr};
    const mobility::MobilityModel* mobility{nullptr};
  };

  const Entry* entry_of(NodeId node) const;
  mobility::Vec2 checked_position(NodeId node) const;

  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  /// Dense slot table indexed by NodeId value (node ids are contiguous
  /// from 1 in every scenario).
  std::vector<Entry> entries_;
  std::size_t attached_{0};
  mobility::SpatialGrid grid_;
  /// Scratch buffer for grid queries (avoids per-scan allocation).
  mutable std::vector<mobility::SpatialGrid::Neighbor> scratch_;
  std::uint64_t next_group_{1};
  std::uint64_t auditor_token_{0};
};

}  // namespace d2dhb::d2d
