// Shared Wi-Fi Direct medium: the "air" between radios.
//
// Tracks every registered radio, answers range and discovery queries,
// and adds measurement noise to RSSI-derived distance estimates (the
// pre-judgment input of Section III-C).
//
// Node state (position source, D2D slot) lives in the world::NodeTable
// dense-state layer shared with the Scenario and operator selection;
// the medium itself keeps only a compact radio array, with the table's
// d2d_slot column mapping NodeId → array index. Proximity queries
// (discovery scans, range-exit sweeps) go through the
// mobility::SpatialGrid world index instead of walking every radio —
// the difference between O(population) and O(neighbourhood) per scan
// at crowd scale. A legacy linear-scan path is kept behind
// Params::legacy_scan for the grid-vs-scan ablation; both paths visit
// peers in ascending NodeId order and draw the RNG identically, so a
// seeded run is bit-identical whichever path answers it.
//
// Strip confinement: every node is homed to a world strip (its
// NodeTable shard column, fixed when the node is added) and D2D only
// connects nodes homed to the same strip — cross-strip pairs are
// simply out of range. Strips are at least four D2D ranges wide, so
// this only trims pairs straddling a strip boundary, and it makes the
// medium safe for the parallel executor: a scan, range sweep, or
// group-id allocation on strip k touches only strip-k radios, strip-k
// mobility models, strip k's world index, and strip k's rng/id lanes.
// A one-strip world has one lane holding the medium's original rng and
// a group counter starting at 1 with stride 1 — exactly the classic
// serial behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"
#include "mobility/spatial_grid.hpp"
#include "sim/simulator.hpp"
#include "world/node_table.hpp"

namespace d2dhb::d2d {

class WifiDirectRadio;

/// What a relay advertises in its discovery beacon.
struct RelayAdvert {
  bool offers_relay{false};
  std::uint32_t capacity_remaining{0};  ///< Heartbeats it will still accept.
};

/// One entry of a discovery scan result.
struct DiscoveredPeer {
  NodeId node;
  Meters estimated_distance;  ///< RSSI-derived, noisy.
  RelayAdvert advert;
};

class WifiDirectMedium {
 public:
  struct Params {
    Meters range{30.0};            ///< Nominal Wi-Fi Direct reach.
    double rssi_noise_stddev_m{0.3};
    double discovery_miss_probability{0.0};  ///< Per-peer scan miss.
    /// A group owner accepts at most this many clients (Android GOs top
    /// out around 8); further connect attempts are refused.
    std::size_t max_group_clients{8};
    /// World-index cell size in meters; 0 picks the D2D range (one
    /// neighbour-ring then covers every scan). Exposed for the grid
    /// ablation (`d2dhb_sim crowd --grid-cell`).
    double grid_cell_m{0.0};
    /// Ablation: answer scans by walking the whole node table (in
    /// NodeId order) instead of querying the grid.
    bool legacy_scan{false};
  };

  /// `nodes` is the world's shared dense-state table; radios attaching
  /// to the medium register there (attach auto-adds rows for nodes the
  /// scenario has not registered, so standalone radio tests need no
  /// setup beyond passing a table).
  WifiDirectMedium(sim::Simulator& sim, world::NodeTable& nodes,
                   Params params, Rng rng);
  ~WifiDirectMedium();
  WifiDirectMedium(const WifiDirectMedium&) = delete;
  WifiDirectMedium& operator=(const WifiDirectMedium&) = delete;

  /// Radios register on construction and unregister on destruction.
  void attach(WifiDirectRadio& radio, const mobility::MobilityModel& mobility);
  void detach(NodeId node);

  /// Next group id for a freshly negotiated group, minted from the
  /// owner's strip lane (lane k of V issues ids 1+k, 1+k+V, ...), so
  /// concurrent strips never share a counter and ids are deterministic
  /// regardless of executor thread count. One strip degenerates to the
  /// classic 1, 2, 3, ... sequence.
  GroupId allocate_group(NodeId owner);

  /// Invariant audit (the D2DHB_AUDIT layer): checks the world index
  /// (SpatialGrid::audit at the current sim time), NodeTable↔radio-array
  /// slot consistency in both directions, and link-table symmetry — for
  /// every attached radio, each link (peer, group) must be mirrored by
  /// an identical link back from the peer. Registered with the
  /// simulator's auditor list on construction, so audit builds run it
  /// automatically every audit interval.
  void audit() const;

  /// True distance between two registered radios right now. Only
  /// meaningful for same-strip pairs (callers reach it through links,
  /// which never cross strips).
  Meters distance(NodeId a, NodeId b) const;
  /// Range check with strip confinement: nodes homed to different
  /// strips are never in range (decided before touching either node's
  /// mobility, so it is safe to ask about a peer another thread owns).
  bool in_range(NodeId a, NodeId b) const;
  mobility::Vec2 position_of(NodeId node) const;

  /// Peers currently discoverable and in range of `scanner`, with noisy
  /// distance estimates, in ascending NodeId order. Peers may be missed
  /// per the miss probability.
  std::vector<DiscoveredPeer> scan_from(NodeId scanner);

  /// Range-exit sweep: which of `peers` are now gone (detached or out
  /// of range of `node`), in `peers`' order. O(links) exact distance
  /// checks via the node table — links are capped at max_group_clients,
  /// so this beats a radius query per poll.
  std::vector<NodeId> lost_peers(NodeId node,
                                 const std::vector<NodeId>& peers) const;

  WifiDirectRadio* radio(NodeId node) const;
  const Params& params() const { return params_; }
  /// The shared dense node-state layer (home shards, positions, slots).
  world::NodeTable& nodes() { return nodes_; }
  const world::NodeTable& nodes() const { return nodes_; }
  /// A strip's world index (exposed for diagnostics); strip 0 by
  /// default — the whole world when there is a single strip.
  const mobility::SpatialGrid& grid(std::size_t strip = 0) const {
    return *grids_[strip];
  }

 private:
  void require_attached(NodeId node) const;
  mobility::Vec2 checked_position(NodeId node) const;
  std::uint32_t strip_of(NodeId node) const { return nodes_.shard_of(node); }

  /// Per-strip mutable state: the rng feeding that strip's scan noise
  /// and miss draws, and the strip's group-id counter. Only touched by
  /// the kernel executing that strip, so no locking is needed and each
  /// strip's draws are a deterministic stream.
  struct Lane {
    Rng rng;
    std::uint64_t next_group;
  };

  sim::Simulator& sim_;
  world::NodeTable& nodes_;
  Params params_;
  /// Compact array of attached radios; the NodeTable's d2d_slot column
  /// maps NodeId → index here. Detach swap-removes, so the array stays
  /// dense no matter the attach/detach order.
  std::vector<WifiDirectRadio*> radios_;
  /// One world index per strip, holding only nodes homed there. Scans
  /// on strip k query grids_[k] alone — the grid's lazy position cache
  /// then only ever touches strip-k mobility models.
  std::vector<std::unique_ptr<mobility::SpatialGrid>> grids_;
  /// Per-strip scratch buffers for grid queries (avoid per-scan
  /// allocation without sharing a buffer across threads).
  mutable std::vector<std::vector<mobility::SpatialGrid::Neighbor>> scratch_;
  std::vector<Lane> lanes_;
  std::uint64_t auditor_token_{0};
};

}  // namespace d2dhb::d2d
