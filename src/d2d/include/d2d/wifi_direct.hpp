// Per-node Wi-Fi Direct radio.
//
// Models the Android WifiP2pManager surface the prototype is built on
// (Section IV-C): discovery scans, group-owner negotiation driven by
// groupOwnerIntent (0-15), connection setup, message transfer, and
// link-break detection when peers move out of range. Every phase charges
// the node's EnergyMeter per the calibrated D2dEnergyProfile.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/id.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "d2d/energy_profile.hpp"
#include "d2d/medium.hpp"
#include "energy/energy_meter.hpp"
#include "metrics/registry.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {

/// Maximum value of Android's groupOwnerIntent.
inline constexpr int kMaxGroupOwnerIntent = 15;

class WifiDirectRadio {
 public:
  using DiscoveryCallback =
      std::function<void(const std::vector<DiscoveredPeer>&)>;
  using ConnectCallback = std::function<void(Result<GroupId>)>;
  using SendCallback = std::function<void(Status)>;
  using ReceiveHandler =
      std::function<void(const net::D2dPayload&, NodeId from)>;
  using DisconnectHandler = std::function<void(NodeId peer)>;

  WifiDirectRadio(sim::Simulator& sim, NodeId owner, WifiDirectMedium& medium,
                  const mobility::MobilityModel& mobility,
                  energy::EnergyMeter& meter, D2dEnergyProfile profile,
                  Rng rng);
  ~WifiDirectRadio();
  WifiDirectRadio(const WifiDirectRadio&) = delete;
  WifiDirectRadio& operator=(const WifiDirectRadio&) = delete;

  NodeId owner() const { return owner_; }

  /// Relay-side advertisement. Discoverable radios appear in peers' scans.
  void set_advert(RelayAdvert advert) { advert_ = advert; }
  const RelayAdvert& advert() const { return advert_; }

  /// groupOwnerIntent for GO negotiation; relays start at 15, UEs at 0
  /// (Section IV-C).
  void set_group_owner_intent(int intent);
  int group_owner_intent() const { return intent_; }

  /// Active scan: charges discovery energy on this radio and returns the
  /// discoverable in-range peers after the scan window.
  void start_discovery(DiscoveryCallback callback);

  /// Whether this radio charges passive-discovery energy when scanned.
  /// (Relays listen for scans; pure clients do not.)
  void set_listening(bool listening) { listening_ = listening; }
  bool listening() const { return listening_; }

  /// GO negotiation + provisioning with `peer`. Charges connection
  /// energy on both ends; fails if out of range. The side with higher
  /// groupOwnerIntent becomes group owner.
  void connect(NodeId peer, ConnectCallback callback);

  /// Tears down the link with `peer` (both ends notified).
  void disconnect(NodeId peer);

  /// Tears down every link (device shutdown / battery death).
  void disconnect_all();

  /// Sends one D2D frame (heartbeat or feedback ack) to a connected
  /// peer. Charges send energy here (distance-dependent for heartbeats)
  /// and receive energy there; delivers after the transfer latency.
  /// Fails with `disconnected` if the link is down or the peers drifted
  /// out of range.
  void send(NodeId peer, net::D2dPayload payload, SendCallback callback);

  void set_receive_handler(ReceiveHandler handler) {
    on_receive_ = std::move(handler);
  }
  void set_disconnect_handler(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
  }

  bool connected_to(NodeId peer) const { return find_link(peer) != nullptr; }
  std::size_t link_count() const { return links_.size(); }
  /// Group this radio belongs to (invalid if no links).
  GroupId group() const { return group_; }
  bool is_group_owner() const { return group_owner_; }

  const mobility::MobilityModel& mobility() const { return mobility_; }
  MicroAmpHours radio_charge() { return meter_.component_charge(component_); }

  /// Called by the medium/peer internals — not public API.
  struct Internal;

 private:
  friend class WifiDirectMedium;
  friend struct Internal;

  /// One active D2D link. Links live in a NodeId-sorted vector (a group
  /// owner caps out at max_group_clients ≈ 8 entries, so a dense sorted
  /// array beats hashing) — iteration order is the deterministic NodeId
  /// order, so teardown sweeps never depend on hash-bucket layout.
  struct Link {
    NodeId peer;
    GroupId group;
  };

  void charge_phase(const PhaseShape& shape, MicroAmpHours target);
  void update_idle_current();
  const Link* find_link(NodeId peer) const;
  void establish_link(NodeId peer, GroupId group, bool as_owner);
  void break_link(NodeId peer, bool notify_peer);
  void poll_links();
  void deliver(const net::D2dPayload& payload, NodeId from);

  sim::Simulator& sim_;
  NodeId owner_;
  WifiDirectMedium& medium_;
  const mobility::MobilityModel& mobility_;
  energy::EnergyMeter& meter_;
  energy::ComponentHandle component_;
  D2dEnergyProfile profile_;
  Rng rng_;

  RelayAdvert advert_{};
  int intent_{0};
  bool listening_{false};
  bool idle_current_on_{false};
  /// End of the current passive-discovery response window. Concurrent
  /// scans by several peers share one window — the radio is awake
  /// either way — so passive energy is charged at most once per window.
  TimePoint passive_window_end_{};

  std::vector<Link> links_;  ///< Sorted by peer NodeId ascending.
  GroupId group_{};
  bool group_owner_{false};

  sim::PeriodicTimer link_monitor_;
  ReceiveHandler on_receive_;
  DisconnectHandler on_disconnect_;

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* discovery_scans_ctr_;
  metrics::Counter* links_established_ctr_;
  metrics::Counter* links_broken_ctr_;
  metrics::Counter* sends_ctr_;
  metrics::Counter* transfer_bytes_ctr_;
};

}  // namespace d2dhb::d2d
