#include "d2d/technology.hpp"

namespace d2dhb::d2d {

D2dTechnology wifi_direct_tech() {
  D2dTechnology tech;
  tech.name = "Wi-Fi Direct";
  tech.medium = WifiDirectMedium::Params{};   // 30 m, mild RSSI noise
  tech.energy = D2dEnergyProfile{};           // Table III/IV calibration
  tech.widely_deployed = true;
  return tech;
}

D2dTechnology bluetooth_tech() {
  D2dTechnology tech;
  tech.name = "Bluetooth";
  tech.medium.range = Meters{9.0};
  tech.medium.rssi_noise_stddev_m = 0.5;
  tech.medium.discovery_miss_probability = 0.05;  // inquiry scans miss
  // Lower radio power across the board, but a steeper distance penalty
  // (class-2 link budget) and slower phases.
  tech.energy.ue_discovery = MicroAmpHours{58.0};
  tech.energy.relay_discovery = MicroAmpHours{52.0};
  tech.energy.ue_connection = MicroAmpHours{30.0};
  tech.energy.relay_connection = MicroAmpHours{28.0};
  tech.energy.ue_send_reference = MicroAmpHours{34.0};
  tech.energy.relay_receive = MicroAmpHours{60.0};
  tech.energy.idle_connected = MilliAmps{0.4};
  tech.energy.distance_factor = 0.35;  // hurts quickly beyond ~1 m
  tech.energy.discovery_scan = seconds(11);  // inquiry + page are slow
  tech.energy.connection_setup = seconds(4);
  tech.energy.transfer_latency = milliseconds(600);
  tech.widely_deployed = true;
  return tech;
}

D2dTechnology lte_direct_tech() {
  D2dTechnology tech;
  tech.name = "LTE Direct";
  tech.medium.range = Meters{500.0};
  tech.medium.rssi_noise_stddev_m = 2.0;
  // Network-assisted discovery: the expensive always-on scan is replaced
  // by synchronized discovery slots.
  tech.energy.ue_discovery = MicroAmpHours{18.0};
  tech.energy.relay_discovery = MicroAmpHours{12.0};
  tech.energy.ue_connection = MicroAmpHours{22.0};
  tech.energy.relay_connection = MicroAmpHours{20.0};
  // Licensed-band transmission costs more per message than Wi-Fi.
  tech.energy.ue_send_reference = MicroAmpHours{95.0};
  tech.energy.relay_receive = MicroAmpHours{110.0};
  tech.energy.idle_connected = MilliAmps{0.8};
  tech.energy.distance_factor = 0.0015;  // flat out to hundreds of meters
  tech.energy.discovery_scan = seconds(2);
  tech.energy.connection_setup = seconds(1);
  tech.energy.transfer_latency = milliseconds(150);
  tech.widely_deployed = false;
  return tech;
}

std::vector<D2dTechnology> all_technologies() {
  return {bluetooth_tech(), wifi_direct_tech(), lte_direct_tech()};
}

}  // namespace d2dhb::d2d
