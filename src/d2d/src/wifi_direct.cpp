#include "d2d/wifi_direct.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/tracelog.hpp"

namespace d2dhb::d2d {

WifiDirectRadio::WifiDirectRadio(sim::Simulator& sim, NodeId owner,
                                 WifiDirectMedium& medium,
                                 const mobility::MobilityModel& mobility,
                                 energy::EnergyMeter& meter,
                                 D2dEnergyProfile profile, Rng rng)
    : sim_(sim),
      owner_(owner),
      medium_(medium),
      mobility_(mobility),
      meter_(meter),
      component_(meter.register_component("wifi_direct")),
      profile_(profile),
      rng_(rng),
      link_monitor_(sim, seconds(1), [this] { poll_links(); }) {
  medium_.attach(*this, mobility_);
  auto& reg = sim_.metrics();
  const metrics::Labels labels{owner_.value, -1, "wifi_direct"};
  discovery_scans_ctr_ = &reg.counter("d2d.discovery_scans", labels);
  links_established_ctr_ = &reg.counter("d2d.links_established", labels);
  links_broken_ctr_ = &reg.counter("d2d.links_broken", labels);
  sends_ctr_ = &reg.counter("d2d.sends", labels);
  transfer_bytes_ctr_ = &reg.counter("d2d.transfer_bytes", labels);
  reg.gauge_fn("energy.wifi_direct_uah", labels,
               [this] { return radio_charge().value; });
}

WifiDirectRadio::~WifiDirectRadio() {
  // Tear down links without touching possibly-dead peers' callbacks.
  links_.clear();
  medium_.detach(owner_);
}

void WifiDirectRadio::set_group_owner_intent(int intent) {
  intent_ = std::clamp(intent, 0, kMaxGroupOwnerIntent);
}

void WifiDirectRadio::charge_phase(const PhaseShape& shape,
                                   MicroAmpHours target) {
  apply_phase(sim_, meter_, component_, shape, target);
}

void WifiDirectRadio::update_idle_current() {
  const bool should_be_on = !links_.empty();
  if (should_be_on == idle_current_on_) return;
  idle_current_on_ = should_be_on;
  const MilliAmps base = meter_.component_current(component_);
  meter_.set_current(component_, should_be_on
                                     ? base + profile_.idle_connected
                                     : base - profile_.idle_connected);
}

void WifiDirectRadio::start_discovery(DiscoveryCallback callback) {
  discovery_scans_ctr_->inc();
  charge_phase(D2dEnergyProfile::discovery_shape(), profile_.ue_discovery);
  // Listening peers spend passive-discovery energy responding to probes
  // — once per response window, no matter how many peers scan at once.
  for (const auto& peer : medium_.scan_from(owner_)) {
    if (WifiDirectRadio* r = medium_.radio(peer.node)) {
      if (sim_.now() >= r->passive_window_end_) {
        r->passive_window_end_ = sim_.now() + r->profile_.discovery_scan;
        r->charge_phase(D2dEnergyProfile::discovery_shape(),
                        r->profile_.relay_discovery);
      }
    }
  }
  sim_.schedule_after(profile_.discovery_scan,
                      [this, callback = std::move(callback)] {
                        // Re-scan at completion: peers may have moved
                        // during the window.
                        callback(medium_.scan_from(owner_));
                      });
}

void WifiDirectRadio::connect(NodeId peer, ConnectCallback callback) {
  if (peer == owner_) {
    callback(Result<GroupId>{Errc::rejected, "cannot connect to self"});
    return;
  }
  WifiDirectRadio* other = medium_.radio(peer);
  if (other == nullptr) {
    callback(Result<GroupId>{Errc::not_found, "peer not on medium"});
    return;
  }
  if (const Link* link = find_link(peer)) {
    callback(Result<GroupId>{link->group});
    return;
  }
  if (!medium_.in_range(owner_, peer)) {
    callback(Result<GroupId>{Errc::out_of_range, "peer beyond D2D range"});
    return;
  }
  // Both ends burn connection energy during negotiation + provisioning.
  charge_phase(D2dEnergyProfile::connection_shape(), profile_.ue_connection);
  other->charge_phase(D2dEnergyProfile::connection_shape(),
                      other->profile_.relay_connection);

  sim_.schedule_after(
      profile_.connection_setup,
      [this, peer, callback = std::move(callback)] {
        WifiDirectRadio* other = medium_.radio(peer);
        if (other == nullptr || !medium_.in_range(owner_, peer)) {
          callback(Result<GroupId>{Errc::out_of_range,
                                   "peer moved away during setup"});
          return;
        }
        // GO negotiation: higher groupOwnerIntent wins; tie broken by
        // node id (Android breaks ties with a random bit).
        const bool peer_is_owner =
            other->intent_ > intent_ ||
            (other->intent_ == intent_ && peer.value < owner_.value);
        // Group owners have a client cap.
        WifiDirectRadio* owner_side = peer_is_owner ? other : this;
        if (owner_side->link_count() >=
            medium_.params().max_group_clients) {
          callback(Result<GroupId>{Errc::capacity_exceeded,
                                   "group owner is full"});
          return;
        }
        GroupId group;
        if (peer_is_owner && other->group_.valid() && other->group_owner_) {
          group = other->group_;  // join the owner's existing group
        } else if (!peer_is_owner && group_.valid() && group_owner_) {
          group = group_;
        } else {
          // Both ends share a strip (in_range enforces confinement), so
          // either id names the same lane.
          group = medium_.allocate_group(owner_);
        }
        establish_link(peer, group, !peer_is_owner);
        other->establish_link(owner_, group, peer_is_owner);
        D2DHB_LOG(debug) << "d2d link " << owner_.value << " <-> "
                         << peer.value << " group " << group.value;
        callback(Result<GroupId>{group});
      });
}

const WifiDirectRadio::Link* WifiDirectRadio::find_link(NodeId peer) const {
  const auto it = std::lower_bound(
      links_.begin(), links_.end(), peer,
      [](const Link& l, NodeId p) { return l.peer < p; });
  return (it != links_.end() && it->peer == peer) ? &*it : nullptr;
}

void WifiDirectRadio::establish_link(NodeId peer, GroupId group,
                                     bool as_owner) {
  trace(sim_.now(), TraceCategory::d2d, owner_,
        "link up with #" + std::to_string(peer.value) + " (group " +
            std::to_string(group.value) +
            (as_owner ? ", owner)" : ", client)"));
  const auto it = std::lower_bound(
      links_.begin(), links_.end(), peer,
      [](const Link& l, NodeId p) { return l.peer < p; });
  if (it != links_.end() && it->peer == peer) {
    it->group = group;
  } else {
    links_.insert(it, Link{peer, group});
  }
  links_established_ctr_->inc();
  group_ = group;
  group_owner_ = as_owner;
  update_idle_current();
  if (!link_monitor_.running()) link_monitor_.start();
}

void WifiDirectRadio::break_link(NodeId peer, bool notify_peer) {
  const auto it = std::lower_bound(
      links_.begin(), links_.end(), peer,
      [](const Link& l, NodeId p) { return l.peer < p; });
  if (it == links_.end() || it->peer != peer) return;
  trace(sim_.now(), TraceCategory::d2d, owner_,
        "link down with #" + std::to_string(peer.value));
  links_.erase(it);
  links_broken_ctr_->inc();
  if (links_.empty()) {
    group_ = GroupId{};
    group_owner_ = false;
    link_monitor_.stop();
  }
  update_idle_current();
  if (notify_peer) {
    if (WifiDirectRadio* other = medium_.radio(peer)) {
      other->break_link(owner_, false);
      if (other->on_disconnect_) other->on_disconnect_(owner_);
    }
  }
  if (on_disconnect_) on_disconnect_(peer);
}

void WifiDirectRadio::disconnect(NodeId peer) { break_link(peer, true); }

void WifiDirectRadio::disconnect_all() {
  // links_ is NodeId-sorted, so teardown notifications fire in
  // deterministic peer order (snapshot first: break_link mutates links_).
  std::vector<NodeId> peers;
  peers.reserve(links_.size());
  for (const Link& link : links_) peers.push_back(link.peer);
  for (const NodeId peer : peers) break_link(peer, true);
}

void WifiDirectRadio::poll_links() {
  // One O(links) sweep; links_ is already NodeId-sorted, so breaks
  // happen in deterministic peer order.
  std::vector<NodeId> peers;
  peers.reserve(links_.size());
  for (const Link& link : links_) peers.push_back(link.peer);
  for (const NodeId peer : medium_.lost_peers(owner_, peers)) {
    break_link(peer, true);
  }
}

void WifiDirectRadio::send(NodeId peer, net::D2dPayload payload,
                           SendCallback callback) {
  if (!connected_to(peer)) {
    callback(Status{Errc::disconnected, "no link to peer"});
    return;
  }
  WifiDirectRadio* other = medium_.radio(peer);
  if (other == nullptr || !medium_.in_range(owner_, peer)) {
    break_link(peer, true);
    callback(Status{Errc::disconnected, "peer out of range"});
    return;
  }
  sends_ctr_->inc();
  if (const auto* hb = std::get_if<net::HeartbeatMessage>(&payload)) {
    transfer_bytes_ctr_->inc(hb->size.value);
    const Meters d = medium_.distance(owner_, peer);
    charge_phase(D2dEnergyProfile::send_shape(),
                 profile_.send_charge(hb->size, d));
    other->charge_phase(D2dEnergyProfile::receive_shape(),
                        other->profile_.receive_charge(hb->size));
  } else {
    // Control frame: flat small cost on both ends.
    meter_.add_load(component_,
                    MilliAmps{profile_.control_send.value * 3.6 / 0.2},
                    milliseconds(200));
    other->meter_.add_load(
        other->component_,
        MilliAmps{other->profile_.control_receive.value * 3.6 / 0.2},
        milliseconds(200));
  }
  // The completion event belongs to the receiving side: when the peer
  // is homed on another kernel, it crosses through that shard's mailbox
  // (keeping its global sequence number, so execution order is the same
  // as a direct schedule). Fire-and-forget — in-flight transfers are
  // never cancelled, only re-checked for liveness on arrival.
  sim_.post_after(
      medium_.nodes().shard_of(peer), profile_.transfer_latency,
      [this, peer, payload = std::move(payload),
       callback = std::move(callback)] {
        WifiDirectRadio* other = medium_.radio(peer);
        if (other == nullptr || !connected_to(peer) ||
            !medium_.in_range(owner_, peer)) {
          // Link died mid-transfer.
          break_link(peer, true);
          callback(Status{Errc::disconnected, "link lost during transfer"});
          return;
        }
        other->deliver(payload, owner_);
        callback(Status::success());
      });
}

void WifiDirectRadio::deliver(const net::D2dPayload& payload, NodeId from) {
  if (on_receive_) on_receive_(payload, from);
}

}  // namespace d2dhb::d2d
