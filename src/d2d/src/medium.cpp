#include "d2d/medium.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "d2d/wifi_direct.hpp"

namespace d2dhb::d2d {

namespace {
Meters grid_cell(const WifiDirectMedium::Params& params) {
  return params.grid_cell_m > 0.0 ? Meters{params.grid_cell_m}
                                  : params.range;
}
}  // namespace

WifiDirectMedium::WifiDirectMedium(sim::Simulator& sim,
                                   world::NodeTable& nodes, Params params,
                                   Rng rng)
    : sim_(sim), nodes_(nodes), params_(params) {
  const std::size_t strips = sim_.shard_count();
  grids_.reserve(strips);
  scratch_.resize(strips);
  for (std::size_t s = 0; s < strips; ++s) {
    grids_.push_back(
        std::make_unique<mobility::SpatialGrid>(grid_cell(params_)));
  }
  // One rng lane per strip; the last lane keeps the medium's original
  // rng untouched, so a one-strip world draws exactly the classic
  // stream. Group-id lanes follow strip index: lane s starts at 1 + s
  // and strides by the strip count.
  lanes_.reserve(strips);
  for (std::size_t s = 0; s + 1 < strips; ++s) {
    lanes_.push_back(Lane{rng.fork(), 1 + s});
  }
  lanes_.push_back(Lane{std::move(rng), strips});
  auditor_token_ = sim_.add_auditor([this] { audit(); });
}

WifiDirectMedium::~WifiDirectMedium() { sim_.remove_auditor(auditor_token_); }

GroupId WifiDirectMedium::allocate_group(NodeId owner) {
  Lane& lane = lanes_[strip_of(owner)];
  const std::uint64_t id = lane.next_group;
  lane.next_group += lanes_.size();
  return GroupId{id};
}

void WifiDirectMedium::audit() const {
  for (const auto& grid : grids_) {
    grid->audit(sim_.now(), sim_.time_epoch());
  }
  // Slot consistency: every radio-array entry points back at its slot
  // through the table, and every table slot lands inside the array.
  for (std::size_t slot = 0; slot < radios_.size(); ++slot) {
    const WifiDirectRadio* radio = radios_[slot];
    if (radio == nullptr) {
      throw sim::AuditError("WifiDirectMedium audit: radio slot " +
                            std::to_string(slot) + " is null");
    }
    if (!nodes_.contains(radio->owner()) ||
        nodes_.d2d_slot(radio->owner()) != slot) {
      throw sim::AuditError(
          "WifiDirectMedium audit: node #" +
          std::to_string(radio->owner().value) +
          "'s d2d_slot column does not point back at radio slot " +
          std::to_string(slot));
    }
  }
  for (const NodeId node : nodes_.ids()) {
    const std::uint32_t slot = nodes_.d2d_slot(node);
    if (slot != world::kNoD2dSlot && slot >= radios_.size()) {
      throw sim::AuditError("WifiDirectMedium audit: node #" +
                            std::to_string(node.value) +
                            " references out-of-range radio slot " +
                            std::to_string(slot));
    }
  }
  // Link symmetry over the attached radios.
  for (const WifiDirectRadio* radio : radios_) {
    const std::uint64_t id = radio->owner().value;
    for (const auto& link : radio->links_) {
      const WifiDirectRadio* peer = this->radio(link.peer);
      if (peer == nullptr) {
        throw sim::AuditError("WifiDirectMedium audit: node #" +
                              std::to_string(id) + " links to detached #" +
                              std::to_string(link.peer.value));
      }
      const auto back = std::find_if(
          peer->links_.begin(), peer->links_.end(),
          [id](const auto& l) { return l.peer.value == id; });
      if (back == peer->links_.end() || back->group != link.group) {
        throw sim::AuditError(
            "WifiDirectMedium audit: link #" + std::to_string(id) +
            " -> #" + std::to_string(link.peer.value) +
            " is not mirrored with the same group id");
      }
    }
  }
}

void WifiDirectMedium::attach(WifiDirectRadio& radio,
                              const mobility::MobilityModel& mobility) {
  const NodeId node = radio.owner();
  if (!node.valid()) {
    throw std::invalid_argument("WifiDirectMedium: invalid node id");
  }
  // Adds the row for scenario-less tests; for scenario phones the row
  // already exists (same mobility model) and add() just re-points it.
  nodes_.add(node, &mobility);
  const std::uint32_t slot = nodes_.d2d_slot(node);
  if (slot != world::kNoD2dSlot) {
    radios_[slot] = &radio;  // re-attach replaces the radio in place
  } else {
    nodes_.set_d2d_slot(node, static_cast<std::uint32_t>(radios_.size()));
    radios_.push_back(&radio);
  }
  mobility::SpatialGrid& grid = *grids_[strip_of(node)];
  if (grid.contains(node)) grid.remove(node);
  grid.insert(node, mobility);
}

void WifiDirectMedium::detach(NodeId node) {
  if (!nodes_.contains(node)) return;
  const std::uint32_t slot = nodes_.d2d_slot(node);
  if (slot == world::kNoD2dSlot) return;
  const std::size_t last = radios_.size() - 1;
  if (slot != last) {
    radios_[slot] = radios_[last];
    nodes_.set_d2d_slot(radios_[slot]->owner(),
                        static_cast<std::uint32_t>(slot));
  }
  radios_.pop_back();
  nodes_.set_d2d_slot(node, world::kNoD2dSlot);
  grids_[strip_of(node)]->remove(node);
}

void WifiDirectMedium::require_attached(NodeId node) const {
  if (radio(node) == nullptr) {
    throw std::out_of_range("WifiDirectMedium: unknown node #" +
                            std::to_string(node.value));
  }
}

mobility::Vec2 WifiDirectMedium::checked_position(NodeId node) const {
  require_attached(node);
  return nodes_.position_of(node, sim_.now());
}

mobility::Vec2 WifiDirectMedium::position_of(NodeId node) const {
  return checked_position(node);
}

Meters WifiDirectMedium::distance(NodeId a, NodeId b) const {
  return mobility::distance(checked_position(a), checked_position(b));
}

bool WifiDirectMedium::in_range(NodeId a, NodeId b) const {
  // Attachment checks read no positions, so they are safe for any pair;
  // the strip test must come before the distance read — a cross-strip
  // peer's mobility belongs to another kernel's thread.
  require_attached(a);
  require_attached(b);
  if (strip_of(a) != strip_of(b)) return false;
  return distance(a, b).value <= params_.range.value;
}

std::vector<DiscoveredPeer> WifiDirectMedium::scan_from(NodeId scanner) {
  std::vector<DiscoveredPeer> found;
  if (radio(scanner) == nullptr) return found;
  const std::uint32_t strip = strip_of(scanner);
  Lane& lane = lanes_[strip];
  const mobility::Vec2 origin = nodes_.position_of(scanner, sim_.now());

  // Both paths visit peers in ascending NodeId order with identical
  // distance arithmetic and RNG draws, so a seeded run's behaviour is
  // bit-identical whichever one answers the scan (asserted by the
  // grid-equivalence integration test). Both are confined to the
  // scanner's strip: the grid path by construction (a strip's grid only
  // holds its own nodes), the legacy path by an explicit home-strip
  // filter applied before any position is read.
  auto admit = [&](NodeId node, Meters d) {
    const WifiDirectRadio* peer_radio = radios_[nodes_.d2d_slot(node)];
    if (!peer_radio->listening()) return;
    if (lane.rng.chance(params_.discovery_miss_probability)) return;
    const double noise = lane.rng.normal(0.0, params_.rssi_noise_stddev_m);
    DiscoveredPeer peer;
    peer.node = node;
    peer.estimated_distance = Meters{std::max(0.0, d.value + noise)};
    peer.advert = peer_radio->advert();
    found.push_back(peer);
  };

  if (params_.legacy_scan) {
    for (std::uint64_t id = 1; id < nodes_.id_limit(); ++id) {
      const NodeId node{id};
      if (id == scanner.value || !nodes_.contains(node) ||
          nodes_.d2d_slot(node) == world::kNoD2dSlot ||
          strip_of(node) != strip) {
        continue;
      }
      const Meters d = mobility::distance(
          origin, nodes_.position_of(node, sim_.now()));
      if (d.value > params_.range.value) continue;
      admit(node, d);
    }
    return found;
  }

  std::vector<mobility::SpatialGrid::Neighbor>& scratch = scratch_[strip];
  grids_[strip]->query_radius(origin, params_.range, sim_.now(),
                              sim_.time_epoch(), scratch, scanner);
  for (const auto& neighbor : scratch) {
    admit(neighbor.node, neighbor.distance);
  }
  return found;
}

std::vector<NodeId> WifiDirectMedium::lost_peers(
    NodeId node, const std::vector<NodeId>& peers) const {
  std::vector<NodeId> lost;
  if (peers.empty()) return lost;
  if (radio(node) == nullptr) return peers;  // we vanished: all links gone
  // Per-peer exact checks, same in both medium modes: a node's links
  // are bounded by max_group_clients (8), so O(links) distance checks
  // beat a radius query (O(neighbourhood), which in a dense cluster is
  // far larger) — and this sweep runs every poll tick for every radio.
  const std::uint32_t strip = strip_of(node);
  const mobility::Vec2 origin = nodes_.position_of(node, sim_.now());
  for (const NodeId peer : peers) {
    // Strip check before the position read: a cross-strip peer counts
    // as lost without touching its (other thread's) mobility model.
    if (radio(peer) == nullptr || strip_of(peer) != strip ||
        mobility::distance(origin, nodes_.position_of(peer, sim_.now()))
                .value > params_.range.value) {
      lost.push_back(peer);
    }
  }
  return lost;
}

WifiDirectRadio* WifiDirectMedium::radio(NodeId node) const {
  if (!nodes_.contains(node)) return nullptr;
  const std::uint32_t slot = nodes_.d2d_slot(node);
  return slot == world::kNoD2dSlot ? nullptr : radios_[slot];
}

}  // namespace d2dhb::d2d
