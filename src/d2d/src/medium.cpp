#include "d2d/medium.hpp"

#include <stdexcept>

#include "d2d/wifi_direct.hpp"

namespace d2dhb::d2d {

void WifiDirectMedium::attach(WifiDirectRadio& radio,
                              const mobility::MobilityModel& mobility) {
  entries_[radio.owner()] = Entry{&radio, &mobility};
}

void WifiDirectMedium::detach(NodeId node) { entries_.erase(node); }

mobility::Vec2 WifiDirectMedium::position_of(NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end()) {
    throw std::out_of_range("WifiDirectMedium: unknown node");
  }
  return it->second.mobility->position_at(sim_.now());
}

Meters WifiDirectMedium::distance(NodeId a, NodeId b) const {
  return mobility::distance(position_of(a), position_of(b));
}

bool WifiDirectMedium::in_range(NodeId a, NodeId b) const {
  return distance(a, b).value <= params_.range.value;
}

std::vector<DiscoveredPeer> WifiDirectMedium::scan_from(NodeId scanner) {
  std::vector<DiscoveredPeer> found;
  const auto scanner_it = entries_.find(scanner);
  if (scanner_it == entries_.end()) return found;
  const mobility::Vec2 origin =
      scanner_it->second.mobility->position_at(sim_.now());
  for (const auto& [node, entry] : entries_) {
    if (node == scanner) continue;
    if (!entry.radio->listening()) continue;
    const Meters d = mobility::distance(
        origin, entry.mobility->position_at(sim_.now()));
    if (d.value > params_.range.value) continue;
    if (rng_.chance(params_.discovery_miss_probability)) continue;
    const double noise = rng_.normal(0.0, params_.rssi_noise_stddev_m);
    DiscoveredPeer peer;
    peer.node = node;
    peer.estimated_distance = Meters{std::max(0.0, d.value + noise)};
    peer.advert = entry.radio->advert();
    found.push_back(peer);
  }
  return found;
}

WifiDirectRadio* WifiDirectMedium::radio(NodeId node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? nullptr : it->second.radio;
}

}  // namespace d2dhb::d2d
