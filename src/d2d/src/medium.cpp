#include "d2d/medium.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "d2d/wifi_direct.hpp"

namespace d2dhb::d2d {

namespace {
Meters grid_cell(const WifiDirectMedium::Params& params) {
  return params.grid_cell_m > 0.0 ? Meters{params.grid_cell_m}
                                  : params.range;
}
}  // namespace

WifiDirectMedium::WifiDirectMedium(sim::Simulator& sim, Params params,
                                   Rng rng)
    : sim_(sim), params_(params), rng_(rng), grid_(grid_cell(params_)) {
  auditor_token_ = sim_.add_auditor([this] { audit(); });
}

WifiDirectMedium::~WifiDirectMedium() { sim_.remove_auditor(auditor_token_); }

void WifiDirectMedium::audit() const {
  grid_.audit(sim_.now(), sim_.time_epoch());
  for (std::uint64_t id = 1; id < entries_.size(); ++id) {
    const WifiDirectRadio* radio = entries_[id].radio;
    if (radio == nullptr) continue;
    for (const auto& link : radio->links_) {
      const WifiDirectRadio* peer = this->radio(link.peer);
      if (peer == nullptr) {
        throw sim::AuditError("WifiDirectMedium audit: node #" +
                              std::to_string(id) + " links to detached #" +
                              std::to_string(link.peer.value));
      }
      const auto back = std::find_if(
          peer->links_.begin(), peer->links_.end(),
          [id](const auto& l) { return l.peer.value == id; });
      if (back == peer->links_.end() || back->group != link.group) {
        throw sim::AuditError(
            "WifiDirectMedium audit: link #" + std::to_string(id) +
            " -> #" + std::to_string(link.peer.value) +
            " is not mirrored with the same group id");
      }
    }
  }
}

void WifiDirectMedium::attach(WifiDirectRadio& radio,
                              const mobility::MobilityModel& mobility) {
  const NodeId node = radio.owner();
  if (!node.valid()) {
    throw std::invalid_argument("WifiDirectMedium: invalid node id");
  }
  if (node.value >= entries_.size()) entries_.resize(node.value + 1);
  Entry& entry = entries_[node.value];
  if (entry.radio == nullptr) ++attached_;
  entry = Entry{&radio, &mobility};
  if (grid_.contains(node)) grid_.remove(node);
  grid_.insert(node, mobility);
}

void WifiDirectMedium::detach(NodeId node) {
  if (node.value >= entries_.size()) return;
  Entry& entry = entries_[node.value];
  if (entry.radio == nullptr) return;
  entry = Entry{};
  --attached_;
  grid_.remove(node);
}

const WifiDirectMedium::Entry* WifiDirectMedium::entry_of(
    NodeId node) const {
  if (node.value >= entries_.size()) return nullptr;
  const Entry& entry = entries_[node.value];
  return entry.radio == nullptr ? nullptr : &entry;
}

mobility::Vec2 WifiDirectMedium::checked_position(NodeId node) const {
  const Entry* entry = entry_of(node);
  if (entry == nullptr) {
    throw std::out_of_range("WifiDirectMedium: unknown node #" +
                            std::to_string(node.value));
  }
  return entry->mobility->position_at(sim_.now());
}

mobility::Vec2 WifiDirectMedium::position_of(NodeId node) const {
  return checked_position(node);
}

Meters WifiDirectMedium::distance(NodeId a, NodeId b) const {
  return mobility::distance(checked_position(a), checked_position(b));
}

bool WifiDirectMedium::in_range(NodeId a, NodeId b) const {
  return distance(a, b).value <= params_.range.value;
}

std::vector<DiscoveredPeer> WifiDirectMedium::scan_from(NodeId scanner) {
  std::vector<DiscoveredPeer> found;
  const Entry* scanner_entry = entry_of(scanner);
  if (scanner_entry == nullptr) return found;
  const mobility::Vec2 origin =
      scanner_entry->mobility->position_at(sim_.now());

  // Both paths visit peers in ascending NodeId order with identical
  // distance arithmetic and RNG draws, so a seeded run's behaviour is
  // bit-identical whichever one answers the scan (asserted by the
  // grid-equivalence integration test).
  auto admit = [&](NodeId node, Meters d) {
    const Entry& entry = entries_[node.value];
    if (!entry.radio->listening()) return;
    if (rng_.chance(params_.discovery_miss_probability)) return;
    const double noise = rng_.normal(0.0, params_.rssi_noise_stddev_m);
    DiscoveredPeer peer;
    peer.node = node;
    peer.estimated_distance = Meters{std::max(0.0, d.value + noise)};
    peer.advert = entry.radio->advert();
    found.push_back(peer);
  };

  if (params_.legacy_scan) {
    for (std::uint64_t id = 1; id < entries_.size(); ++id) {
      if (entries_[id].radio == nullptr || id == scanner.value) continue;
      const Meters d = mobility::distance(
          origin, entries_[id].mobility->position_at(sim_.now()));
      if (d.value > params_.range.value) continue;
      admit(NodeId{id}, d);
    }
    return found;
  }

  grid_.query_radius(origin, params_.range, sim_.now(), sim_.time_epoch(),
                     scratch_, scanner);
  for (const auto& neighbor : scratch_) {
    admit(neighbor.node, neighbor.distance);
  }
  return found;
}

std::vector<NodeId> WifiDirectMedium::lost_peers(
    NodeId node, const std::vector<NodeId>& peers) const {
  std::vector<NodeId> lost;
  if (peers.empty()) return lost;
  const Entry* entry = entry_of(node);
  if (entry == nullptr) return peers;  // we vanished: every link is gone
  // Per-peer exact checks, same in both medium modes: a node's links
  // are bounded by max_group_clients (8), so O(links) distance checks
  // beat a radius query (O(neighbourhood), which in a dense cluster is
  // far larger) — and this sweep runs every poll tick for every radio.
  const mobility::Vec2 origin = entry->mobility->position_at(sim_.now());
  for (const NodeId peer : peers) {
    const Entry* peer_entry = entry_of(peer);
    if (peer_entry == nullptr ||
        mobility::distance(origin,
                           peer_entry->mobility->position_at(sim_.now()))
                .value > params_.range.value) {
      lost.push_back(peer);
    }
  }
  return lost;
}

WifiDirectRadio* WifiDirectMedium::radio(NodeId node) const {
  const Entry* entry = entry_of(node);
  return entry == nullptr ? nullptr : entry->radio;
}

}  // namespace d2dhb::d2d
