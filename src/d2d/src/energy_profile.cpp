#include "d2d/energy_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/message.hpp"

namespace d2dhb::d2d {

Duration PhaseShape::total_duration() const {
  Duration total{};
  for (const auto& s : segments) total += s.duration;
  return total;
}

double PhaseShape::weighted_seconds() const {
  double sum = 0.0;
  for (const auto& s : segments) sum += s.weight * to_seconds(s.duration);
  return sum;
}

Duration apply_phase(sim::Simulator& sim, energy::EnergyMeter& meter,
                     energy::ComponentHandle component,
                     const PhaseShape& shape, MicroAmpHours target) {
  const double denom = shape.weighted_seconds();
  if (denom <= 0.0) {
    throw std::invalid_argument("apply_phase: shape has no weighted area");
  }
  // Scale factor k so that sum(k·w_i · d_i)/3.6 = target µAh.
  const double k = target.value * 3.6 / denom;
  Duration offset{};
  for (const auto& seg : shape.segments) {
    const MilliAmps current{k * seg.weight};
    if (current.value > 0.0) {
      if (offset == Duration::zero()) {
        meter.add_load(component, current, seg.duration);
      } else {
        sim.schedule_after(offset, [&meter, component, current,
                                    d = seg.duration] {
          meter.add_load(component, current, d);
        });
      }
    }
    offset += seg.duration;
  }
  return shape.total_duration();
}

MicroAmpHours D2dEnergyProfile::send_charge(Bytes size, Meters d) const {
  double charge = ue_send_reference.value;
  if (size.value > net::kStandardHeartbeatSize.value) {
    charge += per_byte_uah *
              static_cast<double>(size.value - net::kStandardHeartbeatSize.value);
  }
  const double excess = std::max(0.0, d.value - reference_distance.value);
  charge *= 1.0 + distance_factor * excess * excess;
  return MicroAmpHours{charge};
}

MicroAmpHours D2dEnergyProfile::receive_charge(Bytes size) const {
  double charge = relay_receive.value;
  if (size.value > net::kStandardHeartbeatSize.value) {
    charge += per_byte_uah *
              static_cast<double>(size.value - net::kStandardHeartbeatSize.value);
  }
  return MicroAmpHours{charge};
}

PhaseShape D2dEnergyProfile::discovery_shape() {
  // Repeated scan bursts over the 8 s window.
  return PhaseShape{{
      {seconds(1.0), 2.0},
      {seconds(1.0), 0.5},
      {seconds(1.0), 2.0},
      {seconds(1.0), 0.5},
      {seconds(1.0), 2.0},
      {seconds(1.0), 0.5},
      {seconds(1.0), 2.0},
      {seconds(1.0), 0.5},
  }};
}

PhaseShape D2dEnergyProfile::connection_shape() {
  // GO negotiation exchange, then WPS provisioning plateau.
  return PhaseShape{{
      {seconds(0.5), 3.0},
      {seconds(1.5), 1.5},
      {seconds(0.5), 2.0},
  }};
}

PhaseShape D2dEnergyProfile::send_shape() {
  // Fig. 6: current spurts at the moment of transmission, then descends
  // rapidly.
  return PhaseShape{{
      {milliseconds(100), 2.0},  // wake/contend
      {milliseconds(250), 8.0},  // burst
      {milliseconds(500), 1.5},  // decay
  }};
}

PhaseShape D2dEnergyProfile::receive_shape() {
  return PhaseShape{{
      {milliseconds(500), 1.2},   // wake + listen
      {milliseconds(300), 4.5},   // receive burst
      {milliseconds(1500), 1.8},  // linger/ack
  }};
}

}  // namespace d2dhb::d2d
