// ExperimentRunner: many independent seeded runs of one experiment,
// executed in parallel with results in seed order. The thin end of the
// runner API — SweepRunner builds the full (point × seed) matrix on top.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "runner/parallel.hpp"

namespace d2dhb::runner {

class ExperimentRunner {
 public:
  /// threads == 0 defers to default_thread_count() (D2DHB_THREADS env
  /// override, then hardware concurrency).
  explicit ExperimentRunner(std::size_t threads = 0) : threads_(threads) {}

  std::size_t threads() const { return threads_; }

  /// Runs fn(seed) for every seed, in parallel; results in seed order.
  template <typename Fn>
  auto run(const std::vector<std::uint64_t>& seeds, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::uint64_t>> {
    return parallel_index_map(
        seeds.size(), [&](std::size_t i) { return fn(seeds[i]); }, threads_);
  }

  /// Runs count independent jobs fn(index); results in index order.
  /// For heterogeneous cells (e.g. one job per strategy or per arm).
  template <typename Fn>
  auto run_jobs(std::size_t count, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    return parallel_index_map(count, std::forward<Fn>(fn), threads_);
  }

 private:
  std::size_t threads_;
};

}  // namespace d2dhb::runner
