// Parallel execution primitive for embarrassingly parallel experiment
// matrices. Each job is an independent, self-contained deterministic
// simulation (one sim::Simulator per job), so the only shared state is
// the work counter and the result slots — results come back in index
// order regardless of which worker ran what, keeping aggregated output
// byte-identical across thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace d2dhb::runner {

/// Worker count used when a caller passes 0: the D2DHB_THREADS
/// environment variable when set (>= 1), otherwise hardware concurrency.
std::size_t default_thread_count();

/// {first, first+1, ..., first+count-1}.
std::vector<std::uint64_t> seed_range(std::uint64_t first, std::size_t count);

/// Parses "101:5" (start:count) or "1,2,9" (explicit list) into seeds.
/// Throws std::invalid_argument on malformed input.
std::vector<std::uint64_t> parse_seed_list(const std::string& spec);

/// The D2DHB_SEEDS environment variable (same syntax as
/// parse_seed_list) when set, otherwise `fallback`.
std::vector<std::uint64_t> seeds_from_env(std::vector<std::uint64_t> fallback);

/// Runs job(0) ... job(count-1) on up to `threads` worker threads
/// (0 = default_thread_count()) and returns the results in index order.
/// If any job throws, the exception with the lowest index is rethrown
/// after all workers have stopped; no further jobs are started once a
/// failure is seen.
template <typename Fn>
auto parallel_index_map(std::size_t count, Fn&& job, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<R>,
                "parallel_index_map jobs must return a value");
  if (threads == 0) threads = default_thread_count();
  if (count < threads) threads = count == 0 ? 1 : count;

  std::vector<std::optional<R>> slots(count);
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        slots[i].emplace(job(i));
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  std::vector<R> out;
  out.reserve(count);
  for (std::optional<R>& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace d2dhb::runner
