// Per-metric aggregation across seeds: the summary statistics every
// sweep table reports for each (point, metric) pair.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace d2dhb {
class Table;
}

namespace d2dhb::runner {

/// Summary of one metric's samples across seeds. ci95_half is the
/// half-width of the normal-approximation 95 % confidence interval of
/// the mean (1.96 · stddev / sqrt(n)); zero when n < 2.
struct Aggregate {
  std::size_t n{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
  double p50{0.0};
  double p95{0.0};
  double ci95_half{0.0};
};

Aggregate summarize(const std::vector<double>& samples);

/// Builds the standard long-format sweep table: one row per
/// (point, metric), columns Point | Metric | N | Mean | Stddev | Min |
/// Max | P50 | P95 | CI95±. `samples[point][metric]` holds the per-seed
/// values; the two label vectors give row/metric names in order.
Table sweep_table(
    const std::vector<std::string>& point_labels,
    const std::vector<std::string>& metric_names,
    const std::vector<std::vector<std::vector<double>>>& samples,
    int decimals = 3);

}  // namespace d2dhb::runner
