// SweepRunner: the run-matrix owner. A sweep is a list of named
// parameter points × a seed list; every (point, seed) cell runs one
// independent simulation on the worker pool, and declared metrics are
// aggregated across seeds into the standard sweep table.
//
// Determinism contract: each cell is a pure function of (config, seed),
// cells land in fixed (point-major, seed-minor) order, and aggregation
// walks them in that order — so the aggregated table is byte-identical
// for any thread count.
//
//   runner::SweepRunner<CrowdConfig, CrowdMetrics> sweep(
//       [](const CrowdConfig& c, std::uint64_t seed) {
//         CrowdConfig cfg = c;
//         cfg.seed = seed;
//         return run_d2d_crowd(cfg);
//       });
//   sweep.point("24 phones", small).point("96 phones", big)
//        .seeds(runner::seed_range(101, 5))
//        .metric("total L3", [](const CrowdMetrics& m) {
//          return static_cast<double>(m.total_l3);
//        });
//   auto result = sweep.run();
//   result.table().print(std::cout);
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "metrics/registry.hpp"
#include "runner/aggregate.hpp"
#include "runner/parallel.hpp"

namespace d2dhb::runner {

template <typename Config, typename Metrics>
class SweepRunner {
 public:
  using RunFn = std::function<Metrics(const Config&, std::uint64_t seed)>;
  using ExtractFn = std::function<double(const Metrics&)>;
  using SnapshotFn = std::function<metrics::Snapshot(const Metrics&)>;

  struct Result {
    std::vector<std::string> point_labels;
    std::vector<std::string> metric_names;
    /// cells[point][seed_index] — every raw per-run metrics struct.
    std::vector<std::vector<Metrics>> cells;
    /// samples[point][metric][seed_index] — extracted metric values.
    std::vector<std::vector<std::vector<double>>> samples;
    /// snapshots[point][seed_index] — per-cell registry snapshots, in the
    /// same fixed (point-major, seed-minor) order as `cells`. Empty
    /// unless the sweep declared a snapshot() extractor.
    std::vector<std::vector<metrics::Snapshot>> snapshots;

    Aggregate aggregate(std::size_t point, std::size_t metric) const {
      return summarize(samples.at(point).at(metric));
    }
    /// The standard long-format aggregation table (see sweep_table()).
    Table table(int decimals = 3) const {
      return sweep_table(point_labels, metric_names, samples, decimals);
    }
    /// One snapshot per point, merged across seeds (counters and
    /// histograms sum; walks cells in the fixed order, so the result is
    /// deterministic for any thread count).
    metrics::Snapshot merged_snapshot(std::size_t point) const {
      return metrics::merge(snapshots.at(point));
    }
    /// (label, merged snapshot) per point — the shape
    /// metrics::write_report() takes.
    std::vector<std::pair<std::string, metrics::Snapshot>>
    labeled_snapshots() const {
      std::vector<std::pair<std::string, metrics::Snapshot>> sections;
      sections.reserve(snapshots.size());
      for (std::size_t p = 0; p < snapshots.size(); ++p) {
        sections.emplace_back(point_labels.at(p), merged_snapshot(p));
      }
      return sections;
    }
  };

  explicit SweepRunner(RunFn run) : run_(std::move(run)) {}

  SweepRunner& point(std::string label, Config config) {
    labels_.push_back(std::move(label));
    configs_.push_back(std::move(config));
    return *this;
  }
  SweepRunner& seeds(std::vector<std::uint64_t> s) {
    seeds_ = std::move(s);
    return *this;
  }
  SweepRunner& threads(std::size_t t) {
    threads_ = t;
    return *this;
  }
  SweepRunner& metric(std::string name, ExtractFn extract) {
    metric_names_.push_back(std::move(name));
    extractors_.push_back(std::move(extract));
    return *this;
  }
  /// Declares how to pull the registry snapshot out of a cell's metrics
  /// struct (usually `[](const M& m) { return m.metrics; }`). Once set,
  /// Result::snapshots is populated alongside the table samples.
  SweepRunner& snapshot(SnapshotFn extract) {
    snapshot_ = std::move(extract);
    return *this;
  }

  std::size_t points() const { return configs_.size(); }
  const std::vector<std::uint64_t>& seed_list() const { return seeds_; }

  Result run() const {
    if (configs_.empty()) {
      throw std::logic_error("SweepRunner: no sweep points declared");
    }
    if (seeds_.empty()) {
      throw std::logic_error("SweepRunner: empty seed list");
    }
    const std::size_t n_seeds = seeds_.size();
    std::vector<Metrics> flat = parallel_index_map(
        configs_.size() * n_seeds,
        [&](std::size_t i) {
          return run_(configs_[i / n_seeds], seeds_[i % n_seeds]);
        },
        threads_);

    Result result;
    result.point_labels = labels_;
    result.metric_names = metric_names_;
    result.cells.resize(configs_.size());
    result.samples.resize(configs_.size());
    for (std::size_t p = 0; p < configs_.size(); ++p) {
      auto first = std::make_move_iterator(flat.begin() +
                                           static_cast<std::ptrdiff_t>(p * n_seeds));
      result.cells[p].assign(first, first + static_cast<std::ptrdiff_t>(n_seeds));
      result.samples[p].resize(metric_names_.size());
      for (std::size_t m = 0; m < metric_names_.size(); ++m) {
        result.samples[p][m].reserve(n_seeds);
        for (const Metrics& cell : result.cells[p]) {
          result.samples[p][m].push_back(extractors_[m](cell));
        }
      }
      if (snapshot_) {
        result.snapshots.resize(configs_.size());
        result.snapshots[p].reserve(n_seeds);
        for (const Metrics& cell : result.cells[p]) {
          result.snapshots[p].push_back(snapshot_(cell));
        }
      }
    }
    return result;
  }

 private:
  RunFn run_;
  std::vector<std::string> labels_;
  std::vector<Config> configs_;
  std::vector<std::uint64_t> seeds_{1};
  std::vector<std::string> metric_names_;
  std::vector<ExtractFn> extractors_;
  SnapshotFn snapshot_;
  std::size_t threads_{0};
};

}  // namespace d2dhb::runner
