#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "runner/aggregate.hpp"
#include "runner/parallel.hpp"

namespace d2dhb::runner {

std::size_t default_thread_count() {
  // Read before any worker thread starts, so getenv cannot race setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("D2DHB_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<std::uint64_t> seed_range(std::uint64_t first, std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(first + i);
  return seeds;
}

namespace {

std::uint64_t parse_u64(const std::string& token) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(token, &used);
    if (used != token.size()) throw std::invalid_argument("trailing junk");
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad seed token '" + token +
                                "' (expected \"start:count\" or \"a,b,c\")");
  }
}

}  // namespace

std::vector<std::uint64_t> parse_seed_list(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("empty seed spec");
  }
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    const std::uint64_t first = parse_u64(spec.substr(0, colon));
    const std::uint64_t count = parse_u64(spec.substr(colon + 1));
    if (count == 0) throw std::invalid_argument("seed count must be >= 1");
    return seed_range(first, static_cast<std::size_t>(count));
  }
  std::vector<std::uint64_t> seeds;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    seeds.push_back(parse_u64(spec.substr(start, comma - start)));
    start = comma + 1;
  }
  return seeds;
}

std::vector<std::uint64_t> seeds_from_env(
    std::vector<std::uint64_t> fallback) {
  // Read before any worker thread starts, so getenv cannot race setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("D2DHB_SEEDS")) {
    if (*env != '\0') return parse_seed_list(env);
  }
  return fallback;
}

Aggregate summarize(const std::vector<double>& samples) {
  Aggregate a;
  if (samples.empty()) return a;
  RunningStats stats;
  for (const double x : samples) stats.add(x);
  a.n = stats.count();
  a.mean = stats.mean();
  a.stddev = stats.stddev();
  a.min = stats.min();
  a.max = stats.max();
  a.p50 = percentile(samples, 50.0);
  a.p95 = percentile(samples, 95.0);
  if (a.n >= 2) {
    a.ci95_half = 1.96 * a.stddev / std::sqrt(static_cast<double>(a.n));
  }
  return a;
}

Table sweep_table(
    const std::vector<std::string>& point_labels,
    const std::vector<std::string>& metric_names,
    const std::vector<std::vector<std::vector<double>>>& samples,
    int decimals) {
  Table table{{"Point", "Metric", "N", "Mean", "Stddev", "Min", "Max", "P50",
               "P95", "CI95+/-"}};
  for (std::size_t p = 0; p < point_labels.size(); ++p) {
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      const Aggregate a = summarize(samples.at(p).at(m));
      table.add_row({point_labels[p], metric_names[m], std::to_string(a.n),
                     Table::num(a.mean, decimals), Table::num(a.stddev, decimals),
                     Table::num(a.min, decimals), Table::num(a.max, decimals),
                     Table::num(a.p50, decimals), Table::num(a.p95, decimals),
                     Table::num(a.ci95_half, decimals)});
    }
  }
  return table;
}

}  // namespace d2dhb::runner
