// Lightweight statistics helpers used by metric collectors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace d2dhb {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Least-squares fit y = slope·x + intercept. Used to check the paper's
/// "approximately linear relationship" claims (e.g. Table IV).
struct LinearFit {
  double slope{0.0};
  double intercept{0.0};
  double r_squared{0.0};
};
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Exact percentile over a copy of the samples (p in [0, 100]).
double percentile(std::vector<double> samples, double p);

/// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace d2dhb
