// Result presentation: aligned ASCII tables, CSV export, and a small
// ASCII line chart. Benches use these to print the same rows/series the
// paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace d2dhb {

/// Column-aligned table with a header row. Cells are strings; numeric
/// helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series of (x, y) points for AsciiChart.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders series as a fixed-size ASCII scatter/line chart, one glyph per
/// series. Good enough to eyeball the shape of each reproduced figure.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label);

  AsciiChart& add(Series series);
  void print(std::ostream& os, int width = 72, int height = 20) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace d2dhb
