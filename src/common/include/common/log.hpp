// Leveled logging to stderr. Off above `warn` by default so tests and
// benches stay quiet; scenarios can raise verbosity for debugging.
#pragma once

#include <sstream>
#include <string>

namespace d2dhb {

enum class LogLevel { trace, debug, info, warn, error, off };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Streams a single log record; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace d2dhb

#define D2DHB_LOG(level) ::d2dhb::LogLine(::d2dhb::LogLevel::level)
