// Minimal expected-style result type (std::expected is C++23; this build
// targets C++20). Errors carry a category and a human-readable message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace d2dhb {

enum class Errc {
  ok,
  not_found,
  out_of_range,
  capacity_exceeded,
  disconnected,
  expired,
  timeout,
  invalid_state,
  rejected,
};

/// Returns a stable lowercase name for an error code.
const char* to_string(Errc e);

struct Error {
  Errc code{Errc::ok};
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)
  Result(Errc code, std::string message = {})           // NOLINT(implicit)
      : data_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)
  Status(Errc code, std::string message = {})        // NOLINT(implicit)
      : error_(Error{code, std::move(message)}) {}

  bool ok() const { return error_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }

  static Status success() { return Status{}; }

 private:
  Error error_{};
};

}  // namespace d2dhb
