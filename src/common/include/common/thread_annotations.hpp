// Clang thread-safety annotations + the annotated mutex primitives.
//
// PR 6 made the million-phone runs multi-threaded, and their
// correctness rests on locking conventions: every field a worker
// thread may touch concurrently is either laned per strip, a relaxed
// atomic, or guarded by a named mutex. Conventions rot; annotations
// don't. This header turns the conventions into declarations the
// compiler checks: every guarded field says which lock protects it
// (D2DHB_GUARDED_BY), every method that assumes a lock says so
// (D2DHB_REQUIRES), and the dedicated CI leg compiles the whole tree
// with `-Wthread-safety -Wthread-safety-beta` promoted to errors.
//
// Under any non-Clang compiler every macro expands to nothing, so the
// annotations are free for the GCC release/sanitizer builds — only
// the Clang analysis leg interprets them.
//
// Use the wrappers, not std::mutex: Clang's analysis only understands
// lockables whose operations carry capability attributes, and
// libstdc++'s std::mutex has none. d2dhb::Mutex is a zero-overhead
// annotated shell around std::mutex; d2dhb::MutexLock is the
// lock_guard/unique_lock replacement (scoped acquire, optional manual
// unlock/relock so it works with std::condition_variable_any).
//
// Annotation cheat sheet:
//   D2DHB_CAPABILITY("mutex")      class is a lockable capability
//   D2DHB_SCOPED_CAPABILITY        RAII object acquiring in ctor
//   D2DHB_GUARDED_BY(mu)           field needs mu held to touch
//   D2DHB_PT_GUARDED_BY(mu)        pointee needs mu held to touch
//   D2DHB_REQUIRES(mu)             caller must already hold mu
//   D2DHB_ACQUIRE(mu) / D2DHB_RELEASE(mu)  function takes / drops mu
//   D2DHB_TRY_ACQUIRE(ok, mu)      conditional acquire (returns `ok`)
//   D2DHB_EXCLUDES(mu)             caller must NOT hold mu (deadlock
//                                  guard for self-locking methods)
//   D2DHB_RETURN_CAPABILITY(mu)    accessor returning the lock itself
//
// D2DHB_NO_THREAD_SAFETY_ANALYSIS exists for completeness but is
// banned in annotated substrates — the CI leg's contract is zero
// suppressions; restructure the code instead (see DESIGN.md §14).
#pragma once

#include <mutex>

#if defined(__clang__)
#define D2DHB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define D2DHB_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define D2DHB_CAPABILITY(x) D2DHB_THREAD_ANNOTATION(capability(x))
#define D2DHB_SCOPED_CAPABILITY D2DHB_THREAD_ANNOTATION(scoped_lockable)
#define D2DHB_GUARDED_BY(x) D2DHB_THREAD_ANNOTATION(guarded_by(x))
#define D2DHB_PT_GUARDED_BY(x) D2DHB_THREAD_ANNOTATION(pt_guarded_by(x))
#define D2DHB_ACQUIRE(...) \
  D2DHB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define D2DHB_RELEASE(...) \
  D2DHB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define D2DHB_TRY_ACQUIRE(...) \
  D2DHB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define D2DHB_REQUIRES(...) \
  D2DHB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define D2DHB_EXCLUDES(...) D2DHB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define D2DHB_RETURN_CAPABILITY(x) D2DHB_THREAD_ANNOTATION(lock_returned(x))
#define D2DHB_NO_THREAD_SAFETY_ANALYSIS \
  D2DHB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace d2dhb {

/// std::mutex with capability attributes, so Clang can check that
/// every D2DHB_GUARDED_BY field is only touched under it. Identical
/// layout and cost; never use std::mutex directly in annotated types.
class D2DHB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() D2DHB_ACQUIRE() { mutex_.lock(); }
  void unlock() D2DHB_RELEASE() { mutex_.unlock(); }
  bool try_lock() D2DHB_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock for d2dhb::Mutex — the lock_guard replacement. Also a
/// BasicLockable (manual unlock()/lock()), which is what
/// std::condition_variable_any::wait needs: the wait call drops and
/// reacquires the mutex internally, so from the analysis's point of
/// view the capability is held across it — exactly the semantics the
/// annotated waiter code relies on.
class D2DHB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) D2DHB_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    held_ = true;
  }
  ~MutexLock() D2DHB_RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual drop before scope exit (error paths that must not hold the
  /// lock while rethrowing / joining threads).
  void unlock() D2DHB_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }
  /// Reacquire after a manual unlock (condition_variable_any does this
  /// internally; user code rarely needs it).
  void lock() D2DHB_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_{false};
};

}  // namespace d2dhb
