// Deterministic region allocator for shard-local world state.
//
// A million-phone world built from per-object `new` pays tens of
// millions of scattered allocations: every phone drags a mobility
// model, per-app heartbeat sources, timers, and battery state across
// the heap, and every event execution chases those pointers. The Arena
// is the repo's answer: one region per shard strip, owned next to the
// strip's event kernel, so construction, event execution, and teardown
// for a strip touch strip-local memory.
//
// Determinism contract: allocation order is program order (a bump
// cursor, never an address-ordered structure — detlint's `ptr-key`
// rule stays green), and destruction runs registered finalizers in
// exact reverse allocation order, like a stack of locals. Nothing
// about layout or addresses ever reaches sim-visible state.
//
// Two modes, byte-identical in behavior:
//   pooled  bump allocation over chained blocks (the production
//           layout: dense, cache-friendly, O(1) teardown).
//   heap    one `::operator new` per object. Same lifetimes, same
//           finalizer order — but every object is an individually
//           tracked allocation, so ASan sees per-object boundaries.
//           This is the ablation arm of the arena-vs-heap
//           byte-identical gate in the shard-equivalence suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace d2dhb {

class Arena {
 public:
  enum class Mode : std::uint8_t { pooled, heap };

  /// Allocation + footprint counters (bytes_reserved >= bytes_allocated
  /// in pooled mode; equal in heap mode).
  struct Stats {
    std::uint64_t bytes_allocated{0};  ///< Sum of aligned request sizes.
    std::uint64_t bytes_reserved{0};   ///< Capacity obtained from the OS.
    std::uint64_t blocks{0};           ///< Pooled blocks (0 in heap mode).
    std::uint64_t objects{0};          ///< Live create()/adopt() objects.
  };

  /// Default pooled block size. Large enough that a strip of phones
  /// lands in a handful of blocks; small enough that a 256-strip city
  /// does not reserve gigabytes up front.
  static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

  explicit Arena(Mode mode = Mode::pooled,
                 std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage, aligned to `align` (a power of two). Never returns
  /// nullptr; throws std::bad_alloc on exhaustion like `new` does.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Constructs a T in the arena. The arena owns the object: its
  /// destructor runs at reset()/arena destruction, in reverse
  /// allocation order.
  template <typename T, typename... Args>
  T& create(Args&&... args) {
    void* slot = allocate(sizeof(T), alignof(T));
    T* object = ::new (slot) T(std::forward<Args>(args)...);
    if constexpr (std::is_trivially_destructible_v<T>) {
      register_finalizer(object, nullptr);
    } else {
      register_finalizer(object,
                         [](void* p) { static_cast<T*>(p)->~T(); });
    }
    return *object;
  }

  /// Transfers ownership of an existing heap object to the arena: it
  /// is deleted (not just destroyed) in the same reverse-order pass as
  /// create()d objects. This is how config-provided `unique_ptr`
  /// members (e.g. PhoneConfig.mobility) join a strip's lifetime
  /// without a copy.
  template <typename T>
  T& adopt(std::unique_ptr<T> owned) {
    T* object = owned.release();
    register_finalizer(object, [](void* p) { delete static_cast<T*>(p); });
    return *object;
  }

  /// Runs every finalizer in reverse allocation order, then makes the
  /// memory reusable: pooled blocks are retained and rewound (the next
  /// create() reuses block 0 from the start); heap allocations are
  /// returned to the OS.
  void reset();

  Mode mode() const { return mode_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity{0};
    std::size_t used{0};
  };
  /// One owned object: `destroy` is nullptr for trivially destructible
  /// create()s, a placement destructor for the rest, and `delete` for
  /// adopt()ed objects.
  struct Finalizer {
    void* object{nullptr};
    void (*destroy)(void*){nullptr};
  };
  /// One heap-mode allocation (freed with its alignment on reset).
  struct HeapAlloc {
    void* data{nullptr};
    std::size_t align{0};
  };

  void register_finalizer(void* object, void (*destroy)(void*));
  void* allocate_pooled(std::size_t bytes, std::size_t align);

  Mode mode_;
  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_block_{0};
  std::vector<HeapAlloc> heap_allocs_;
  std::vector<Finalizer> finalizers_;
  Stats stats_;
};

/// A borrowed-or-private arena slot for components that pool their
/// children but can also stand alone (unit tests construct a
/// MessageMonitor or RelayAgent without any Scenario). Borrowed: the
/// component allocates into its strip's arena. Unborrowed: get()
/// lazily creates a private heap-mode arena the handle owns, so
/// standalone construction behaves exactly like the pre-arena code —
/// one heap object per child, freed when the component dies.
class ArenaHandle {
 public:
  ArenaHandle() = default;
  explicit ArenaHandle(Arena* borrowed) : borrowed_(borrowed) {}

  Arena& get() {
    if (borrowed_ != nullptr) return *borrowed_;
    if (!owned_) owned_ = std::make_unique<Arena>(Arena::Mode::heap);
    return *owned_;
  }

 private:
  Arena* borrowed_{nullptr};
  std::unique_ptr<Arena> owned_;
};

}  // namespace d2dhb
