// Strong identifier types. Distinct tag types keep node, message, and
// group identifiers from being cross-assigned.
#pragma once

#include <cstdint>
#include <functional>

namespace d2dhb {

template <typename Tag>
struct Id {
  std::uint64_t value{0};

  constexpr auto operator<=>(const Id&) const = default;
  constexpr bool valid() const { return value != 0; }

  static constexpr Id invalid() { return Id{0}; }
};

struct NodeTag {};
struct MessageTag {};
struct GroupTag {};
struct AppTag {};

/// Identifies a smartphone (UE or relay) in the simulation.
using NodeId = Id<NodeTag>;
/// Identifies a single heartbeat (or data) message end to end.
using MessageId = Id<MessageTag>;
/// Identifies a formed Wi-Fi Direct group (one group owner + clients).
using GroupId = Id<GroupTag>;
/// Identifies an installed IM application instance on a node.
using AppId = Id<AppTag>;

/// Monotonic generator for any Id type. Starts at 1 so that value 0 is
/// reserved for "invalid". The (start, stride) form carves the id space
/// into disjoint lanes — generator k of V uses (1 + k, V) — so each
/// world shard can mint ids without sharing a counter across threads.
template <typename IdType>
class IdGenerator {
 public:
  IdGenerator() = default;
  IdGenerator(std::uint64_t start, std::uint64_t stride)
      : next_(start), stride_(stride) {}

  IdType next() {
    const std::uint64_t value = next_;
    next_ += stride_;
    return IdType{value};
  }

 private:
  std::uint64_t next_{1};
  std::uint64_t stride_{1};
};

}  // namespace d2dhb

template <typename Tag>
struct std::hash<d2dhb::Id<Tag>> {
  std::size_t operator()(const d2dhb::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
