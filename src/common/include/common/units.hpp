// Units and simulated-time primitives shared by every module.
//
// Simulated time is a std::chrono time_point over a dedicated SimClock so
// that wall-clock time can never be mixed into the simulation by accident.
// Electrical quantities follow the paper's measurement conventions:
// instantaneous current in milliamps (the Monsoon Power Monitor reports
// mA at a constant 3.7 V supply) and accumulated charge in microamp-hours
// (the unit used by the paper's Tables III and IV).
#pragma once

#include <chrono>
#include <cmath>
#include <compare>
#include <cstdint>

namespace d2dhb {

/// Clock for simulated time. Never reads the wall clock; the simulator
/// kernel is the only authority for "now".
struct SimClock {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<SimClock>;
  static constexpr bool is_steady = true;
};

using Duration = SimClock::duration;
using TimePoint = SimClock::time_point;

/// Convenience constructors mirroring the paper's second-granularity
/// parameters (heartbeat periods, expiration timers).
constexpr Duration microseconds(std::int64_t us) { return Duration{us}; }
constexpr Duration milliseconds(std::int64_t ms) {
  return std::chrono::duration_cast<Duration>(std::chrono::milliseconds{ms});
}
constexpr Duration seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e6)};
}
constexpr Duration minutes(double m) { return seconds(m * 60.0); }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}
constexpr double to_seconds(TimePoint t) {
  return to_seconds(t.time_since_epoch());
}

/// Instantaneous current draw in milliamps at the nominal 3.7 V supply.
struct MilliAmps {
  double value{0.0};

  constexpr MilliAmps operator+(MilliAmps o) const { return {value + o.value}; }
  constexpr MilliAmps operator-(MilliAmps o) const { return {value - o.value}; }
  constexpr MilliAmps& operator+=(MilliAmps o) {
    value += o.value;
    return *this;
  }
  constexpr MilliAmps& operator-=(MilliAmps o) {
    value -= o.value;
    return *this;
  }
  constexpr MilliAmps operator*(double k) const { return {value * k}; }
  constexpr auto operator<=>(const MilliAmps&) const = default;
};

/// Accumulated charge in microamp-hours (µAh), the unit of the paper's
/// energy tables. At constant voltage, charge is proportional to energy,
/// so the paper (and this reproduction) uses the two interchangeably.
struct MicroAmpHours {
  double value{0.0};

  constexpr MicroAmpHours operator+(MicroAmpHours o) const {
    return {value + o.value};
  }
  constexpr MicroAmpHours operator-(MicroAmpHours o) const {
    return {value - o.value};
  }
  constexpr MicroAmpHours& operator+=(MicroAmpHours o) {
    value += o.value;
    return *this;
  }
  constexpr MicroAmpHours operator*(double k) const { return {value * k}; }
  constexpr MicroAmpHours operator/(double k) const { return {value / k}; }
  constexpr auto operator<=>(const MicroAmpHours&) const = default;
};

/// Integrate a constant current over a duration: µAh = mA · seconds / 3.6.
constexpr MicroAmpHours integrate(MilliAmps current, Duration dt) {
  return MicroAmpHours{current.value * to_seconds(dt) / 3.6};
}

/// Nominal supply voltage of the Monsoon Power Monitor setup (Section V-A).
inline constexpr double kSupplyVoltage = 3.7;

/// Convert charge to energy in millijoules at the nominal supply voltage.
constexpr double to_millijoules(MicroAmpHours q) {
  // 1 µAh = 3.6 mC; E = Q·V.
  return q.value * 3.6 * kSupplyVoltage;
}

/// Message payload size in bytes.
struct Bytes {
  std::uint32_t value{0};
  constexpr Bytes operator+(Bytes o) const { return {value + o.value}; }
  constexpr Bytes& operator+=(Bytes o) {
    value += o.value;
    return *this;
  }
  constexpr auto operator<=>(const Bytes&) const = default;
};

/// Physical distance in meters (D2D link geometry).
struct Meters {
  double value{0.0};
  constexpr auto operator<=>(const Meters&) const = default;
};

}  // namespace d2dhb
