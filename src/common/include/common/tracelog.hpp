// Structured event tracing.
//
// A ring buffer of (time, category, node, message) records that the
// substrates emit at interesting moments — RRC transitions, D2D link
// changes, scheduler flushes, fallbacks. Off by default (near-zero
// overhead); scenarios and tests enable it to observe or assert on the
// sequence of events.
//
// Thread-safety: the global_trace() instance is shared by every
// simulation in the process, including sweep cells running on worker
// threads, so the mutating path (record/clear) is mutex-guarded and the
// enable flag is atomic. The read accessors (events(), count(), the
// printers) are NOT locked — call them only when no simulation is
// recording, i.e. after the workers have joined.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>

#include "common/id.hpp"
#include "common/units.hpp"

namespace d2dhb {

enum class TraceCategory : std::uint8_t {
  rrc,        ///< Cellular state machine transitions.
  d2d,        ///< Wi-Fi Direct link lifecycle and transfers.
  scheduler,  ///< Message Scheduler windows and flushes.
  agent,      ///< Role-level decisions (match, fallback, retire).
  kCount,
};

const char* to_string(TraceCategory category);

struct TraceEvent {
  TimePoint when;
  TraceCategory category;
  NodeId node;
  std::string message;
};

class TraceLog {
 public:
  /// Oldest events are dropped beyond the capacity.
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TimePoint when, TraceCategory category, NodeId node,
              std::string message);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  std::size_t count(TraceCategory category) const {
    return counts_[static_cast<std::size_t>(category)];
  }
  /// Events for one node, in order.
  std::deque<TraceEvent> for_node(NodeId node) const;

  /// Human-readable dump (optionally only one category).
  void print(std::ostream& os) const;
  void print(std::ostream& os, TraceCategory category) const;

  /// Machine-readable dump: one JSON object per line
  /// ({"t":s,"category":...,"node":...,"message":...}), written with the
  /// same deterministic number/string formatting as the metrics exports
  /// (common/json). A final meta line reports capacity and drops.
  void write_jsonl(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  /// Guards the ring and its counters against concurrent record()/
  /// clear() from sweep worker threads.
  std::mutex mutex_;
  std::deque<TraceEvent> events_;
  std::size_t counts_[static_cast<std::size_t>(TraceCategory::kCount)]{};
  std::size_t dropped_{0};
};

/// Process-wide trace instance the substrates write to. Simulations are
/// single-threaded; swap/clear it between runs.
TraceLog& global_trace();

/// Convenience: records into global_trace() if it is enabled.
void trace(TimePoint when, TraceCategory category, NodeId node,
           std::string message);

}  // namespace d2dhb
