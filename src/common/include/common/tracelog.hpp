// Structured event tracing.
//
// A ring buffer of (time, category, node, message) records that the
// substrates emit at interesting moments — RRC transitions, D2D link
// changes, scheduler flushes, fallbacks. Off by default (near-zero
// overhead); scenarios and tests enable it to observe or assert on the
// sequence of events. Single-threaded by design, like the simulator.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "common/id.hpp"
#include "common/units.hpp"

namespace d2dhb {

enum class TraceCategory : std::uint8_t {
  rrc,        ///< Cellular state machine transitions.
  d2d,        ///< Wi-Fi Direct link lifecycle and transfers.
  scheduler,  ///< Message Scheduler windows and flushes.
  agent,      ///< Role-level decisions (match, fallback, retire).
  kCount,
};

const char* to_string(TraceCategory category);

struct TraceEvent {
  TimePoint when;
  TraceCategory category;
  NodeId node;
  std::string message;
};

class TraceLog {
 public:
  /// Oldest events are dropped beyond the capacity.
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(TimePoint when, TraceCategory category, NodeId node,
              std::string message);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const { return dropped_; }
  void clear();

  std::size_t count(TraceCategory category) const {
    return counts_[static_cast<std::size_t>(category)];
  }
  /// Events for one node, in order.
  std::deque<TraceEvent> for_node(NodeId node) const;

  /// Human-readable dump (optionally only one category).
  void print(std::ostream& os) const;
  void print(std::ostream& os, TraceCategory category) const;

  /// Machine-readable dump: one JSON object per line
  /// ({"t":s,"category":...,"node":...,"message":...}), written with the
  /// same deterministic number/string formatting as the metrics exports
  /// (common/json). A final meta line reports capacity and drops.
  void write_jsonl(std::ostream& os) const;

 private:
  bool enabled_{false};
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t counts_[static_cast<std::size_t>(TraceCategory::kCount)]{};
  std::size_t dropped_{0};
};

/// Process-wide trace instance the substrates write to. Simulations are
/// single-threaded; swap/clear it between runs.
TraceLog& global_trace();

/// Convenience: records into global_trace() if it is enabled.
void trace(TimePoint when, TraceCategory category, NodeId node,
           std::string message);

}  // namespace d2dhb
