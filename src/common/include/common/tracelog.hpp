// Structured event tracing.
//
// A ring buffer of (time, category, node, message) records that the
// substrates emit at interesting moments — RRC transitions, D2D link
// changes, scheduler flushes, fallbacks. Off by default (near-zero
// overhead); scenarios and tests enable it to observe or assert on the
// sequence of events.
//
// Thread-safety: the global_trace() instance is shared by every
// simulation in the process, including sweep cells running on worker
// threads, so every accessor that touches the ring locks `mutex_` and
// the enable flag is atomic. Readers copy under the lock (events(),
// for_node()) or hold it for the duration of the dump (the printers);
// the guarded fields carry D2DHB_GUARDED_BY annotations, so the Clang
// thread-safety CI leg rejects any unlocked access path.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "common/id.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"

namespace d2dhb {

enum class TraceCategory : std::uint8_t {
  rrc,        ///< Cellular state machine transitions.
  d2d,        ///< Wi-Fi Direct link lifecycle and transfers.
  scheduler,  ///< Message Scheduler windows and flushes.
  agent,      ///< Role-level decisions (match, fallback, retire).
  kCount,
};

const char* to_string(TraceCategory category);

struct TraceEvent {
  TimePoint when;
  TraceCategory category;
  NodeId node;
  std::string message;
};

class TraceLog {
 public:
  /// Oldest events are dropped beyond the capacity.
  explicit TraceLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TimePoint when, TraceCategory category, NodeId node,
              std::string message) D2DHB_EXCLUDES(mutex_);

  /// Snapshot of the ring, copied under the lock — safe to call while
  /// workers are still recording.
  std::deque<TraceEvent> events() const D2DHB_EXCLUDES(mutex_);
  std::size_t capacity() const { return capacity_; }
  std::size_t dropped() const D2DHB_EXCLUDES(mutex_);
  void clear() D2DHB_EXCLUDES(mutex_);

  std::size_t count(TraceCategory category) const D2DHB_EXCLUDES(mutex_);
  /// Events for one node, in order.
  std::deque<TraceEvent> for_node(NodeId node) const D2DHB_EXCLUDES(mutex_);

  /// Human-readable dump (optionally only one category). Holds the
  /// lock for the duration of the dump.
  void print(std::ostream& os) const D2DHB_EXCLUDES(mutex_);
  void print(std::ostream& os, TraceCategory category) const
      D2DHB_EXCLUDES(mutex_);

  /// Machine-readable dump: one JSON object per line
  /// ({"t":s,"category":...,"node":...,"message":...}), written with the
  /// same deterministic number/string formatting as the metrics exports
  /// (common/json). A final meta line reports capacity and drops.
  void write_jsonl(std::ostream& os) const D2DHB_EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  /// Guards the ring and its counters against concurrent record()/
  /// clear()/readers on sweep worker threads.
  mutable Mutex mutex_;
  std::deque<TraceEvent> events_ D2DHB_GUARDED_BY(mutex_);
  std::size_t counts_[static_cast<std::size_t>(TraceCategory::kCount)]
      D2DHB_GUARDED_BY(mutex_){};
  std::size_t dropped_ D2DHB_GUARDED_BY(mutex_){0};
};

/// Process-wide trace instance the substrates write to. Simulations are
/// single-threaded; swap/clear it between runs.
TraceLog& global_trace();

/// Convenience: records into global_trace() if it is enabled.
void trace(TimePoint when, TraceCategory category, NodeId node,
           std::string message);

}  // namespace d2dhb
