// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run to run, so every stochastic
// component draws from an explicitly seeded generator owned by the
// scenario; nothing reads std::random_device or the wall clock.
#pragma once

#include <cstdint>
#include <limits>

namespace d2dhb {

/// xoshiro256** by Blackman & Vigna — small, fast, and statistically
/// strong enough for simulation workloads. Seeded via SplitMix64 so a
/// single 64-bit seed expands to the full 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        (std::numeric_limits<std::uint64_t>::max() % span);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + v % span;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return next_double() < p; }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal variate (Box–Muller, cached second value).
  double normal(double mean, double stddev);

  /// Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng{next_u64()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_cached_normal_{false};
  double cached_normal_{0.0};
};

}  // namespace d2dhb
