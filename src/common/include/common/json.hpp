// Minimal deterministic JSON writing helpers.
//
// One shared writer for every machine-readable export in the repo
// (metrics snapshots, TraceLog JSONL): locale-independent, shortest
// round-trip number formatting via std::to_chars, so exports are
// byte-identical for identical values regardless of thread count or
// global stream state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace d2dhb::json {

/// Escapes a string for embedding inside JSON double quotes.
std::string escape(std::string_view s);

/// Shortest round-trip representation of a double ("1", "0.25",
/// "1e+30"). Non-finite values serialize as 0 — JSON has no inf/nan and
/// the simulation never legitimately produces them.
std::string number(double v);

std::string number(std::uint64_t v);
std::string number(std::int64_t v);

}  // namespace d2dhb::json
