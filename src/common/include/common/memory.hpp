// Process memory observability for the bench reports: the city-scale
// bench's headline is events/s AND peak RSS vs phone count, and the CI
// smoke leg bounds the RSS so a layout regression (an agent quietly
// growing, pooling silently disabled) fails the build instead of the
// next million-phone run.
#pragma once

#include <cstdint>

namespace d2dhb {

/// Peak resident set size of this process in bytes (getrusage
/// ru_maxrss). Monotone over the process lifetime — ascending-size
/// bench arms read it after each arm so the delta attributes to that
/// arm. Returns 0 where the platform offers no counter.
std::uint64_t peak_rss_bytes();

}  // namespace d2dhb
