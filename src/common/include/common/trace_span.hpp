// Low-overhead runtime span recording — the substrate of the engine
// profiler (sim/profiler.hpp). A SpanBuffer is owned by exactly one
// thread for the duration of a run: appends are plain vector pushes
// with no locks or atomics, and the per-buffer sequence number makes
// the merged record order deterministic even though the timestamps
// are wall-clock. ScopedSpan is the RAII recording primitive: it
// stamps begin on construction and records the span on destruction,
// so a span closes correctly on every exit path, exceptions included.
//
// Wall-clock discipline: everything here measures HOST time and lives
// strictly outside the simulation. Nothing read from a SpanRecord may
// ever feed back into event scheduling, RNG draws, or any other
// sim-visible state — that is what keeps profiled runs byte-identical
// to unprofiled ones (the profile-equivalence gate holds us to it).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace d2dhb {

/// What one span measured. The engine emits one kind per
/// instrumentation site; tools key their per-phase breakdowns on it.
enum class SpanKind : std::uint8_t {
  window,       ///< One engine window, barrier to barrier (main thread).
  drain,        ///< One kernel's mailbox drain within a window.
  execute,      ///< One kernel's execute phase within a window.
  barrier_wait, ///< A worker blocked waiting for the next round.
  serial_tail,  ///< The final serial merge-step after the last window.
};

const char* to_string(SpanKind kind);

/// Monotonic host-time shim for the profiling layer. The simulation
/// itself never reads host clocks — this exists only so span begin/end
/// stamps survive NTP steps and are comparable across threads.
inline std::uint64_t trace_now_ns() {
  // detlint: allow(wall-clock): runtime profiling measures host time
  // by design; span timestamps never feed back into sim-visible state
  // (the profile-equivalence gate proves profiled runs byte-identical).
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

/// One closed span. `seq` is the position within the recording
/// buffer (per-thread monotone), `payload` a kind-specific count:
/// envelopes delivered for drain, events executed for execute and
/// serial_tail, the window index for window, the round number for
/// barrier_wait.
struct SpanRecord {
  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  SpanKind kind{SpanKind::execute};
  std::uint32_t worker{0};
  std::uint32_t shard{kNoShard};
  std::uint64_t seq{0};
  std::uint64_t begin_ns{0};
  std::uint64_t end_ns{0};
  std::uint64_t payload{0};

  std::uint64_t duration_ns() const {
    return end_ns >= begin_ns ? end_ns - begin_ns : 0;
  }
};

/// Append-only span store owned by one thread. No internal locking:
/// the owner is the only writer while a run is live, and readers (the
/// profiler's merge) only look after the owning thread has passed its
/// final barrier.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::uint32_t worker = 0) : worker_(worker) {
    spans_.reserve(kInitialCapacity);
  }

  std::uint32_t worker() const { return worker_; }

  /// Stamps the buffer's identity onto the record and appends it.
  void push(SpanRecord record) {
    record.worker = worker_;
    record.seq = seq_++;
    spans_.push_back(record);
  }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void clear() {
    spans_.clear();
    seq_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  std::uint32_t worker_{0};
  std::uint64_t seq_{0};
  std::vector<SpanRecord> spans_;
};

/// RAII span: stamps begin at construction, records at destruction —
/// the record lands even when the scope unwinds through an exception.
/// A null buffer makes every operation a no-op, so instrumentation
/// sites pay one branch when profiling is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanBuffer* buffer, SpanKind kind,
             std::uint32_t shard = SpanRecord::kNoShard)
      : buffer_(buffer) {
    if (buffer_ == nullptr) return;
    record_.kind = kind;
    record_.shard = shard;
    record_.begin_ns = trace_now_ns();
  }

  ~ScopedSpan() { close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Kind-specific count carried on the record (see SpanRecord).
  void set_payload(std::uint64_t payload) { record_.payload = payload; }

  /// Records the span now instead of at scope exit. Idempotent.
  void close() noexcept {
    if (buffer_ == nullptr) return;
    record_.end_ns = trace_now_ns();
    buffer_->push(record_);
    buffer_ = nullptr;
  }

 private:
  SpanBuffer* buffer_{nullptr};
  SpanRecord record_;
};

inline const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::window:
      return "window";
    case SpanKind::drain:
      return "drain";
    case SpanKind::execute:
      return "execute";
    case SpanKind::barrier_wait:
      return "barrier-wait";
    case SpanKind::serial_tail:
      return "serial-tail";
  }
  return "unknown";
}

}  // namespace d2dhb
