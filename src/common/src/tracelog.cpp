#include "common/tracelog.hpp"

#include <iomanip>
#include <ostream>

#include "common/json.hpp"

namespace d2dhb {

const char* to_string(TraceCategory category) {
  switch (category) {
    case TraceCategory::rrc: return "rrc";
    case TraceCategory::d2d: return "d2d";
    case TraceCategory::scheduler: return "sched";
    case TraceCategory::agent: return "agent";
    case TraceCategory::kCount: break;
  }
  return "?";
}

void TraceLog::record(TimePoint when, TraceCategory category, NodeId node,
                      std::string message) {
  if (!enabled()) return;
  const MutexLock lock(mutex_);
  if (events_.size() >= capacity_) {
    --counts_[static_cast<std::size_t>(events_.front().category)];
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{when, category, node, std::move(message)});
  ++counts_[static_cast<std::size_t>(category)];
}

void TraceLog::clear() {
  const MutexLock lock(mutex_);
  events_.clear();
  dropped_ = 0;
  for (auto& c : counts_) c = 0;
}

std::deque<TraceEvent> TraceLog::events() const {
  const MutexLock lock(mutex_);
  return events_;
}

std::size_t TraceLog::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

std::size_t TraceLog::count(TraceCategory category) const {
  const MutexLock lock(mutex_);
  return counts_[static_cast<std::size_t>(category)];
}

std::deque<TraceEvent> TraceLog::for_node(NodeId node) const {
  const MutexLock lock(mutex_);
  std::deque<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

namespace {
void print_event(std::ostream& os, const TraceEvent& e) {
  os << "  " << std::fixed << std::setw(10) << std::setprecision(3)
     << to_seconds(e.when) << "  [" << std::setw(5) << to_string(e.category)
     << "] #" << e.node.value << "  " << e.message << '\n';
}
}  // namespace

void TraceLog::print(std::ostream& os) const {
  const MutexLock lock(mutex_);
  for (const auto& e : events_) print_event(os, e);
  if (dropped_ > 0) os << "  (" << dropped_ << " older events dropped)\n";
}

void TraceLog::print(std::ostream& os, TraceCategory category) const {
  const MutexLock lock(mutex_);
  for (const auto& e : events_) {
    if (e.category == category) print_event(os, e);
  }
}

void TraceLog::write_jsonl(std::ostream& os) const {
  const MutexLock lock(mutex_);
  for (const auto& e : events_) {
    os << "{\"t\":" << json::number(to_seconds(e.when))
       << ",\"category\":\"" << to_string(e.category) << "\",\"node\":"
       << json::number(e.node.value) << ",\"message\":\""
       << json::escape(e.message) << "\"}\n";
  }
  os << "{\"meta\":{\"events\":"
     << json::number(static_cast<std::uint64_t>(events_.size()))
     << ",\"capacity\":" << json::number(static_cast<std::uint64_t>(capacity_))
     << ",\"dropped\":" << json::number(static_cast<std::uint64_t>(dropped_))
     << "}}\n";
}

TraceLog& global_trace() {
  static TraceLog instance;
  return instance;
}

void trace(TimePoint when, TraceCategory category, NodeId node,
           std::string message) {
  global_trace().record(when, category, node, std::move(message));
}

}  // namespace d2dhb
