#include "common/result.hpp"

namespace d2dhb {

const char* to_string(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::out_of_range: return "out_of_range";
    case Errc::capacity_exceeded: return "capacity_exceeded";
    case Errc::disconnected: return "disconnected";
    case Errc::expired: return "expired";
    case Errc::timeout: return "timeout";
    case Errc::invalid_state: return "invalid_state";
    case Errc::rejected: return "rejected";
  }
  return "unknown";
}

}  // namespace d2dhb
