#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace d2dhb::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string number(std::uint64_t v) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string number(std::int64_t v) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

}  // namespace d2dhb::json
