#include "common/arena.hpp"

#include <algorithm>
#include <stdexcept>

namespace d2dhb {

namespace {

/// Rounds `value` up to the next multiple of `align` (a power of two).
std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(Mode mode, std::size_t block_bytes)
    : mode_(mode), block_bytes_(block_bytes) {
  if (block_bytes_ == 0) {
    throw std::invalid_argument("Arena: block_bytes must be positive");
  }
}

Arena::~Arena() {
  reset();
}

void Arena::register_finalizer(void* object, void (*destroy)(void*)) {
  finalizers_.push_back(Finalizer{object, destroy});
  ++stats_.objects;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("Arena::allocate: bad alignment");
  }
  if (bytes == 0) bytes = 1;
  stats_.bytes_allocated += align_up(bytes, align);
  if (mode_ == Mode::heap) {
    void* p = ::operator new(bytes, std::align_val_t{align});
    heap_allocs_.push_back(HeapAlloc{p, align});
    stats_.bytes_reserved += align_up(bytes, align);
    return p;
  }
  return allocate_pooled(bytes, align);
}

void* Arena::allocate_pooled(std::size_t bytes, std::size_t align) {
  // Walk forward from the current block: the cursor never moves back
  // within one generation, so allocation order is program order.
  for (; current_block_ < blocks_.size(); ++current_block_) {
    Block& block = blocks_[current_block_];
    const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
    const std::size_t offset =
        align_up(static_cast<std::size_t>(base) + block.used, align) -
        static_cast<std::size_t>(base);
    if (offset + bytes <= block.capacity) {
      block.used = offset + bytes;
      return block.data.get() + offset;
    }
  }
  // No room: append a new block — dedicated for oversize requests so a
  // single huge allocation never forces a huge default block size.
  const std::size_t capacity = std::max(block_bytes_, bytes + align);
  Block block;
  block.data = std::make_unique<std::byte[]>(capacity);
  block.capacity = capacity;
  stats_.bytes_reserved += capacity;
  ++stats_.blocks;
  blocks_.push_back(std::move(block));
  current_block_ = blocks_.size() - 1;
  Block& fresh = blocks_.back();
  const auto base = reinterpret_cast<std::uintptr_t>(fresh.data.get());
  const std::size_t offset =
      align_up(static_cast<std::size_t>(base), align) -
      static_cast<std::size_t>(base);
  fresh.used = offset + bytes;
  return fresh.data.get() + offset;
}

void Arena::reset() {
  // Reverse allocation order: the exact mirror of a stack of locals,
  // so an agent allocated after its phone is destroyed before it.
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    if (it->destroy != nullptr) it->destroy(it->object);
  }
  finalizers_.clear();
  stats_.objects = 0;
  for (auto it = heap_allocs_.rbegin(); it != heap_allocs_.rend(); ++it) {
    ::operator delete(it->data, std::align_val_t{it->align});
  }
  heap_allocs_.clear();
  if (mode_ == Mode::heap) stats_.bytes_reserved = 0;
  stats_.bytes_allocated = 0;
  // Pooled blocks are retained for reuse; rewind the cursor.
  for (Block& block : blocks_) block.used = 0;
  current_block_ = 0;
}

}  // namespace d2dhb
