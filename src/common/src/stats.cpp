#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace d2dhb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;  // vertical line: leave zeros
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(lo < hi)) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<long>((x - lo_) / span *
                               static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket + 1);
}

}  // namespace d2dhb
