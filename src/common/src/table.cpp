#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace d2dhb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != header count");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 != row.size()) os << ',';
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

AsciiChart& AsciiChart::add(Series series) {
  series_.push_back(std::move(series));
  return *this;
}

void AsciiChart::print(std::ostream& os, int width, int height) const {
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool first = true;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (first) {
        xmin = xmax = s.xs[i];
        ymin = ymax = s.ys[i];
        first = false;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i]);
        ymax = std::max(ymax, s.ys[i]);
      }
    }
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series_[si];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const auto cx = static_cast<long>(std::lround(
          (s.xs[i] - xmin) / (xmax - xmin) * (width - 1)));
      const auto cy = static_cast<long>(std::lround(
          (s.ys[i] - ymin) / (ymax - ymin) * (height - 1)));
      grid[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = glyph;
    }
  }

  os << "\n== " << title_ << " ==\n";
  os << "y: " << y_label_ << "  [" << ymin << " .. " << ymax << "]\n";
  for (const auto& line : grid) os << "  |" << line << "|\n";
  os << "x: " << x_label_ << "  [" << xmin << " .. " << xmax << "]\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series_[si].name
       << '\n';
  }
}

}  // namespace d2dhb
