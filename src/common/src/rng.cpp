#include "common/rng.hpp"

#include <cmath>

namespace d2dhb {

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace d2dhb
