#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace d2dhb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace d2dhb
