#include "common/log.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_annotations.hpp"

namespace d2dhb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};

/// Serializes emission: sweep workers log concurrently, and without the
/// lock two half-written records could interleave on stderr. The lock
/// guards the stderr stream (an external resource), not a field, so
/// there is nothing to D2DHB_GUARDED_BY — emit() below still goes
/// through the annotated Mutex so lock discipline stays checkable.
Mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  // Compose the full record first so the guarded section is one write.
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  const MutexLock lock(g_emit_mutex);
  std::cerr << line;
}
}  // namespace detail

}  // namespace d2dhb
