// IM application profiles.
//
// Periods and sizes from Section II-A: "the heartbeat messages of QQ,
// WeChat, and WhatsApp are sent every 300 seconds, 270 seconds, and 240
// seconds. Their sizes are 378 Bytes, 74 Bytes and 66 Bytes." Heartbeat
// shares from Table I. Facebook's period/size are not given in the paper;
// the values here follow its MQTT keepalive default (assumption recorded
// in EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace d2dhb::apps {

struct AppProfile {
  std::string name;
  Duration heartbeat_period;
  Bytes heartbeat_size;
  /// Fraction of the app's messages that are heartbeats (Table I).
  double heartbeat_share;
  /// Server-side expiration tolerance for one heartbeat (T_k in the
  /// scheduling algorithm): how late a heartbeat may arrive past its
  /// nominal send time. Commercial servers tolerate up to ~3 periods
  /// (Section III-C); per-message T_k defaults to one period.
  Duration expiry;
};

AppProfile wechat();    ///< 270 s, 74 B, 50 % heartbeats.
AppProfile qq();        ///< 300 s, 378 B, 52.6 % heartbeats.
AppProfile whatsapp();  ///< 240 s, 66 B, 61.9 % heartbeats.
AppProfile facebook();  ///< 48.4 % heartbeats; MQTT-default keepalive.

/// The evaluation's standard workload: 54 B heartbeats (Section V-A)
/// on a WeChat-like 270 s period.
AppProfile standard_app();

/// All four Table I apps, in the paper's column order.
std::vector<AppProfile> popular_apps();

}  // namespace d2dhb::apps
