// A running IM app instance: emits heartbeats on its profile's period
// into whatever transport the node wires up (direct cellular in the
// original system, the MessageMonitor API in the D2D framework).
#pragma once

#include <cstdint>
#include <functional>

#include "apps/app_profile.hpp"
#include "common/id.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::apps {

class HeartbeatApp {
 public:
  /// Receives each emitted heartbeat.
  using Sink = std::function<void(const net::HeartbeatMessage&)>;

  HeartbeatApp(sim::Simulator& sim, NodeId node, AppId app,
               AppProfile profile, IdGenerator<MessageId>& message_ids,
               Sink sink);

  /// Begins the periodic emission; first heartbeat fires after `offset`
  /// (stagger apps so they don't all beat at t=0).
  void start(Duration offset = Duration::zero());
  void stop();

  /// Stops automatically after `n` emissions (0 = unlimited). Used by
  /// the benches that sweep "transmission times".
  void set_max_emissions(std::uint64_t n) { max_emissions_ = n; }

  /// Emits one heartbeat immediately (outside the periodic schedule).
  net::HeartbeatMessage emit_now();

  const AppProfile& profile() const { return profile_; }
  NodeId node() const { return node_; }
  AppId app_id() const { return app_; }
  std::uint64_t emitted() const { return emitted_; }

 private:
  net::HeartbeatMessage make_message();

  sim::Simulator& sim_;
  NodeId node_;
  AppId app_;
  AppProfile profile_;
  IdGenerator<MessageId>& message_ids_;
  Sink sink_;
  sim::PeriodicTimer timer_;
  std::uint64_t emitted_{0};
  std::uint64_t max_emissions_{0};
};

}  // namespace d2dhb::apps
