// Mixed heartbeat + data traffic generator, used to reproduce Table I's
// heartbeat-share measurement: heartbeats fire on the app's period, data
// messages arrive as a Poisson process whose rate follows the app's
// measured heartbeat share.
#pragma once

#include <cstdint>
#include <functional>

#include "apps/app_profile.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::apps {

class MixedTrafficGenerator {
 public:
  enum class Kind { heartbeat, data };
  using Sink = std::function<void(Kind, Bytes)>;

  MixedTrafficGenerator(sim::Simulator& sim, AppProfile profile, Rng rng,
                        Sink sink);

  void start();
  void stop();

  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t data_messages() const { return data_; }
  /// Observed heartbeat share so far.
  double heartbeat_share() const;

  /// Data-message rate (per second) implied by the profile's heartbeat
  /// share: share = hb_rate / (hb_rate + data_rate).
  double data_rate_per_second() const;

 private:
  void schedule_next_data();

  sim::Simulator& sim_;
  AppProfile profile_;
  Rng rng_;
  Sink sink_;
  sim::PeriodicTimer heartbeat_timer_;
  sim::EventId pending_data_{};
  bool running_{false};
  std::uint64_t heartbeats_{0};
  std::uint64_t data_{0};
};

}  // namespace d2dhb::apps
