#include "apps/heartbeat_app.hpp"

#include <utility>

namespace d2dhb::apps {

HeartbeatApp::HeartbeatApp(sim::Simulator& sim, NodeId node, AppId app,
                           AppProfile profile,
                           IdGenerator<MessageId>& message_ids, Sink sink)
    : sim_(sim),
      node_(node),
      app_(app),
      profile_(std::move(profile)),
      message_ids_(message_ids),
      sink_(std::move(sink)),
      timer_(sim, profile_.heartbeat_period, [this] {
        if (max_emissions_ != 0 && emitted_ >= max_emissions_) {
          timer_.stop();
          return;
        }
        sink_(make_message());
        if (max_emissions_ != 0 && emitted_ >= max_emissions_) timer_.stop();
      }) {}

void HeartbeatApp::start(Duration offset) {
  timer_.start_after(offset == Duration::zero() ? profile_.heartbeat_period
                                                : offset);
}

void HeartbeatApp::stop() { timer_.stop(); }

net::HeartbeatMessage HeartbeatApp::make_message() {
  net::HeartbeatMessage m;
  m.id = message_ids_.next();
  m.origin = node_;
  m.app = app_;
  m.app_name = profile_.name;
  m.size = profile_.heartbeat_size;
  m.period = profile_.heartbeat_period;
  m.expiry = profile_.expiry;
  m.created_at = sim_.now();
  m.seq = ++emitted_;
  return m;
}

net::HeartbeatMessage HeartbeatApp::emit_now() {
  net::HeartbeatMessage m = make_message();
  sink_(m);
  return m;
}

}  // namespace d2dhb::apps
