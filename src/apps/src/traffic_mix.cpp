#include "apps/traffic_mix.hpp"

#include <utility>

namespace d2dhb::apps {

MixedTrafficGenerator::MixedTrafficGenerator(sim::Simulator& sim,
                                             AppProfile profile, Rng rng,
                                             Sink sink)
    : sim_(sim),
      profile_(std::move(profile)),
      rng_(rng),
      sink_(std::move(sink)),
      heartbeat_timer_(sim, profile_.heartbeat_period, [this] {
        ++heartbeats_;
        sink_(Kind::heartbeat, profile_.heartbeat_size);
      }) {}

double MixedTrafficGenerator::data_rate_per_second() const {
  const double hb_rate = 1.0 / to_seconds(profile_.heartbeat_period);
  const double share = profile_.heartbeat_share;
  // share = hb / (hb + data)  =>  data = hb * (1 - share) / share.
  return hb_rate * (1.0 - share) / share;
}

void MixedTrafficGenerator::start() {
  running_ = true;
  heartbeat_timer_.start();
  schedule_next_data();
}

void MixedTrafficGenerator::stop() {
  running_ = false;
  heartbeat_timer_.stop();
  if (pending_data_.valid()) sim_.cancel(pending_data_);
  pending_data_ = {};
}

void MixedTrafficGenerator::schedule_next_data() {
  const double rate = data_rate_per_second();
  if (rate <= 0.0) return;
  const double gap_s = rng_.exponential(1.0 / rate);
  pending_data_ = sim_.schedule_after(seconds(gap_s), [this] {
    pending_data_ = {};
    if (!running_) return;
    ++data_;
    // Data payload size: chat-like, a few hundred bytes.
    sink_(Kind::data, Bytes{static_cast<std::uint32_t>(
                          rng_.uniform_int(120, 900))});
    schedule_next_data();
  });
}

double MixedTrafficGenerator::heartbeat_share() const {
  const std::uint64_t total = heartbeats_ + data_;
  return total == 0 ? 0.0
                    : static_cast<double>(heartbeats_) /
                          static_cast<double>(total);
}

}  // namespace d2dhb::apps
