#include "apps/app_profile.hpp"

namespace d2dhb::apps {

AppProfile wechat() {
  return AppProfile{"WeChat", seconds(270), Bytes{74}, 0.50, seconds(270)};
}

AppProfile qq() {
  return AppProfile{"QQ", seconds(300), Bytes{378}, 0.526, seconds(300)};
}

AppProfile whatsapp() {
  return AppProfile{"WhatsApp", seconds(240), Bytes{66}, 0.619, seconds(240)};
}

AppProfile facebook() {
  // Period/size are not reported in the paper; MQTT's default keepalive
  // (300 s) and a typical PINGREQ-over-TLS wire size stand in.
  return AppProfile{"Facebook", seconds(300), Bytes{90}, 0.484, seconds(300)};
}

AppProfile standard_app() {
  return AppProfile{"Standard", seconds(270), Bytes{54}, 0.50, seconds(270)};
}

std::vector<AppProfile> popular_apps() {
  return {wechat(), whatsapp(), qq(), facebook()};
}

}  // namespace d2dhb::apps
