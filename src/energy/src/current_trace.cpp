#include "energy/current_trace.hpp"

#include <utility>

namespace d2dhb::energy {

CurrentTraceRecorder::CurrentTraceRecorder(sim::Simulator& sim,
                                           EnergyMeter& meter,
                                           Duration interval)
    : sim_(sim),
      meter_(meter),
      timer_(sim, interval, [this] {
        samples_.push_back(Sample{sim_.now(), meter_.instantaneous()});
      }) {}

void CurrentTraceRecorder::start() {
  // Record the sample at t0 as well, like a capture that starts armed.
  samples_.push_back(Sample{sim_.now(), meter_.instantaneous()});
  timer_.start();
}

void CurrentTraceRecorder::stop() { timer_.stop(); }

Series CurrentTraceRecorder::as_series(std::string name) const {
  Series s;
  s.name = std::move(name);
  s.xs.reserve(samples_.size());
  s.ys.reserve(samples_.size());
  for (const auto& sample : samples_) {
    s.xs.push_back(to_seconds(sample.when));
    s.ys.push_back(sample.current.value);
  }
  return s;
}

MicroAmpHours CurrentTraceRecorder::integrate_samples() const {
  MicroAmpHours total;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Duration dt = samples_[i].when - samples_[i - 1].when;
    const MilliAmps avg{(samples_[i].current.value +
                         samples_[i - 1].current.value) /
                        2.0};
    total += integrate(avg, dt);
  }
  return total;
}

}  // namespace d2dhb::energy
