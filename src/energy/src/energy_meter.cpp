#include "energy/energy_meter.hpp"

#include <iomanip>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace d2dhb::energy {

ComponentHandle EnergyMeter::register_component(std::string name,
                                                MilliAmps initial) {
  components_.push_back(Component{std::move(name), initial, MicroAmpHours{},
                                  sim_.now()});
  return ComponentHandle{components_.size() - 1};
}

void EnergyMeter::settle(Component& c) {
  const TimePoint now = sim_.now();
  if (now > c.last_update) {
    c.accumulated += integrate(c.current, now - c.last_update);
    c.last_update = now;
  }
}

void EnergyMeter::set_current(ComponentHandle component, MilliAmps current) {
  auto& c = components_.at(component.index);
  settle(c);
  c.current = current;
}

void EnergyMeter::add_load(ComponentHandle component, MilliAmps extra,
                           Duration duration) {
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("EnergyMeter::add_load: duration must be > 0");
  }
  {
    auto& c = components_.at(component.index);
    settle(c);
    c.current += extra;
  }
  sim_.schedule_after(duration, [this, component, extra] {
    auto& c = components_.at(component.index);
    settle(c);
    c.current -= extra;
  });
}

MilliAmps EnergyMeter::instantaneous() const {
  MilliAmps sum;
  for (const auto& c : components_) sum += c.current;
  return sum;
}

MilliAmps EnergyMeter::component_current(ComponentHandle component) const {
  return components_.at(component.index).current;
}

MicroAmpHours EnergyMeter::total_charge() {
  MicroAmpHours sum;
  for (auto& c : components_) {
    settle(c);
    sum += c.accumulated;
  }
  return sum;
}

MicroAmpHours EnergyMeter::component_charge(ComponentHandle component) {
  auto& c = components_.at(component.index);
  settle(c);
  return c.accumulated;
}

const std::string& EnergyMeter::component_name(
    ComponentHandle component) const {
  return components_.at(component.index).name;
}

void EnergyMeter::print_report(std::ostream& os) {
  const double total = total_charge().value;  // settles everything
  os << "  component            now (mA)   charge (uAh)   share\n";
  for (const auto& c : components_) {
    const double share = total > 0.0 ? c.accumulated.value / total : 0.0;
    os << "  " << std::left << std::setw(20) << c.name << std::right
       << std::fixed << std::setw(9) << std::setprecision(1)
       << c.current.value << "   " << std::setw(12) << std::setprecision(1)
       << c.accumulated.value << "   " << std::setw(5)
       << std::setprecision(1) << share * 100.0 << "%\n";
  }
  os << "  " << std::left << std::setw(20) << "TOTAL" << std::right
     << std::setw(9) << ' ' << "   " << std::fixed << std::setw(12)
     << std::setprecision(1) << total << "\n";
}

}  // namespace d2dhb::energy
