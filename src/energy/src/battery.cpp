#include "energy/battery.hpp"

#include <algorithm>
#include <utility>

namespace d2dhb::energy {

Battery::Battery(EnergyMeter& meter, MicroAmpHours capacity,
                 std::function<void()> on_depleted)
    : meter_(meter), capacity_(capacity), on_depleted_(std::move(on_depleted)) {}

MicroAmpHours Battery::poll() {
  const MicroAmpHours used = meter_.total_charge();
  const double remaining = std::max(0.0, capacity_.value - used.value);
  if (!depleted_ && remaining <= 0.0) {
    depleted_ = true;
    if (on_depleted_) on_depleted_();
  }
  return MicroAmpHours{remaining};
}

double Battery::level() {
  if (capacity_.value <= 0.0) return 0.0;
  return poll().value / capacity_.value;
}

}  // namespace d2dhb::energy
