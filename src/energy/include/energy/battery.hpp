// Finite battery model. Used for failure injection: a relay that drains
// its battery mid-connection triggers the framework's feedback/fallback
// path (Section III-A, "the relay has ran out of its battery").
#pragma once

#include <functional>

#include "common/units.hpp"
#include "energy/energy_meter.hpp"

namespace d2dhb::energy {

class Battery {
 public:
  /// `capacity` is the usable charge; `on_depleted` fires once when the
  /// meter's cumulative draw crosses it (checked on poll()).
  Battery(EnergyMeter& meter, MicroAmpHours capacity,
          std::function<void()> on_depleted = {});

  /// Re-reads the meter and fires the depletion callback if crossed.
  /// Returns remaining charge (clamped at zero).
  MicroAmpHours poll();

  MicroAmpHours capacity() const { return capacity_; }
  bool depleted() const { return depleted_; }
  /// Remaining fraction in [0, 1].
  double level();

 private:
  EnergyMeter& meter_;
  MicroAmpHours capacity_;
  std::function<void()> on_depleted_;
  bool depleted_{false};
};

}  // namespace d2dhb::energy
