// Per-device energy accounting.
//
// Replaces the paper's Monsoon Power Monitor (Section V-A): each device
// owns an EnergyMeter whose components (cellular modem, Wi-Fi Direct
// radio, platform baseline) report piecewise-constant current draws. The
// meter integrates charge in µAh at the nominal 3.7 V supply, exactly the
// quantity the paper reports in Tables III and IV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::energy {

/// Opaque handle to a registered component of an EnergyMeter.
struct ComponentHandle {
  std::size_t index{SIZE_MAX};
  constexpr bool valid() const { return index != SIZE_MAX; }
};

class EnergyMeter {
 public:
  explicit EnergyMeter(sim::Simulator& sim) : sim_(sim) {}
  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Registers a named component drawing `initial` from now on.
  ComponentHandle register_component(std::string name,
                                     MilliAmps initial = MilliAmps{0});

  /// Sets a component's constant draw; charge since the previous change
  /// is integrated first.
  void set_current(ComponentHandle component, MilliAmps current);

  /// Adds a transient load on top of the component's current draw for
  /// `duration` (the decrement self-schedules). Overlapping loads stack.
  void add_load(ComponentHandle component, MilliAmps extra, Duration duration);

  /// Sum of all component draws right now.
  MilliAmps instantaneous() const;
  MilliAmps component_current(ComponentHandle component) const;

  /// Total charge consumed since construction, up to now.
  MicroAmpHours total_charge();
  MicroAmpHours component_charge(ComponentHandle component);
  const std::string& component_name(ComponentHandle component) const;
  std::size_t component_count() const { return components_.size(); }

  /// Interval accounting, mirroring how the paper attributes energy to a
  /// phase: snapshot at phase start, subtract at phase end.
  struct Checkpoint {
    MicroAmpHours total;
  };
  Checkpoint checkpoint() { return Checkpoint{total_charge()}; }
  MicroAmpHours charge_since(const Checkpoint& cp) {
    return total_charge() - cp.total;
  }

  /// Per-component breakdown: name, present current, accumulated charge,
  /// and share of the total — the "where did the battery go" view.
  void print_report(std::ostream& os);

 private:
  struct Component {
    std::string name;
    MilliAmps current;
    MicroAmpHours accumulated;
    TimePoint last_update;
  };

  void settle(Component& c);

  sim::Simulator& sim_;
  std::vector<Component> components_;
};

}  // namespace d2dhb::energy
