// Instantaneous-current sampling, emulating the Power Monitor's 0.1 s
// capture (Section V-A). Produces the current-vs-time traces of the
// paper's Figs. 6 and 7.
#pragma once

#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::energy {

class CurrentTraceRecorder {
 public:
  struct Sample {
    TimePoint when;
    MilliAmps current;
  };

  /// Samples `meter.instantaneous()` every `interval` while running.
  CurrentTraceRecorder(sim::Simulator& sim, EnergyMeter& meter,
                       Duration interval = milliseconds(100));

  void start();
  void stop();

  const std::vector<Sample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

  /// Converts the trace into a chartable series (seconds, mA).
  Series as_series(std::string name) const;

  /// Trapezoidal charge estimate from the sampled trace — lets tests
  /// check the sampler agrees with the meter's exact integration.
  MicroAmpHours integrate_samples() const;

 private:
  sim::Simulator& sim_;
  EnergyMeter& meter_;
  sim::PeriodicTimer timer_;
  std::vector<Sample> samples_;
};

}  // namespace d2dhb::energy
