#include "core/phone.hpp"

#include <stdexcept>
#include <utility>

namespace d2dhb::core {

Phone::Phone(sim::Simulator& sim, NodeId id, PhoneConfig config,
             d2d::WifiDirectMedium& medium,
             radio::SignalingCounter& signaling, Rng rng)
    : id_(id),
      // A still-owning config (mobility set, no ref) cannot be accepted
      // here: the unique_ptr dies with the by-value parameter. Scenario
      // adopts the model into a strip arena and fills mobility_ref
      // before construction; standalone builders pass mobility_ref.
      mobility_(config.mobility_ref != nullptr
                    ? config.mobility_ref
                    : throw std::invalid_argument(
                          "PhoneConfig.mobility is required")),
      meter_(sim),
      baseline_(meter_.register_component("baseline",
                                          config.baseline_current)),
      modem_(sim, id, std::move(config.rrc), meter_, signaling),
      wifi_(sim, id, medium, *mobility_, meter_, config.d2d_energy, rng) {
  // Per-node energy roll-ups, evaluated at snapshot time. The component
  // radios register their own energy.*_uah gauges; these add the
  // radio-attributable sum and the everything-included total.
  auto& reg = sim.metrics();
  reg.gauge_fn("energy.radio_uah", {id_.value, -1, "phone"},
               [this] { return radio_charge().value; });
  reg.gauge_fn("energy.total_uah", {id_.value, -1, "phone"},
               [this] { return total_charge().value; });
}

}  // namespace d2dhb::core
