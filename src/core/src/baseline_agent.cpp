#include "core/baseline_agent.hpp"

#include <algorithm>
#include <utility>

namespace d2dhb::core {

namespace {

apps::AppProfile stretched(apps::AppProfile app, double factor) {
  if (factor != 1.0) {
    app.heartbeat_period = Duration{static_cast<std::int64_t>(
        static_cast<double>(app.heartbeat_period.count()) * factor)};
    // The server's tolerance tracks the announced period, so the
    // expiration budget stretches with it.
    app.expiry = app.heartbeat_period;
  }
  return app;
}

}  // namespace

CellularBaselineAgent::CellularBaselineAgent(
    sim::Simulator& sim, Phone& phone, Params params,
    radio::BaseStation& bs, IdGenerator<MessageId>& message_ids, Rng rng)
    : sim_(sim),
      phone_(phone),
      params_(params),
      bs_(bs),
      message_ids_(message_ids),
      effective_profile_(stretched(params.app, params.period_factor)),
      traffic_(sim, effective_profile_, rng,
               [this](apps::MixedTrafficGenerator::Kind kind, Bytes size) {
                 on_traffic(kind, size);
               }) {
  phone_.modem().set_fast_dormancy(params_.fast_dormancy);
  phone_.modem().set_uplink_handler(
      [this](const net::UplinkBundle& bundle) { bs_.receive(bundle); });
  auto& reg = sim_.metrics();
  const metrics::Labels labels{phone_.id().value, -1, "baseline"};
  heartbeats_ctr_ = &reg.counter("baseline.heartbeats", labels);
  data_sends_ctr_ = &reg.counter("baseline.data_sends", labels);
  piggybacked_ctr_ = &reg.counter("baseline.piggybacked", labels);
  sent_alone_ctr_ = &reg.counter("baseline.sent_alone", labels);
}

CellularBaselineAgent::~CellularBaselineAgent() {
  if (pending_deadline_.valid()) sim_.cancel(pending_deadline_);
}

void CellularBaselineAgent::start() { traffic_.start(); }

void CellularBaselineAgent::stop() {
  traffic_.stop();
  if (pending_deadline_.valid()) sim_.cancel(pending_deadline_);
  pending_deadline_ = {};
}

net::HeartbeatMessage CellularBaselineAgent::make_heartbeat() {
  net::HeartbeatMessage m;
  m.id = message_ids_.next();
  m.origin = phone_.id();
  m.app = AppId{phone_.id().value};
  m.app_name = effective_profile_.name;
  m.size = effective_profile_.heartbeat_size;
  m.period = effective_profile_.heartbeat_period;
  m.expiry = effective_profile_.expiry;
  m.created_at = sim_.now();
  m.seq = ++seq_;
  return m;
}

void CellularBaselineAgent::on_traffic(
    apps::MixedTrafficGenerator::Kind kind, Bytes size) {
  if (kind == apps::MixedTrafficGenerator::Kind::heartbeat) {
    heartbeats_ctr_->inc();
    if (!params_.piggyback) {
      pending_.push_back(make_heartbeat());
      send_heartbeats_now(Bytes{0});
      return;
    }
    pending_.push_back(make_heartbeat());
    arm_pending_deadline();
    return;
  }

  if (!params_.with_data_traffic) return;
  data_sends_ctr_->inc();
  // A data transmission: anything pending rides along for free.
  piggybacked_ctr_->inc(pending_.size());
  send_heartbeats_now(size);
}

void CellularBaselineAgent::send_heartbeats_now(Bytes data_payload) {
  if (pending_deadline_.valid()) {
    sim_.cancel(pending_deadline_);
    pending_deadline_ = {};
  }
  net::UplinkBundle bundle;
  bundle.sender = phone_.id();
  bundle.messages = std::move(pending_);
  pending_.clear();
  bundle.extra_payload = data_payload;
  if (bundle.messages.empty() && data_payload.value == 0) return;
  phone_.modem().transmit(std::move(bundle));
}

void CellularBaselineAgent::arm_pending_deadline() {
  if (pending_.empty()) return;
  if (pending_deadline_.valid()) sim_.cancel(pending_deadline_);
  // Earliest expiration among pending heartbeats, minus the margin.
  TimePoint earliest = pending_.front().deadline();
  for (const auto& m : pending_) {
    earliest = std::min(earliest, m.deadline());
  }
  TimePoint fire = earliest - params_.piggyback_margin;
  if (fire < sim_.now()) fire = sim_.now();
  pending_deadline_ = sim_.schedule_at(fire, [this] {
    pending_deadline_ = {};
    sent_alone_ctr_->inc(pending_.size());
    send_heartbeats_now(Bytes{0});
  });
}

CellularBaselineAgent::Stats CellularBaselineAgent::stats() const {
  Stats s;
  s.heartbeats = heartbeats_ctr_->value();
  s.data_sends = data_sends_ctr_->value();
  s.piggybacked = piggybacked_ctr_->value();
  s.sent_alone = sent_alone_ctr_->value();
  return s;
}

metrics::StatsRow CellularBaselineAgent::Stats::row() const {
  return {
      {"heartbeats", static_cast<double>(heartbeats)},
      {"data_sends", static_cast<double>(data_sends)},
      {"piggybacked", static_cast<double>(piggybacked)},
      {"sent_alone", static_cast<double>(sent_alone)},
  };
}

}  // namespace d2dhb::core
