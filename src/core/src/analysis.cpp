#include "core/analysis.hpp"

#include <algorithm>

#include "net/message.hpp"

namespace d2dhb::core::analysis {

MicroAmpHours cellular_transmission_charge(const radio::RrcProfile& rrc,
                                           Bytes payload) {
  const Duration burst = std::max(
      rrc.min_tx_duration,
      seconds(static_cast<double>(payload.value) /
              rrc.uplink_bytes_per_second));
  MicroAmpHours total;
  total += integrate(rrc.promotion_current, rrc.promotion_delay);
  total += integrate(rrc.high_current + rrc.tx_extra_current, burst);
  total += integrate(rrc.high_current, rrc.high_inactivity);
  total += integrate(rrc.low_current, rrc.low_inactivity);
  return total;
}

std::size_t cellular_transmission_l3(const radio::RrcProfile& rrc,
                                     Bytes payload) {
  std::size_t count = rrc.full_cycle_l3();
  if (payload > rrc.rb_reconfig_threshold) {
    count += rrc.rb_reconfig_sequence.size();
  }
  return count;
}

namespace {

/// Wire size of the relay's aggregate of one own + `ues` forwarded
/// heartbeats.
Bytes aggregate_payload(std::size_t ues, Bytes heartbeat) {
  const auto n = static_cast<std::uint32_t>(ues + 1);
  Bytes total{heartbeat.value * n};
  if (n > 1) total += Bytes{net::UplinkBundle::kAggregationHeader.value * n};
  return total;
}

}  // namespace

PairPrediction predict_pair(const PairModel& model) {
  const double k = static_cast<double>(model.transmissions);
  const double m = static_cast<double>(model.ues);
  PairPrediction p;

  // --- Original system: every phone pays a full cycle per heartbeat ---
  const double cell_each =
      cellular_transmission_charge(model.rrc, model.heartbeat).value;
  p.original_system_uah = (m + 1.0) * k * cell_each;
  p.original_l3 = static_cast<std::uint64_t>(
      (m + 1.0) * k *
      static_cast<double>(cellular_transmission_l3(model.rrc,
                                                   model.heartbeat)));

  // --- D2D UEs: one discovery + connection each, then k sends, plus the
  //     idle-connected draw over the connection's lifetime (~k periods).
  const double ue_setup =
      model.d2d.ue_discovery.value + model.d2d.ue_connection.value;
  const double send_each =
      model.d2d.send_charge(model.heartbeat, Meters{model.distance_m}).value;
  const double idle_span_s = k * to_seconds(model.period);
  const double ue_idle = model.d2d.idle_connected.value * idle_span_s / 3.6;
  // Feedback acks: one control receive per aggregate.
  const double ue_control = k * model.d2d.control_receive.value;
  p.d2d_ue_uah = m * (ue_setup + k * send_each + ue_idle + ue_control);

  // --- D2D relay: one passive-discovery window (UEs scan together), a
  //     connection per UE, k receives per UE, k aggregate cellular
  //     transmissions, idle draw, and one feedback send per UE per
  //     aggregate.
  const Bytes agg = aggregate_payload(model.ues, model.heartbeat);
  const double agg_cell = cellular_transmission_charge(model.rrc, agg).value;
  const double recv_each = model.d2d.receive_charge(model.heartbeat).value;
  p.d2d_relay_uah = model.d2d.relay_discovery.value +
                    m * model.d2d.relay_connection.value +
                    k * m * recv_each + k * agg_cell +
                    model.d2d.idle_connected.value * idle_span_s / 3.6 +
                    k * m * model.d2d.control_send.value;
  p.d2d_system_uah = p.d2d_ue_uah + p.d2d_relay_uah;

  p.d2d_l3 = static_cast<std::uint64_t>(
      k * static_cast<double>(cellular_transmission_l3(model.rrc, agg)));

  // --- Savings ---
  if (p.original_system_uah > 0.0) {
    p.system_energy_saving =
        1.0 - p.d2d_system_uah / p.original_system_uah;
  }
  const double orig_ue = m * k * cell_each;
  if (orig_ue > 0.0) p.ue_energy_saving = 1.0 - p.d2d_ue_uah / orig_ue;
  if (p.original_l3 > 0) {
    p.signaling_saving = 1.0 - static_cast<double>(p.d2d_l3) /
                                   static_cast<double>(p.original_l3);
  }
  return p;
}

std::size_t break_even_transmissions(PairModel model, std::size_t limit) {
  for (std::size_t k = 1; k <= limit; ++k) {
    model.transmissions = k;
    if (predict_pair(model).system_energy_saving > 0.0) return k;
  }
  return 0;
}

}  // namespace d2dhb::core::analysis
