#include "core/feedback.hpp"

#include <algorithm>
#include <utility>

namespace d2dhb::core {

FeedbackTracker::FeedbackTracker(sim::Simulator& sim, Duration timeout,
                                 FallbackHandler on_fallback, NodeId node)
    : sim_(sim), timeout_(timeout), on_fallback_(std::move(on_fallback)) {
  auto& reg = sim_.metrics();
  const metrics::Labels labels{node.value, -1, "feedback"};
  tracked_ctr_ = &reg.counter("feedback.tracked", labels);
  acknowledged_ctr_ = &reg.counter("feedback.acknowledged", labels);
  timed_out_ctr_ = &reg.counter("feedback.timed_out", labels);
  failed_immediately_ctr_ = &reg.counter("feedback.failed_immediately", labels);
}

FeedbackTracker::~FeedbackTracker() {
  // cancel() only disarms slots — it never mutates the free list — so
  // cancellation order is invisible.
  for (auto& [id, entry] : pending_) sim_.cancel(entry.timeout_event);
}

void FeedbackTracker::track(net::HeartbeatMessage message) {
  const MessageId id = message.id;
  tracked_ctr_->inc();
  const sim::EventId event = sim_.schedule_after(timeout_, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    net::HeartbeatMessage message = std::move(it->second.message);
    pending_.erase(it);
    timed_out_ctr_->inc();
    on_fallback_(message);
  });
  pending_.emplace(id, Entry{std::move(message), event});
}

void FeedbackTracker::acknowledge(const std::vector<MessageId>& delivered) {
  for (const MessageId id : delivered) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    sim_.cancel(it->second.timeout_event);
    pending_.erase(it);
    acknowledged_ctr_->inc();
  }
}

void FeedbackTracker::fail_all_pending() {
  std::vector<net::HeartbeatMessage> victims;
  victims.reserve(pending_.size());
  // Victims are sorted by MessageId below before any sim-visible
  // callback fires.
  for (auto& [id, entry] : pending_) {
    sim_.cancel(entry.timeout_event);
    victims.push_back(std::move(entry.message));
  }
  pending_.clear();
  // Fallback transmissions must fire in a deterministic order — sort by
  // MessageId (ids are unique), not by hash-bucket layout.
  std::sort(victims.begin(), victims.end(),
            [](const net::HeartbeatMessage& a,
               const net::HeartbeatMessage& b) { return a.id < b.id; });
  failed_immediately_ctr_->inc(victims.size());
  for (auto& message : victims) on_fallback_(message);
}

FeedbackTracker::Stats FeedbackTracker::stats() const {
  Stats s;
  s.tracked = tracked_ctr_->value();
  s.acknowledged = acknowledged_ctr_->value();
  s.timed_out = timed_out_ctr_->value();
  s.failed_immediately = failed_immediately_ctr_->value();
  return s;
}

metrics::StatsRow FeedbackTracker::Stats::row() const {
  return {
      {"tracked", static_cast<double>(tracked)},
      {"acknowledged", static_cast<double>(acknowledged)},
      {"timed_out", static_cast<double>(timed_out)},
      {"failed_immediately", static_cast<double>(failed_immediately)},
  };
}

}  // namespace d2dhb::core
