#include "core/feedback.hpp"

#include <utility>

namespace d2dhb::core {

FeedbackTracker::FeedbackTracker(sim::Simulator& sim, Duration timeout,
                                 FallbackHandler on_fallback)
    : sim_(sim), timeout_(timeout), on_fallback_(std::move(on_fallback)) {}

FeedbackTracker::~FeedbackTracker() {
  for (auto& [id, entry] : pending_) sim_.cancel(entry.timeout_event);
}

void FeedbackTracker::track(net::HeartbeatMessage message) {
  const MessageId id = message.id;
  ++stats_.tracked;
  const sim::EventId event = sim_.schedule_after(timeout_, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    net::HeartbeatMessage message = std::move(it->second.message);
    pending_.erase(it);
    ++stats_.timed_out;
    on_fallback_(message);
  });
  pending_.emplace(id, Entry{std::move(message), event});
}

void FeedbackTracker::acknowledge(const std::vector<MessageId>& delivered) {
  for (const MessageId id : delivered) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    sim_.cancel(it->second.timeout_event);
    pending_.erase(it);
    ++stats_.acknowledged;
  }
}

void FeedbackTracker::fail_all_pending() {
  std::vector<net::HeartbeatMessage> victims;
  victims.reserve(pending_.size());
  for (auto& [id, entry] : pending_) {
    sim_.cancel(entry.timeout_event);
    victims.push_back(std::move(entry.message));
  }
  pending_.clear();
  stats_.failed_immediately += victims.size();
  for (auto& message : victims) on_fallback_(message);
}

}  // namespace d2dhb::core
