#include "core/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace d2dhb::core {

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::capacity: return "capacity";
    case FlushReason::expiry: return "expiry";
    case FlushReason::window_end: return "window_end";
    case FlushReason::forced: return "forced";
  }
  return "?";
}

MessageScheduler::MessageScheduler(sim::Simulator& sim, Params params,
                                   FlushHandler on_flush)
    : sim_(sim), params_(params), on_flush_(std::move(on_flush)) {
  if (params_.capacity == 0) {
    throw std::invalid_argument("MessageScheduler: capacity must be >= 1");
  }
  if (params_.max_own_delay <= Duration::zero()) {
    throw std::invalid_argument(
        "MessageScheduler: max_own_delay must be positive");
  }
  if (params_.deadline_margin < Duration::zero()) {
    throw std::invalid_argument(
        "MessageScheduler: deadline_margin must be non-negative");
  }
}

MessageScheduler::~MessageScheduler() {
  if (deadline_event_.valid()) sim_.cancel(deadline_event_);
}

std::size_t MessageScheduler::remaining_capacity() const {
  return collected_.size() >= params_.capacity
             ? 0
             : params_.capacity - collected_.size();
}

void MessageScheduler::begin_window(net::HeartbeatMessage own) {
  if (own_) {
    // Previous window still open: periods never overlap, send it out.
    flush(FlushReason::window_end);
  }
  ++stats_.windows;
  window_deadline_ = own.created_at + params_.max_own_delay;
  own_ = std::move(own);
  rearm();
}

bool MessageScheduler::collect(net::HeartbeatMessage forwarded) {
  if (!params_.collect_between_windows && !own_) {
    ++stats_.rejected;
    return false;
  }
  if (collected_.size() >= params_.capacity) {
    // Shouldn't normally happen (we flush when k hits M), but guard it.
    ++stats_.rejected;
    return false;
  }
  collected_.push_back(std::move(forwarded));
  ++stats_.collected;
  if (collected_.size() >= params_.capacity) {
    flush(FlushReason::capacity);
  } else {
    rearm();
  }
  return true;
}

std::optional<TimePoint> MessageScheduler::next_deadline() const {
  std::optional<TimePoint> deadline;
  auto consider = [&](TimePoint t) {
    if (!deadline || t < *deadline) deadline = t;
  };
  if (own_) consider(window_deadline_);
  for (const auto& m : collected_) consider(m.deadline());
  return deadline;
}

void MessageScheduler::rearm() {
  if (deadline_event_.valid()) {
    sim_.cancel(deadline_event_);
    deadline_event_ = {};
  }
  const auto deadline = next_deadline();
  if (!deadline) return;
  TimePoint fire = *deadline - params_.deadline_margin;
  if (fire < sim_.now()) fire = sim_.now();
  deadline_event_ = sim_.schedule_at(fire, [this] {
    deadline_event_ = {};
    // Which bound fired? If it's the relay's own T, count as window_end.
    const TimePoint threshold = sim_.now() + params_.deadline_margin;
    const bool own_bound = own_ && window_deadline_ <= threshold;
    flush(own_bound ? FlushReason::window_end : FlushReason::expiry);
  });
}

void MessageScheduler::flush_now(FlushReason reason) { flush(reason); }

void MessageScheduler::flush(FlushReason reason) {
  if (!own_ && collected_.empty()) return;
  if (deadline_event_.valid()) {
    sim_.cancel(deadline_event_);
    deadline_event_ = {};
  }
  std::vector<net::HeartbeatMessage> batch;
  batch.reserve(collected_.size() + 1);
  if (own_) {
    batch.push_back(std::move(*own_));
    own_.reset();
  }
  for (auto& m : collected_) batch.push_back(std::move(m));
  collected_.clear();

  ++stats_.flushes;
  stats_.flushed_messages += batch.size();
  ++stats_.flushes_by_reason[static_cast<std::size_t>(reason)];
  on_flush_(std::move(batch), reason);
}

}  // namespace d2dhb::core
