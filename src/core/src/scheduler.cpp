#include "core/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace d2dhb::core {

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::capacity: return "capacity";
    case FlushReason::expiry: return "expiry";
    case FlushReason::window_end: return "window_end";
    case FlushReason::forced: return "forced";
  }
  return "?";
}

MessageScheduler::MessageScheduler(sim::Simulator& sim, Params params,
                                   FlushHandler on_flush)
    : sim_(sim), params_(params), on_flush_(std::move(on_flush)) {
  if (params_.capacity == 0) {
    throw std::invalid_argument("MessageScheduler: capacity must be >= 1");
  }
  if (params_.max_own_delay <= Duration::zero()) {
    throw std::invalid_argument(
        "MessageScheduler: max_own_delay must be positive");
  }
  if (params_.deadline_margin < Duration::zero()) {
    throw std::invalid_argument(
        "MessageScheduler: deadline_margin must be non-negative");
  }
  auto& reg = sim_.metrics();
  const metrics::Labels labels{params_.node.value, -1, "scheduler"};
  windows_ctr_ = &reg.counter("scheduler.windows", labels);
  collected_ctr_ = &reg.counter("scheduler.collected", labels);
  rejected_ctr_ = &reg.counter("scheduler.rejected", labels);
  flushed_messages_ctr_ = &reg.counter("scheduler.flushed_messages", labels);
  for (std::size_t i = 0; i < 4; ++i) {
    flush_ctrs_[i] = &reg.counter(
        std::string("scheduler.flushes.") +
            to_string(static_cast<FlushReason>(i)),
        labels);
  }
  // Bundle-size distribution: one bucket per count up to the paper's
  // sweet-spot capacity range (Fig. 9 peaks at M = 7).
  bundle_size_ = &reg.histogram("scheduler.bundle_size",
                                {1, 2, 3, 4, 5, 6, 7, 8}, labels);
}

MessageScheduler::~MessageScheduler() {
  if (deadline_event_.valid()) sim_.cancel(deadline_event_);
}

std::size_t MessageScheduler::remaining_capacity() const {
  return collected_.size() >= params_.capacity
             ? 0
             : params_.capacity - collected_.size();
}

void MessageScheduler::begin_window(net::HeartbeatMessage own) {
  if (own_) {
    // Previous window still open: periods never overlap, send it out.
    flush(FlushReason::window_end);
  }
  windows_ctr_->inc();
  window_deadline_ = own.created_at + params_.max_own_delay;
  own_ = std::move(own);
  rearm();
}

bool MessageScheduler::collect(net::HeartbeatMessage forwarded) {
  if (!params_.collect_between_windows && !own_) {
    rejected_ctr_->inc();
    return false;
  }
  if (collected_.size() >= params_.capacity) {
    // Shouldn't normally happen (we flush when k hits M), but guard it.
    rejected_ctr_->inc();
    return false;
  }
  collected_.push_back(std::move(forwarded));
  collected_ctr_->inc();
  if (collected_.size() >= params_.capacity) {
    flush(FlushReason::capacity);
  } else {
    rearm();
  }
  return true;
}

std::optional<TimePoint> MessageScheduler::next_deadline() const {
  std::optional<TimePoint> deadline;
  auto consider = [&](TimePoint t) {
    if (!deadline || t < *deadline) deadline = t;
  };
  if (own_) consider(window_deadline_);
  for (const auto& m : collected_) consider(m.deadline());
  return deadline;
}

void MessageScheduler::rearm() {
  if (deadline_event_.valid()) {
    sim_.cancel(deadline_event_);
    deadline_event_ = {};
  }
  const auto deadline = next_deadline();
  if (!deadline) return;
  TimePoint fire = *deadline - params_.deadline_margin;
  if (fire < sim_.now()) fire = sim_.now();
  deadline_event_ = sim_.schedule_at(fire, [this] {
    deadline_event_ = {};
    // Which bound fired? If it's the relay's own T, count as window_end.
    const TimePoint threshold = sim_.now() + params_.deadline_margin;
    const bool own_bound = own_ && window_deadline_ <= threshold;
    flush(own_bound ? FlushReason::window_end : FlushReason::expiry);
  });
}

void MessageScheduler::flush_now(FlushReason reason) { flush(reason); }

void MessageScheduler::flush(FlushReason reason) {
  if (!own_ && collected_.empty()) return;
  if (deadline_event_.valid()) {
    sim_.cancel(deadline_event_);
    deadline_event_ = {};
  }
  std::vector<net::HeartbeatMessage> batch;
  batch.reserve(collected_.size() + 1);
  if (own_) {
    batch.push_back(std::move(*own_));
    own_.reset();
  }
  for (auto& m : collected_) batch.push_back(std::move(m));
  collected_.clear();

  flush_ctrs_[static_cast<std::size_t>(reason)]->inc();
  flushed_messages_ctr_->inc(batch.size());
  bundle_size_->observe(static_cast<double>(batch.size()));
  on_flush_(std::move(batch), reason);
}

MessageScheduler::Stats MessageScheduler::stats() const {
  Stats s;
  s.windows = windows_ctr_->value();
  s.collected = collected_ctr_->value();
  s.rejected = rejected_ctr_->value();
  s.flushed_messages = flushed_messages_ctr_->value();
  for (std::size_t i = 0; i < 4; ++i) {
    s.by_reason[i] = flush_ctrs_[i]->value();
    s.flushes_total += s.by_reason[i];
  }
  return s;
}

metrics::StatsRow MessageScheduler::Stats::row() const {
  return {
      {"windows", static_cast<double>(windows)},
      {"collected", static_cast<double>(collected)},
      {"flushes", static_cast<double>(flushes())},
      {"flushed_messages", static_cast<double>(flushed_messages)},
      {"rejected", static_cast<double>(rejected)},
      {"flushes_capacity", static_cast<double>(flushes(FlushReason::capacity))},
      {"flushes_expiry", static_cast<double>(flushes(FlushReason::expiry))},
      {"flushes_window_end",
       static_cast<double>(flushes(FlushReason::window_end))},
      {"flushes_forced", static_cast<double>(flushes(FlushReason::forced))},
      {"mean_bundle_size", mean_bundle_size()},
  };
}

}  // namespace d2dhb::core
