#include "core/incentive.hpp"

#include <algorithm>

namespace d2dhb::core {

IncentiveLedger::IncentiveLedger() : tariff_() {}
IncentiveLedger::IncentiveLedger(Tariff tariff) : tariff_(tariff) {}

void IncentiveLedger::attach(const sim::Simulator& sim) {
  sim_ = &sim;
  // Setup-time call, but issued_lanes_ is lock-guarded state: take the
  // mutex anyway so every write path is uniform under the analysis.
  const MutexLock lock(mutex_);
  issued_lanes_.assign(sim.shard_count(), 0.0);
}

void IncentiveLedger::credit(NodeId relay, std::uint64_t heartbeats) {
  const double credits =
      tariff_.credits_per_heartbeat * static_cast<double>(heartbeats);
  const std::size_t lane = sim_ == nullptr ? 0 : sim_->current_shard();
  const MutexLock lock(mutex_);
  balances_[relay] += credits;
  issued_lanes_[lane] += credits;
}

double IncentiveLedger::balance(NodeId relay) const {
  const MutexLock lock(mutex_);
  const auto it = balances_.find(relay);
  return it == balances_.end() ? 0.0 : it->second;
}

double IncentiveLedger::redeemable_usd(NodeId relay) const {
  return balance(relay) * tariff_.usd_per_credit;
}

double IncentiveLedger::redeemable_mb(NodeId relay) const {
  return balance(relay) * tariff_.free_mb_per_credit;
}

double IncentiveLedger::total_issued() const {
  const MutexLock lock(mutex_);
  // Lane order, not arrival order: the sum is reproducible no matter how
  // the executor interleaved the lanes' credits in real time.
  double total = 0.0;
  for (const double lane : issued_lanes_) total += lane;
  return total;
}

void IncentiveLedger::bind_metrics(metrics::MetricsRegistry& registry) {
  registry.gauge_fn("incentive.credits_issued", {0, -1, "incentive"},
                    [this] { return total_issued(); });
}

double IncentiveLedger::redeem(NodeId relay, double credits) {
  const MutexLock lock(mutex_);
  auto it = balances_.find(relay);
  if (it == balances_.end()) return 0.0;
  const double redeemed = std::min(credits, it->second);
  it->second -= redeemed;
  return redeemed;
}

}  // namespace d2dhb::core
