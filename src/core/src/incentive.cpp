#include "core/incentive.hpp"

#include <algorithm>

namespace d2dhb::core {

IncentiveLedger::IncentiveLedger() : tariff_() {}
IncentiveLedger::IncentiveLedger(Tariff tariff) : tariff_(tariff) {}

void IncentiveLedger::credit(NodeId relay, std::uint64_t heartbeats) {
  const double credits =
      tariff_.credits_per_heartbeat * static_cast<double>(heartbeats);
  balances_[relay] += credits;
  total_issued_ += credits;
}

double IncentiveLedger::balance(NodeId relay) const {
  const auto it = balances_.find(relay);
  return it == balances_.end() ? 0.0 : it->second;
}

double IncentiveLedger::redeemable_usd(NodeId relay) const {
  return balance(relay) * tariff_.usd_per_credit;
}

double IncentiveLedger::redeemable_mb(NodeId relay) const {
  return balance(relay) * tariff_.free_mb_per_credit;
}

void IncentiveLedger::bind_metrics(metrics::MetricsRegistry& registry) {
  registry.gauge_fn("incentive.credits_issued", {0, -1, "incentive"},
                    [this] { return total_issued_; });
}

double IncentiveLedger::redeem(NodeId relay, double credits) {
  auto it = balances_.find(relay);
  if (it == balances_.end()) return 0.0;
  const double redeemed = std::min(credits, it->second);
  it->second -= redeemed;
  return redeemed;
}

}  // namespace d2dhb::core
