#include "core/ue_agent.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/tracelog.hpp"
#include "d2d/wifi_direct.hpp"

namespace d2dhb::core {

UeAgent::UeAgent(sim::Simulator& sim, Phone& phone, Params params,
                 radio::BaseStation& bs, IdGenerator<MessageId>& message_ids,
                 Rng rng, Arena* arena)
    : sim_(sim),
      phone_(phone),
      params_(params),
      bs_(bs),
      message_ids_(message_ids),
      detector_(params.match, rng),
      feedback_(
          sim, params.feedback_timeout,
          [this](const net::HeartbeatMessage& m) {
            fallback_cellular_ctr_->inc();
            trace(sim_.now(), TraceCategory::agent, phone_.id(),
                  "fallback to cellular (heartbeat " +
                      std::to_string(m.id.value) + ")");
            send_via_cellular(m, /*is_fallback=*/true);
          },
          phone.id()),
      monitor_(sim, phone.id(), message_ids, arena) {
  auto& reg = sim_.metrics();
  const metrics::Labels labels{phone_.id().value, -1, "ue"};
  heartbeats_ctr_ = &reg.counter("ue.heartbeats", labels);
  sent_via_d2d_ctr_ = &reg.counter("ue.sent_via_d2d", labels);
  sent_via_cellular_ctr_ = &reg.counter("ue.sent_via_cellular", labels);
  fallback_cellular_ctr_ = &reg.counter("ue.fallback_cellular", labels);
  discoveries_ctr_ = &reg.counter("ue.discoveries", labels);
  matches_ctr_ = &reg.counter("ue.matches", labels);
  connects_ctr_ = &reg.counter("ue.connects", labels);
  connect_failures_ctr_ = &reg.counter("ue.connect_failures", labels);
  link_losses_ctr_ = &reg.counter("ue.link_losses", labels);
  reassessments_ctr_ = &reg.counter("ue.reassessments", labels);
  handovers_ctr_ = &reg.counter("ue.handovers", labels);
  monitor_.set_transport(
      [this](const net::HeartbeatMessage& m) { on_heartbeat(m); });
  add_app(params_.app);
  phone_.modem().set_uplink_handler(
      [this](const net::UplinkBundle& bundle) { bs_.receive(bundle); });
  phone_.wifi().set_receive_handler(
      [this](const net::D2dPayload& payload, NodeId from) {
        on_d2d_receive(payload, from);
      });
  phone_.wifi().set_disconnect_handler(
      [this](NodeId peer) { on_link_lost(peer); });
  phone_.wifi().set_group_owner_intent(0);  // UEs never want to own a group
  if (params_.reassess_interval > Duration::zero()) {
    reassess_timer_.emplace(sim_, params_.reassess_interval,
                            [this] { reassess(); });
  }
}

apps::HeartbeatApp& UeAgent::add_app(apps::AppProfile profile) {
  return monitor_.integrate_app(std::move(profile));
}

void UeAgent::start(Duration heartbeat_offset) {
  running_ = true;
  monitor_.start_all(heartbeat_offset);
  if (reassess_timer_) reassess_timer_->start();
}

void UeAgent::stop() {
  running_ = false;
  monitor_.stop_all();
  if (reassess_timer_) reassess_timer_->stop();
  if (state_ == LinkState::connected && relay_.valid()) {
    phone_.wifi().disconnect(relay_);
  }
  state_ = LinkState::idle;
  relay_ = NodeId{};
}

void UeAgent::on_heartbeat(const net::HeartbeatMessage& message) {
  heartbeats_ctr_->inc();
  if (!params_.use_d2d) {
    send_via_cellular(message, /*is_fallback=*/false);
    return;
  }
  switch (state_) {
    case LinkState::connected:
      send_via_d2d(message);
      return;
    case LinkState::discovering:
    case LinkState::connecting:
      awaiting_link_.push_back(message);
      return;
    case LinkState::idle:
      if (sim_.now() < backoff_until_) {
        send_via_cellular(message, /*is_fallback=*/false);
        return;
      }
      awaiting_link_.push_back(message);
      begin_discovery();
      return;
  }
}

void UeAgent::begin_discovery() {
  state_ = LinkState::discovering;
  discoveries_ctr_->inc();
  phone_.wifi().start_discovery(
      [this](const std::vector<d2d::DiscoveredPeer>& peers) {
        on_discovery(peers);
      });
}

void UeAgent::on_discovery(const std::vector<d2d::DiscoveredPeer>& peers) {
  if (!running_) return;
  const auto choice = detector_.match(peers);
  if (!choice) {
    D2DHB_LOG(debug) << "ue " << phone_.id().value << ": no suitable relay";
    fail_d2d_attempt();
    return;
  }
  matches_ctr_->inc();
  trace(sim_.now(), TraceCategory::agent, phone_.id(),
        "matched relay #" + std::to_string(choice->node.value) + " at ~" +
            std::to_string(choice->estimated_distance.value) + " m");
  state_ = LinkState::connecting;
  phone_.wifi().connect(choice->node, [this, relay = choice->node](
                                          Result<GroupId> result) {
    if (!running_) return;
    if (!result.ok()) {
      connect_failures_ctr_->inc();
      fail_d2d_attempt();
      return;
    }
    connects_ctr_->inc();
    state_ = LinkState::connected;
    relay_ = relay;
    current_backoff_ = Duration::zero();  // success resets the backoff
    // Forward everything that queued up while we were pairing.
    std::vector<net::HeartbeatMessage> queued;
    queued.swap(awaiting_link_);
    for (auto& m : queued) send_via_d2d(std::move(m));
  });
}

void UeAgent::fail_d2d_attempt() {
  state_ = LinkState::idle;
  relay_ = NodeId{};
  if (current_backoff_ == Duration::zero()) {
    current_backoff_ = params_.retry_backoff;
  } else {
    const auto scaled = static_cast<std::int64_t>(
        static_cast<double>(current_backoff_.count()) *
        params_.backoff_multiplier);
    current_backoff_ = std::min(params_.max_backoff, Duration{scaled});
  }
  backoff_until_ = sim_.now() + current_backoff_;
  drain_queue_to_cellular();
}

void UeAgent::drain_queue_to_cellular() {
  std::vector<net::HeartbeatMessage> queued;
  queued.swap(awaiting_link_);
  for (const auto& m : queued) send_via_cellular(m, /*is_fallback=*/false);
}

void UeAgent::send_via_d2d(net::HeartbeatMessage message) {
  // Track before sending: the feedback covers the BS hop as well.
  feedback_.track(message);
  sent_via_d2d_ctr_->inc();
  phone_.wifi().send(relay_, net::D2dPayload{std::move(message)},
                     [this](Status status) {
                       if (!status.ok()) {
                         // Link died mid-send; the tracker entry will be
                         // failed by the disconnect handler (or time out).
                         D2DHB_LOG(debug)
                             << "ue " << phone_.id().value
                             << " d2d send failed: " << status.error().message;
                       }
                     });
}

void UeAgent::send_via_cellular(const net::HeartbeatMessage& message,
                                bool is_fallback) {
  if (!is_fallback) sent_via_cellular_ctr_->inc();
  net::UplinkBundle bundle;
  bundle.sender = phone_.id();
  bundle.messages = {message};
  phone_.modem().transmit(std::move(bundle));
}

void UeAgent::on_d2d_receive(const net::D2dPayload& payload, NodeId) {
  if (const auto* ack = std::get_if<net::FeedbackAck>(&payload)) {
    feedback_.acknowledge(ack->delivered);
  }
}

void UeAgent::on_link_lost(NodeId peer) {
  if (peer != relay_) return;
  state_ = LinkState::idle;
  relay_ = NodeId{};
  // Anything unacknowledged may never be acked — retransmit now rather
  // than risk the server deadline.
  feedback_.fail_all_pending();
  drain_queue_to_cellular();
  if (handover_target_.valid()) {
    // Planned switch: immediately pair with the chosen better relay.
    const NodeId target = handover_target_;
    handover_target_ = NodeId{};
    state_ = LinkState::connecting;
    phone_.wifi().connect(target, [this, target](Result<GroupId> result) {
      if (!running_) return;
      if (!result.ok()) {
        connect_failures_ctr_->inc();
        fail_d2d_attempt();
        return;
      }
      connects_ctr_->inc();
      handovers_ctr_->inc();
      trace(sim_.now(), TraceCategory::agent, phone_.id(),
            "handover to relay #" + std::to_string(target.value));
      state_ = LinkState::connected;
      relay_ = target;
      current_backoff_ = Duration::zero();
      std::vector<net::HeartbeatMessage> queued;
      queued.swap(awaiting_link_);
      for (auto& m : queued) send_via_d2d(std::move(m));
    });
    return;
  }
  link_losses_ctr_->inc();
}

void UeAgent::reassess() {
  if (!running_ || state_ != LinkState::connected) return;
  reassessments_ctr_->inc();
  phone_.wifi().start_discovery(
      [this](const std::vector<d2d::DiscoveredPeer>& peers) {
        if (!running_ || state_ != LinkState::connected) return;
        std::optional<d2d::DiscoveredPeer> current;
        std::vector<d2d::DiscoveredPeer> others;
        for (const auto& peer : peers) {
          if (peer.node == relay_) {
            current = peer;
          } else {
            others.push_back(peer);
          }
        }
        if (!current) return;  // range loss is the link monitor's job
        const auto candidate = detector_.match(others);
        if (!candidate) return;
        if (candidate->estimated_distance.value >=
            params_.reassess_improvement *
                current->estimated_distance.value) {
          return;  // not enough of an improvement to pay the switch
        }
        // Switch: retransmit anything unacked over cellular (the old
        // relay can no longer deliver feedback), then reconnect.
        handover_target_ = candidate->node;
        phone_.wifi().disconnect(relay_);
      });
}

UeAgent::Stats UeAgent::stats() const {
  Stats s;
  s.heartbeats = heartbeats_ctr_->value();
  s.sent_via_d2d = sent_via_d2d_ctr_->value();
  s.sent_via_cellular = sent_via_cellular_ctr_->value();
  s.fallback_cellular = fallback_cellular_ctr_->value();
  s.discoveries = discoveries_ctr_->value();
  s.matches = matches_ctr_->value();
  s.connects = connects_ctr_->value();
  s.connect_failures = connect_failures_ctr_->value();
  s.link_losses = link_losses_ctr_->value();
  s.reassessments = reassessments_ctr_->value();
  s.handovers = handovers_ctr_->value();
  return s;
}

metrics::StatsRow UeAgent::Stats::row() const {
  return {
      {"heartbeats", static_cast<double>(heartbeats)},
      {"sent_via_d2d", static_cast<double>(sent_via_d2d)},
      {"sent_via_cellular", static_cast<double>(sent_via_cellular)},
      {"fallback_cellular", static_cast<double>(fallback_cellular)},
      {"discoveries", static_cast<double>(discoveries)},
      {"matches", static_cast<double>(matches)},
      {"connects", static_cast<double>(connects)},
      {"connect_failures", static_cast<double>(connect_failures)},
      {"link_losses", static_cast<double>(link_losses)},
      {"reassessments", static_cast<double>(reassessments)},
      {"handovers", static_cast<double>(handovers)},
  };
}

}  // namespace d2dhb::core
