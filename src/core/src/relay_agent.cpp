#include "core/relay_agent.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/log.hpp"
#include "common/tracelog.hpp"
#include "d2d/wifi_direct.hpp"

namespace d2dhb::core {

namespace {
MessageScheduler::Params labelled(MessageScheduler::Params p, NodeId node) {
  p.node = node;
  return p;
}
}  // namespace

RelayAgent::RelayAgent(sim::Simulator& sim, Phone& phone, Params params,
                       radio::BaseStation& bs,
                       IdGenerator<MessageId>& message_ids,
                       IncentiveLedger* ledger, Arena* arena)
    : sim_(sim),
      phone_(phone),
      params_(params),
      bs_(bs),
      message_ids_(message_ids),
      ledger_(ledger),
      scheduler_(sim, labelled(params.scheduler, phone.id()),
                 [this](std::vector<net::HeartbeatMessage> batch,
                        FlushReason reason) {
                   on_flush(std::move(batch), reason);
                 }),
      own_app_(sim, phone.id(), AppId{phone.id().value}, params.own_app,
               message_ids,
               [this](const net::HeartbeatMessage& m) { on_own_heartbeat(m); }),
      arena_(arena) {
  phone_.modem().set_uplink_handler(
      [this](const net::UplinkBundle& bundle) { on_uplink_complete(bundle); });
  phone_.wifi().set_receive_handler(
      [this](const net::D2dPayload& payload, NodeId from) {
        on_d2d_receive(payload, from);
      });
  auto& reg = sim_.metrics();
  const metrics::Labels labels{phone_.id().value, -1, "relay"};
  own_heartbeats_ctr_ = &reg.counter("relay.own_heartbeats", labels);
  forwarded_received_ctr_ = &reg.counter("relay.forwarded_received", labels);
  forwarded_rejected_ctr_ = &reg.counter("relay.forwarded_rejected", labels);
  bundles_sent_ctr_ = &reg.counter("relay.bundles_sent", labels);
  heartbeats_uplinked_ctr_ = &reg.counter("relay.heartbeats_uplinked", labels);
  feedback_acks_sent_ctr_ = &reg.counter("relay.feedback_acks_sent", labels);
  if (params_.battery_capacity.value > 0.0) {
    battery_.emplace(phone_.meter(), params_.battery_capacity,
                     [this] { retire(); });
    battery_poll_.emplace(sim_, params_.battery_poll_interval,
                          [this] { poll_battery(); });
    reg.gauge_fn("battery.level", labels,
                 [this] { return battery_->level(); });
    battery_sampler_ = &reg.sampler("battery.trace", labels);
  }
}

double RelayAgent::battery_level() {
  return battery_ ? battery_->level() : 1.0;
}

void RelayAgent::poll_battery() {
  if (!battery_ || retired_) return;
  if (battery_sampler_ != nullptr) {
    battery_sampler_->sample(sim_.now(), battery_->level());
  }
  if (battery_->level() <= params_.retire_battery_level) {
    retire();
    return;
  }
  refresh_advert();  // advertised capacity tracks the battery
}

void RelayAgent::retire() {
  if (retired_) return;
  retired_ = true;
  trace(sim_.now(), TraceCategory::agent, phone_.id(),
        "relay retired (battery)");
  stop();
  if (battery_poll_) battery_poll_->stop();
  if (battery_ && battery_->depleted()) {
    // A dead phone can't even finish the forced flush.
    phone_.modem().force_idle();
  }
  phone_.wifi().disconnect_all();
}

apps::HeartbeatApp& RelayAgent::add_own_app(apps::AppProfile profile) {
  const AppId app_id{phone_.id().value * 1000 + extra_apps_.size() + 2};
  apps::HeartbeatApp& app = arena_.get().create<apps::HeartbeatApp>(
      sim_, phone_.id(), app_id, std::move(profile), message_ids_,
      [this](const net::HeartbeatMessage& m) {
        // Extra own apps' heartbeats join the buffer like forwarded
        // ones: they must go out before their own expiration, but they
        // don't open or close the collection window.
        if (!scheduler_.collect(m)) {
          // Buffer full or strict-mode closed window: send directly.
          net::UplinkBundle bundle;
          bundle.sender = phone_.id();
          bundle.messages = {m};
          phone_.modem().transmit(std::move(bundle));
        }
        refresh_advert();
      });
  extra_apps_.push_back(&app);
  return app;
}

void RelayAgent::start(Duration heartbeat_offset) {
  if (retired_) return;
  running_ = true;
  if (battery_poll_) battery_poll_->start();
  phone_.wifi().set_listening(true);
  phone_.wifi().set_group_owner_intent(d2d::kMaxGroupOwnerIntent);
  refresh_advert();
  if (params_.run_own_heartbeats) own_app_.start(heartbeat_offset);
  for (auto* app : extra_apps_) app->start(heartbeat_offset);
}

void RelayAgent::stop() {
  running_ = false;
  own_app_.stop();
  for (auto* app : extra_apps_) app->stop();
  scheduler_.flush_now(FlushReason::forced);
  phone_.wifi().set_listening(false);
  phone_.wifi().set_advert(d2d::RelayAdvert{});
}

void RelayAgent::on_own_heartbeat(const net::HeartbeatMessage& message) {
  own_heartbeats_ctr_->inc();
  scheduler_.begin_window(message);
  refresh_advert();
}

void RelayAgent::on_d2d_receive(const net::D2dPayload& payload, NodeId from) {
  const auto* hb = std::get_if<net::HeartbeatMessage>(&payload);
  if (hb == nullptr) return;  // relays don't consume feedback acks
  if (!running_ || !scheduler_.collect(*hb)) {
    forwarded_rejected_ctr_->inc();
    D2DHB_LOG(debug) << "relay " << phone_.id().value
                     << " rejected heartbeat from " << from.value;
    return;
  }
  forwarded_received_ctr_->inc();
  refresh_advert();
}

void RelayAgent::on_flush(std::vector<net::HeartbeatMessage> batch,
                          FlushReason reason) {
  if (batch.empty()) return;
  D2DHB_LOG(debug) << "relay " << phone_.id().value << " flush ("
                   << to_string(reason) << "): " << batch.size()
                   << " heartbeats";
  trace(sim_.now(), TraceCategory::scheduler, phone_.id(),
        std::string("flush (") + to_string(reason) + "): " +
            std::to_string(batch.size()) + " heartbeats");
  net::UplinkBundle bundle;
  bundle.sender = phone_.id();
  bundle.messages = std::move(batch);
  phone_.modem().transmit(std::move(bundle));
  refresh_advert();
}

void RelayAgent::on_uplink_complete(const net::UplinkBundle& bundle) {
  bundles_sent_ctr_->inc();
  heartbeats_uplinked_ctr_->inc(bundle.messages.size());
  bs_.receive(bundle);

  // Feedback: ack every UE whose heartbeats rode in this aggregate.
  std::set<NodeId> origins;
  std::uint64_t forwarded = 0;
  for (const auto& m : bundle.messages) {
    if (m.origin == phone_.id()) continue;
    origins.insert(m.origin);
    ++forwarded;
  }
  for (const NodeId ue : origins) {
    net::FeedbackAck ack;
    ack.relay = phone_.id();
    for (const auto& m : bundle.messages) {
      if (m.origin == ue) ack.delivered.push_back(m.id);
    }
    if (phone_.wifi().connected_to(ue)) {
      feedback_acks_sent_ctr_->inc();
      phone_.wifi().send(ue, net::D2dPayload{std::move(ack)},
                         [](Status) { /* best effort */ });
    }
  }
  if (ledger_ != nullptr && forwarded > 0) {
    ledger_->credit(phone_.id(), forwarded);
  }
}

void RelayAgent::refresh_advert() {
  d2d::RelayAdvert advert;
  advert.offers_relay = running_;
  // Battery-aware capacity: a half-drained relay offers half its buffer.
  const double scale = battery_ ? battery_->level() : 1.0;
  advert.capacity_remaining = static_cast<std::uint32_t>(
      std::floor(static_cast<double>(scheduler_.remaining_capacity()) *
                 scale));
  phone_.wifi().set_advert(advert);
  if (params_.scale_group_owner_intent) {
    const auto capacity = std::max<std::size_t>(
        scheduler_.params().capacity, 1);
    const int intent = static_cast<int>(
        d2d::kMaxGroupOwnerIntent * scheduler_.remaining_capacity() /
        capacity);
    phone_.wifi().set_group_owner_intent(intent);
  }
}

RelayAgent::Stats RelayAgent::stats() const {
  Stats s;
  s.own_heartbeats = own_heartbeats_ctr_->value();
  s.forwarded_received = forwarded_received_ctr_->value();
  s.forwarded_rejected = forwarded_rejected_ctr_->value();
  s.bundles_sent = bundles_sent_ctr_->value();
  s.heartbeats_uplinked = heartbeats_uplinked_ctr_->value();
  s.feedback_acks_sent = feedback_acks_sent_ctr_->value();
  return s;
}

metrics::StatsRow RelayAgent::Stats::row() const {
  return {
      {"own_heartbeats", static_cast<double>(own_heartbeats)},
      {"forwarded_received", static_cast<double>(forwarded_received)},
      {"forwarded_rejected", static_cast<double>(forwarded_rejected)},
      {"bundles_sent", static_cast<double>(bundles_sent)},
      {"heartbeats_uplinked", static_cast<double>(heartbeats_uplinked)},
      {"feedback_acks_sent", static_cast<double>(feedback_acks_sent)},
  };
}

}  // namespace d2dhb::core
