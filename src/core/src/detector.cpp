#include "core/detector.hpp"

#include <algorithm>
#include <cmath>

namespace d2dhb::core {

Meters break_even_distance(const d2d::D2dEnergyProfile& d2d,
                           MicroAmpHours cellular_per_heartbeat,
                           Bytes heartbeat_size) {
  // Solve send_charge(size, d) == cellular_per_heartbeat for d:
  //   base · (1 + f·(d - ref)²) = E_c  =>  d = ref + sqrt((E_c/base - 1)/f)
  const double base = d2d.send_charge(heartbeat_size, d2d.reference_distance)
                          .value;
  if (base <= 0.0 || cellular_per_heartbeat.value <= base ||
      d2d.distance_factor <= 0.0) {
    return Meters{0.0};
  }
  const double ratio = cellular_per_heartbeat.value / base - 1.0;
  return Meters{d2d.reference_distance.value +
                std::sqrt(ratio / d2d.distance_factor)};
}

std::optional<d2d::DiscoveredPeer> D2dDetector::match(
    const std::vector<d2d::DiscoveredPeer>& discovered) {
  std::vector<d2d::DiscoveredPeer> candidates;
  for (const auto& peer : discovered) {
    if (!peer.advert.offers_relay) continue;
    if (policy_.require_capacity && peer.advert.capacity_remaining == 0) {
      continue;
    }
    if (peer.estimated_distance.value > policy_.max_distance.value) continue;
    candidates.push_back(peer);
  }
  if (candidates.empty()) return std::nullopt;
  switch (policy_.strategy) {
    case MatchStrategy::nearest:
      return *std::min_element(candidates.begin(), candidates.end(),
                               [](const auto& a, const auto& b) {
                                 return a.estimated_distance.value <
                                        b.estimated_distance.value;
                               });
    case MatchStrategy::random:
      return candidates[rng_.uniform_int(0, candidates.size() - 1)];
    case MatchStrategy::first:
      return candidates.front();
  }
  return std::nullopt;
}

}  // namespace d2dhb::core
