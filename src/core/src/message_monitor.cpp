#include "core/message_monitor.hpp"

#include <utility>

namespace d2dhb::core {

MessageMonitor::MessageMonitor(sim::Simulator& sim, NodeId node,
                               IdGenerator<MessageId>& message_ids,
                               Arena* arena)
    : sim_(sim), node_(node), message_ids_(message_ids), arena_(arena) {}

void MessageMonitor::set_transport(Transport transport) {
  transport_ = std::move(transport);
}

apps::HeartbeatApp& MessageMonitor::integrate_app(apps::AppProfile profile) {
  const AppId app_id{apps_.empty() ? node_.value
                                   : node_.value * 1000 + apps_.size() + 1};
  apps::HeartbeatApp& app = arena_.get().create<apps::HeartbeatApp>(
      sim_, node_, app_id, std::move(profile), message_ids_,
      [this](const net::HeartbeatMessage& m) { on_heartbeat(m); });
  apps_.push_back(&app);
  return app;
}

void MessageMonitor::start_all(Duration offset) {
  for (auto* app : apps_) app->start(offset);
}

void MessageMonitor::stop_all() {
  for (auto* app : apps_) app->stop();
}

void MessageMonitor::on_heartbeat(const net::HeartbeatMessage& message) {
  ++intercepted_;
  if (transport_) transport_(message);
}

}  // namespace d2dhb::core
