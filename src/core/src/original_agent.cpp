#include "core/original_agent.hpp"

#include <utility>

namespace d2dhb::core {

OriginalAgent::OriginalAgent(sim::Simulator& sim, Phone& phone,
                             apps::AppProfile app, radio::BaseStation& bs,
                             IdGenerator<MessageId>& message_ids,
                             Arena* arena)
    : sim_(sim), phone_(phone), bs_(bs), arena_(arena) {
  phone_.modem().set_uplink_handler(
      [this](const net::UplinkBundle& bundle) { bs_.receive(bundle); });
  sent_ctr_ = &sim_.metrics().counter("original.heartbeats_sent",
                                      {phone_.id().value, -1, "original"});
  add_app(std::move(app), message_ids);
}

void OriginalAgent::add_app(apps::AppProfile app,
                            IdGenerator<MessageId>& message_ids) {
  // The first app uses the node-scoped AppId so server registrations by
  // node line up; additional apps get derived ids.
  const AppId app_id{apps_.empty()
                         ? phone_.id().value
                         : phone_.id().value * 1000 + apps_.size() + 1};
  apps_.push_back(&arena_.get().create<apps::HeartbeatApp>(
      sim_, phone_.id(), app_id, std::move(app), message_ids,
      [this](const net::HeartbeatMessage& m) { send(m); }));
}

void OriginalAgent::start(Duration heartbeat_offset) {
  for (auto* app : apps_) app->start(heartbeat_offset);
}

void OriginalAgent::stop() {
  for (auto* app : apps_) app->stop();
}

void OriginalAgent::send(const net::HeartbeatMessage& message) {
  sent_ctr_->inc();
  net::UplinkBundle bundle;
  bundle.sender = phone_.id();
  bundle.messages = {message};
  phone_.modem().transmit(std::move(bundle));
}

}  // namespace d2dhb::core
