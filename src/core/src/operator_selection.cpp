#include "core/operator_selection.hpp"

#include <algorithm>
#include <unordered_set>

#include "mobility/spatial_grid.hpp"
#include "world/node_table.hpp"

namespace d2dhb::core {

namespace {

bool eligible(const RelayCandidate& c, const SelectionConfig& config) {
  return c.volunteers && c.battery_level >= config.min_battery;
}

std::size_t budget(const SelectionConfig& config, std::size_t eligible_n) {
  return config.max_relays == 0 ? eligible_n
                                : std::min(config.max_relays, eligible_n);
}

/// World index over the candidate layout; every radius count below goes
/// through it instead of an all-pairs distance loop. Cell size = the
/// coverage radius, so a query touches at most one neighbour ring.
mobility::PointGrid candidate_grid(
    const std::vector<RelayCandidate>& candidates, Meters coverage_radius) {
  mobility::PointGrid grid{coverage_radius.value > 0.0 ? coverage_radius
                                                       : Meters{1.0}};
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    grid.insert(i, candidates[i].position);
  }
  return grid;
}

}  // namespace

double coverage_of(const std::vector<RelayCandidate>& candidates,
                   const std::vector<NodeId>& relays,
                   Meters coverage_radius) {
  // detlint: allow(unordered-state): membership tests only (contains),
  // never iterated — coverage loops walk the candidates vector in order.
  std::unordered_set<NodeId> relay_set(relays.begin(), relays.end());
  // Index only the relay positions: each non-relay is covered iff some
  // relay lies within the coverage radius (early-exit point query).
  mobility::PointGrid relay_grid{coverage_radius.value > 0.0
                                     ? coverage_radius
                                     : Meters{1.0}};
  for (const auto& c : candidates) {
    if (relay_set.contains(c.node)) relay_grid.insert(0, c.position);
  }
  std::size_t others = 0;
  std::size_t covered = 0;
  for (const auto& c : candidates) {
    if (relay_set.contains(c.node)) continue;
    ++others;
    if (relay_grid.any_within(c.position, coverage_radius)) ++covered;
  }
  return others == 0 ? 1.0
                     : static_cast<double>(covered) /
                           static_cast<double>(others);
}

SelectionResult select_relays(const std::vector<RelayCandidate>& candidates,
                              const SelectionConfig& config, Rng& rng) {
  std::vector<std::size_t> pool;  // indices of eligible volunteers
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (eligible(candidates[i], config)) pool.push_back(i);
  }
  const std::size_t want = budget(config, pool.size());

  SelectionResult result;
  switch (config.policy) {
    case SelectionPolicy::random: {
      // Fisher-Yates prefix shuffle of the pool.
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t j = i + rng.uniform_int(0, pool.size() - 1 - i);
        std::swap(pool[i], pool[j]);
        result.relays.push_back(candidates[pool[i]].node);
      }
      break;
    }
    case SelectionPolicy::density: {
      const mobility::PointGrid grid =
          candidate_grid(candidates, config.coverage_radius);
      std::vector<std::pair<std::size_t, std::size_t>> ranked;  // (nbrs, idx)
      for (const std::size_t i : pool) {
        // count_within includes the candidate itself (distance 0).
        const std::size_t neighbours =
            grid.count_within(candidates[i].position,
                              config.coverage_radius) -
            1;
        ranked.emplace_back(neighbours, i);
      }
      std::sort(ranked.begin(), ranked.end(), [&](const auto& a,
                                                  const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return candidates[a.second].node < candidates[b.second].node;
      });
      for (std::size_t k = 0; k < want; ++k) {
        result.relays.push_back(candidates[ranked[k].second].node);
      }
      break;
    }
    case SelectionPolicy::coverage_greedy: {
      const mobility::PointGrid grid =
          candidate_grid(candidates, config.coverage_radius);
      std::vector<bool> covered(candidates.size(), false);
      // detlint: allow(unordered-state): membership tests only; the
      // greedy rounds iterate `pool` (a vector) in candidate order.
      std::unordered_set<std::size_t> chosen;
      std::vector<std::size_t> in_radius;
      for (std::size_t round = 0; round < want; ++round) {
        std::size_t best = SIZE_MAX;
        std::size_t best_gain = 0;
        for (const std::size_t i : pool) {
          if (chosen.contains(i)) continue;
          std::size_t gain = 0;
          grid.query_radius(candidates[i].position, config.coverage_radius,
                            in_radius);
          for (const std::size_t j : in_radius) {
            if (j == i || covered[j] || chosen.contains(j)) continue;
            ++gain;
          }
          // Ties broken by node id for determinism; a relay with zero
          // marginal gain is still picked if budget remains (it serves
          // itself by not paying relay-search costs).
          if (best == SIZE_MAX || gain > best_gain ||
              (gain == best_gain &&
               candidates[i].node < candidates[best].node)) {
            best = i;
            best_gain = gain;
          }
        }
        if (best == SIZE_MAX) break;
        chosen.insert(best);
        result.relays.push_back(candidates[best].node);
        grid.query_radius(candidates[best].position, config.coverage_radius,
                          in_radius);
        for (const std::size_t j : in_radius) {
          if (covered[j] || chosen.contains(j)) continue;
          covered[j] = true;
        }
      }
      break;
    }
  }
  result.covered_fraction =
      coverage_of(candidates, result.relays, config.coverage_radius);
  return result;
}

std::vector<RelayCandidate> candidates_from(const world::NodeTable& nodes,
                                            TimePoint t) {
  std::vector<RelayCandidate> candidates;
  candidates.reserve(nodes.size());
  for (const NodeId id : nodes.ids()) {
    candidates.push_back(RelayCandidate{id, nodes.position_of(id, t),
                                        nodes.battery_of(id), true});
  }
  return candidates;
}

}  // namespace d2dhb::core
