// Closed-form analytical model of the framework's savings.
//
// The simulation integrates energy event by event; this module predicts
// the same quantities from the calibrated profiles directly. The
// integration tests require simulation and analysis to agree, which
// pins both against each other: a regression in either shows up as a
// divergence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "d2d/energy_profile.hpp"
#include "radio/rrc_profile.hpp"

namespace d2dhb::core::analysis {

/// Radio charge of one isolated uplink transmission carrying `payload`:
/// promotion + burst + both inactivity tails.
MicroAmpHours cellular_transmission_charge(const radio::RrcProfile& rrc,
                                           Bytes payload);

/// Layer-3 messages of one isolated transmission (full RRC cycle plus
/// the bearer reconfiguration for payloads over the threshold).
std::size_t cellular_transmission_l3(const radio::RrcProfile& rrc,
                                     Bytes payload);

/// Inputs of the compressed pair experiment (Section V methodology).
struct PairModel {
  std::size_t ues{1};
  std::size_t transmissions{8};
  double distance_m{1.0};
  Bytes heartbeat{54};
  Duration period{seconds(20)};
  radio::RrcProfile rrc{radio::wcdma_profile()};
  d2d::D2dEnergyProfile d2d{};
};

struct PairPrediction {
  // Energy (radio-attributable, µAh).
  double original_system_uah{0.0};
  double d2d_ue_uah{0.0};     ///< All UEs combined.
  double d2d_relay_uah{0.0};
  double d2d_system_uah{0.0};
  // Signaling.
  std::uint64_t original_l3{0};
  std::uint64_t d2d_l3{0};
  // Derived savings fractions.
  double system_energy_saving{0.0};
  double ue_energy_saving{0.0};
  double signaling_saving{0.0};
};

/// Predicts the pair experiment's outcome analytically.
PairPrediction predict_pair(const PairModel& model);

/// Number of transmissions after which the whole system's cumulative
/// energy drops below the original system's (the crossover Fig. 9 shows
/// near k = 1): smallest k with predicted system saving > 0, or 0 if
/// never. Searches k in [1, limit].
std::size_t break_even_transmissions(PairModel model,
                                     std::size_t limit = 100);

}  // namespace d2dhb::core::analysis
