// Message Monitor — the third component of the paper's architecture
// (Fig. 2) and its app-facing API (Section IV-B): "we design a set of
// APIs for app developers to integrate the proposed D2D based framework
// into their existing apps."
//
// An IM app integrates by registering its profile; the monitor
// intercepts every heartbeat the app emits together with its
// transmission-related parameters (period, expiration) and hands it to
// whatever transport the node's role wires up — the UE agent's
// relay-or-cellular path, or a bare modem.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/heartbeat_app.hpp"
#include "common/arena.hpp"
#include "common/id.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

class MessageMonitor {
 public:
  /// Receives every intercepted heartbeat.
  using Transport = std::function<void(const net::HeartbeatMessage&)>;

  /// `arena` pools the integrated apps (a Scenario passes the node's
  /// strip arena, so every app on a strip is strip-local memory);
  /// nullptr falls back to a private per-monitor heap arena —
  /// standalone monitors behave exactly like the pre-arena code.
  MessageMonitor(sim::Simulator& sim, NodeId node,
                 IdGenerator<MessageId>& message_ids,
                 Arena* arena = nullptr);

  /// Where intercepted heartbeats go. Replacing the transport affects
  /// subsequent heartbeats only.
  void set_transport(Transport transport);

  /// The integration point for app developers: register the app's
  /// profile; the monitor owns the resulting heartbeat source.
  apps::HeartbeatApp& integrate_app(apps::AppProfile profile);

  void start_all(Duration offset = Duration::zero());
  void stop_all();

  std::vector<apps::HeartbeatApp*>& apps() { return apps_; }
  std::size_t app_count() const { return apps_.size(); }
  std::uint64_t intercepted() const { return intercepted_; }
  NodeId node() const { return node_; }

 private:
  void on_heartbeat(const net::HeartbeatMessage& message);

  sim::Simulator& sim_;
  NodeId node_;
  IdGenerator<MessageId>& message_ids_;
  Transport transport_;
  /// Where integrated apps are constructed (borrowed strip arena or a
  /// private heap-mode one); the arena owns their lifetimes.
  ArenaHandle arena_;
  std::vector<apps::HeartbeatApp*> apps_;
  std::uint64_t intercepted_{0};
};

}  // namespace d2dhb::core
