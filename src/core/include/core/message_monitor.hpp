// Message Monitor — the third component of the paper's architecture
// (Fig. 2) and its app-facing API (Section IV-B): "we design a set of
// APIs for app developers to integrate the proposed D2D based framework
// into their existing apps."
//
// An IM app integrates by registering its profile; the monitor
// intercepts every heartbeat the app emits together with its
// transmission-related parameters (period, expiration) and hands it to
// whatever transport the node's role wires up — the UE agent's
// relay-or-cellular path, or a bare modem.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "apps/heartbeat_app.hpp"
#include "common/id.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

class MessageMonitor {
 public:
  /// Receives every intercepted heartbeat.
  using Transport = std::function<void(const net::HeartbeatMessage&)>;

  MessageMonitor(sim::Simulator& sim, NodeId node,
                 IdGenerator<MessageId>& message_ids);

  /// Where intercepted heartbeats go. Replacing the transport affects
  /// subsequent heartbeats only.
  void set_transport(Transport transport);

  /// The integration point for app developers: register the app's
  /// profile; the monitor owns the resulting heartbeat source.
  apps::HeartbeatApp& integrate_app(apps::AppProfile profile);

  void start_all(Duration offset = Duration::zero());
  void stop_all();

  std::vector<std::unique_ptr<apps::HeartbeatApp>>& apps() { return apps_; }
  std::size_t app_count() const { return apps_.size(); }
  std::uint64_t intercepted() const { return intercepted_; }
  NodeId node() const { return node_; }

 private:
  void on_heartbeat(const net::HeartbeatMessage& message);

  sim::Simulator& sim_;
  NodeId node_;
  IdGenerator<MessageId>& message_ids_;
  Transport transport_;
  std::vector<std::unique_ptr<apps::HeartbeatApp>> apps_;
  std::uint64_t intercepted_{0};
};

}  // namespace d2dhb::core
