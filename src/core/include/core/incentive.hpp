// Incentive ledger — the Karma-Go-style micro-payment scheme of
// Section III-A: the operator credits relays for every forwarded
// heartbeat they deliver, redeemable as free cellular data or money.
#pragma once

#include <cstdint>
#include <map>

#include "common/id.hpp"
#include "metrics/registry.hpp"

namespace d2dhb::core {

class IncentiveLedger {
 public:
  struct Tariff {
    /// Credits granted per forwarded heartbeat delivered to the BS.
    double credits_per_heartbeat{1.0};
    /// Redemption rates (Karma Go: "$1 in credits or 100 MB of free
    /// data" per referral-sized batch of 100 credits).
    double usd_per_credit{0.01};
    double free_mb_per_credit{1.0};
  };

  IncentiveLedger();
  explicit IncentiveLedger(Tariff tariff);

  /// Credits `relay` for delivering `heartbeats` forwarded messages.
  void credit(NodeId relay, std::uint64_t heartbeats);

  double balance(NodeId relay) const;
  double redeemable_usd(NodeId relay) const;
  double redeemable_mb(NodeId relay) const;

  /// Deducts up to `credits`; returns the amount actually redeemed.
  double redeem(NodeId relay, double credits);

  double total_issued() const { return total_issued_; }
  const Tariff& tariff() const { return tariff_; }

  /// Exposes the ledger through a registry (the ledger itself has no
  /// simulator handle; the owning Scenario binds it once at setup).
  void bind_metrics(metrics::MetricsRegistry& registry);

 private:
  Tariff tariff_;
  std::map<NodeId, double> balances_;
  double total_issued_{0.0};
};

}  // namespace d2dhb::core
