// Incentive ledger — the Karma-Go-style micro-payment scheme of
// Section III-A: the operator credits relays for every forwarded
// heartbeat they deliver, redeemable as free cellular data or money.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/id.hpp"
#include "common/thread_annotations.hpp"
#include "metrics/registry.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

class IncentiveLedger {
 public:
  struct Tariff {
    /// Credits granted per forwarded heartbeat delivered to the BS.
    double credits_per_heartbeat{1.0};
    /// Redemption rates (Karma Go: "$1 in credits or 100 MB of free
    /// data" per referral-sized batch of 100 credits).
    double usd_per_credit{0.01};
    double free_mb_per_credit{1.0};
  };

  IncentiveLedger();
  explicit IncentiveLedger(Tariff tariff);

  /// Binds the ledger to the world's executor so concurrent credits land
  /// in per-kernel subtotals. Without it the ledger runs with a single
  /// lane — correct for any single-kernel world.
  void attach(const sim::Simulator& sim) D2DHB_EXCLUDES(mutex_);

  /// Credits `relay` for delivering `heartbeats` forwarded messages.
  /// Thread-safe; the issued total accumulates per executing kernel and
  /// is summed in kernel order, so the floating-point result is the same
  /// for every executor thread count (and matches the classic serial
  /// accumulation when the world has one kernel).
  void credit(NodeId relay, std::uint64_t heartbeats)
      D2DHB_EXCLUDES(mutex_);

  double balance(NodeId relay) const D2DHB_EXCLUDES(mutex_);
  double redeemable_usd(NodeId relay) const D2DHB_EXCLUDES(mutex_);
  double redeemable_mb(NodeId relay) const D2DHB_EXCLUDES(mutex_);

  /// Deducts up to `credits`; returns the amount actually redeemed.
  double redeem(NodeId relay, double credits) D2DHB_EXCLUDES(mutex_);

  double total_issued() const D2DHB_EXCLUDES(mutex_);
  const Tariff& tariff() const { return tariff_; }

  /// Exposes the ledger through a registry (the owning Scenario binds it
  /// once at setup).
  void bind_metrics(metrics::MetricsRegistry& registry);

 private:
  Tariff tariff_;
  const sim::Simulator* sim_{nullptr};
  mutable Mutex mutex_;
  std::map<NodeId, double> balances_ D2DHB_GUARDED_BY(mutex_);
  /// One subtotal per kernel; lane k only ever accumulates credits
  /// issued while kernel k executes, in that kernel's event order.
  std::vector<double> issued_lanes_ D2DHB_GUARDED_BY(mutex_){0.0};
};

}  // namespace d2dhb::core
