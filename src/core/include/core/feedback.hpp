// UE-side feedback tracking (Section III-A).
//
// After forwarding a heartbeat to the relay, the UE waits for the
// relay's acknowledgment that the aggregate reached the BS. "In case
// that the UE does not receive the feedback information after a certain
// interval, it will send the heartbeat messages via cellular network."
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"
#include "metrics/registry.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

class FeedbackTracker {
 public:
  /// Invoked with the original heartbeat when feedback never arrived —
  /// the UE's cue to retransmit over cellular.
  using FallbackHandler = std::function<void(const net::HeartbeatMessage&)>;

  /// Point-in-time snapshot of the tracker's registry series.
  struct Stats {
    std::uint64_t tracked{0};
    std::uint64_t acknowledged{0};
    std::uint64_t timed_out{0};
    std::uint64_t failed_immediately{0};  ///< fail_all_pending() victims.

    metrics::StatsRow row() const;
  };

  /// `node` labels this tracker's metrics (0 = unlabeled unit-test use).
  FeedbackTracker(sim::Simulator& sim, Duration timeout,
                  FallbackHandler on_fallback, NodeId node = {});
  ~FeedbackTracker();
  FeedbackTracker(const FeedbackTracker&) = delete;
  FeedbackTracker& operator=(const FeedbackTracker&) = delete;

  /// Arms a timeout for one forwarded heartbeat.
  void track(net::HeartbeatMessage message);

  /// Processes a relay's FeedbackAck; unknown ids are ignored.
  void acknowledge(const std::vector<MessageId>& delivered);

  /// Fails every pending message right now (the D2D link just died and
  /// waiting for the timeout would risk the expiry deadlines).
  void fail_all_pending();

  std::size_t pending() const { return pending_.size(); }
  /// Snapshot of this tracker's metrics (assembled from the registry).
  Stats stats() const;
  Stats snapshot() const { return stats(); }
  Duration timeout() const { return timeout_; }

 private:
  struct Entry {
    net::HeartbeatMessage message;
    sim::EventId timeout_event;
  };

  sim::Simulator& sim_;
  Duration timeout_;
  FallbackHandler on_fallback_;
  // detlint: allow(unordered-state): hot-path id lookups; the only
  // sim-visible iteration (fail_all_pending) sorts victims by MessageId
  // first, and the destructor sweep only cancels events (order-free).
  std::unordered_map<MessageId, Entry> pending_;

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* tracked_ctr_;
  metrics::Counter* acknowledged_ctr_;
  metrics::Counter* timed_out_ctr_;
  metrics::Counter* failed_immediately_ctr_;
};

}  // namespace d2dhb::core
