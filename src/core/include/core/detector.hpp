// D2D Detector — relay discovery and matching pre-judgment.
//
// Section III-C: before establishing a D2D connection the UE makes a
// pre-judgment on (a) the RSSI-estimated distance to each discovered
// relay and (b) the relay's remaining capacity, and "tries to match the
// available relay with the shortest distance". If nothing qualifies the
// heartbeat goes out over cellular directly.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "d2d/energy_profile.hpp"
#include "d2d/medium.hpp"

namespace d2dhb::core {

enum class MatchStrategy {
  nearest,  ///< The paper's policy: shortest estimated distance.
  random,   ///< Ablation baseline: any qualifying relay.
  first,    ///< Ablation baseline: discovery order.
};

struct MatchPolicy {
  MatchStrategy strategy{MatchStrategy::nearest};
  /// Relays farther than this are rejected outright (energy
  /// pre-judgment). Defaults to the break-even distance below.
  Meters max_distance{12.0};
  /// Require advertised remaining capacity > 0.
  bool require_capacity{true};
};

/// Distance at which a single D2D heartbeat send costs as much cellular
/// charge as one direct cellular heartbeat — beyond it the UE would
/// spend *more* energy using the relay (Fig. 12's crossover).
Meters break_even_distance(const d2d::D2dEnergyProfile& d2d,
                           MicroAmpHours cellular_per_heartbeat,
                           Bytes heartbeat_size);

class D2dDetector {
 public:
  explicit D2dDetector(MatchPolicy policy, Rng rng)
      : policy_(policy), rng_(rng) {}

  /// Picks the relay to pair with, or nullopt => send via cellular.
  std::optional<d2d::DiscoveredPeer> match(
      const std::vector<d2d::DiscoveredPeer>& discovered);

  const MatchPolicy& policy() const { return policy_; }

 private:
  MatchPolicy policy_;
  Rng rng_;
};

}  // namespace d2dhb::core
