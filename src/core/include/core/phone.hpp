// A simulated smartphone: energy meter, platform baseline draw, cellular
// modem, Wi-Fi Direct radio, and a mobility model — everything the
// paper's prototype runs on, minus Android.
#pragma once

#include <memory>
#include <string>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "d2d/energy_profile.hpp"
#include "d2d/medium.hpp"
#include "d2d/wifi_direct.hpp"
#include "energy/energy_meter.hpp"
#include "mobility/mobility.hpp"
#include "radio/cellular_modem.hpp"
#include "radio/rrc_profile.hpp"
#include "radio/signaling.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

struct PhoneConfig {
  radio::RrcProfile rrc{radio::wcdma_profile()};
  d2d::D2dEnergyProfile d2d_energy{};
  /// Screen-off platform draw — everything that isn't a radio. Excluded
  /// from radio-attributable comparisons; identical across systems.
  MilliAmps baseline_current{40.0};
  /// Owning mobility handoff: Scenario::add_phone adopts the model into
  /// the phone's strip arena and points `mobility_ref` at it, so the
  /// Phone itself never owns a heap allocation. Builders keep writing
  /// `pc.mobility = std::make_unique<...>(...)` as before.
  std::unique_ptr<mobility::MobilityModel> mobility;
  /// Non-owning alternative: the model lives elsewhere (a strip arena
  /// via Scenario::emplace_mobility, a test fixture) and must outlive
  /// the phone. Takes precedence over `mobility` when both are set.
  const mobility::MobilityModel* mobility_ref{nullptr};
};

class Phone {
 public:
  Phone(sim::Simulator& sim, NodeId id, PhoneConfig config,
        d2d::WifiDirectMedium& medium, radio::SignalingCounter& signaling,
        Rng rng);
  Phone(const Phone&) = delete;
  Phone& operator=(const Phone&) = delete;

  NodeId id() const { return id_; }
  energy::EnergyMeter& meter() { return meter_; }
  radio::CellularModem& modem() { return modem_; }
  d2d::WifiDirectRadio& wifi() { return wifi_; }
  const mobility::MobilityModel& mobility() const { return *mobility_; }

  /// Charge drawn by the cellular radio alone.
  MicroAmpHours cellular_charge() { return modem_.radio_charge(); }
  /// Charge drawn by the Wi-Fi Direct radio alone.
  MicroAmpHours wifi_charge() { return wifi_.radio_charge(); }
  /// Cellular + Wi-Fi Direct: the "heartbeat transmission" energy the
  /// paper's comparisons are about.
  MicroAmpHours radio_charge() { return cellular_charge() + wifi_charge(); }
  /// Everything including the platform baseline.
  MicroAmpHours total_charge() { return meter_.total_charge(); }

 private:
  NodeId id_;
  /// Non-owning: the model lives in the scenario's strip arena (or a
  /// caller-owned fixture) and outlives the phone.
  const mobility::MobilityModel* mobility_;
  energy::EnergyMeter meter_;
  energy::ComponentHandle baseline_;
  radio::CellularModem modem_;
  d2d::WifiDirectRadio wifi_;
};

}  // namespace d2dhb::core
