// Relay role (Section III): advertises itself over Wi-Fi Direct, collects
// forwarded heartbeats from connected UEs, schedules them with the
// Message Scheduler, transmits the aggregate over one cellular
// connection, and acks each UE once the aggregate reached the BS.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/heartbeat_app.hpp"
#include "common/arena.hpp"
#include "core/incentive.hpp"
#include "core/phone.hpp"
#include "core/scheduler.hpp"
#include "energy/battery.hpp"
#include "radio/base_station.hpp"

namespace d2dhb::core {

class RelayAgent {
 public:
  struct Params {
    MessageScheduler::Params scheduler{};
    apps::AppProfile own_app{apps::standard_app()};
    /// Relays that run no IM app of their own never open windows; they
    /// still aggregate forwarded heartbeats on expiry deadlines.
    bool run_own_heartbeats{true};
    /// Android groupOwnerIntent starts at the maximum for relays and is
    /// reduced proportionally as the buffer fills (Section IV-C).
    bool scale_group_owner_intent{true};
    /// Battery-aware capacity (Section III-C: relays "adjust the value
    /// according their situations, such as their battery usage").
    /// 0 = unlimited power (no battery modeled). When set, the
    /// advertised capacity scales with the remaining battery fraction
    /// and the relay retires below `retire_battery_level`.
    MicroAmpHours battery_capacity{0.0};
    double retire_battery_level{0.1};
    Duration battery_poll_interval{seconds(30)};
  };

  /// Point-in-time snapshot of the relay's registry series.
  struct Stats {
    std::uint64_t own_heartbeats{0};
    std::uint64_t forwarded_received{0};
    std::uint64_t forwarded_rejected{0};
    std::uint64_t bundles_sent{0};
    std::uint64_t heartbeats_uplinked{0};
    std::uint64_t feedback_acks_sent{0};

    metrics::StatsRow row() const;
  };

  /// `arena` pools extra own-apps (a Scenario passes the phone's strip
  /// arena); nullptr = private per-agent heap fallback.
  RelayAgent(sim::Simulator& sim, Phone& phone, Params params,
             radio::BaseStation& bs, IdGenerator<MessageId>& message_ids,
             IncentiveLedger* ledger = nullptr, Arena* arena = nullptr);

  /// Installs another IM app on the relay phone itself. The primary app
  /// drives the scheduler's collection window (its period is T); extra
  /// apps' heartbeats ride the aggregates under their own expiration
  /// deadlines, like forwarded messages do.
  apps::HeartbeatApp& add_own_app(apps::AppProfile profile);

  /// Starts the relay service (advertising + own heartbeats).
  void start(Duration heartbeat_offset = Duration::zero());
  void stop();

  Phone& phone() { return phone_; }
  MessageScheduler& scheduler() { return scheduler_; }
  const MessageScheduler& scheduler() const { return scheduler_; }
  apps::HeartbeatApp& own_app() { return own_app_; }
  /// Snapshot of this relay's metrics (assembled from the registry).
  Stats stats() const;
  Stats snapshot() const { return stats(); }
  bool running() const { return running_; }
  /// Battery level in [0, 1]; 1.0 when no battery is modeled.
  double battery_level();
  bool retired() const { return retired_; }

 private:
  void on_own_heartbeat(const net::HeartbeatMessage& message);
  void on_d2d_receive(const net::D2dPayload& payload, NodeId from);
  void on_flush(std::vector<net::HeartbeatMessage> batch, FlushReason reason);
  void on_uplink_complete(const net::UplinkBundle& bundle);
  void refresh_advert();
  void poll_battery();
  void retire();

  sim::Simulator& sim_;
  Phone& phone_;
  Params params_;
  radio::BaseStation& bs_;
  IdGenerator<MessageId>& message_ids_;
  IncentiveLedger* ledger_;
  MessageScheduler scheduler_;
  apps::HeartbeatApp own_app_;
  /// Where extra own-apps live (borrowed strip arena or a private
  /// heap-mode one); the arena owns their lifetimes.
  ArenaHandle arena_;
  std::vector<apps::HeartbeatApp*> extra_apps_;
  std::optional<energy::Battery> battery_;
  std::optional<sim::PeriodicTimer> battery_poll_;
  bool running_{false};
  bool retired_{false};

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* own_heartbeats_ctr_;
  metrics::Counter* forwarded_received_ctr_;
  metrics::Counter* forwarded_rejected_ctr_;
  metrics::Counter* bundles_sent_ctr_;
  metrics::Counter* heartbeats_uplinked_ctr_;
  metrics::Counter* feedback_acks_sent_ctr_;
  metrics::Sampler* battery_sampler_{nullptr};
};

}  // namespace d2dhb::core
