// Related-work baseline strategies (Sections I & VI), implemented as one
// configurable cellular-only agent running realistic mixed traffic
// (heartbeats + chat data):
//
//   * original          — send everything immediately (the paper's
//                         "system without any modification").
//   * period extension  — stretch the heartbeat period by a factor [2];
//                         fewer transmissions, worse offline detection.
//   * piggybacking      — delay heartbeats up to their expiration hoping
//                         a data transfer comes along to share the RRC
//                         connection [2].
//   * fast dormancy     — release the RRC connection right after every
//                         burst [26]; saves tail energy, adds signaling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/app_profile.hpp"
#include "apps/traffic_mix.hpp"
#include "core/phone.hpp"
#include "metrics/registry.hpp"
#include "radio/base_station.hpp"

namespace d2dhb::core {

class CellularBaselineAgent {
 public:
  struct Params {
    apps::AppProfile app{apps::standard_app()};
    /// Heartbeat period multiplier (the period-extension strategy).
    double period_factor{1.0};
    /// Delay heartbeats to ride on data transmissions.
    bool piggyback{false};
    /// Safety margin before a delayed heartbeat's expiration at which it
    /// is sent alone after all.
    Duration piggyback_margin{seconds(15)};
    /// Device-initiated RRC release after each burst.
    bool fast_dormancy{false};
    /// Generate Poisson chat data alongside heartbeats (per the app's
    /// Table I heartbeat share). Without data, piggybacking degenerates
    /// to pure delay.
    bool with_data_traffic{true};
  };

  /// Point-in-time snapshot of the agent's registry series.
  struct Stats {
    std::uint64_t heartbeats{0};
    std::uint64_t data_sends{0};
    std::uint64_t piggybacked{0};   ///< Heartbeats that rode a data send.
    std::uint64_t sent_alone{0};    ///< Heartbeats that hit their margin.

    metrics::StatsRow row() const;
  };

  CellularBaselineAgent(sim::Simulator& sim, Phone& phone, Params params,
                        radio::BaseStation& bs,
                        IdGenerator<MessageId>& message_ids, Rng rng);
  ~CellularBaselineAgent();
  CellularBaselineAgent(const CellularBaselineAgent&) = delete;
  CellularBaselineAgent& operator=(const CellularBaselineAgent&) = delete;

  void start();
  void stop();

  Phone& phone() { return phone_; }
  /// Snapshot of this agent's metrics (assembled from the registry).
  Stats stats() const;
  Stats snapshot() const { return stats(); }
  /// The effective (possibly extended) heartbeat period.
  Duration heartbeat_period() const {
    return effective_profile_.heartbeat_period;
  }

 private:
  void on_traffic(apps::MixedTrafficGenerator::Kind kind, Bytes size);
  void send_heartbeats_now(Bytes data_payload);
  net::HeartbeatMessage make_heartbeat();
  void arm_pending_deadline();

  sim::Simulator& sim_;
  Phone& phone_;
  Params params_;
  radio::BaseStation& bs_;
  IdGenerator<MessageId>& message_ids_;
  apps::AppProfile effective_profile_;
  apps::MixedTrafficGenerator traffic_;
  std::vector<net::HeartbeatMessage> pending_;
  sim::EventId pending_deadline_{};
  std::uint64_t seq_{0};

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* heartbeats_ctr_;
  metrics::Counter* data_sends_ctr_;
  metrics::Counter* piggybacked_ctr_;
  metrics::Counter* sent_alone_ctr_;
};

}  // namespace d2dhb::core
