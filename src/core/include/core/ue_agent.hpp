// UE role (Section III): when a heartbeat is due, discover nearby
// relays, pre-judge and match the nearest suitable one, forward the
// heartbeat over Wi-Fi Direct, and await the relay's feedback — falling
// back to direct cellular transmission whenever anything goes wrong.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/heartbeat_app.hpp"
#include "core/detector.hpp"
#include "core/feedback.hpp"
#include "core/message_monitor.hpp"
#include "core/phone.hpp"
#include "radio/base_station.hpp"

namespace d2dhb::core {

class UeAgent {
 public:
  struct Params {
    apps::AppProfile app{apps::standard_app()};
    MatchPolicy match{};
    /// How long the UE waits for the relay's feedback before
    /// retransmitting over cellular.
    Duration feedback_timeout{seconds(60)};
    /// After a failed discovery/connection the UE sends via cellular and
    /// doesn't retry D2D until this much time passes. Consecutive
    /// failures back off exponentially up to `max_backoff` (a UE parked
    /// outside relay coverage must not burn its battery scanning).
    Duration retry_backoff{seconds(120)};
    double backoff_multiplier{2.0};
    Duration max_backoff{seconds(1800)};
    /// Master switch — false degenerates to the original system.
    bool use_d2d{true};
    /// Optional relay re-assessment: every interval, a connected UE
    /// re-scans and switches to a relay at least `reassess_improvement`
    /// times closer than its current one (a moving UE should not cling
    /// to the relay it met first). Zero disables re-assessment.
    Duration reassess_interval{Duration::zero()};
    double reassess_improvement{0.6};
  };

  /// Point-in-time snapshot of the UE's registry series.
  struct Stats {
    std::uint64_t heartbeats{0};
    std::uint64_t sent_via_d2d{0};
    std::uint64_t sent_via_cellular{0};  ///< No relay available.
    std::uint64_t fallback_cellular{0};  ///< D2D failed after the fact.
    std::uint64_t discoveries{0};
    std::uint64_t matches{0};
    std::uint64_t connects{0};
    std::uint64_t connect_failures{0};
    std::uint64_t link_losses{0};
    std::uint64_t reassessments{0};
    std::uint64_t handovers{0};

    metrics::StatsRow row() const;
  };

  enum class LinkState { idle, discovering, connecting, connected };

  /// `arena` pools the UE's heartbeat apps (a Scenario passes the
  /// phone's strip arena); nullptr = private per-agent heap fallback.
  UeAgent(sim::Simulator& sim, Phone& phone, Params params,
          radio::BaseStation& bs, IdGenerator<MessageId>& message_ids,
          Rng rng, Arena* arena = nullptr);

  /// Installs another IM app on this phone (phones typically run
  /// several — Table I). All apps share the same relay link; the
  /// scheduler on the relay side handles their differing periods and
  /// expiration times.
  apps::HeartbeatApp& add_app(apps::AppProfile profile);

  void start(Duration heartbeat_offset = Duration::zero());
  void stop();

  Phone& phone() { return phone_; }
  /// The Message Monitor intercepting this phone's app heartbeats.
  MessageMonitor& monitor() { return monitor_; }
  /// The primary app (first installed).
  apps::HeartbeatApp& app() { return *monitor_.apps().front(); }
  std::vector<apps::HeartbeatApp*>& apps() { return monitor_.apps(); }
  LinkState link_state() const { return state_; }
  NodeId current_relay() const { return relay_; }
  /// Snapshot of this UE's metrics (assembled from the registry).
  Stats stats() const;
  Stats snapshot() const { return stats(); }
  const FeedbackTracker& feedback() const { return feedback_; }

 private:
  void on_heartbeat(const net::HeartbeatMessage& message);
  void on_d2d_receive(const net::D2dPayload& payload, NodeId from);
  void on_link_lost(NodeId peer);
  void begin_discovery();
  void on_discovery(const std::vector<d2d::DiscoveredPeer>& peers);
  void send_via_d2d(net::HeartbeatMessage message);
  void send_via_cellular(const net::HeartbeatMessage& message,
                         bool is_fallback);
  void drain_queue_to_cellular();
  void fail_d2d_attempt();
  void reassess();

  sim::Simulator& sim_;
  Phone& phone_;
  Params params_;
  radio::BaseStation& bs_;
  IdGenerator<MessageId>& message_ids_;
  D2dDetector detector_;
  FeedbackTracker feedback_;
  MessageMonitor monitor_;

  LinkState state_{LinkState::idle};
  NodeId relay_{};
  NodeId handover_target_{};
  std::optional<sim::PeriodicTimer> reassess_timer_;
  TimePoint backoff_until_{};
  Duration current_backoff_{};
  std::vector<net::HeartbeatMessage> awaiting_link_;
  bool running_{false};

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* heartbeats_ctr_;
  metrics::Counter* sent_via_d2d_ctr_;
  metrics::Counter* sent_via_cellular_ctr_;
  metrics::Counter* fallback_cellular_ctr_;
  metrics::Counter* discoveries_ctr_;
  metrics::Counter* matches_ctr_;
  metrics::Counter* connects_ctr_;
  metrics::Counter* connect_failures_ctr_;
  metrics::Counter* link_losses_ctr_;
  metrics::Counter* reassessments_ctr_;
  metrics::Counter* handovers_ctr_;
};

}  // namespace d2dhb::core
