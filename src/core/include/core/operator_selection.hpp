// Operator-side relay selection.
//
// "Mobile operators could select relays among the participating
// smartphone users" (Section I). Given the candidate phones (position,
// battery, willingness), the operator picks a relay set under a budget.
// Three policies are provided — the coverage-greedy one is the
// deployment-sensible default, the others are ablation baselines.
#pragma once

#include <cstddef>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "mobility/mobility.hpp"

namespace d2dhb::world {
class NodeTable;
}

namespace d2dhb::core {

/// One phone volunteering (or not) to relay.
struct RelayCandidate {
  NodeId node;
  mobility::Vec2 position;
  /// Remaining battery fraction in [0, 1]; low-battery phones should
  /// not be drafted (they'd die mid-service, Section III-A's failure
  /// case).
  double battery_level{1.0};
  bool volunteers{true};
};

enum class SelectionPolicy {
  random,           ///< Any eligible volunteer.
  density,          ///< Most neighbours within coverage radius first.
  coverage_greedy,  ///< Greedy maximum coverage of the remaining phones.
};

struct SelectionConfig {
  SelectionPolicy policy{SelectionPolicy::coverage_greedy};
  /// A phone counts as covered if some selected relay is within this
  /// distance (defaults to the D2D matching pre-judgment cutoff).
  Meters coverage_radius{12.0};
  /// Operator budget: at most this many relays (0 = unlimited).
  std::size_t max_relays{0};
  /// Volunteers below this battery fraction are ineligible.
  double min_battery{0.3};
};

struct SelectionResult {
  std::vector<NodeId> relays;
  /// Fraction of non-relay candidates within coverage of some relay.
  double covered_fraction{0.0};
};

/// Picks the relay set. Deterministic for a given rng state.
SelectionResult select_relays(const std::vector<RelayCandidate>& candidates,
                              const SelectionConfig& config, Rng& rng);

/// Coverage of an explicit relay set over the remaining candidates
/// (exposed for tests and for evaluating externally chosen sets).
double coverage_of(const std::vector<RelayCandidate>& candidates,
                   const std::vector<NodeId>& relays,
                   Meters coverage_radius);

/// Builds the candidate list straight from the world's dense node
/// table (positions sampled at `t`, battery levels from the battery
/// column), in ascending NodeId order — the operator re-running
/// selection mid-scenario reads the live world state instead of a
/// layout-time snapshot.
std::vector<RelayCandidate> candidates_from(const world::NodeTable& nodes,
                                            TimePoint t);

}  // namespace d2dhb::core
