// Message Scheduler — Algorithm 1 of the paper.
//
// The relay delays its own heartbeat and buffers forwarded heartbeats
// from UEs, sending everything in one aggregated cellular transmission.
// A buffered message stays pending while all of Algorithm 1's conditions
// hold:
//
//     k < M          — fewer than the relay's capacity collected
//     t - t_k < T_k  — no forwarded heartbeat is about to expire
//     t < T          — the relay's own heartbeat is delayed at most one
//                      of its periods
//
// and is flushed the moment any would be violated. This is the paper's
// modified Nagle's algorithm: like Nagle, it trades bounded delay for
// fewer (cellular) transmissions; unlike Nagle, the "buffer size" is the
// per-message expiration budget rather than the MSS.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"
#include "metrics/registry.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::core {

enum class FlushReason {
  capacity,    ///< k reached M.
  expiry,      ///< Some t_k + T_k deadline arrived.
  window_end,  ///< The relay's own heartbeat hit its max delay T.
  forced,      ///< flush_now() called externally (shutdown, failover).
};

const char* to_string(FlushReason reason);

class MessageScheduler {
 public:
  struct Params {
    /// M: maximum number of collected heartbeats per window. The paper
    /// offers a default "based on the experiments"; 7 matches the point
    /// where its system-level saving peaks (Fig. 9).
    std::size_t capacity{7};
    /// T: the relay's own heartbeat period — the longest its heartbeat
    /// may be delayed. (Commercial servers tolerate ~3T; the paper
    /// deliberately constrains to T, Section III-C.)
    Duration max_own_delay{seconds(270)};
    /// Safety margin subtracted from every deadline so the flush (plus
    /// the cellular promotion + burst) still lands in time.
    Duration deadline_margin{seconds(10)};
    /// If false, forwarded heartbeats are only accepted while the
    /// relay's own heartbeat is pending (the paper's strict "won't
    /// collect until the next heartbeat period"). If true, collection
    /// continues between windows with per-message expiry flushes.
    bool collect_between_windows{true};
    /// Owning relay, used as the metrics `node` label (0 = unlabeled,
    /// e.g. a scheduler driven directly in a unit test).
    NodeId node{};
  };

  /// Point-in-time snapshot of the scheduler's registry series. Returned
  /// by value from stats(); rebuild it after further simulation to see
  /// updated values.
  struct Stats {
    std::uint64_t windows{0};
    std::uint64_t collected{0};
    std::uint64_t flushed_messages{0};
    std::uint64_t rejected{0};

    /// Total flushes across all reasons.
    std::uint64_t flushes() const { return flushes_total; }
    /// Flushes attributed to one Algorithm-1 bound.
    std::uint64_t flushes(FlushReason reason) const {
      return by_reason[static_cast<std::size_t>(reason)];
    }
    /// Distribution input: messages per flush, for aggregation-factor
    /// reporting.
    double mean_bundle_size() const {
      return flushes_total == 0 ? 0.0
                                : static_cast<double>(flushed_messages) /
                                      static_cast<double>(flushes_total);
    }
    metrics::StatsRow row() const;

    // Snapshot storage (prefer the typed accessors above).
    std::uint64_t flushes_total{0};
    std::uint64_t by_reason[4]{};
  };

  /// `on_flush` receives the buffered messages (own heartbeat first when
  /// present) every time the algorithm decides to send.
  using FlushHandler =
      std::function<void(std::vector<net::HeartbeatMessage>, FlushReason)>;

  MessageScheduler(sim::Simulator& sim, Params params, FlushHandler on_flush);
  ~MessageScheduler();
  MessageScheduler(const MessageScheduler&) = delete;
  MessageScheduler& operator=(const MessageScheduler&) = delete;

  /// The relay's own heartbeat: opens a collection window and arms the
  /// t < T bound. If a window is already open the previous own heartbeat
  /// is flushed first (periods never overlap).
  void begin_window(net::HeartbeatMessage own);

  /// A forwarded heartbeat from a UE (t_k = now). Returns false if
  /// rejected (capacity already reached mid-flush, or not collecting in
  /// strict mode); the caller should tell the UE to fall back.
  bool collect(net::HeartbeatMessage forwarded);

  /// Flush whatever is buffered immediately.
  void flush_now(FlushReason reason = FlushReason::forced);

  bool window_open() const { return own_.has_value(); }
  std::size_t buffered() const {
    return collected_.size() + (own_ ? 1 : 0);
  }
  std::size_t remaining_capacity() const;
  /// Snapshot of this scheduler's metrics (assembled from the registry).
  Stats stats() const;
  Stats snapshot() const { return stats(); }
  const Params& params() const { return params_; }

  /// Earliest deadline among everything buffered (for tests/monitoring).
  std::optional<TimePoint> next_deadline() const;

 private:
  void rearm();
  void flush(FlushReason reason);

  sim::Simulator& sim_;
  Params params_;
  FlushHandler on_flush_;

  std::optional<net::HeartbeatMessage> own_;
  TimePoint window_deadline_{};  ///< own created_at + T.
  std::vector<net::HeartbeatMessage> collected_;
  sim::EventId deadline_event_{};

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* windows_ctr_;
  metrics::Counter* collected_ctr_;
  metrics::Counter* rejected_ctr_;
  metrics::Counter* flushed_messages_ctr_;
  metrics::Counter* flush_ctrs_[4];  ///< Indexed by FlushReason.
  metrics::Histogram* bundle_size_;
};

}  // namespace d2dhb::core
