// Baseline: "the system without any modification" (Section V-A) — every
// phone transmits each of its own heartbeats directly over cellular,
// paying a full RRC cycle per heartbeat.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/heartbeat_app.hpp"
#include "common/arena.hpp"
#include "core/phone.hpp"
#include "metrics/registry.hpp"
#include "radio/base_station.hpp"

namespace d2dhb::core {

class OriginalAgent {
 public:
  /// `arena` pools the heartbeat apps (a Scenario passes the phone's
  /// strip arena); nullptr = private per-agent heap fallback.
  OriginalAgent(sim::Simulator& sim, Phone& phone, apps::AppProfile app,
                radio::BaseStation& bs, IdGenerator<MessageId>& message_ids,
                Arena* arena = nullptr);

  /// Adds another IM app to this phone (phones often run several).
  void add_app(apps::AppProfile app, IdGenerator<MessageId>& message_ids);

  void start(Duration heartbeat_offset = Duration::zero());
  void stop();

  Phone& phone() { return phone_; }
  std::vector<apps::HeartbeatApp*>& apps() { return apps_; }
  std::uint64_t heartbeats_sent() const { return sent_ctr_->value(); }

 private:
  void send(const net::HeartbeatMessage& message);

  sim::Simulator& sim_;
  Phone& phone_;
  radio::BaseStation& bs_;
  /// Where apps live (borrowed strip arena or a private heap-mode one);
  /// the arena owns their lifetimes.
  ArenaHandle arena_;
  std::vector<apps::HeartbeatApp*> apps_;

  // Registry-backed counter (owned by the simulator's registry).
  metrics::Counter* sent_ctr_;
};

}  // namespace d2dhb::core
