// Wire codec for heartbeat messages and relay bundles.
//
// The framework forwards opaque, already-encrypted app heartbeats
// (Section III-A discusses MQTT-over-SSL); what the relay needs on the
// wire is the routing envelope: origin, app, sequencing, and the
// scheduling parameters (period, expiration) Algorithm 1 consumes. This
// codec defines that envelope — little-endian, length-prefixed, with a
// checksum — so bundles survive a byte-level round trip.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "net/message.hpp"

namespace d2dhb::net {

/// Serialized-format constants.
inline constexpr std::uint16_t kCodecMagic = 0xD2D7;
inline constexpr std::uint8_t kCodecVersion = 1;

/// Appends the message's wire encoding to `out`.
void encode(const HeartbeatMessage& message, std::vector<std::uint8_t>& out);

/// Encodes a whole uplink bundle (header + each message).
std::vector<std::uint8_t> encode(const UplinkBundle& bundle);

/// Parses one heartbeat starting at `offset`; advances `offset` past it.
Result<HeartbeatMessage> decode_heartbeat(
    const std::vector<std::uint8_t>& buffer, std::size_t& offset);

/// Parses a full bundle. Fails on bad magic/version/checksum/truncation.
Result<UplinkBundle> decode_bundle(const std::vector<std::uint8_t>& buffer);

/// Size in bytes the envelope adds per message (fixed).
std::size_t envelope_overhead();

}  // namespace d2dhb::net
