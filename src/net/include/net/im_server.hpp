// Remote IM server with per-client expiration timers.
//
// "IM servers set expiration timers to determine a client is online or
// not" (Section II-A). The server is the ground truth for whether the
// framework's added forwarding delay ever knocked a client offline —
// the correctness criterion of the scheduling algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"
#include "metrics/registry.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::net {

class ImServer {
 public:
  explicit ImServer(sim::Simulator& sim);

  /// Registers a client session. `expiry` is the server-side tolerance:
  /// the client is considered offline if no heartbeat lands within
  /// `expiry` of the previous deadline reset.
  void register_client(NodeId node, AppId app, Duration expiry);

  /// Delivers one heartbeat (called by the BS/backhaul). Updates the
  /// session's deadline and records whether the heartbeat landed on time.
  void deliver(const HeartbeatMessage& message);

  /// Delivers every heartbeat in a bundle.
  void deliver(const UplinkBundle& bundle);

  struct SessionStats {
    std::uint64_t delivered{0};
    std::uint64_t on_time{0};
    std::uint64_t late{0};          ///< Arrived after the deadline.
    std::uint64_t offline_events{0};///< Deadline lapses observed.
    Duration total_offline{};       ///< Accumulated offline time.
    Duration total_latency{};       ///< Sum of (arrival - created_at).
    TimePoint deadline{};           ///< Current expiration deadline.
  };

  /// True if the session's deadline has not lapsed as of now.
  bool online(NodeId node, AppId app) const;
  const SessionStats& stats(NodeId node, AppId app) const;

  /// Aggregates across all sessions.
  struct Totals {
    std::uint64_t delivered{0};
    std::uint64_t on_time{0};
    std::uint64_t late{0};
    std::uint64_t offline_events{0};
    Duration total_latency{};

    /// Mean end-to-end heartbeat delay (creation -> server), seconds.
    double mean_latency_s() const {
      return delivered == 0
                 ? 0.0
                 : to_seconds(total_latency) / static_cast<double>(delivered);
    }
  };
  Totals totals() const;

  std::size_t session_count() const { return sessions_.size(); }

 private:
  using Key = std::pair<NodeId, AppId>;

  sim::Simulator& sim_;
  std::map<Key, SessionStats> sessions_;
  std::map<Key, Duration> expiries_;

  // Registry-backed aggregate counters (per-session detail stays in
  // sessions_; these feed the exported metrics tree).
  metrics::Counter* delivered_ctr_;
  metrics::Counter* on_time_ctr_;
  metrics::Counter* late_ctr_;
  metrics::Counter* offline_events_ctr_;
};

}  // namespace d2dhb::net
