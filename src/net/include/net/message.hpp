// Heartbeat messages and aggregated uplink bundles.
//
// A heartbeat carries no application payload that matters to the
// framework — only its size, period, and expiration deadline (Table II's
// T_k), which are exactly the inputs of the scheduling algorithm.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/id.hpp"
#include "common/units.hpp"

namespace d2dhb::net {

struct HeartbeatMessage {
  MessageId id;
  NodeId origin;          ///< Smartphone that generated the heartbeat.
  AppId app;              ///< IM app instance on that phone.
  std::string app_name;   ///< e.g. "WeChat" — for reporting only.
  Bytes size;             ///< Wire size of the heartbeat.
  Duration period;        ///< App's heartbeat period (e.g. 270 s).
  Duration expiry;        ///< T_k: how long the server tolerates silence
                          ///< past this heartbeat's nominal send time.
  TimePoint created_at;   ///< When the app emitted it.
  std::uint64_t seq{0};   ///< Per-app sequence number.

  /// Latest instant at which delivering this heartbeat still keeps the
  /// server's expiration timer from firing.
  TimePoint deadline() const { return created_at + expiry; }
};

/// One cellular uplink transmission: either a single heartbeat (original
/// system), the relay's aggregate of its own + forwarded heartbeats, or
/// a data transfer heartbeats piggyback on.
struct UplinkBundle {
  NodeId sender;                           ///< Phone doing the RRC cycle.
  std::vector<HeartbeatMessage> messages;  ///< In arrival order.
  /// Non-heartbeat payload riding in the same transmission (chat data a
  /// piggybacked heartbeat shares its RRC connection with).
  Bytes extra_payload{0};

  /// Total wire size: payloads plus a small per-message framing header
  /// when aggregated (the relay prefixes each forwarded heartbeat with
  /// origin routing info).
  Bytes payload_size() const;

  static constexpr Bytes kAggregationHeader{8};
};

/// Standard heartbeat size used throughout the paper's evaluation
/// (Section V-A: "the forwarded heartbeat messages in standard size,
/// 54 Bytes").
inline constexpr Bytes kStandardHeartbeatSize{54};

/// Relay -> UE acknowledgment that forwarded heartbeats reached the BS
/// (the feedback mechanism of Section III-A: "once the matched relay
/// transmitting the collected heartbeat messages successfully, the
/// proposed framework will notify the connected UE").
struct FeedbackAck {
  NodeId relay;
  std::vector<MessageId> delivered;
};

/// Anything a D2D frame can carry.
using D2dPayload = std::variant<HeartbeatMessage, FeedbackAck>;

/// Wire size of a D2D payload (feedback acks are tiny control frames).
Bytes payload_size(const D2dPayload& payload);

}  // namespace d2dhb::net
