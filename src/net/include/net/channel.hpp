// Point-to-point delivery with latency and loss, driven by the simulator.
// Used for the BS -> IM-server backhaul and anywhere an unreliable hop
// needs modeling.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::net {

class Channel {
 public:
  struct Params {
    Duration latency{milliseconds(50)};
    double loss_probability{0.0};
    /// Kernel hosting the receiving end. The BS -> IM-server backhaul
    /// terminates at world-global machinery, which lives on shard 0 by
    /// convention; deliveries cross through that shard's mailbox when
    /// the sender is homed elsewhere.
    std::uint32_t home_shard{0};
  };

  using Receiver = std::function<void(const UplinkBundle&)>;

  Channel(sim::Simulator& sim, Params params, Rng rng);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Queues a bundle; it arrives after the latency unless lost.
  /// Returns whether the bundle survived the loss draw.
  bool send(UplinkBundle bundle);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  Receiver receiver_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
};

}  // namespace d2dhb::net
