// Point-to-point delivery with latency and loss, driven by the simulator.
// Used for the BS -> IM-server backhaul and anywhere an unreliable hop
// needs modeling.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::net {

class Channel {
 public:
  struct Params {
    Duration latency{milliseconds(50)};
    double loss_probability{0.0};
    /// Kernel hosting the receiving end. The BS -> IM-server backhaul
    /// terminates at world-global machinery, which lives on shard 0 by
    /// convention; deliveries cross through that shard's mailbox when
    /// the sender is homed elsewhere.
    std::uint32_t home_shard{0};
  };

  using Receiver = std::function<void(const UplinkBundle&)>;

  Channel(sim::Simulator& sim, Params params, Rng rng);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  /// Queues a bundle; it arrives after the latency unless lost.
  /// Returns whether the bundle survived the loss draw.
  bool send(UplinkBundle bundle);

  std::uint64_t sent() const;
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const;

 private:
  /// Per-shard send state: senders on different kernels draw from their
  /// own loss rng and bump their own counters, so concurrent sends stay
  /// deterministic per strip. One kernel means one lane holding the
  /// channel's original rng — the classic single-stream behaviour.
  struct Lane {
    Rng rng;
    std::uint64_t sent{0};
    std::uint64_t dropped{0};
  };

  sim::Simulator& sim_;
  Params params_;
  Receiver receiver_;
  std::vector<Lane> lanes_;
  /// Only touched by delivery callbacks, which all run on the home
  /// shard's kernel — a single writer.
  std::uint64_t delivered_{0};
};

}  // namespace d2dhb::net
