#include "net/channel.hpp"

#include <utility>

namespace d2dhb::net {

Channel::Channel(sim::Simulator& sim, Params params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

bool Channel::send(UplinkBundle bundle) {
  ++sent_;
  if (rng_.chance(params_.loss_probability)) {
    ++dropped_;
    return false;
  }
  sim_.schedule_after(params_.latency,
                      [this, bundle = std::move(bundle)]() mutable {
                        ++delivered_;
                        if (receiver_) receiver_(bundle);
                      });
  return true;
}

}  // namespace d2dhb::net
