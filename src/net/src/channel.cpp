#include "net/channel.hpp"

#include <utility>

namespace d2dhb::net {

Channel::Channel(sim::Simulator& sim, Params params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

bool Channel::send(UplinkBundle bundle) {
  ++sent_;
  if (rng_.chance(params_.loss_probability)) {
    ++dropped_;
    return false;
  }
  // Delivery runs on the receiver's home kernel; post_after degenerates
  // to a plain schedule when the sender is already homed there.
  sim_.post_after(params_.home_shard, params_.latency,
                  [this, bundle = std::move(bundle)]() mutable {
                    ++delivered_;
                    if (receiver_) receiver_(bundle);
                  });
  return true;
}

}  // namespace d2dhb::net
