#include "net/channel.hpp"

#include <utility>

namespace d2dhb::net {

Channel::Channel(sim::Simulator& sim, Params params, Rng rng)
    : sim_(sim), params_(params) {
  // One lane per kernel; the last lane keeps the channel's original rng
  // untouched, so a 1-shard world draws exactly the classic stream.
  const std::size_t shards = sim_.shard_count();
  lanes_.reserve(shards);
  for (std::size_t s = 0; s + 1 < shards; ++s) {
    lanes_.push_back(Lane{rng.fork()});
  }
  lanes_.push_back(Lane{std::move(rng)});
}

bool Channel::send(UplinkBundle bundle) {
  Lane& lane = lanes_[sim_.current_shard()];
  ++lane.sent;
  if (lane.rng.chance(params_.loss_probability)) {
    ++lane.dropped;
    return false;
  }
  // Delivery runs on the receiver's home kernel; post_after degenerates
  // to a plain schedule when the sender is already homed there.
  sim_.post_after(params_.home_shard, params_.latency,
                  [this, bundle = std::move(bundle)]() mutable {
                    ++delivered_;
                    if (receiver_) receiver_(bundle);
                  });
  return true;
}

std::uint64_t Channel::sent() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.sent;
  return total;
}

std::uint64_t Channel::dropped() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.dropped;
  return total;
}

}  // namespace d2dhb::net
