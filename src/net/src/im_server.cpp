#include "net/im_server.hpp"

#include <stdexcept>

namespace d2dhb::net {

ImServer::ImServer(sim::Simulator& sim) : sim_(sim) {
  auto& reg = sim_.metrics();
  const metrics::Labels labels{0, -1, "im_server"};
  delivered_ctr_ = &reg.counter("server.delivered", labels);
  on_time_ctr_ = &reg.counter("server.on_time", labels);
  late_ctr_ = &reg.counter("server.late", labels);
  offline_events_ctr_ = &reg.counter("server.offline_events", labels);
}

void ImServer::register_client(NodeId node, AppId app, Duration expiry) {
  const Key key{node, app};
  SessionStats stats;
  stats.deadline = sim_.now() + expiry;
  sessions_[key] = stats;
  expiries_[key] = expiry;
}

void ImServer::deliver(const HeartbeatMessage& message) {
  const Key key{message.origin, message.app};
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    // Auto-register on first contact using the message's own expiry.
    register_client(message.origin, message.app, message.expiry);
    it = sessions_.find(key);
  }
  SessionStats& s = it->second;
  const TimePoint now = sim_.now();
  ++s.delivered;
  delivered_ctr_->inc();
  if (now >= message.created_at) s.total_latency += now - message.created_at;
  if (now <= s.deadline) {
    ++s.on_time;
    on_time_ctr_->inc();
  } else {
    ++s.late;
    ++s.offline_events;
    late_ctr_->inc();
    offline_events_ctr_->inc();
    s.total_offline += now - s.deadline;
  }
  // A delivered heartbeat resets the expiration timer from now.
  s.deadline = now + expiries_.at(key);
}

void ImServer::deliver(const UplinkBundle& bundle) {
  for (const auto& m : bundle.messages) deliver(m);
}

bool ImServer::online(NodeId node, AppId app) const {
  const auto it = sessions_.find(Key{node, app});
  if (it == sessions_.end()) return false;
  return sim_.now() <= it->second.deadline;
}

const ImServer::SessionStats& ImServer::stats(NodeId node, AppId app) const {
  const auto it = sessions_.find(Key{node, app});
  if (it == sessions_.end()) {
    throw std::out_of_range("ImServer::stats: unknown session");
  }
  return it->second;
}

ImServer::Totals ImServer::totals() const {
  Totals t;
  for (const auto& [key, s] : sessions_) {
    t.delivered += s.delivered;
    t.on_time += s.on_time;
    t.late += s.late;
    t.offline_events += s.offline_events;
    t.total_latency += s.total_latency;
  }
  return t;
}

}  // namespace d2dhb::net
