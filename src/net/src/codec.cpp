#include "net/codec.hpp"

#include <cstring>

namespace d2dhb::net {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  // Little-endian, fixed width.
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff));
  }
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t& offset,
         T& value) {
  if (offset + sizeof(T) > in.size()) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  }
  offset += sizeof(T);
  value = static_cast<T>(v);
  return true;
}

/// Fletcher-16 over a byte range — cheap integrity check.
std::uint16_t checksum(const std::uint8_t* data, std::size_t size) {
  std::uint32_t a = 0, b = 0;
  for (std::size_t i = 0; i < size; ++i) {
    a = (a + data[i]) % 255;
    b = (b + a) % 255;
  }
  return static_cast<std::uint16_t>((b << 8) | a);
}

// Per-heartbeat envelope layout (all little-endian):
//   u64 message id, u64 origin node, u64 app id, u64 sequence,
//   u32 payload size (B), i64 period (us), i64 expiry (us),
//   i64 created_at (us since epoch)
constexpr std::size_t kEnvelopeBytes = 8 * 4 + 4 + 8 * 3;

}  // namespace

std::size_t envelope_overhead() { return kEnvelopeBytes; }

void encode(const HeartbeatMessage& message,
            std::vector<std::uint8_t>& out) {
  put<std::uint64_t>(out, message.id.value);
  put<std::uint64_t>(out, message.origin.value);
  put<std::uint64_t>(out, message.app.value);
  put<std::uint64_t>(out, message.seq);
  put<std::uint32_t>(out, message.size.value);
  put<std::int64_t>(out, message.period.count());
  put<std::int64_t>(out, message.expiry.count());
  put<std::int64_t>(out, message.created_at.time_since_epoch().count());
}

std::vector<std::uint8_t> encode(const UplinkBundle& bundle) {
  std::vector<std::uint8_t> out;
  put<std::uint16_t>(out, kCodecMagic);
  put<std::uint8_t>(out, kCodecVersion);
  put<std::uint64_t>(out, bundle.sender.value);
  put<std::uint32_t>(out, bundle.extra_payload.value);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(bundle.messages.size()));
  for (const auto& m : bundle.messages) encode(m, out);
  const std::uint16_t sum = checksum(out.data(), out.size());
  put<std::uint16_t>(out, sum);
  return out;
}

Result<HeartbeatMessage> decode_heartbeat(
    const std::vector<std::uint8_t>& buffer, std::size_t& offset) {
  HeartbeatMessage m;
  std::uint64_t id = 0, origin = 0, app = 0, seq = 0;
  std::uint32_t size = 0;
  std::int64_t period = 0, expiry = 0, created = 0;
  if (!get(buffer, offset, id) || !get(buffer, offset, origin) ||
      !get(buffer, offset, app) || !get(buffer, offset, seq) ||
      !get(buffer, offset, size) || !get(buffer, offset, period) ||
      !get(buffer, offset, expiry) || !get(buffer, offset, created)) {
    return Result<HeartbeatMessage>{Errc::out_of_range,
                                    "truncated heartbeat envelope"};
  }
  m.id = MessageId{id};
  m.origin = NodeId{origin};
  m.app = AppId{app};
  m.seq = seq;
  m.size = Bytes{size};
  m.period = Duration{period};
  m.expiry = Duration{expiry};
  m.created_at = TimePoint{Duration{created}};
  return m;
}

Result<UplinkBundle> decode_bundle(const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 2 + 1 + 8 + 4 + 4 + 2) {
    return Result<UplinkBundle>{Errc::out_of_range, "bundle too short"};
  }
  // Verify trailer checksum over everything before it.
  const std::size_t body = buffer.size() - 2;
  std::size_t trailer_offset = body;
  std::uint16_t stated = 0;
  get(buffer, trailer_offset, stated);
  if (checksum(buffer.data(), body) != stated) {
    return Result<UplinkBundle>{Errc::rejected, "checksum mismatch"};
  }

  std::size_t offset = 0;
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  get(buffer, offset, magic);
  get(buffer, offset, version);
  if (magic != kCodecMagic) {
    return Result<UplinkBundle>{Errc::rejected, "bad magic"};
  }
  if (version != kCodecVersion) {
    return Result<UplinkBundle>{Errc::rejected, "unsupported version"};
  }
  UplinkBundle bundle;
  std::uint64_t sender = 0;
  std::uint32_t extra = 0, count = 0;
  if (!get(buffer, offset, sender) || !get(buffer, offset, extra) ||
      !get(buffer, offset, count)) {
    return Result<UplinkBundle>{Errc::out_of_range, "truncated header"};
  }
  bundle.sender = NodeId{sender};
  bundle.extra_payload = Bytes{extra};
  bundle.messages.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto m = decode_heartbeat(buffer, offset);
    if (!m.ok()) return Result<UplinkBundle>{m.error()};
    bundle.messages.push_back(std::move(m).value());
  }
  if (offset != body) {
    return Result<UplinkBundle>{Errc::rejected, "trailing garbage"};
  }
  return bundle;
}

}  // namespace d2dhb::net
