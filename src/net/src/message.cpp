#include "net/message.hpp"

namespace d2dhb::net {

Bytes payload_size(const D2dPayload& payload) {
  if (const auto* hb = std::get_if<HeartbeatMessage>(&payload)) {
    return hb->size;
  }
  const auto& ack = std::get<FeedbackAck>(payload);
  return Bytes{static_cast<std::uint32_t>(12 + 8 * ack.delivered.size())};
}

Bytes UplinkBundle::payload_size() const {
  Bytes total = extra_payload;
  for (const auto& m : messages) total += m.size;
  if (messages.size() > 1) {
    total += Bytes{kAggregationHeader.value *
                   static_cast<std::uint32_t>(messages.size())};
  }
  return total;
}

}  // namespace d2dhb::net
