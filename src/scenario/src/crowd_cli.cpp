#include "scenario/crowd_cli.hpp"

#include "sim/event_kernel.hpp"

namespace d2dhb::scenario {

CliFlags::CliFlags(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  used_.assign(args_.size(), false);
}

bool CliFlags::has(const std::string& name) {
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (args_[i] == name) {
      used_[i] = true;
      return true;
    }
  }
  return false;
}

std::optional<std::string> CliFlags::value(const std::string& name) {
  for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
    if (args_[i] == name) {
      used_[i] = used_[i + 1] = true;
      return args_[i + 1];
    }
  }
  return std::nullopt;
}

double CliFlags::number(const std::string& name, double fallback) {
  const auto v = value(name);
  return v ? std::stod(*v) : fallback;
}

std::vector<std::string> CliFlags::leftover() const {
  std::vector<std::string> left;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (!used_[i] && args_[i].rfind("--", 0) == 0) left.push_back(args_[i]);
  }
  return left;
}

std::string apply_crowd_flags(CliFlags& flags, CrowdConfig& config) {
  config.phones = static_cast<std::size_t>(
      flags.number("--phones", static_cast<double>(config.phones)));
  config.relay_fraction =
      flags.number("--relay-fraction", config.relay_fraction);
  config.area_m = flags.number("--area", config.area_m);
  config.duration_s = flags.number("--duration", config.duration_s);
  if (flags.has("--mobile")) config.mobile = true;
  config.cell_grid = static_cast<std::size_t>(
      flags.number("--cell-grid", static_cast<double>(config.cell_grid)));
  config.grid_cell_m = flags.number("--grid-cell", config.grid_cell_m);
  if (flags.has("--legacy-scan")) config.legacy_scan = true;
  config.reassess_interval_s =
      flags.number("--reassess", config.reassess_interval_s);
  config.seed = static_cast<std::uint64_t>(
      flags.number("--seed", static_cast<double>(config.seed)));
  const double shards = flags.number(
      "--shards", static_cast<double>(config.shards));
  if (shards < 1.0 || shards > static_cast<double>(sim::EventKernel::kMaxShards)) {
    return "--shards must be in [1, " +
           std::to_string(sim::EventKernel::kMaxShards) + "]";
  }
  config.shards = static_cast<std::size_t>(shards);
  const double threads = flags.number(
      "--threads", static_cast<double>(config.threads));
  if (threads < 1.0) {
    return "--threads must be at least 1";
  }
  config.threads = static_cast<std::size_t>(threads);
  if (flags.has("--heap-agents")) config.heap_agents = true;
  if (flags.has("--profile")) config.profile = true;
  if (const auto policy = flags.value("--policy")) {
    if (*policy == "greedy") {
      config.operator_policy = core::SelectionPolicy::coverage_greedy;
    } else if (*policy == "random") {
      config.operator_policy = core::SelectionPolicy::random;
    } else if (*policy == "density") {
      config.operator_policy = core::SelectionPolicy::density;
    } else if (*policy == "first-n") {
      config.operator_policy.reset();
    } else {
      return "unknown --policy: " + *policy;
    }
  }
  return {};
}

const char* crowd_flags_help() {
  return
      "    --phones N --relay-fraction F --area M --duration S\n"
      "    --mobile --policy greedy|random|density|first-n --seed S\n"
      "    --cell-grid N (n-cell grid over the area; 1 = single BS)\n"
      "    --grid-cell M (world-index cell size in meters; default =\n"
      "    D2D range) --legacy-scan (linear-scan medium, for the\n"
      "    grid-vs-scan ablation; seeded results are identical)\n"
      "    --reassess S (connected UEs re-scan every S seconds and\n"
      "    switch to a markedly closer relay; 0 = off)\n"
      "    --shards N (cap on how many of the world's kernels may run\n"
      "    concurrently; the partition itself is geometric, so seeded\n"
      "    results are byte-identical for any N)\n"
      "    --threads N (worker threads driving the kernels; 1 = serial.\n"
      "    Seeded results are byte-identical for any N)\n"
      "    --heap-agents (one heap allocation per agent instead of the\n"
      "    pooled per-strip arenas; the ablation arm of the arena-vs-\n"
      "    heap gate — seeded results are byte-identical)\n"
      "    --profile (record engine runtime spans: per-shard busy time,\n"
      "    barrier waits, window utilization — printed after the run\n"
      "    and exported under the registry's runtime/ namespace;\n"
      "    deterministic results stay byte-identical)\n";
}

}  // namespace d2dhb::scenario
