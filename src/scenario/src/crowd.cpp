#include "scenario/crowd.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/memory.hpp"
#include "core/operator_selection.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace d2dhb::scenario {

namespace {

std::unique_ptr<mobility::MobilityModel> make_mobility(
    const CrowdConfig& config, mobility::Vec2 start, bool moves, Rng rng) {
  if (!moves) return std::make_unique<mobility::StaticMobility>(start);
  mobility::RandomWaypoint::Params params;
  params.area_min = {0.0, 0.0};
  params.area_max = {config.area_m, config.area_m};
  params.min_speed_mps = 0.3;
  params.max_speed_mps = 1.2;
  params.max_pause = seconds(60);
  return std::make_unique<mobility::RandomWaypoint>(params, start, rng);
}

/// Kernels the world is cut into — pure geometry, never a tuning knob:
/// one vertical strip per 120 m of area width (four D2D ranges, so
/// strip confinement only trims boundary-band pairs), floored at one
/// strip and capped by the event-id encoding. Every config decides its
/// own partition this way, which is what keeps results independent of
/// CrowdConfig::shards/threads: those only say how much of the
/// partition may execute concurrently.
std::size_t strip_count(const CrowdConfig& config) {
  const auto strips = static_cast<std::size_t>(config.area_m / 120.0);
  return std::clamp<std::size_t>(strips, 1, sim::EventKernel::kMaxShards);
}

Scenario::Params world_params(const CrowdConfig& config,
                              std::vector<mobility::Vec2> sites) {
  Scenario::Params params;
  params.seed = config.seed;
  params.medium.grid_cell_m = config.grid_cell_m;
  params.medium.legacy_scan = config.legacy_scan;
  params.cell_sites = std::move(sites);
  params.shard_plan =
      world::ShardPlan{strip_count(config), 0.0, config.area_m};
  params.agent_memory =
      config.heap_agents ? Arena::Mode::heap : Arena::Mode::pooled;
  return params;
}

sim::RunStats run_world(Scenario& world, const CrowdConfig& config) {
  const TimePoint end = TimePoint{} + seconds(config.duration_s);
  sim::RunOptions options;
  options.shards = config.shards;
  options.threads = config.threads;
  options.profile = config.profile;
  options.profiler = config.profiler;
  return sim::run(world.sim(), end, options);
}

std::vector<mobility::Vec2> cell_grid_sites(const CrowdConfig& config) {
  std::vector<mobility::Vec2> sites;
  if (config.cell_grid <= 1) return sites;  // default single cell
  // Square-ish grid covering the area.
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.cell_grid))));
  const double step = config.area_m / static_cast<double>(side);
  for (std::size_t i = 0; i < config.cell_grid; ++i) {
    const double x = (0.5 + static_cast<double>(i % side)) * step;
    const double y = (0.5 + static_cast<double>(i / side)) * step;
    sites.push_back({x, y});
  }
  return sites;
}

void collect_common(Scenario& world, const CrowdConfig& config,
                    const sim::RunStats& run_stats, CrowdMetrics& metrics) {
  metrics.phones = world.phones().size();
  metrics.total_l3 = world.total_l3();
  metrics.peak_l3_per_10s = world.worst_cell_peak(seconds(10));
  for (std::size_t c = 0; c < world.cell_count(); ++c) {
    metrics.l3_per_cell.push_back(world.bs(c).signaling().total());
  }
  for (auto& phone : world.phones()) {
    metrics.total_radio_uah += phone->radio_charge().value;
  }
  if (!world.phones().empty()) {
    metrics.mean_radio_uah_per_phone =
        metrics.total_radio_uah / static_cast<double>(world.phones().size());
  }
  metrics.server = world.server().totals();
  metrics.heartbeats_delivered = metrics.server.delivered;
  metrics.credits_issued = world.ledger().total_issued();
  metrics.sim_events = world.sim().executed_events();
  for (std::uint32_t s = 0; s < world.sim().shard_count(); ++s) {
    // detlint: allow(cross-strip-access): post-run counter read, quiesced
    metrics.cross_shard_posted += world.sim().mailbox(s).posted();
    // detlint: allow(cross-strip-access): post-run counter read, quiesced
    metrics.cross_shard_delivered += world.sim().mailbox(s).delivered();
  }
  metrics.cross_min_slack_us = world.sim().cross_min_slack_us();
  metrics.shard_events_executed = run_stats.shard_events_executed;
  metrics.shard_mailbox_delivered = run_stats.shard_mailbox_delivered;
  metrics.profile = run_stats.profile;
  const Arena::Stats arena = world.arena_stats();
  metrics.arena_bytes_allocated = arena.bytes_allocated;
  metrics.arena_bytes_reserved = arena.bytes_reserved;
  metrics.arena_objects = arena.objects;
  metrics.peak_rss_bytes = peak_rss_bytes();
  metrics.metrics = world.metrics_snapshot();
  (void)config;
}

}  // namespace

CrowdMetrics run_d2d_crowd(const CrowdConfig& config) {
  Scenario world{world_params(config, cell_grid_sites(config))};
  Rng layout_rng = world.fork_rng();
  const auto positions = mobility::clustered_crowd(
      config.phones, config.clusters, {0.0, 0.0},
      {config.area_m, config.area_m}, config.cluster_stddev_m, layout_rng);

  const auto relay_count = static_cast<std::size_t>(
      std::round(config.relay_fraction * static_cast<double>(config.phones)));

  // Which phones relay: operator-selected or simply the first N. Node
  // ids are assigned 1..N in insertion order below.
  std::vector<core::RelayCandidate> candidates;
  candidates.reserve(config.phones);
  for (std::size_t i = 0; i < config.phones; ++i) {
    candidates.push_back(core::RelayCandidate{
        NodeId{i + 1}, positions[i], 1.0, true});
  }
  std::vector<bool> is_relay_at(config.phones, false);
  double relay_coverage = 0.0;
  if (config.operator_policy.has_value()) {
    core::SelectionConfig selection;
    selection.policy = *config.operator_policy;
    selection.coverage_radius = Meters{config.match_max_distance_m};
    selection.max_relays = relay_count;
    Rng selection_rng = world.fork_rng();
    const core::SelectionResult chosen =
        core::select_relays(candidates, selection, selection_rng);
    for (const NodeId node : chosen.relays) {
      is_relay_at[node.value - 1] = true;
    }
    relay_coverage = chosen.covered_fraction;
  } else {
    std::vector<NodeId> relays;
    for (std::size_t i = 0; i < relay_count; ++i) {
      is_relay_at[i] = true;
      relays.push_back(candidates[i].node);
    }
    // Layout coverage accounting for the first-N layout too — the same
    // grid-backed radius counting the operator policies use.
    relay_coverage = core::coverage_of(candidates, relays,
                                       Meters{config.match_max_distance_m});
  }

  for (std::size_t i = 0; i < config.phones; ++i) {
    const bool is_relay = is_relay_at[i];
    core::PhoneConfig pc;
    pc.mobility = make_mobility(config, positions[i],
                                config.mobile && !is_relay,
                                world.fork_rng());
    core::Phone& phone = world.add_phone(std::move(pc));
    if (is_relay) {
      core::RelayAgent::Params params;
      params.own_app = config.app;
      params.scheduler.capacity = config.relay_capacity;
      params.scheduler.max_own_delay = config.app.heartbeat_period;
      core::RelayAgent& relay = world.add_relay(phone, params);
      world.register_session(phone, 3 * config.app.heartbeat_period);
      // First beats are timers of the phone — home them on its kernel.
      sim::ShardGuard guard(world.sim(),
                            world.nodes().shard_of(phone.id()));
      relay.start(seconds(to_seconds(config.app.heartbeat_period) *
                          (0.1 + config.stagger_fraction * static_cast<double>(i) /
                                     static_cast<double>(config.phones))));
    } else {
      core::UeAgent::Params params;
      params.app = config.app;
      params.match.strategy = config.match_strategy;
      params.match.max_distance = Meters{config.match_max_distance_m};
      params.feedback_timeout =
          config.app.heartbeat_period + seconds(30);
      if (config.reassess_interval_s > 0.0) {
        params.reassess_interval = seconds(config.reassess_interval_s);
      }
      core::UeAgent& ue = world.add_ue(phone, params);
      world.register_session(phone, 3 * config.app.heartbeat_period);
      sim::ShardGuard guard(world.sim(),
                            world.nodes().shard_of(phone.id()));
      ue.start(seconds(to_seconds(config.app.heartbeat_period) *
                       (0.1 + config.stagger_fraction * static_cast<double>(i) /
                                  static_cast<double>(config.phones))));
    }
  }

  const sim::RunStats run_stats = run_world(world, config);

  CrowdMetrics metrics;
  metrics.relays = world.relays().size();
  metrics.relay_coverage = relay_coverage;
  for (auto& relay : world.relays()) {
    metrics.heartbeats_emitted += relay->stats().own_heartbeats;
    metrics.forwarded_via_d2d += relay->stats().forwarded_received;
    metrics.relay_radio_uah += relay->phone().radio_charge().value;
  }
  for (auto& ue : world.ues()) {
    metrics.heartbeats_emitted += ue->stats().heartbeats;
    metrics.fallbacks += ue->stats().fallback_cellular;
    metrics.link_losses += ue->stats().link_losses;
    metrics.ue_radio_uah += ue->phone().radio_charge().value;
  }
  collect_common(world, config, run_stats, metrics);
  return metrics;
}

CrowdMetrics run_original_crowd(const CrowdConfig& config) {
  Scenario world{world_params(config, cell_grid_sites(config))};
  Rng layout_rng = world.fork_rng();
  const auto positions = mobility::clustered_crowd(
      config.phones, config.clusters, {0.0, 0.0},
      {config.area_m, config.area_m}, config.cluster_stddev_m, layout_rng);

  for (std::size_t i = 0; i < config.phones; ++i) {
    core::PhoneConfig pc;
    pc.mobility =
        make_mobility(config, positions[i], config.mobile, world.fork_rng());
    core::Phone& phone = world.add_phone(std::move(pc));
    core::OriginalAgent& agent = world.add_original(phone, config.app);
    world.register_session(phone, 3 * config.app.heartbeat_period);
    sim::ShardGuard guard(world.sim(),
                          world.nodes().shard_of(phone.id()));
    agent.start(seconds(to_seconds(config.app.heartbeat_period) *
                        (0.1 + config.stagger_fraction * static_cast<double>(i) /
                                   static_cast<double>(config.phones))));
  }

  const sim::RunStats run_stats = run_world(world, config);

  CrowdMetrics metrics;
  metrics.relays = 0;
  for (auto& agent : world.originals()) {
    metrics.heartbeats_emitted += agent->heartbeats_sent();
  }
  collect_common(world, config, run_stats, metrics);
  return metrics;
}

}  // namespace d2dhb::scenario
