#include "scenario/probes.hpp"

#include <memory>

#include "energy/current_trace.hpp"
#include "scenario/scenario.hpp"

namespace d2dhb::scenario {

namespace {

/// Two phones 1 m apart on a bench, as in the paper's lab setup. Returns
/// the scenario with phone[0] = UE, phone[1] = relay.
std::unique_ptr<Scenario> bench_pair(std::uint64_t seed,
                                     MilliAmps baseline = MilliAmps{40.0}) {
  auto world = std::make_unique<Scenario>(Scenario::Params{seed, {}, {}});
  for (int i = 0; i < 2; ++i) {
    core::PhoneConfig pc;
    pc.baseline_current = baseline;
    pc.mobility = std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{static_cast<double>(i), 0.0});
    world->add_phone(std::move(pc));
  }
  return world;
}

net::HeartbeatMessage standard_heartbeat(Scenario& world, NodeId origin) {
  net::HeartbeatMessage m;
  m.id = world.message_ids().next();
  m.origin = origin;
  m.app = AppId{origin.value};
  m.app_name = "Standard";
  m.size = net::kStandardHeartbeatSize;
  m.period = seconds(270);
  m.expiry = seconds(270);
  m.created_at = world.sim().now();
  return m;
}

}  // namespace

PhaseProbeResult measure_phases(std::uint64_t seed) {
  auto world = bench_pair(seed);
  core::Phone& ue = *world->phones()[0];
  core::Phone& relay = *world->phones()[1];
  relay.wifi().set_listening(true);
  relay.wifi().set_advert(d2d::RelayAdvert{true, 7});
  relay.wifi().set_group_owner_intent(d2d::kMaxGroupOwnerIntent);

  PhaseProbeResult result;
  sim::Simulator& sim = world->sim();

  // --- Discovery ---
  double ue_before = ue.wifi_charge().value;
  double relay_before = relay.wifi_charge().value;
  bool discovered = false;
  ue.wifi().start_discovery(
      [&](const std::vector<d2d::DiscoveredPeer>&) { discovered = true; });
  sim.run_until(sim.now() + seconds(10));
  result.ue.discovery_uah = ue.wifi_charge().value - ue_before;
  result.relay.discovery_uah = relay.wifi_charge().value - relay_before;

  // --- Connection ---
  ue_before = ue.wifi_charge().value;
  relay_before = relay.wifi_charge().value;
  bool connected = false;
  ue.wifi().connect(relay.id(),
                    [&](Result<GroupId> r) { connected = r.ok(); });
  sim.run_until(sim.now() + seconds(4));
  result.ue.connection_uah = ue.wifi_charge().value - ue_before;
  result.relay.connection_uah = relay.wifi_charge().value - relay_before;

  // --- Forwarding (one heartbeat) ---
  ue_before = ue.wifi_charge().value;
  relay_before = relay.wifi_charge().value;
  ue.wifi().send(relay.id(),
                 net::D2dPayload{standard_heartbeat(*world, ue.id())},
                 [](Status) {});
  sim.run_until(sim.now() + seconds(4));
  result.ue.forwarding_uah = ue.wifi_charge().value - ue_before;
  result.relay.forwarding_uah = relay.wifi_charge().value - relay_before;

  (void)discovered;
  (void)connected;
  return result;
}

std::vector<double> measure_receive_energy(std::size_t max_messages,
                                           std::uint64_t seed) {
  auto world = bench_pair(seed);
  core::Phone& ue = *world->phones()[0];
  core::Phone& relay = *world->phones()[1];
  relay.wifi().set_listening(true);
  sim::Simulator& sim = world->sim();

  ue.wifi().connect(relay.id(), [](Result<GroupId>) {});
  sim.run_until(sim.now() + seconds(4));

  const double relay_baseline = relay.wifi_charge().value;
  std::vector<double> cumulative;
  cumulative.reserve(max_messages);
  for (std::size_t k = 0; k < max_messages; ++k) {
    ue.wifi().send(relay.id(),
                   net::D2dPayload{standard_heartbeat(*world, ue.id())},
                   [](Status) {});
    sim.run_until(sim.now() + seconds(5));
    cumulative.push_back(relay.wifi_charge().value - relay_baseline);
  }
  return cumulative;
}

TraceResult trace_d2d_transfer(std::uint64_t seed) {
  // Baseline 200 mA mirrors the paper's screen-on capture floor.
  auto world = bench_pair(seed, MilliAmps{200.0});
  core::Phone& ue = *world->phones()[0];
  core::Phone& relay = *world->phones()[1];
  relay.wifi().set_listening(true);
  sim::Simulator& sim = world->sim();

  ue.wifi().connect(relay.id(), [](Result<GroupId>) {});
  sim.run_until(sim.now() + seconds(4));

  energy::CurrentTraceRecorder recorder{sim, ue.meter()};
  const double before = ue.wifi_charge().value;
  recorder.start();
  ue.wifi().send(relay.id(),
                 net::D2dPayload{standard_heartbeat(*world, ue.id())},
                 [](Status) {});
  sim.run_until(sim.now() + seconds(2.5));
  recorder.stop();

  TraceResult result;
  result.series = recorder.as_series("D2D transfer");
  for (const auto& s : recorder.samples()) {
    result.peak_ma = std::max(result.peak_ma, s.current.value);
  }
  result.window_s = 2.5;
  result.charge_uah = ue.wifi_charge().value - before;
  return result;
}

TraceResult trace_cellular_transfer(std::uint64_t seed, bool use_lte) {
  auto world = std::make_unique<Scenario>(Scenario::Params{seed, {}, {}});
  core::PhoneConfig pc;
  pc.baseline_current = MilliAmps{200.0};
  if (use_lte) pc.rrc = radio::lte_profile();
  pc.mobility = std::make_unique<mobility::StaticMobility>(
      mobility::Vec2{0.0, 0.0});
  core::Phone& phone = world->add_phone(std::move(pc));
  sim::Simulator& sim = world->sim();

  energy::CurrentTraceRecorder recorder{sim, phone.meter()};
  const double before = phone.cellular_charge().value;
  recorder.start();
  net::UplinkBundle bundle;
  bundle.sender = phone.id();
  bundle.messages = {standard_heartbeat(*world, phone.id())};
  phone.modem().transmit(std::move(bundle));
  sim.run_until(sim.now() + seconds(9));
  recorder.stop();

  TraceResult result;
  result.series = recorder.as_series(use_lte ? "LTE transfer"
                                             : "Cellular transfer");
  for (const auto& s : recorder.samples()) {
    result.peak_ma = std::max(result.peak_ma, s.current.value);
  }
  result.window_s = 9.0;
  result.charge_uah = phone.cellular_charge().value - before;
  return result;
}

}  // namespace d2dhb::scenario
