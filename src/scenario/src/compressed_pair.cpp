#include "scenario/compressed_pair.hpp"

#include <algorithm>

#include "apps/app_profile.hpp"
#include "scenario/scenario.hpp"

namespace d2dhb::scenario {

namespace {

apps::AppProfile compressed_app(const CompressedPairConfig& config) {
  apps::AppProfile app = apps::standard_app();
  app.heartbeat_period = seconds(config.period_s);
  app.heartbeat_size = Bytes{config.heartbeat_bytes};
  app.expiry = seconds(config.period_s);
  return app;
}

core::PhoneConfig phone_config(const CompressedPairConfig& config,
                               mobility::Vec2 position) {
  core::PhoneConfig pc;
  pc.rrc = config.use_lte ? radio::lte_profile() : radio::wcdma_profile();
  pc.d2d_energy = config.technology.energy;
  pc.mobility = std::make_unique<mobility::StaticMobility>(position);
  return pc;
}

Duration settle_tail() { return seconds(30); }

void fill_common(Scenario& world, PairMetrics& metrics) {
  metrics.server = world.server().totals();
  metrics.system_l3 = world.bs().signaling().total();
  metrics.metrics = world.metrics_snapshot();
}

}  // namespace

PairMetrics run_d2d_pair(const CompressedPairConfig& config) {
  Scenario world{
      Scenario::Params{config.seed, config.technology.medium, {}}};
  const apps::AppProfile app = compressed_app(config);

  // Relay at the origin; UEs on a circle of the configured radius.
  core::Phone& relay_phone =
      world.add_phone(phone_config(config, mobility::Vec2{0.0, 0.0}));
  core::RelayAgent::Params relay_params;
  relay_params.own_app = app;
  relay_params.scheduler.capacity = config.capacity;
  relay_params.scheduler.max_own_delay =
      config.own_delay_s > 0.0 ? seconds(config.own_delay_s)
                               : app.heartbeat_period;
  relay_params.scheduler.deadline_margin = seconds(config.period_s / 10.0);
  relay_params.scheduler.collect_between_windows =
      config.collect_between_windows;
  core::RelayAgent& relay = world.add_relay(relay_phone, relay_params);
  relay.own_app().set_max_emissions(config.transmissions);
  world.register_session(relay_phone, 3 * app.heartbeat_period);

  std::vector<core::Phone*> ue_phones;
  for (std::size_t i = 0; i < config.num_ues; ++i) {
    const double angle =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) /
        static_cast<double>(std::max<std::size_t>(config.num_ues, 1));
    const mobility::Vec2 pos{config.ue_distance_m * std::cos(angle),
                             config.ue_distance_m * std::sin(angle)};
    core::Phone& phone = world.add_phone(phone_config(config, pos));
    ue_phones.push_back(&phone);
    core::UeAgent::Params ue_params;
    ue_params.app = app;
    ue_params.match.max_distance = Meters{config.max_match_distance_m};
    ue_params.feedback_timeout = seconds(1.5 * config.period_s + 10.0);
    core::UeAgent& ue = world.add_ue(phone, ue_params);
    ue.app().set_max_emissions(config.transmissions);
    world.register_session(phone, 3 * app.heartbeat_period);
  }

  relay.start();
  std::size_t ue_index = 0;
  for (auto& ue : world.ues()) {
    ue->start(app.heartbeat_period +
              seconds(config.ue_offset_spread_s *
                      static_cast<double>(ue_index++)));
  }

  const Duration horizon =
      seconds(config.period_s * static_cast<double>(config.transmissions + 1)) +
      seconds(config.ue_offset_spread_s *
              static_cast<double>(config.num_ues)) +
      settle_tail();
  world.sim().run_until(TimePoint{} + horizon);

  PairMetrics metrics;
  metrics.relay_uah = relay_phone.radio_charge().value;
  for (core::Phone* phone : ue_phones) {
    metrics.ue_uah.push_back(phone->radio_charge().value);
    metrics.ue_uah_total += phone->radio_charge().value;
    metrics.ue_l3 += world.bs().signaling().count_for(phone->id());
  }
  metrics.system_uah = metrics.relay_uah + metrics.ue_uah_total;
  metrics.relay_l3 = world.bs().signaling().count_for(relay_phone.id());
  metrics.bundles = relay.stats().bundles_sent;
  metrics.mean_bundle_size = relay.scheduler().stats().mean_bundle_size();
  metrics.forwarded = relay.stats().forwarded_received;
  for (auto& ue : world.ues()) {
    metrics.fallbacks += ue->stats().fallback_cellular;
    metrics.link_losses += ue->stats().link_losses;
  }
  metrics.relay_credits = world.ledger().balance(relay_phone.id());
  fill_common(world, metrics);
  return metrics;
}

PairMetrics run_original_pair(const CompressedPairConfig& config) {
  Scenario world{Scenario::Params{config.seed, {}, {}}};
  const apps::AppProfile app = compressed_app(config);

  core::Phone& relay_phone =
      world.add_phone(phone_config(config, mobility::Vec2{0.0, 0.0}));
  core::OriginalAgent& relay_agent = world.add_original(relay_phone, app);
  relay_agent.apps().front()->set_max_emissions(config.transmissions);
  world.register_session(relay_phone, 3 * app.heartbeat_period);

  std::vector<core::Phone*> ue_phones;
  for (std::size_t i = 0; i < config.num_ues; ++i) {
    const mobility::Vec2 pos{config.ue_distance_m, 0.0};
    core::Phone& phone = world.add_phone(phone_config(config, pos));
    ue_phones.push_back(&phone);
    core::OriginalAgent& agent = world.add_original(phone, app);
    agent.apps().front()->set_max_emissions(config.transmissions);
    world.register_session(phone, 3 * app.heartbeat_period);
  }

  for (auto& agent : world.originals()) agent->start();

  const Duration horizon =
      seconds(config.period_s * static_cast<double>(config.transmissions + 1)) +
      settle_tail();
  world.sim().run_until(TimePoint{} + horizon);

  PairMetrics metrics;
  metrics.relay_uah = relay_phone.radio_charge().value;
  for (core::Phone* phone : ue_phones) {
    metrics.ue_uah.push_back(phone->radio_charge().value);
    metrics.ue_uah_total += phone->radio_charge().value;
    metrics.ue_l3 += world.bs().signaling().count_for(phone->id());
  }
  metrics.system_uah = metrics.relay_uah + metrics.ue_uah_total;
  metrics.relay_l3 = world.bs().signaling().count_for(relay_phone.id());
  metrics.bundles = world.bs().bundles_received();
  metrics.mean_bundle_size = 1.0;
  fill_common(world, metrics);
  return metrics;
}

Savings compare(const PairMetrics& original, const PairMetrics& d2d) {
  Savings s;
  if (original.system_uah > 0.0) {
    s.system_energy_fraction =
        (original.system_uah - d2d.system_uah) / original.system_uah;
  }
  if (original.ue_uah_total > 0.0) {
    s.ue_energy_fraction =
        (original.ue_uah_total - d2d.ue_uah_total) / original.ue_uah_total;
  }
  if (original.system_l3 > 0) {
    s.signaling_fraction =
        static_cast<double>(original.system_l3 - d2d.system_l3) /
        static_cast<double>(original.system_l3);
  }
  const double wasted = d2d.relay_uah - original.relay_uah;
  const double saved = original.ue_uah_total - d2d.ue_uah_total;
  if (saved > 0.0) s.wasted_over_saved = wasted / saved;
  return s;
}

}  // namespace d2dhb::scenario
