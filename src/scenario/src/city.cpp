#include "scenario/city.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/memory.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace d2dhb::scenario {

namespace {

constexpr double kStripWidthM = 120.0;

/// One strip per phones_per_strip phones, capped by the kernel-count
/// limit — the cap widens the per-strip population, never drops phones.
std::size_t strip_count(const CityConfig& config) {
  const std::size_t per_strip = std::max<std::size_t>(
      1, config.phones_per_strip);
  const std::size_t strips = (config.phones + per_strip - 1) / per_strip;
  return std::clamp<std::size_t>(strips, 1, sim::EventKernel::kMaxShards);
}

/// Base-station row along the strips' long (x) axis, one site per
/// phones_per_cell phones, centered vertically.
std::vector<mobility::Vec2> city_sites(const CityConfig& config,
                                       double width) {
  const std::size_t cells = std::max<std::size_t>(
      1, config.phones / std::max<std::size_t>(1, config.phones_per_cell));
  std::vector<mobility::Vec2> sites;
  sites.reserve(cells);
  const double step = width / static_cast<double>(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    sites.push_back({(0.5 + static_cast<double>(c)) * step,
                     config.strip_height_m / 2.0});
  }
  return sites;
}

}  // namespace

std::unique_ptr<Scenario> build_city(const CityConfig& config) {
  const std::size_t strips = strip_count(config);
  const double width = kStripWidthM * static_cast<double>(strips);
  const double height = std::max(1.0, config.strip_height_m);

  Scenario::Params params;
  params.seed = config.seed;
  params.cell_sites = city_sites(config, width);
  params.shard_plan = world::ShardPlan{strips, 0.0, width};
  params.agent_memory =
      config.heap_agents ? Arena::Mode::heap : Arena::Mode::pooled;
  auto world = std::make_unique<Scenario>(std::move(params));

  const std::size_t clusters = std::max<std::size_t>(
      1, config.clusters_per_strip);
  // Every k-th member of a cluster relays (strip-local index i maps to
  // cluster i % clusters, so i / clusters is the member's rank within
  // its cluster) — a deterministic even spread that puts relays in
  // every hotspot.
  const std::size_t relay_every =
      config.relay_fraction > 0.0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::llround(1.0 / config.relay_fraction)))
          : 0;
  const std::size_t per_strip = (config.phones + strips - 1) / strips;
  const double period_s = to_seconds(config.app.heartbeat_period);

  std::size_t built = 0;
  for (std::size_t s = 0; s < strips && built < config.phones; ++s) {
    const std::size_t count =
        std::min(per_strip, config.phones - built);
    const double x0 = kStripWidthM * static_cast<double>(s);
    const double x1 = x0 + kStripWidthM;
    // This strip's private layout stream: hotspot centers kept a few
    // deviations off the edges, phones scattered normally around them
    // and clamped back into the strip.
    Rng layout = world->fork_rng();
    const double margin =
        std::min(3.0 * config.cluster_stddev_m, kStripWidthM / 4.0);
    std::vector<mobility::Vec2> centers;
    centers.reserve(clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      centers.push_back(
          {layout.uniform(x0 + margin, x1 - margin),
           layout.uniform(margin, std::max(margin + 1.0, height - margin))});
    }
    for (std::size_t i = 0; i < count; ++i, ++built) {
      const mobility::Vec2& center = centers[i % clusters];
      mobility::Vec2 pos{
          layout.normal(center.x, config.cluster_stddev_m),
          layout.normal(center.y, config.cluster_stddev_m)};
      pos.x = std::clamp(pos.x, x0, x1 - 1e-6);
      pos.y = std::clamp(pos.y, 0.0, height);

      core::PhoneConfig pc;
      pc.mobility_ref =
          &world->emplace_mobility<mobility::StaticMobility>(pos, pos);
      core::Phone& phone = world->add_phone(std::move(pc));

      const Duration offset = seconds(
          period_s *
          (0.1 + config.stagger_fraction * static_cast<double>(built) /
                     static_cast<double>(config.phones)));
      const bool is_relay =
          relay_every > 0 && (i / clusters) % relay_every == 0;
      if (is_relay) {
        core::RelayAgent::Params rp;
        rp.own_app = config.app;
        rp.scheduler.capacity = config.relay_capacity;
        rp.scheduler.max_own_delay = config.app.heartbeat_period;
        core::RelayAgent& relay = world->add_relay(phone, rp);
        world->register_session(phone, 3 * config.app.heartbeat_period);
        sim::ShardGuard guard(world->sim(),
                              world->nodes().shard_of(phone.id()));
        relay.start(offset);
      } else {
        core::UeAgent::Params up;
        up.app = config.app;
        up.match.max_distance = Meters{config.match_max_distance_m};
        up.feedback_timeout = config.app.heartbeat_period + seconds(30);
        core::UeAgent& ue = world->add_ue(phone, up);
        world->register_session(phone, 3 * config.app.heartbeat_period);
        sim::ShardGuard guard(world->sim(),
                              world->nodes().shard_of(phone.id()));
        ue.start(offset);
      }
    }
  }
  return world;
}

CityMetrics run_city(Scenario& world, const CityConfig& config) {
  const TimePoint end = TimePoint{} + seconds(config.duration_s);
  sim::RunOptions options;
  options.threads = config.threads;
  options.profile = config.profile;
  options.profiler = config.profiler;
  const sim::RunStats run_stats = sim::run(world.sim(), end, options);

  CityMetrics m;
  m.shard_events_executed = run_stats.shard_events_executed;
  m.shard_mailbox_delivered = run_stats.shard_mailbox_delivered;
  m.profile = run_stats.profile;
  m.phones = world.phones().size();
  m.relays = world.relays().size();
  m.cells = world.cell_count();
  m.strips = world.sim().shard_count();
  m.total_l3 = world.total_l3();
  m.peak_l3_per_10s = world.worst_cell_peak(seconds(10));
  m.heartbeats_delivered = world.server().totals().delivered;
  for (const auto* relay : world.relays()) {
    m.forwarded_via_d2d += relay->stats().forwarded_received;
  }
  for (const auto* ue : world.ues()) {
    m.fallbacks += ue->stats().fallback_cellular;
  }
  m.sim_events = world.sim().executed_events();
  for (std::uint32_t s = 0; s < world.sim().shard_count(); ++s) {
    // detlint: allow(cross-strip-access): post-run counter read, quiesced
    m.cross_shard_posted += world.sim().mailbox(s).posted();
    // detlint: allow(cross-strip-access): post-run counter read, quiesced
    m.cross_shard_delivered += world.sim().mailbox(s).delivered();
  }
  const Arena::Stats arena = world.arena_stats();
  m.arena_bytes_allocated = arena.bytes_allocated;
  m.arena_bytes_reserved = arena.bytes_reserved;
  m.arena_objects = arena.objects;
  m.peak_rss_bytes = peak_rss_bytes();
  return m;
}

CityMetrics run_city_crowd(const CityConfig& config) {
  auto world = build_city(config);
  return run_city(*world, config);
}

}  // namespace d2dhb::scenario
