#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace d2dhb::scenario {

Scenario::Scenario() : Scenario(Params{}) {}

namespace {

/// Cell size for the site index: the mean site spacing is a good
/// default; any positive value is correct (only query cost varies).
Meters site_grid_cell(const std::vector<mobility::Vec2>& sites) {
  if (sites.size() < 2) return Meters{100.0};
  double min_x = sites[0].x, max_x = sites[0].x;
  double min_y = sites[0].y, max_y = sites[0].y;
  for (const auto& s : sites) {
    min_x = std::min(min_x, s.x);
    max_x = std::max(max_x, s.x);
    min_y = std::min(min_y, s.y);
    max_y = std::max(max_y, s.y);
  }
  const double span = std::max(max_x - min_x, max_y - min_y);
  return Meters{std::max(1.0, span / std::sqrt(
                                    static_cast<double>(sites.size())))};
}

}  // namespace

Scenario::Scenario(Params params)
    : rng_(params.seed),
      medium_(sim_, params.medium, rng_.fork()),
      server_(sim_),
      sites_(params.cell_sites.empty()
                 ? std::vector<mobility::Vec2>{{0.0, 0.0}}
                 : params.cell_sites),
      site_grid_(site_grid_cell(sites_)) {
  cells_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    cells_.push_back(std::make_unique<radio::BaseStation>(
        sim_, server_, params.backhaul, rng_.fork(), i));
    site_grid_.insert(i, sites_[i]);
  }
  ledger_.bind_metrics(sim_.metrics());
}

std::size_t Scenario::cell_of(NodeId node) const {
  if (node.value >= serving_cell_.size() ||
      serving_cell_[node.value] == kNoCell) {
    throw std::out_of_range(
        "Scenario::cell_of: node #" + std::to_string(node.value) +
        " is not a phone of this scenario (phones attach in add_phone)");
  }
  return serving_cell_[node.value];
}

core::Phone* Scenario::find_phone(NodeId node) const {
  if (node.value >= phone_by_id_.size()) return nullptr;
  return phone_by_id_[node.value];
}

std::uint64_t Scenario::total_l3() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) total += cell->signaling().total();
  return total;
}

std::uint64_t Scenario::worst_cell_peak(Duration window) const {
  std::uint64_t worst = 0;
  for (const auto& cell : cells_) {
    worst = std::max(worst, cell->signaling().peak_rate(window));
  }
  return worst;
}

core::Phone& Scenario::add_phone(core::PhoneConfig config) {
  if (!config.mobility) {
    throw std::invalid_argument("Scenario::add_phone: mobility required");
  }
  const NodeId id = node_ids_.next();
  // Cell selection: nearest site to the phone's initial position,
  // answered by the site world index (ties go to the lowest site
  // index, the same rule as a first-strictly-closer linear scan).
  const mobility::Vec2 at = config.mobility->position_at(sim_.now());
  const std::size_t best = site_grid_.nearest(at);
  if (id.value >= serving_cell_.size()) {
    serving_cell_.resize(id.value + 1, kNoCell);
    phone_by_id_.resize(id.value + 1, nullptr);
  }
  serving_cell_[id.value] = static_cast<std::uint32_t>(best);
  phones_.push_back(std::make_unique<core::Phone>(
      sim_, id, std::move(config), medium_, cells_[best]->signaling(),
      rng_.fork()));
  phone_by_id_[id.value] = phones_.back().get();
  return *phones_.back();
}

core::RelayAgent& Scenario::add_relay(core::Phone& phone,
                                      core::RelayAgent::Params params) {
  relays_.push_back(std::make_unique<core::RelayAgent>(
      sim_, phone, std::move(params), serving_bs(phone), message_ids_,
      &ledger_));
  return *relays_.back();
}

core::UeAgent& Scenario::add_ue(core::Phone& phone,
                                core::UeAgent::Params params) {
  ues_.push_back(std::make_unique<core::UeAgent>(
      sim_, phone, std::move(params), serving_bs(phone), message_ids_,
      rng_.fork()));
  return *ues_.back();
}

core::OriginalAgent& Scenario::add_original(core::Phone& phone,
                                            apps::AppProfile app) {
  originals_.push_back(std::make_unique<core::OriginalAgent>(
      sim_, phone, std::move(app), serving_bs(phone), message_ids_));
  return *originals_.back();
}

void Scenario::register_session(const core::Phone& phone, Duration tolerance,
                                AppId app) {
  if (!app.valid()) app = AppId{phone.id().value};
  server_.register_client(phone.id(), app, tolerance);
}

}  // namespace d2dhb::scenario
