#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace d2dhb::scenario {

Scenario::Scenario() : Scenario(Params{}) {}

namespace {

/// Cell size for the site index: the mean site spacing is a good
/// default; any positive value is correct (only query cost varies).
Meters site_grid_cell(const std::vector<mobility::Vec2>& sites) {
  if (sites.size() < 2) return Meters{100.0};
  double min_x = sites[0].x, max_x = sites[0].x;
  double min_y = sites[0].y, max_y = sites[0].y;
  for (const auto& s : sites) {
    min_x = std::min(min_x, s.x);
    max_x = std::max(max_x, s.x);
    min_y = std::min(min_y, s.y);
    max_y = std::max(max_y, s.y);
  }
  const double span = std::max(max_x - min_x, max_y - min_y);
  return Meters{std::max(1.0, span / std::sqrt(
                                    static_cast<double>(sites.size())))};
}

}  // namespace

Scenario::Scenario(Params params)
    : rng_(params.seed),
      shard_plan_(params.shard_plan),
      sim_(shard_plan_.shards),
      medium_(sim_, table_, params.medium, rng_.fork()),
      server_(sim_),
      sites_(params.cell_sites.empty()
                 ? std::vector<mobility::Vec2>{{0.0, 0.0}}
                 : params.cell_sites),
      site_grid_(site_grid_cell(sites_)),
      agent_memory_(params.agent_memory) {
  cells_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    cells_.push_back(std::make_unique<radio::BaseStation>(
        sim_, server_, params.backhaul, rng_.fork(), i));
    site_grid_.insert(i, sites_[i]);
  }
  ledger_.attach(sim_);
  ledger_.bind_metrics(sim_.metrics());
  message_lanes_.reserve(shard_plan_.shards);
  arenas_.reserve(shard_plan_.shards);
  for (std::size_t s = 0; s < shard_plan_.shards; ++s) {
    message_lanes_.emplace_back(1 + s, shard_plan_.shards);
    arenas_.push_back(std::make_unique<Arena>(agent_memory_));
  }
  table_auditor_token_ = sim_.add_auditor([this] { table_.audit(); });
}

Scenario::~Scenario() { sim_.remove_auditor(table_auditor_token_); }

std::size_t Scenario::cell_of(NodeId node) const {
  if (!table_.contains(node) || table_.cell_of(node) == world::kNoCell) {
    throw std::out_of_range(
        "Scenario::cell_of: node #" + std::to_string(node.value) +
        " is not a phone of this scenario (phones attach in add_phone)");
  }
  return table_.cell_of(node);
}

core::Phone* Scenario::find_phone(NodeId node) const {
  if (node.value >= phone_by_id_.size()) return nullptr;
  return phone_by_id_[node.value];
}

core::RelayAgent* Scenario::find_relay(NodeId node) const {
  if (!table_.contains(node) ||
      table_.role_of(node) != world::NodeRole::relay) {
    return nullptr;
  }
  const std::uint32_t slot = table_.agent_slot(node);
  return slot == world::kNoAgentSlot ? nullptr : relays_[slot];
}

core::UeAgent* Scenario::find_ue(NodeId node) const {
  if (!table_.contains(node) || table_.role_of(node) != world::NodeRole::ue) {
    return nullptr;
  }
  const std::uint32_t slot = table_.agent_slot(node);
  return slot == world::kNoAgentSlot ? nullptr : ues_[slot];
}

core::OriginalAgent* Scenario::find_original(NodeId node) const {
  if (!table_.contains(node) ||
      table_.role_of(node) != world::NodeRole::original) {
    return nullptr;
  }
  const std::uint32_t slot = table_.agent_slot(node);
  return slot == world::kNoAgentSlot ? nullptr : originals_[slot];
}

Arena::Stats Scenario::arena_stats() const {
  Arena::Stats total;
  for (const auto& arena : arenas_) {
    const Arena::Stats& s = arena->stats();
    total.bytes_allocated += s.bytes_allocated;
    total.bytes_reserved += s.bytes_reserved;
    total.blocks += s.blocks;
    total.objects += s.objects;
  }
  return total;
}

std::uint64_t Scenario::total_l3() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) total += cell->signaling().total();
  return total;
}

std::uint64_t Scenario::worst_cell_peak(Duration window) const {
  std::uint64_t worst = 0;
  for (const auto& cell : cells_) {
    worst = std::max(worst, cell->signaling().peak_rate(window));
  }
  return worst;
}

core::Phone& Scenario::add_phone(core::PhoneConfig config) {
  const mobility::MobilityModel* model = config.mobility_ref;
  if (model == nullptr && !config.mobility) {
    throw std::invalid_argument("Scenario::add_phone: mobility required");
  }
  const NodeId id = node_ids_.next();
  // Cell selection: nearest site to the phone's initial position,
  // answered by the site world index (ties go to the lowest site
  // index, the same rule as a first-strictly-closer linear scan).
  const mobility::Vec2 at =
      (model != nullptr ? model : config.mobility.get())
          ->position_at(sim_.now());
  const std::size_t best = site_grid_.nearest(at);
  const std::uint32_t shard = shard_plan_.shard_for(at);
  Arena& arena = *arenas_[shard];
  if (model == nullptr) {
    // The config owned the model; its lifetime moves into the strip
    // arena (adopted BEFORE the phone, so reverse-order teardown
    // destroys the phone first, the model after).
    model = &arena.adopt(std::move(config.mobility));
  }
  config.mobility_ref = model;
  // Register the node's world state BEFORE the phone exists: the radio
  // attaches to the medium during Phone construction and must find its
  // row.
  table_.add(id, model);
  table_.set_cell(id, static_cast<std::uint32_t>(best));
  table_.set_shard(id, shard);
  if (id.value >= phone_by_id_.size()) {
    phone_by_id_.resize(id.value + 1, nullptr);
  }
  core::Phone* phone = nullptr;
  {
    // Home the phone's timers (RRC, link monitor, agent beats) on its
    // shard's kernel — and its state in that shard's arena.
    sim::ShardGuard guard(sim_, shard);
    phone = &arena.create<core::Phone>(sim_, id, std::move(config), medium_,
                                       cells_[best]->signaling(),
                                       rng_.fork());
  }
  phones_.push_back(phone);
  phone_by_id_[id.value] = phone;
  return *phone;
}

core::RelayAgent& Scenario::add_relay(core::Phone& phone,
                                      core::RelayAgent::Params params) {
  const std::uint32_t shard = table_.shard_of(phone.id());
  table_.set_role(phone.id(), world::NodeRole::relay);
  table_.set_agent_slot(phone.id(),
                        static_cast<std::uint32_t>(relays_.size()));
  Arena& arena = *arenas_[shard];
  sim::ShardGuard guard(sim_, shard);
  relays_.push_back(&arena.create<core::RelayAgent>(
      sim_, phone, std::move(params), serving_bs(phone),
      message_lanes_[shard], &ledger_, &arena));
  return *relays_.back();
}

core::UeAgent& Scenario::add_ue(core::Phone& phone,
                                core::UeAgent::Params params) {
  const std::uint32_t shard = table_.shard_of(phone.id());
  table_.set_role(phone.id(), world::NodeRole::ue);
  table_.set_agent_slot(phone.id(), static_cast<std::uint32_t>(ues_.size()));
  Arena& arena = *arenas_[shard];
  sim::ShardGuard guard(sim_, shard);
  ues_.push_back(&arena.create<core::UeAgent>(
      sim_, phone, std::move(params), serving_bs(phone),
      message_lanes_[shard], rng_.fork(), &arena));
  return *ues_.back();
}

core::OriginalAgent& Scenario::add_original(core::Phone& phone,
                                            apps::AppProfile app) {
  const std::uint32_t shard = table_.shard_of(phone.id());
  table_.set_role(phone.id(), world::NodeRole::original);
  table_.set_agent_slot(phone.id(),
                        static_cast<std::uint32_t>(originals_.size()));
  Arena& arena = *arenas_[shard];
  sim::ShardGuard guard(sim_, shard);
  originals_.push_back(&arena.create<core::OriginalAgent>(
      sim_, phone, std::move(app), serving_bs(phone), message_lanes_[shard],
      &arena));
  return *originals_.back();
}

void Scenario::register_session(const core::Phone& phone, Duration tolerance,
                                AppId app) {
  if (!app.valid()) app = AppId{phone.id().value};
  server_.register_client(phone.id(), app, tolerance);
}

}  // namespace d2dhb::scenario
