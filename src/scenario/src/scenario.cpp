#include "scenario/scenario.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace d2dhb::scenario {

Scenario::Scenario() : Scenario(Params{}) {}

Scenario::Scenario(Params params)
    : rng_(params.seed),
      medium_(sim_, params.medium, rng_.fork()),
      server_(sim_) {
  sites_ = params.cell_sites.empty()
               ? std::vector<mobility::Vec2>{{0.0, 0.0}}
               : params.cell_sites;
  cells_.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    cells_.push_back(std::make_unique<radio::BaseStation>(
        sim_, server_, params.backhaul, rng_.fork(), i));
  }
  ledger_.bind_metrics(sim_.metrics());
}

std::uint64_t Scenario::total_l3() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) total += cell->signaling().total();
  return total;
}

std::uint64_t Scenario::worst_cell_peak(Duration window) const {
  std::uint64_t worst = 0;
  for (const auto& cell : cells_) {
    worst = std::max(worst, cell->signaling().peak_rate(window));
  }
  return worst;
}

core::Phone& Scenario::add_phone(core::PhoneConfig config) {
  if (!config.mobility) {
    throw std::invalid_argument("Scenario::add_phone: mobility required");
  }
  const NodeId id = node_ids_.next();
  // Cell selection: nearest site to the phone's initial position.
  const mobility::Vec2 at = config.mobility->position_at(sim_.now());
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const double d = mobility::distance(at, sites_[i]).value;
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  serving_cell_[id] = best;
  phones_.push_back(std::make_unique<core::Phone>(
      sim_, id, std::move(config), medium_, cells_[best]->signaling(),
      rng_.fork()));
  return *phones_.back();
}

core::RelayAgent& Scenario::add_relay(core::Phone& phone,
                                      core::RelayAgent::Params params) {
  relays_.push_back(std::make_unique<core::RelayAgent>(
      sim_, phone, std::move(params), serving_bs(phone), message_ids_,
      &ledger_));
  return *relays_.back();
}

core::UeAgent& Scenario::add_ue(core::Phone& phone,
                                core::UeAgent::Params params) {
  ues_.push_back(std::make_unique<core::UeAgent>(
      sim_, phone, std::move(params), serving_bs(phone), message_ids_,
      rng_.fork()));
  return *ues_.back();
}

core::OriginalAgent& Scenario::add_original(core::Phone& phone,
                                            apps::AppProfile app) {
  originals_.push_back(std::make_unique<core::OriginalAgent>(
      sim_, phone, std::move(app), serving_bs(phone), message_ids_));
  return *originals_.back();
}

void Scenario::register_session(const core::Phone& phone, Duration tolerance,
                                AppId app) {
  if (!app.valid()) app = AppId{phone.id().value};
  server_.register_client(phone.id(), app, tolerance);
}

}  // namespace d2dhb::scenario
