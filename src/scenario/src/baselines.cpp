#include "scenario/baselines.hpp"

#include <cmath>

#include "common/table.hpp"
#include <memory>

#include "core/baseline_agent.hpp"
#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "scenario/scenario.hpp"

namespace d2dhb::scenario {

namespace {

core::Phone& add_static_phone(Scenario& world, mobility::Vec2 position) {
  core::PhoneConfig pc;
  pc.mobility = std::make_unique<mobility::StaticMobility>(position);
  return world.add_phone(std::move(pc));
}

StrategyMetrics collect(Scenario& world, std::string name,
                        double detection_s, std::string note) {
  StrategyMetrics m;
  m.name = std::move(name);
  m.total_l3 = world.bs().signaling().total();
  for (auto& phone : world.phones()) {
    m.total_radio_uah += phone->radio_charge().value;
  }
  const auto totals = world.server().totals();
  m.mean_latency_s = totals.mean_latency_s();
  m.heartbeats_delivered = totals.delivered;
  m.offline_events = totals.offline_events;
  m.offline_detection_s = detection_s;
  m.note = std::move(note);
  m.metrics = world.metrics_snapshot();
  return m;
}

StrategyMetrics run_cellular_strategy(
    const BaselineConfig& config, const std::string& name,
    const core::CellularBaselineAgent::Params& agent_params) {
  Scenario world{Scenario::Params{config.seed, {}, {}}};
  std::vector<std::unique_ptr<core::CellularBaselineAgent>> agents;
  for (std::size_t i = 0; i < config.phones; ++i) {
    core::Phone& phone = add_static_phone(
        world, mobility::Vec2{static_cast<double>(i), 0.0});
    agents.push_back(std::make_unique<core::CellularBaselineAgent>(
        world.sim(), phone, agent_params, world.bs(), world.message_ids(),
        world.fork_rng()));
    // Server tolerance: ~3 announced periods.
    world.register_session(phone, 3 * agents.back()->heartbeat_period());
  }
  for (auto& agent : agents) agent->start();
  world.sim().run_until(TimePoint{} + seconds(config.duration_s));

  std::uint64_t piggybacked = 0, heartbeats = 0;
  for (auto& agent : agents) {
    piggybacked += agent->stats().piggybacked;
    heartbeats += agent->stats().heartbeats;
  }
  std::string note;
  if (agent_params.piggyback && heartbeats > 0) {
    note = "piggybacked " +
           std::to_string(100 * piggybacked / std::max<std::uint64_t>(
                                                  heartbeats, 1)) +
           "% of heartbeats";
  }
  const double detection_s =
      3.0 * to_seconds(agent_params.app.heartbeat_period) *
      agent_params.period_factor;
  return collect(world, name, detection_s, note);
}

}  // namespace

StrategyMetrics run_baseline_original(const BaselineConfig& config) {
  core::CellularBaselineAgent::Params p;
  p.app = config.app;
  return run_cellular_strategy(config, "original", p);
}

StrategyMetrics run_baseline_period_extension(const BaselineConfig& config,
                                              double factor) {
  core::CellularBaselineAgent::Params p;
  p.app = config.app;
  p.period_factor = factor;
  return run_cellular_strategy(
      config, "period x" + Table::num(factor, 1), p);
}

StrategyMetrics run_baseline_piggyback(const BaselineConfig& config) {
  core::CellularBaselineAgent::Params p;
  p.app = config.app;
  p.piggyback = true;
  return run_cellular_strategy(config, "piggyback", p);
}

StrategyMetrics run_baseline_fast_dormancy(const BaselineConfig& config) {
  core::CellularBaselineAgent::Params p;
  p.app = config.app;
  p.fast_dormancy = true;
  return run_cellular_strategy(config, "fast dormancy", p);
}

StrategyMetrics run_d2d_framework_arm(const BaselineConfig& config) {
  Scenario world{Scenario::Params{config.seed, {}, {}}};
  const auto relay_count = static_cast<std::size_t>(std::round(
      config.relay_fraction * static_cast<double>(config.phones)));

  // Phones in a line, 2 m apart — everyone within D2D reach of a relay.
  std::vector<core::Phone*> phones;
  for (std::size_t i = 0; i < config.phones; ++i) {
    phones.push_back(&add_static_phone(
        world,
        mobility::Vec2{2.0 * static_cast<double>(i % 6),
                       2.0 * static_cast<double>(i / 6)}));
  }
  for (std::size_t i = 0; i < config.phones; ++i) {
    if (i < relay_count) {
      core::RelayAgent::Params rp;
      rp.own_app = config.app;
      rp.scheduler.max_own_delay = config.app.heartbeat_period;
      core::RelayAgent& relay = world.add_relay(*phones[i], rp);
      relay.start(seconds(10.0 + static_cast<double>(i)));
    } else {
      core::UeAgent::Params up;
      up.app = config.app;
      up.feedback_timeout = config.app.heartbeat_period + seconds(30);
      core::UeAgent& ue = world.add_ue(*phones[i], up);
      ue.start(seconds(10.0 + 3.0 * static_cast<double>(i)));
    }
    world.register_session(*phones[i], 3 * config.app.heartbeat_period);
  }

  // Identical chat-data load, carried over each phone's own cellular
  // link (the framework only relays heartbeats).
  std::vector<std::unique_ptr<apps::MixedTrafficGenerator>> data_gens;
  for (core::Phone* phone : phones) {
    data_gens.push_back(std::make_unique<apps::MixedTrafficGenerator>(
        world.sim(), config.app, world.fork_rng(),
        [&world, phone](apps::MixedTrafficGenerator::Kind kind,
                        Bytes size) {
          if (kind != apps::MixedTrafficGenerator::Kind::data) return;
          net::UplinkBundle bundle;
          bundle.sender = phone->id();
          bundle.extra_payload = size;
          phone->modem().transmit(std::move(bundle));
        }));
    data_gens.back()->start();
  }

  world.sim().run_until(TimePoint{} + seconds(config.duration_s));

  std::uint64_t forwarded = 0, ue_heartbeats = 0;
  for (auto& relay : world.relays()) {
    forwarded += relay->stats().forwarded_received;
  }
  for (auto& ue : world.ues()) ue_heartbeats += ue->stats().heartbeats;
  std::string note;
  if (ue_heartbeats > 0) {
    note = "via relay " +
           std::to_string(100 * forwarded / ue_heartbeats) +
           "% of UE heartbeats";
  }
  return collect(world, "D2D framework (paper)",
                 3.0 * to_seconds(config.app.heartbeat_period),
                 std::move(note));
}

std::vector<StrategyMetrics> run_all_strategies(
    const BaselineConfig& config) {
  return {
      run_baseline_original(config),
      run_baseline_period_extension(config, 2.0),
      run_baseline_piggyback(config),
      run_baseline_fast_dormancy(config),
      run_d2d_framework_arm(config),
  };
}

}  // namespace d2dhb::scenario
