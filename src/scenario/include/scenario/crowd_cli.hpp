// Shared command-line parsing for crowd experiments.
//
// Every driver that runs a crowd — the d2dhb_sim CLI and the scaling /
// storm benches — exposes the same CrowdConfig knobs. Before this
// helper each driver hand-rolled its own subset (and new knobs like
// --shards had to be wired into each one separately); now a single
// flag table maps names onto CrowdConfig fields, and drivers layer
// their own flags (--smoke, --metrics-out, --seeds) on top.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/crowd.hpp"

namespace d2dhb::scenario {

/// Thin argv wrapper: lookups mark their flag (and value) as consumed,
/// so a driver can list leftover `--flags` after parsing everything it
/// knows — the "unknown flag" usage error.
class CliFlags {
 public:
  /// Wraps argv[first..argc). The program name and any mode word
  /// (e.g. "crowd") stay outside.
  CliFlags(int argc, char** argv, int first = 1);

  /// True when bare flag `name` is present (marks it consumed).
  bool has(const std::string& name);
  /// Value following `--name` (marks both consumed); nullopt if absent.
  std::optional<std::string> value(const std::string& name);
  /// Value of `--name` parsed as a double; `fallback` when absent.
  double number(const std::string& name, double fallback);

  /// Every argument starting with "--" that no lookup consumed.
  std::vector<std::string> leftover() const;

 private:
  std::vector<std::string> args_;
  std::vector<bool> used_;
};

/// Applies every recognized crowd knob onto `config`:
///   --phones N --relay-fraction F --area M --duration S --mobile
///   --policy greedy|random|density|first-n --cell-grid N
///   --grid-cell M --legacy-scan --reassess S --shards N --threads N
///   --heap-agents --seed S
/// Returns an error message ("unknown --policy: x", "--shards must be
/// in [1, 256]") or the empty string on success. Flags not present
/// leave their field untouched, so drivers can pre-load defaults.
std::string apply_crowd_flags(CliFlags& flags, CrowdConfig& config);

/// One usage line per crowd knob, for drivers' --help text.
const char* crowd_flags_help();

}  // namespace d2dhb::scenario
