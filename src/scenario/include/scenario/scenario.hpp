// Experiment assembly: one Scenario owns the simulator, the shared
// Wi-Fi Direct medium, the base station + IM server, the incentive
// ledger, and every phone and agent added to it. Benches, examples, and
// integration tests build their worlds through this class.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/id.hpp"
#include "common/rng.hpp"
#include "core/original_agent.hpp"
#include "core/phone.hpp"
#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "d2d/medium.hpp"
#include "metrics/registry.hpp"
#include "mobility/spatial_grid.hpp"
#include "net/im_server.hpp"
#include "radio/base_station.hpp"
#include "sim/simulator.hpp"
#include "world/node_table.hpp"
#include "world/shard_plan.hpp"

namespace d2dhb::scenario {

class Scenario {
 public:
  struct Params {
    std::uint64_t seed{42};
    d2d::WifiDirectMedium::Params medium{};
    net::Channel::Params backhaul{};
    /// Base-station sites. Empty = one cell at the origin. Phones attach
    /// to the nearest site at creation time (cell selection; the
    /// simulation does not model handover between cells).
    std::vector<mobility::Vec2> cell_sites{};
    /// Spatial partition of the world across event kernels. The default
    /// (1 shard) is the classic single-kernel run; N > 1 homes each
    /// phone's timers on the kernel owning its initial position and
    /// routes border traffic through the shard mailboxes. Results are
    /// byte-identical either way.
    world::ShardPlan shard_plan{};
    /// Agent memory layout: pooled (one bump arena per shard strip —
    /// the production layout) or heap (one allocation per object, the
    /// ablation arm of the arena-vs-heap byte-identical gate). Results
    /// are byte-identical either way; only the layout differs.
    Arena::Mode agent_memory{Arena::Mode::pooled};
  };

  Scenario();
  explicit Scenario(Params params);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  sim::Simulator& sim() { return sim_; }
  const sim::Simulator& sim() const { return sim_; }
  d2d::WifiDirectMedium& medium() { return medium_; }
  const d2d::WifiDirectMedium& medium() const { return medium_; }
  net::ImServer& server() { return server_; }
  const net::ImServer& server() const { return server_; }
  /// The cell a phone attaches to, by index.
  radio::BaseStation& bs(std::size_t cell = 0) { return *cells_.at(cell); }
  const radio::BaseStation& bs(std::size_t cell = 0) const {
    return *cells_.at(cell);
  }
  std::size_t cell_count() const { return cells_.size(); }
  mobility::Vec2 cell_site(std::size_t cell) const {
    return sites_.at(cell);
  }
  /// Which cell serves this phone. Fails loudly (naming the node) for
  /// ids that never went through add_phone.
  std::size_t cell_of(NodeId node) const;
  radio::BaseStation& serving_bs(const core::Phone& phone) {
    return *cells_[cell_of(phone.id())];
  }
  const radio::BaseStation& serving_bs(const core::Phone& phone) const {
    return *cells_[cell_of(phone.id())];
  }
  /// Dense NodeId → phone lookup (nullptr for unknown ids).
  core::Phone* find_phone(NodeId node) const;
  /// Dense NodeId → agent lookups via the NodeTable's agent-slot
  /// column (nullptr for nodes without that role).
  core::RelayAgent* find_relay(NodeId node) const;
  core::UeAgent* find_ue(NodeId node) const;
  core::OriginalAgent* find_original(NodeId node) const;

  /// The world's dense node-state layer (positions, serving cells,
  /// roles, battery levels, D2D slots, home shards).
  world::NodeTable& nodes() { return table_; }
  const world::NodeTable& nodes() const { return table_; }

  /// The world's unified metrics registry (owned by the simulator).
  metrics::MetricsRegistry& metrics() { return sim_.metrics(); }
  const metrics::MetricsRegistry& metrics() const { return sim_.metrics(); }
  /// Deterministic point-in-time view of every registered metric.
  metrics::Snapshot metrics_snapshot() const {
    return sim_.metrics().snapshot();
  }
  /// Control-plane totals summed over every cell.
  std::uint64_t total_l3() const;
  /// Largest per-cell peak L3 rate in any `window` (the storm metric is
  /// per control channel, i.e. per cell).
  std::uint64_t worst_cell_peak(Duration window) const;

  core::IncentiveLedger& ledger() { return ledger_; }
  /// Strip 0's message-id lane — the classic 1, 2, 3, ... generator in
  /// a single-strip world. Agents added through add_relay/add_ue/
  /// add_original draw from their own strip's lane instead, so strips
  /// mint ids concurrently without sharing a counter.
  IdGenerator<MessageId>& message_ids() { return message_lanes_.front(); }
  Rng fork_rng() { return rng_.fork(); }

  /// Adds a phone; the id is assigned automatically (1, 2, 3, ...) and
  /// the phone attaches to the nearest cell site. The phone (and an
  /// owning config.mobility model, if given) is placed in the arena of
  /// the strip owning its initial position.
  core::Phone& add_phone(core::PhoneConfig config);

  /// Constructs a mobility model directly in the arena of the strip
  /// owning `at` — the zero-heap path for streamed city construction
  /// (`pc.mobility_ref = &world.emplace_mobility<...>(pos, ...)`).
  /// `at` must be the model's initial position; it only selects the
  /// strip, the model's own constructor arguments follow.
  template <typename M, typename... Args>
  const M& emplace_mobility(mobility::Vec2 at, Args&&... args) {
    // detlint: allow(arena-escape): sanctioned factory — the borrow is
    // handed to the caller on the strip that owns `at`, same lifetime.
    return arenas_[shard_plan_.shard_for(at)]->create<M>(
        std::forward<Args>(args)...);
  }

  /// The arena owning strip `shard`'s agents (construction hook for
  /// advanced builders; most callers go through add_phone/add_*).
  Arena& strip_arena(std::uint32_t shard) { return *arenas_.at(shard); }
  /// Arena footprint summed over every strip.
  Arena::Stats arena_stats() const;
  Arena::Mode agent_memory() const { return agent_memory_; }

  core::RelayAgent& add_relay(core::Phone& phone,
                              core::RelayAgent::Params params);
  core::UeAgent& add_ue(core::Phone& phone, core::UeAgent::Params params);
  core::OriginalAgent& add_original(core::Phone& phone,
                                    apps::AppProfile app);

  /// Registers an app session at the server with the given tolerance
  /// (commercial servers allow ~3 heartbeat periods). By default the
  /// phone's primary app is registered; pass `app` explicitly for phones
  /// running several.
  void register_session(const core::Phone& phone, Duration tolerance,
                        AppId app = AppId::invalid());

  /// Dense agent stores: row = the NodeTable's agent-slot column value.
  /// The objects themselves live in the strip arenas; these vectors are
  /// the index.
  std::vector<core::Phone*>& phones() { return phones_; }
  std::vector<core::RelayAgent*>& relays() { return relays_; }
  std::vector<core::UeAgent*>& ues() { return ues_; }
  std::vector<core::OriginalAgent*>& originals() { return originals_; }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

 private:
  Rng rng_;
  world::ShardPlan shard_plan_;
  sim::Simulator sim_;
  /// Declared before the medium: the medium (and through it every
  /// radio) indexes into this table for positions and D2D slots.
  world::NodeTable table_;
  d2d::WifiDirectMedium medium_;
  net::ImServer server_;

  std::vector<mobility::Vec2> sites_;
  std::vector<std::unique_ptr<radio::BaseStation>> cells_;
  /// Cell-site world index for nearest-cell attach.
  mobility::PointGrid site_grid_;
  /// NodeId → phone, dense (nullptr marks ids that never went through
  /// add_phone). Core-typed, so it stays here rather than in the
  /// world-layer NodeTable.
  std::vector<core::Phone*> phone_by_id_;
  std::uint64_t table_auditor_token_{0};
  core::IncentiveLedger ledger_;
  IdGenerator<NodeId> node_ids_;
  /// One message-id lane per strip (lane k of V mints 1+k, 1+k+V, ...).
  /// Sized once at construction — agents keep references into it.
  std::vector<IdGenerator<MessageId>> message_lanes_;
  Arena::Mode agent_memory_;
  std::vector<core::Phone*> phones_;
  std::vector<core::RelayAgent*> relays_;
  std::vector<core::UeAgent*> ues_;
  std::vector<core::OriginalAgent*> originals_;
  /// One arena per shard strip, holding that strip's mobility models,
  /// phones, agents, and pooled apps. Declared last: the arenas tear
  /// down FIRST (finalizers in reverse allocation order, so each
  /// strip's agents die before their phones, and phones before their
  /// models) while the sim, medium, and table are still alive — the
  /// same ordering the per-object unique_ptr stores had.
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace d2dhb::scenario
