// High-density crowd scenarios — the deployment setting that motivates
// the paper (Section II-D: "the signaling storm problem usually occurs
// in the region with high-density crowd"). Many phones, a fraction of
// them volunteering as relays, real heartbeat periods, optional
// mobility-driven link churn.
#pragma once

#include <cstdint>

#include <optional>
#include <vector>

#include "apps/app_profile.hpp"
#include "core/detector.hpp"
#include "core/operator_selection.hpp"
#include "metrics/registry.hpp"
#include "net/im_server.hpp"
#include "sim/profiler.hpp"

namespace d2dhb::scenario {

struct CrowdConfig {
  std::size_t phones{60};
  double relay_fraction{0.2};
  double area_m{120.0};
  std::size_t clusters{4};
  double cluster_stddev_m{8.0};
  /// When true, non-relay phones move (random waypoint) and D2D links
  /// churn; relays stay put (kiosk-like volunteers).
  bool mobile{false};
  double duration_s{3600.0};
  apps::AppProfile app{apps::standard_app()};
  std::size_t relay_capacity{7};
  /// Relay-matching strategy for UEs (ablation: nearest vs random).
  core::MatchStrategy match_strategy{core::MatchStrategy::nearest};
  double match_max_distance_m{12.0};
  /// When set, the operator picks which phones relay (Section I) using
  /// this policy with `relay_fraction`·phones as the budget; otherwise
  /// the first N phones relay (the legacy layout).
  std::optional<core::SelectionPolicy> operator_policy{};
  /// Cellular cells covering the area, laid out as an n×n-ish grid
  /// (1 = the single-BS setup). Control-channel load is per cell.
  std::size_t cell_grid{1};
  /// Fraction of the heartbeat period over which phones' first beats are
  /// spread. Small values synchronize the crowd — the "signaling storm"
  /// worst case where every phone hits the control channel at once.
  double stagger_fraction{0.8};
  /// World-index cell size for the D2D medium in meters (0 = the D2D
  /// range). Exposed for the grid ablation (`d2dhb_sim crowd
  /// --grid-cell`).
  double grid_cell_m{0.0};
  /// Ablation: answer discovery/range queries with the legacy linear
  /// scan instead of the spatial grid (seeded runs are bit-identical
  /// either way; only the speed differs).
  bool legacy_scan{false};
  /// Connected UEs re-scan every this many seconds and switch to a
  /// markedly closer relay (core::UeAgent::Params::reassess_interval).
  /// Zero disables re-assessment. Periodic re-scans make discovery the
  /// dominant event class at scale — the scaling benches use this.
  double reassess_interval_s{0.0};
  /// Executor concurrency cap: at most this many of the world's kernels
  /// may run in parallel. The partition itself is geometric — one
  /// vertical strip per 120 m of area width, each phone homed to the
  /// strip owning its initial position — so neither this value nor
  /// `threads` ever changes results; the shard-equivalence gate holds
  /// the executor to that. The default places no cap.
  std::size_t shards{256};
  /// Worker threads driving the kernels (1 = serial execution; capped
  /// by `shards` and by the world's strip count).
  std::size_t threads{1};
  /// Ablation: one heap allocation per agent object instead of the
  /// pooled per-strip arenas (Scenario::Params::agent_memory). Seeded
  /// results are byte-identical either way; only the memory layout and
  /// footprint differ — the arena-vs-heap equivalence gate holds the
  /// arena layer to that.
  bool heap_agents{false};
  /// Record engine runtime spans (sim::RunOptions::profile): fills
  /// CrowdMetrics::profile and the registry's runtime/ namespace.
  /// Purely observational — deterministic results are byte-identical
  /// with it on or off.
  bool profile{false};
  /// Caller-owned span recorder (implies `profile`); pass one to keep
  /// the merged spans for Chrome-trace export after the run.
  sim::Profiler* profiler{nullptr};
  std::uint64_t seed{7};
};

struct CrowdMetrics {
  std::uint64_t phones{0};
  std::uint64_t relays{0};
  std::uint64_t total_l3{0};
  /// Worst per-cell sliding-window peak — the storm metric.
  std::uint64_t peak_l3_per_10s{0};
  std::vector<std::uint64_t> l3_per_cell;
  double total_radio_uah{0.0};
  double mean_radio_uah_per_phone{0.0};
  double relay_radio_uah{0.0};  ///< Sum over relay phones.
  double ue_radio_uah{0.0};     ///< Sum over UE phones.
  std::uint64_t heartbeats_emitted{0};
  std::uint64_t heartbeats_delivered{0};
  std::uint64_t forwarded_via_d2d{0};
  std::uint64_t fallbacks{0};
  std::uint64_t link_losses{0};
  net::ImServer::Totals server;
  double credits_issued{0.0};
  /// Fraction of UEs within D2D matching range of a relay at layout
  /// time (grid-backed coverage accounting; computed for every layout,
  /// operator-selected or first-N).
  double relay_coverage{0.0};
  /// Simulator events executed by this run — the numerator of the
  /// events/sec scaling benches.
  std::uint64_t sim_events{0};
  /// Cross-kernel mailbox traffic (plain counters, deliberately NOT in
  /// the metrics registry: the registry snapshot must stay byte-
  /// identical across shard counts). Zero in a 1-shard run.
  std::uint64_t cross_shard_posted{0};
  std::uint64_t cross_shard_delivered{0};
  /// Smallest (when - post time) over cross-shard posts, in
  /// microseconds (INT64_MAX when nothing crossed) — the conservative
  /// lookahead available to a parallel executor.
  std::int64_t cross_min_slack_us{INT64_MAX};
  /// Agent-memory footprint: bytes handed out by the strip arenas,
  /// bytes they reserved from the OS, and the object count (plain
  /// counters, NOT registry metrics — they differ between the pooled
  /// and heap layouts, which must stay byte-identical in the registry).
  std::uint64_t arena_bytes_allocated{0};
  std::uint64_t arena_bytes_reserved{0};
  std::uint64_t arena_objects{0};
  /// Process peak RSS (getrusage) sampled after the run, in bytes.
  /// Monotone over the process lifetime — meaningful for the FIRST or
  /// LARGEST world a process builds, not per-arm in a shrinking sweep.
  std::uint64_t peak_rss_bytes{0};
  /// Per-shard event/delivery counts (sim::RunStats) — deterministic,
  /// byte-identical across thread counts, so load imbalance is visible
  /// with profiling off.
  std::vector<std::uint64_t> shard_events_executed;
  std::vector<std::uint64_t> shard_mailbox_delivered;
  /// Runtime profile summary (host wall-clock; enabled=false unless
  /// CrowdConfig::profile/profiler asked for it).
  sim::ProfileSummary profile;
  /// Full registry snapshot taken at the end of the run (every counter,
  /// gauge, and histogram the substrates registered). A profiled run
  /// additionally carries runtime/ entries here — the deterministic
  /// exporters drop them (metrics/export.hpp partition rule).
  metrics::Snapshot metrics;
};

CrowdMetrics run_d2d_crowd(const CrowdConfig& config);
CrowdMetrics run_original_crowd(const CrowdConfig& config);

}  // namespace d2dhb::scenario
