// Fine-grained measurement probes: the per-phase energy attribution of
// Table III, the per-message receive cost of Table IV, and the 0.1 s
// current traces of Figs. 6 and 7.
#pragma once

#include <cstdint>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"

namespace d2dhb::scenario {

struct PhaseEnergy {
  double discovery_uah{0.0};
  double connection_uah{0.0};
  double forwarding_uah{0.0};
};

struct PhaseProbeResult {
  PhaseEnergy ue;
  PhaseEnergy relay;
};

/// Table III: drives one UE and one relay (1 m apart) through discovery,
/// connection, and one forwarded heartbeat, attributing the Wi-Fi Direct
/// radio's charge to each phase.
PhaseProbeResult measure_phases(std::uint64_t seed = 1);

/// Table IV: relay Wi-Fi charge after receiving 1..max_messages
/// forwarded heartbeats (cumulative, µAh).
std::vector<double> measure_receive_energy(std::size_t max_messages = 7,
                                           std::uint64_t seed = 1);

struct TraceResult {
  Series series;      ///< (seconds, mA) at 0.1 s sampling.
  double peak_ma{0.0};
  double window_s{0.0};
  double charge_uah{0.0};  ///< Radio charge over the traced window.
};

/// Fig. 6: instant current while sending one heartbeat over an
/// established D2D link.
TraceResult trace_d2d_transfer(std::uint64_t seed = 1);

/// Fig. 7: instant current while sending the same heartbeat over
/// cellular (full RRC cycle).
TraceResult trace_cellular_transfer(std::uint64_t seed = 1,
                                    bool use_lte = false);

}  // namespace d2dhb::scenario
