// The paper's bench-top methodology (Section V): one relay plus m UEs at
// a fixed distance, sending k heartbeats ("transmission times") of a
// given size during one D2D connection, compared against the same phones
// running the original direct-cellular system.
//
// Like the paper's lab runs, time is compressed: heartbeats fire every
// `period_s` (default 20 s — long enough for a full RRC cycle to drain
// between transmissions) instead of the real 270 s, so idle draw doesn't
// drown the radio energy under measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "d2d/technology.hpp"
#include "metrics/registry.hpp"
#include "net/im_server.hpp"

namespace d2dhb::scenario {

struct CompressedPairConfig {
  std::size_t num_ues{1};
  double ue_distance_m{1.0};
  std::uint32_t heartbeat_bytes{54};
  double period_s{20.0};
  /// k: heartbeats sent per phone ("transmission times").
  std::size_t transmissions{8};
  /// M: relay buffer capacity.
  std::size_t capacity{7};
  /// Matching cutoff — large by default because these experiments place
  /// devices at controlled distances on purpose.
  double max_match_distance_m{1e9};
  /// Override of the scheduler's T (max own-heartbeat delay) in seconds;
  /// <= 0 means "one heartbeat period" (Algorithm 1's default). Small
  /// values ablate toward naive immediate forwarding.
  double own_delay_s{-1.0};
  /// Staggers UE i's heartbeats by i·spread seconds after the relay's —
  /// zero keeps the paper's synchronized lab timing.
  double ue_offset_spread_s{0.0};
  std::uint64_t seed{1};
  bool use_lte{false};
  /// Strict Algorithm 1 windowing (no collection between windows).
  bool collect_between_windows{true};
  /// D2D technology (range + per-phase energy). Defaults to the paper's
  /// Wi-Fi Direct calibration.
  d2d::D2dTechnology technology{d2d::wifi_direct_tech()};
};

struct PairMetrics {
  // --- Energy (radio-attributable charge, µAh) ---
  double relay_uah{0.0};
  std::vector<double> ue_uah;
  double ue_uah_total{0.0};
  double system_uah{0.0};

  // --- Layer-3 signaling ---
  std::uint64_t relay_l3{0};
  std::uint64_t ue_l3{0};
  std::uint64_t system_l3{0};

  // --- Behaviour ---
  std::uint64_t bundles{0};
  double mean_bundle_size{0.0};
  std::uint64_t forwarded{0};
  std::uint64_t fallbacks{0};
  std::uint64_t link_losses{0};
  net::ImServer::Totals server;
  double relay_credits{0.0};
  /// Full registry snapshot taken at the end of the run.
  metrics::Snapshot metrics;
};

/// Runs the D2D framework on the configured pair/star topology.
PairMetrics run_d2d_pair(const CompressedPairConfig& config);

/// Runs the original system: the same (1 + num_ues) phones, every one
/// transmitting its own heartbeats directly over cellular. In the
/// returned metrics, `relay_uah` is the phone that would have been the
/// relay.
PairMetrics run_original_pair(const CompressedPairConfig& config);

/// Convenience deltas the paper reports.
struct Savings {
  double system_energy_fraction{0.0};  ///< Fig. 9 "Saved Energy of System".
  double ue_energy_fraction{0.0};      ///< Fig. 9 "Saved Energy of UE".
  double signaling_fraction{0.0};      ///< Section V-B: > 50 %.
  /// Fig. 11: relay's extra energy over its original-system self,
  /// divided by the UEs' saved energy.
  double wasted_over_saved{0.0};
};
Savings compare(const PairMetrics& original, const PairMetrics& d2d);

}  // namespace d2dhb::scenario
