// Strategy shoot-out: the related-work baselines vs the paper's D2D
// framework under identical mixed traffic. Produces the comparison the
// paper argues qualitatively in Sections I and VI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_profile.hpp"
#include "metrics/registry.hpp"

namespace d2dhb::scenario {

struct BaselineConfig {
  std::size_t phones{12};
  double duration_s{3600.0};
  apps::AppProfile app{apps::standard_app()};
  /// Spatial layout for the D2D arm (the cellular-only strategies don't
  /// care where phones stand).
  double area_m{40.0};
  double relay_fraction{0.25};
  std::uint64_t seed{21};
};

struct StrategyMetrics {
  std::string name;
  std::uint64_t total_l3{0};
  double total_radio_uah{0.0};
  /// Mean heartbeat delay from creation to the IM server (s).
  double mean_latency_s{0.0};
  std::uint64_t heartbeats_delivered{0};
  std::uint64_t offline_events{0};
  /// How long the server would take to notice a silently dead client:
  /// its expiration tolerance (3 effective heartbeat periods).
  double offline_detection_s{0.0};
  /// Strategy-specific notes (piggyback share etc.).
  std::string note;
  /// Full registry snapshot taken at the end of the run.
  metrics::Snapshot metrics;
};

StrategyMetrics run_baseline_original(const BaselineConfig& config);
StrategyMetrics run_baseline_period_extension(const BaselineConfig& config,
                                              double factor);
StrategyMetrics run_baseline_piggyback(const BaselineConfig& config);
StrategyMetrics run_baseline_fast_dormancy(const BaselineConfig& config);
/// The paper's framework, with the same phones also carrying their data
/// traffic over cellular directly (relays only handle heartbeats).
StrategyMetrics run_d2d_framework_arm(const BaselineConfig& config);

/// All five, in presentation order.
std::vector<StrategyMetrics> run_all_strategies(const BaselineConfig& config);

}  // namespace d2dhb::scenario
