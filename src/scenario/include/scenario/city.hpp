// City-scale crowd — the operator-scale setting the paper motivates
// (millions of always-on phones per city hammering the control plane).
// Unlike the crowd preset, worlds here are built strip-by-strip: each
// shard strip forks its own layout stream, scatters its own clusters,
// and hands every phone, mobility model, and agent straight to that
// strip's arena — construction never materializes a global positions
// vector or any other O(phones) intermediate outside the world itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/app_profile.hpp"
#include "sim/profiler.hpp"

namespace d2dhb::scenario {

class Scenario;

struct CityConfig {
  std::size_t phones{100000};
  /// Every k-th phone of a cluster volunteers as a relay, with
  /// k = round(1/fraction) — deterministic even spread, so each
  /// cluster has relays in D2D range (0 = no relays at all).
  double relay_fraction{0.1};
  /// Strip geometry: the area is one 120 m vertical strip per this
  /// many phones (capped at the kernel-count limit; the last strip
  /// takes the remainder), `strip_height_m` tall.
  std::size_t phones_per_strip{4000};
  double strip_height_m{960.0};
  /// Crowd hotspots per strip; phones scatter normally around them.
  std::size_t clusters_per_strip{32};
  double cluster_stddev_m{8.0};
  /// Multicell: one base station per this many phones, laid out as a
  /// row of sites along the x axis (the strips' long dimension).
  std::size_t phones_per_cell{5000};
  double duration_s{600.0};
  apps::AppProfile app{apps::standard_app()};
  std::size_t relay_capacity{7};
  double match_max_distance_m{12.0};
  /// Fraction of the heartbeat period the first beats spread over.
  double stagger_fraction{0.8};
  /// Engine worker threads (sim::RunOptions::threads; 1 = serial).
  std::size_t threads{1};
  /// Ablation: per-object heap allocation instead of the pooled
  /// per-strip arenas (byte-identical results, different layout).
  bool heap_agents{false};
  /// Record engine runtime spans (sim::RunOptions::profile): fills
  /// CityMetrics::profile. Observational only — results are
  /// byte-identical with it on or off.
  bool profile{false};
  /// Caller-owned span recorder (implies `profile`); keeps the merged
  /// spans for Chrome-trace export after the run.
  sim::Profiler* profiler{nullptr};
  std::uint64_t seed{11};
};

/// Aggregate counters only. Deliberately NOT a registry snapshot: at
/// city scale the per-node series make a snapshot an O(phones) string
/// map — the exact global intermediate this preset exists to avoid.
struct CityMetrics {
  std::uint64_t phones{0};
  std::uint64_t relays{0};
  std::uint64_t cells{0};
  std::uint64_t strips{0};
  std::uint64_t total_l3{0};
  std::uint64_t peak_l3_per_10s{0};
  std::uint64_t heartbeats_delivered{0};
  std::uint64_t forwarded_via_d2d{0};
  std::uint64_t fallbacks{0};
  std::uint64_t sim_events{0};
  std::uint64_t cross_shard_posted{0};
  std::uint64_t cross_shard_delivered{0};
  /// Strip-arena footprint (common/arena.hpp Stats, summed).
  std::uint64_t arena_bytes_allocated{0};
  std::uint64_t arena_bytes_reserved{0};
  std::uint64_t arena_objects{0};
  /// Process peak RSS (getrusage) after the run, in bytes.
  std::uint64_t peak_rss_bytes{0};
  /// Per-shard event/delivery counts (sim::RunStats). O(strips), not
  /// O(phones) — safe at city scale, deterministic across threads.
  std::vector<std::uint64_t> shard_events_executed;
  std::vector<std::uint64_t> shard_mailbox_delivered;
  /// Runtime profile summary (enabled=false unless CityConfig asked).
  sim::ProfileSummary profile;
};

/// Builds the streamed city world (phones placed, agents started,
/// nothing run yet). Split from run_city so benches can time build
/// and run separately.
std::unique_ptr<Scenario> build_city(const CityConfig& config);

/// Runs a built city for config.duration_s and collects aggregates.
CityMetrics run_city(Scenario& world, const CityConfig& config);

/// build_city + run_city.
CityMetrics run_city_crowd(const CityConfig& config);

}  // namespace d2dhb::scenario
