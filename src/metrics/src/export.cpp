#include "metrics/export.hpp"

#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>

#include "common/json.hpp"

namespace d2dhb::metrics {

namespace {

void write_labels(const Labels& labels, std::ostream& os) {
  os << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  if (labels.node != 0) {
    sep();
    os << "\"node\":" << json::number(labels.node);
  }
  if (labels.cell >= 0) {
    sep();
    os << "\"cell\":" << json::number(labels.cell);
  }
  if (!labels.component.empty()) {
    sep();
    os << "\"component\":\"" << json::escape(labels.component) << '"';
  }
  os << '}';
}

void write_entry(const SnapshotEntry& e, std::ostream& os) {
  os << "{\"name\":\"" << json::escape(e.name) << "\",\"kind\":\""
     << to_string(e.kind) << "\",\"labels\":";
  write_labels(e.labels, os);
  switch (e.kind) {
    case Kind::counter:
      os << ",\"value\":" << json::number(e.count);
      break;
    case Kind::gauge:
      os << ",\"value\":" << json::number(e.value);
      break;
    case Kind::histogram: {
      os << ",\"count\":" << json::number(e.histogram.count)
         << ",\"sum\":" << json::number(e.histogram.sum) << ",\"buckets\":[";
      for (std::size_t i = 0; i < e.histogram.counts.size(); ++i) {
        if (i > 0) os << ',';
        os << "{\"le\":";
        if (i < e.histogram.bounds.size()) {
          os << json::number(e.histogram.bounds[i]);
        } else {
          os << "\"inf\"";
        }
        os << ",\"count\":" << json::number(e.histogram.counts[i]) << '}';
      }
      os << ']';
      break;
    }
    case Kind::sampler: {
      os << ",\"samples\":[";
      for (std::size_t i = 0; i < e.samples.size(); ++i) {
        if (i > 0) os << ',';
        os << '[' << json::number(e.samples[i].t) << ','
           << json::number(e.samples[i].v) << ']';
      }
      os << ']';
      break;
    }
  }
  os << '}';
}

/// Shared body of the two JSON exporters: one partition, one schema.
void export_json_partition(const Snapshot& snapshot, std::ostream& os,
                           const char* schema, bool runtime) {
  os << "{\"schema\":\"" << schema << "\",\"metrics\":[";
  bool first = true;
  for (const SnapshotEntry& e : snapshot.entries) {
    if (is_runtime_metric(e.name) != runtime) continue;
    if (!first) os << ',';
    first = false;
    os << "\n";
    write_entry(e, os);
  }
  os << "\n]}";
}

}  // namespace

bool is_runtime_metric(std::string_view name) {
  return name.rfind("runtime/", 0) == 0;
}

void export_json(const Snapshot& snapshot, std::ostream& os) {
  export_json_partition(snapshot, os, "d2dhb.metrics.v1",
                        /*runtime=*/false);
}

void export_runtime_json(const Snapshot& snapshot, std::ostream& os) {
  export_json_partition(snapshot, os, "d2dhb.metrics.runtime.v1",
                        /*runtime=*/true);
}

void export_csv(const Snapshot& snapshot, std::ostream& os) {
  os << "name,kind,node,cell,component,value,count,sum\n";
  for (const SnapshotEntry& e : snapshot.entries) {
    if (is_runtime_metric(e.name)) continue;
    os << e.name << ',' << to_string(e.kind) << ',';
    if (e.labels.node != 0) os << e.labels.node;
    os << ',';
    if (e.labels.cell >= 0) os << e.labels.cell;
    os << ',' << e.labels.component << ',';
    switch (e.kind) {
      case Kind::counter:
        os << json::number(e.count) << ',' << json::number(e.count) << ",";
        break;
      case Kind::gauge:
        os << json::number(e.value) << ",,";
        break;
      case Kind::histogram:
        os << json::number(e.histogram.count == 0
                               ? 0.0
                               : e.histogram.sum /
                                     static_cast<double>(e.histogram.count))
           << ',' << json::number(e.histogram.count) << ','
           << json::number(e.histogram.sum);
        break;
      case Kind::sampler:
        os << json::number(static_cast<std::uint64_t>(e.samples.size()))
           << ',' << json::number(static_cast<std::uint64_t>(e.samples.size()))
           << ",";
        break;
    }
    os << '\n';
  }
}

void export_json_report(const NamedSnapshots& sections, std::ostream& os) {
  os << "{\"schema\":\"d2dhb.metrics-report.v1\",\"runs\":[";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (i > 0) os << ',';
    os << "\n{\"label\":\"" << json::escape(sections[i].first)
       << "\",\"metrics\":";
    export_json(sections[i].second, os);
    os << '}';
  }
  os << "\n]}\n";
}

bool write_report(const NamedSnapshots& sections, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write metrics to " << path << '\n';
    return false;
  }
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    for (const auto& [label, snapshot] : sections) {
      out << "# " << label << '\n';
      export_csv(snapshot, out);
    }
  } else {
    export_json_report(sections, out);
  }
  return true;
}

}  // namespace d2dhb::metrics
