#include "metrics/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace d2dhb::metrics {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::histogram: return "histogram";
    case Kind::sampler: return "sampler";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

template <typename T>
T& MetricsRegistry::find_or_insert(std::string name, const Labels& labels,
                                   T prototype) {
  const auto [it, inserted] =
      metrics_.try_emplace(key_of(std::move(name), labels),
                           Metric{std::move(prototype)});
  T* existing = std::get_if<T>(&it->second);
  if (existing == nullptr) {
    throw std::logic_error("MetricsRegistry: '" + std::get<0>(it->first) +
                           "' already registered as a different kind");
  }
  return *existing;
}

Counter& MetricsRegistry::counter(std::string name, Labels labels) {
  const MutexLock lock(mutex_);
  return find_or_insert(std::move(name), labels, Counter{});
}

Gauge& MetricsRegistry::gauge(std::string name, Labels labels) {
  const MutexLock lock(mutex_);
  return find_or_insert(std::move(name), labels, Gauge{});
}

Gauge& MetricsRegistry::gauge_fn(std::string name, Labels labels,
                                 std::function<double()> fn) {
  const MutexLock lock(mutex_);
  Gauge& g = find_or_insert(std::move(name), labels, Gauge{});
  g.fn_ = std::move(fn);
  return g;
}

Histogram& MetricsRegistry::histogram(std::string name,
                                      std::vector<double> bounds,
                                      Labels labels) {
  const MutexLock lock(mutex_);
  return find_or_insert(std::move(name), labels,
                        Histogram{std::move(bounds)});
}

Sampler& MetricsRegistry::sampler(std::string name, Labels labels) {
  const MutexLock lock(mutex_);
  return find_or_insert(std::move(name), labels,
                        Sampler{&sampling_enabled_});
}

std::size_t MetricsRegistry::size() const {
  const MutexLock lock(mutex_);
  return metrics_.size();
}

Snapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [key, metric] : metrics_) {
    SnapshotEntry entry;
    entry.name = std::get<0>(key);
    entry.labels =
        Labels{std::get<1>(key), std::get<2>(key), std::get<3>(key)};
    if (const auto* c = std::get_if<Counter>(&metric)) {
      entry.kind = Kind::counter;
      entry.count = c->value();
    } else if (const auto* g = std::get_if<Gauge>(&metric)) {
      entry.kind = Kind::gauge;
      entry.value = g->value();
    } else if (const auto* h = std::get_if<Histogram>(&metric)) {
      entry.kind = Kind::histogram;
      entry.histogram = HistogramSnapshot{h->bounds(), h->bucket_counts(),
                                          h->count(), h->sum()};
    } else if (const auto* s = std::get_if<Sampler>(&metric)) {
      entry.kind = Kind::sampler;
      entry.samples = s->samples();
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

const SnapshotEntry* Snapshot::find(std::string_view name,
                                    const Labels& labels) const {
  for (const auto& e : entries) {
    if (e.name == name && e.labels == labels) return &e;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter(std::string_view name,
                                const Labels& labels) const {
  const SnapshotEntry* e = find(name, labels);
  return e != nullptr && e->kind == Kind::counter ? e->count : 0;
}

double Snapshot::gauge(std::string_view name, const Labels& labels) const {
  const SnapshotEntry* e = find(name, labels);
  return e != nullptr && e->kind == Kind::gauge ? e->value : 0.0;
}

std::uint64_t Snapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& e : entries) {
    if (e.kind == Kind::counter && e.name == name) total += e.count;
  }
  return total;
}

double Snapshot::gauge_total(std::string_view name) const {
  double total = 0.0;
  for (const auto& e : entries) {
    if (e.kind == Kind::gauge && e.name == name) total += e.value;
  }
  return total;
}

Snapshot merge(const std::vector<Snapshot>& parts) {
  // Keyed accumulation keeps the deterministic sorted order regardless
  // of which parts contribute which series.
  std::map<std::tuple<std::string, std::uint64_t, std::int64_t, std::string>,
           SnapshotEntry>
      merged;
  for (const Snapshot& part : parts) {
    for (const SnapshotEntry& e : part.entries) {
      const auto key = std::make_tuple(e.name, e.labels.node, e.labels.cell,
                                       e.labels.component);
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, e);
        continue;
      }
      SnapshotEntry& acc = it->second;
      if (acc.kind != e.kind) {
        throw std::logic_error("metrics::merge: kind mismatch for '" +
                               e.name + "'");
      }
      switch (e.kind) {
        case Kind::counter: acc.count += e.count; break;
        case Kind::gauge: acc.value += e.value; break;
        case Kind::histogram: {
          if (acc.histogram.bounds != e.histogram.bounds) {
            throw std::logic_error(
                "metrics::merge: histogram bounds mismatch for '" + e.name +
                "'");
          }
          for (std::size_t i = 0; i < acc.histogram.counts.size(); ++i) {
            acc.histogram.counts[i] += e.histogram.counts[i];
          }
          acc.histogram.count += e.histogram.count;
          acc.histogram.sum += e.histogram.sum;
          break;
        }
        case Kind::sampler:
          acc.samples.insert(acc.samples.end(), e.samples.begin(),
                             e.samples.end());
          break;
      }
    }
  }
  Snapshot out;
  out.entries.reserve(merged.size());
  for (auto& [key, entry] : merged) out.entries.push_back(std::move(entry));
  return out;
}

}  // namespace d2dhb::metrics
