// Unified metrics registry — the observability substrate.
//
// One MetricsRegistry per simulated world (owned by the Simulator) holds
// every named counter, gauge, fixed-bucket histogram, and time-series
// sampler the substrates register, keyed by hierarchical labels
// (node, cell, component). Substrates register once at construction and
// cache the returned reference — an increment is then a single pointer
// chase, so always-on counting stays off the simulator's hot path.
// Samplers are zero-overhead when sampling is disabled (one bool load).
//
// snapshot() materializes the whole tree in deterministic (name, node,
// cell, component) order; because every simulation is a pure function of
// (config, seed), snapshots — and their JSON/CSV exports — are
// byte-identical across thread counts.
//
// Lifetime: the registry owns the metric objects and outlives the
// substrates that registered them (the Simulator is always constructed
// first and destroyed last). Callback gauges hold references into their
// registering object; take snapshots while the world is alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <variant>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/units.hpp"

namespace d2dhb::metrics {

/// Hierarchical label set identifying one series of a named metric.
/// Unset dimensions (node 0, cell -1, empty component) are omitted from
/// exports.
struct Labels {
  std::uint64_t node{0};
  std::int64_t cell{-1};
  std::string component{};

  auto operator<=>(const Labels&) const = default;
};

enum class Kind : std::uint8_t { counter, gauge, histogram, sampler };

const char* to_string(Kind kind);

/// One (field, value) cell of a Stats row.
struct StatsField {
  std::string name;
  double value{0.0};
};

/// Uniform row shape shared by every substrate's `Stats::row()` — one
/// flat schema that tables, benches, and exports can consume without
/// knowing the concrete Stats type.
using StatsRow = std::vector<StatsField>;

/// Monotonically increasing event count. Increments are relaxed
/// atomics: shared series (a base station's per-cell counters) are hit
/// from several worker threads, and a sum is order-free — the snapshot
/// total is deterministic regardless of increment interleaving. Copy
/// operations exist only for registry/variant storage (single-threaded
/// registration paths).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value. Either set explicitly or backed by a callback
/// evaluated at snapshot time (for quantities that live elsewhere, like
/// accumulated charge in an EnergyMeter).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return fn_ ? fn_() : value_; }

 private:
  friend class MetricsRegistry;
  double value_{0.0};
  std::function<double()> fn_;
};

/// Fixed-bucket distribution. Buckets are cumulative-style upper bounds
/// (value <= bound); one implicit overflow bucket catches the rest.
class Histogram {
 public:
  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// Time series of (seconds, value) points. Records only while the
/// registry's sampling switch is on; a disabled sampler costs one branch.
class Sampler {
 public:
  struct Sample {
    double t{0.0};
    double v{0.0};
    auto operator<=>(const Sample&) const = default;
  };

  void sample(TimePoint when, double value) {
    if (!*enabled_) return;
    samples_.push_back(Sample{to_seconds(when), value});
  }
  bool enabled() const { return *enabled_; }
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  friend class MetricsRegistry;
  explicit Sampler(const bool* enabled) : enabled_(enabled) {}

  const bool* enabled_;
  std::vector<Sample> samples_;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last).
  std::uint64_t count{0};
  double sum{0.0};
};

/// One materialized metric series.
struct SnapshotEntry {
  std::string name;
  Labels labels;
  Kind kind{Kind::counter};
  std::uint64_t count{0};     ///< Counters.
  double value{0.0};          ///< Gauges.
  HistogramSnapshot histogram;
  std::vector<Sampler::Sample> samples;
};

/// Deterministic point-in-time view of a registry: entries sorted by
/// (name, node, cell, component). Values are plain data — safe to move
/// across threads, aggregate, and export after the world is gone.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(std::string_view name,
                            const Labels& labels = {}) const;
  /// Counter value for one series; 0 if absent.
  std::uint64_t counter(std::string_view name,
                        const Labels& labels = {}) const;
  /// Gauge value for one series; 0.0 if absent.
  double gauge(std::string_view name, const Labels& labels = {}) const;
  /// Sum of a counter across every label set it was registered under.
  std::uint64_t counter_total(std::string_view name) const;
  /// Sum of a gauge across every label set it was registered under.
  double gauge_total(std::string_view name) const;

  bool empty() const { return entries.empty(); }
};

/// Element-wise aggregation: counters, gauges, and histograms sum across
/// parts (matching on name + labels + kind); sampler series concatenate
/// in part order. Entry order stays deterministic.
Snapshot merge(const std::vector<Snapshot>& parts);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric. Re-registering the same
  /// (name, labels) returns the same object, so substrates recreated
  /// within one world keep accumulating into one series. Registering an
  /// existing key as a different kind throws std::logic_error.
  ///
  /// The returned reference is stable (std::map never relocates) and is
  /// used lock-free afterwards: Counters are relaxed atomics, the other
  /// kinds are only touched from their owning kernel's strip. The lock
  /// guards the map itself — concurrent registration from different
  /// strips stays safe.
  Counter& counter(std::string name, Labels labels = {})
      D2DHB_EXCLUDES(mutex_);
  Gauge& gauge(std::string name, Labels labels = {}) D2DHB_EXCLUDES(mutex_);
  /// Callback-backed gauge, evaluated at snapshot time. Re-registering
  /// replaces the callback (so a recreated object rebinds cleanly).
  Gauge& gauge_fn(std::string name, Labels labels, std::function<double()> fn)
      D2DHB_EXCLUDES(mutex_);
  Histogram& histogram(std::string name, std::vector<double> bounds,
                       Labels labels = {}) D2DHB_EXCLUDES(mutex_);
  Sampler& sampler(std::string name, Labels labels = {})
      D2DHB_EXCLUDES(mutex_);

  /// Master switch for time-series samplers (off by default). Flip only
  /// while the world is quiescent: samplers read the flag through a raw
  /// pointer on the hot path, deliberately outside the lock.
  void set_sampling_enabled(bool on) { sampling_enabled_ = on; }
  bool sampling_enabled() const { return sampling_enabled_; }

  std::size_t size() const D2DHB_EXCLUDES(mutex_);

  Snapshot snapshot() const D2DHB_EXCLUDES(mutex_);

 private:
  using Key = std::tuple<std::string, std::uint64_t, std::int64_t,
                         std::string>;  // name, node, cell, component
  using Metric = std::variant<Counter, Gauge, Histogram, Sampler>;

  static Key key_of(std::string name, const Labels& labels) {
    return Key{std::move(name), labels.node, labels.cell, labels.component};
  }
  template <typename T>
  T& find_or_insert(std::string name, const Labels& labels, T prototype)
      D2DHB_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<Key, Metric> metrics_ D2DHB_GUARDED_BY(mutex_);
  bool sampling_enabled_{false};
};

}  // namespace d2dhb::metrics
