// Structured snapshot export: JSON and CSV with deterministic key order
// and locale-independent number formatting (common/json), so a snapshot
// of a seeded run serializes byte-identically regardless of thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/registry.hpp"

namespace d2dhb::metrics {

/// The deterministic/runtime partition rule: series named under the
/// `runtime/` prefix carry wall-clock-derived profiling data (engine
/// span summaries — sim/profiler.hpp) and are legitimately
/// nondeterministic. The deterministic exporters below drop them
/// explicitly, so a profiled run's export stays byte-identical to an
/// unprofiled one; export_runtime_json is the only path that writes
/// them.
bool is_runtime_metric(std::string_view name);

/// Writes one snapshot as a JSON object:
///   {"schema":"d2dhb.metrics.v1","metrics":[{...}, ...]}
/// Entries keep the snapshot's sorted order; unset label dimensions are
/// omitted. `runtime/` entries are excluded (see is_runtime_metric) —
/// this export is the byte-identical determinism surface.
void export_json(const Snapshot& snapshot, std::ostream& os);

/// Flat CSV: name,kind,node,cell,component,value,count,sum — one row per
/// series (histograms report count/sum/mean; samplers their point count).
/// Excludes `runtime/` entries, like export_json.
void export_csv(const Snapshot& snapshot, std::ostream& os);

/// The runtime side of the partition:
///   {"schema":"d2dhb.metrics.runtime.v1","metrics":[{...}, ...]}
/// Only `runtime/` entries — wall-clock profiling data, never diffed.
void export_runtime_json(const Snapshot& snapshot, std::ostream& os);

/// A labeled group of snapshots — e.g. the arms of an experiment or the
/// points of a sweep.
using NamedSnapshots = std::vector<std::pair<std::string, Snapshot>>;

/// Multi-section report:
///   {"schema":"d2dhb.metrics-report.v1","runs":[{"label":...,
///    "metrics":{...}}, ...]}
void export_json_report(const NamedSnapshots& sections, std::ostream& os);

/// Writes a report to `path` (format by extension: ".csv" writes each
/// section's CSV concatenated under "# label" comments, anything else
/// the JSON report). Returns false (with a stderr warning) if the file
/// cannot be opened.
bool write_report(const NamedSnapshots& sections, const std::string& path);

}  // namespace d2dhb::metrics
