#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "metrics/registry.hpp"

namespace d2dhb::sim {

Simulator::Simulator()
    : metrics_(std::make_unique<metrics::MetricsRegistry>()) {}

Simulator::~Simulator() = default;

namespace {
constexpr std::uint64_t make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}
constexpr std::uint32_t id_slot(std::uint64_t value) {
  return static_cast<std::uint32_t>(value & 0xffffffffu);
}
constexpr std::uint32_t id_gen(std::uint64_t value) {
  return static_cast<std::uint32_t>(value >> 32);
}
}  // namespace

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.armed);
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push(Scheduled{t, next_seq_++, slot});
  ++live_;
  return EventId{make_id(slot, s.gen)};
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != id_gen(id.value) || !s.armed) return false;
  // Disarm and drop the callback now (releasing its captures); the heap
  // entry stays behind as a tombstone until it reaches the top.
  s.armed = false;
  s.fn = nullptr;
  --live_;
  return true;
}

void Simulator::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Scheduled top = heap_.top();
    heap_.pop();
    Slot& s = slots_[top.slot];
    if (!s.armed) {  // Cancelled: recycle the slot, keep scanning.
      retire(top.slot);
      continue;
    }
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    retire(top.slot);
    assert(top.when >= now_);
    if (top.when != now_) {
      now_ = top.when;
      ++time_epoch_;
    }
    ++executed_;
    --live_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  while (!heap_.empty()) {
    // Peek past cancelled entries.
    const Scheduled top = heap_.top();
    if (!slots_[top.slot].armed) {
      heap_.pop();
      retire(top.slot);
      continue;
    }
    if (top.when > t) break;
    step();
  }
  if (t > now_) {
    now_ = t;
    ++time_epoch_;
  }
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period,
                             Simulator::Callback on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  if (period_ <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) sim_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = EventId{};
    // Re-arm before the tick so the callback may stop() the timer.
    arm(period_);
    on_tick_();
  });
}

}  // namespace d2dhb::sim
