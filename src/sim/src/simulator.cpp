#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "metrics/registry.hpp"

namespace d2dhb::sim {

Simulator::Simulator(std::size_t shards)
    : metrics_(std::make_unique<metrics::MetricsRegistry>()) {
  if (shards == 0 || shards > EventKernel::kMaxShards) {
    throw std::invalid_argument("Simulator: shard count must be in [1, " +
                                std::to_string(EventKernel::kMaxShards) + "]");
  }
  kernels_.reserve(shards);
  mailboxes_.reserve(shards);
  cross_min_slack_.assign(shards, INT64_MAX);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto shard = static_cast<std::uint32_t>(s);
    kernels_.push_back(std::make_unique<EventKernel>(shard));
    // Kernel k draws sequence numbers k, k+N, k+2N, ... — globally
    // unique without a shared counter, so kernels can draw concurrently
    // from worker threads. With one shard this is the plain 0,1,2,...
    // counter the monolith used.
    kernels_.back()->set_seq_lane(s, shards);
    mailboxes_.push_back(std::make_unique<ShardMailbox>(shard));
  }
#ifdef D2DHB_AUDIT
  audit_interval_ = kDefaultAuditInterval;
#endif
}

Simulator::~Simulator() = default;

void Simulator::set_scheduling_shard(std::uint32_t shard) {
  if (shard >= kernels_.size()) {
    throw std::out_of_range("Simulator::set_scheduling_shard: shard " +
                            std::to_string(shard) + " out of range");
  }
  current_shard_ = shard;
}

EventKernel& Simulator::kernel(std::uint32_t shard) {
  if (shard >= kernels_.size()) {
    throw std::out_of_range("Simulator::kernel: shard " +
                            std::to_string(shard) + " out of range");
  }
  return *kernels_[shard];
}

ShardMailbox& Simulator::mailbox(std::uint32_t shard) {
  if (shard >= mailboxes_.size()) {
    throw std::out_of_range("Simulator::mailbox: shard " +
                            std::to_string(shard) + " out of range");
  }
  return *mailboxes_[shard];
}

void Simulator::post_to(std::uint32_t shard, TimePoint when, Callback fn) {
  if (shard >= kernels_.size()) {
    throw std::out_of_range("Simulator::post_to: shard " +
                            std::to_string(shard) + " out of range");
  }
  const TimePoint local_now = now();
  if (when < local_now) {
    throw std::invalid_argument("Simulator::post_to: time in the past");
  }
  const std::uint32_t from = active_shard();
  if (shard == from) {
    // Same kernel: an ordinary schedule, drawing the next lane seq.
    kernels_[shard]->schedule_at(when, std::move(fn));
    return;
  }
  // Cross-shard: draw the sequence number NOW, from the posting
  // kernel's lane — the same one a direct schedule would have drawn —
  // so delivery preserves the event's place in the per-kernel
  // (when, seq) order (the byte-identical contract).
  cross_min_slack_[from] =
      std::min(cross_min_slack_[from], (when - local_now).count());
  mailboxes_[shard]->post(when, kernels_[from]->draw_seq(), from,
                          std::move(fn));
}

void Simulator::post_after(std::uint32_t shard, Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::post_after: negative delay");
  }
  post_to(shard, now() + delay, std::move(fn));
}

std::int64_t Simulator::cross_min_slack_us() const {
  std::int64_t min_slack = INT64_MAX;
  for (const std::int64_t slack : cross_min_slack_) {
    min_slack = std::min(min_slack, slack);
  }
  return min_slack;
}

void Simulator::run_shard_before(std::uint32_t shard, TimePoint t) {
  if (shard >= kernels_.size()) {
    throw std::out_of_range("Simulator::run_shard_before: shard " +
                            std::to_string(shard) + " out of range");
  }
  const detail::ExecContext previous = detail::exec_context;
  detail::exec_context = detail::ExecContext{this, shard};
  try {
    kernels_[shard]->run_before(t);
  } catch (...) {
    detail::exec_context = previous;
    throw;
  }
  detail::exec_context = previous;
}

void Simulator::advance_world_to(TimePoint t) {
  if (t < now_) {
    throw std::invalid_argument(
        "Simulator::advance_world_to: time in the past");
  }
  if (t > now_) {
    now_ = t;
    ++time_epoch_;
  }
}

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now()) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return kernels_[active_shard()]->schedule_at(t, std::move(fn));
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now() + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto shard = static_cast<std::uint32_t>((id.value >> 32) & 0xffu);
  if (shard >= kernels_.size()) return false;
  return kernels_[shard]->cancel(id);
}

void Simulator::drain_mail() {
  for (std::size_t s = 0; s < mailboxes_.size(); ++s) {
    if (mailboxes_[s]->pending() != 0) {
      mailboxes_[s]->drain_into(*kernels_[s]);
    }
  }
}

void Simulator::maybe_audit() {
  if (audit_interval_ != 0 && executed_events() % audit_interval_ == 0) {
    audit();
  }
}

bool Simulator::step_head(const TimePoint* limit) {
  // New envelopes only appear while a callback runs, so one drain pass
  // before head selection sees everything posted so far.
  drain_mail();
  std::size_t best = kernels_.size();
  EventKernel::Head best_head{};
  for (std::size_t s = 0; s < kernels_.size(); ++s) {
    const auto head = kernels_[s]->peek();
    if (!head) continue;
    if (best == kernels_.size() || head->when < best_head.when ||
        (head->when == best_head.when && head->seq < best_head.seq)) {
      best = s;
      best_head = *head;
    }
  }
  if (best == kernels_.size()) return false;
  if (limit != nullptr && best_head.when > *limit) return false;
  if (best_head.when != now_) {
    now_ = best_head.when;
    ++time_epoch_;
  }
  current_shard_ = static_cast<std::uint32_t>(best);
  kernels_[best]->step();
  maybe_audit();
  return true;
}

bool Simulator::step() { return step_head(nullptr); }

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step_head(nullptr)) return;
  }
}

void Simulator::run_until(TimePoint t) {
  while (step_head(&t)) {
  }
  if (t > now_) {
    now_ = t;
    ++time_epoch_;
  }
  for (auto& kernel : kernels_) kernel->advance_to(t);
}

std::uint64_t Simulator::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& kernel : kernels_) total += kernel->executed_events();
  return total;
}

std::size_t Simulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& kernel : kernels_) total += kernel->pending_events();
  for (const auto& mailbox : mailboxes_) total += mailbox->pending();
  return total;
}

std::uint64_t Simulator::add_auditor(Auditor fn) {
  const std::uint64_t token = next_auditor_token_++;
  auditors_.emplace_back(token, std::move(fn));
  return token;
}

void Simulator::remove_auditor(std::uint64_t token) {
  std::erase_if(auditors_,
                [token](const auto& entry) { return entry.first == token; });
}

void Simulator::debug_corrupt_slot_generation(std::uint32_t slot) {
  kernels_[0]->debug_corrupt_slot_generation(slot);
}

void Simulator::audit() const {
  // 1. Each kernel's self-audit, plus the world-clock invariant: a
  //    kernel's local clock may lag the world clock, never lead it.
  for (const auto& kernel : kernels_) {
    kernel->audit();
    if (kernel->now() > now_) {
      throw AuditError("Simulator audit: kernel " +
                       std::to_string(kernel->shard()) +
                       " clock is ahead of the world clock");
    }
  }

  // 2. Each mailbox's ordering/horizon/accounting invariants.
  for (const auto& mailbox : mailboxes_) mailbox->audit();

  // 3. Registered substrate auditors, in registration order.
  for (const auto& [token, fn] : auditors_) fn();
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period,
                             Simulator::Callback on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  if (period_ <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) sim_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = EventId{};
    // Re-arm before the tick so the callback may stop() the timer.
    arm(period_);
    on_tick_();
  });
}

}  // namespace d2dhb::sim
