#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace d2dhb::sim {

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  heap_.push(Scheduled{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Scheduled top = heap_.top();
    heap_.pop();
    const auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    assert(cb_it != callbacks_.end());
    Callback fn = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    assert(top.when >= now_);
    now_ = top.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  while (!heap_.empty()) {
    // Peek past cancelled entries.
    const Scheduled top = heap_.top();
    if (cancelled_.contains(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.when > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period,
                             Simulator::Callback on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  if (period_ <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) sim_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = EventId{};
    // Re-arm before the tick so the callback may stop() the timer.
    arm(period_);
    on_tick_();
  });
}

}  // namespace d2dhb::sim
