#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "metrics/registry.hpp"

namespace d2dhb::sim {

Simulator::Simulator()
    : metrics_(std::make_unique<metrics::MetricsRegistry>()) {
#ifdef D2DHB_AUDIT
  audit_interval_ = kDefaultAuditInterval;
#endif
}

Simulator::~Simulator() = default;

namespace {
constexpr std::uint64_t make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | slot;
}
constexpr std::uint32_t id_slot(std::uint64_t value) {
  return static_cast<std::uint32_t>(value & 0xffffffffu);
}
constexpr std::uint32_t id_gen(std::uint64_t value) {
  return static_cast<std::uint32_t>(value >> 32);
}
}  // namespace

void Simulator::push_entry(Scheduled entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Simulator::Scheduled Simulator::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Scheduled entry = heap_.back();
  heap_.pop_back();
  return entry;
}

EventId Simulator::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.armed);
  s.fn = std::move(fn);
  s.armed = true;
  push_entry(Scheduled{t, next_seq_++, slot});
  ++live_;
  return EventId{make_id(slot, s.gen)};
}

EventId Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != id_gen(id.value) || !s.armed) return false;
  // Disarm and drop the callback now (releasing its captures); the heap
  // entry stays behind as a tombstone until it reaches the top.
  s.armed = false;
  s.fn = nullptr;
  --live_;
  return true;
}

void Simulator::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

void Simulator::maybe_audit() {
  if (audit_interval_ != 0 && executed_ % audit_interval_ == 0) audit();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Scheduled top = pop_entry();
    Slot& s = slots_[top.slot];
    if (!s.armed) {  // Cancelled: recycle the slot, keep scanning.
      retire(top.slot);
      continue;
    }
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    retire(top.slot);
    assert(top.when >= now_);
    if (top.when != now_) {
      now_ = top.when;
      ++time_epoch_;
    }
    ++executed_;
    --live_;
    fn();
    maybe_audit();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(TimePoint t) {
  while (!heap_.empty()) {
    // Peek past cancelled entries.
    const Scheduled top = heap_.front();
    if (!slots_[top.slot].armed) {
      pop_entry();
      retire(top.slot);
      continue;
    }
    if (top.when > t) break;
    step();
  }
  if (t > now_) {
    now_ = t;
    ++time_epoch_;
  }
}

std::uint64_t Simulator::add_auditor(Auditor fn) {
  const std::uint64_t token = next_auditor_token_++;
  auditors_.emplace_back(token, std::move(fn));
  return token;
}

void Simulator::remove_auditor(std::uint64_t token) {
  std::erase_if(auditors_,
                [token](const auto& entry) { return entry.first == token; });
}

void Simulator::debug_corrupt_slot_generation(std::uint32_t slot) {
  if (slot < slots_.size()) slots_[slot].gen = 0;
}

namespace {
[[noreturn]] void audit_fail(const std::string& what) {
  throw AuditError("Simulator audit: " + what);
}
}  // namespace

void Simulator::audit() const {
  // 1. Slot table: generations valid, armed <=> callback present.
  std::size_t armed = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.gen == 0) {
      audit_fail("slot " + std::to_string(i) +
                 " has generation 0 (generations start at 1)");
    }
    if (s.armed && !s.fn) {
      audit_fail("armed slot " + std::to_string(i) + " has no callback");
    }
    if (!s.armed && s.fn) {
      audit_fail("disarmed slot " + std::to_string(i) +
                 " still holds a callback");
    }
    if (s.armed) ++armed;
  }
  if (armed != live_) {
    audit_fail("armed slot count " + std::to_string(armed) +
               " != live event count " + std::to_string(live_));
  }

  // 2. Heap: ordering property holds, every entry references a valid
  //    slot exactly once, armed slots all have their entry in the heap.
  if (!std::is_heap(heap_.begin(), heap_.end(), Later{})) {
    audit_fail("event heap violates the heap ordering property");
  }
  std::vector<std::uint8_t> heap_refs(slots_.size(), 0);
  for (const Scheduled& e : heap_) {
    if (e.slot >= slots_.size()) {
      audit_fail("heap entry references out-of-range slot " +
                 std::to_string(e.slot));
    }
    if (e.seq >= next_seq_) {
      audit_fail("heap entry for slot " + std::to_string(e.slot) +
                 " has sequence number from the future");
    }
    if (heap_refs[e.slot]++ != 0) {
      audit_fail("slot " + std::to_string(e.slot) +
                 " appears more than once in the heap");
    }
    if (slots_[e.slot].armed && e.when < now_) {
      audit_fail("armed heap entry for slot " + std::to_string(e.slot) +
                 " is scheduled in the past");
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].armed && heap_refs[i] == 0) {
      audit_fail("armed slot " + std::to_string(i) +
                 " has no heap entry");
    }
  }

  // 3. Free list: in-range, unique, disarmed, and not referenced by the
  //    heap (a slot is only retired once its heap entry was popped).
  std::vector<std::uint8_t> freed(slots_.size(), 0);
  for (const std::uint32_t slot : free_slots_) {
    if (slot >= slots_.size()) {
      audit_fail("free list references out-of-range slot " +
                 std::to_string(slot));
    }
    if (freed[slot]++ != 0) {
      audit_fail("slot " + std::to_string(slot) +
                 " appears more than once in the free list");
    }
    if (slots_[slot].armed) {
      audit_fail("free-listed slot " + std::to_string(slot) + " is armed");
    }
    if (heap_refs[slot] != 0) {
      audit_fail("free-listed slot " + std::to_string(slot) +
                 " still has a heap entry");
    }
  }

  // 4. Registered substrate auditors, in registration order.
  for (const auto& [token, fn] : auditors_) fn();
}

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period,
                             Simulator::Callback on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  if (period_ <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) sim_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = EventId{};
    // Re-arm before the tick so the callback may stop() the timer.
    arm(period_);
    on_tick_();
  });
}

}  // namespace d2dhb::sim
