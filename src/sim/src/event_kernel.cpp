#include "sim/event_kernel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace d2dhb::sim {

namespace {
constexpr std::uint64_t make_id(std::uint32_t slot, std::uint32_t shard,
                                std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 40) |
         (static_cast<std::uint64_t>(shard) << 32) | slot;
}
constexpr std::uint32_t id_slot(std::uint64_t value) {
  return static_cast<std::uint32_t>(value & 0xffffffffu);
}
constexpr std::uint32_t id_shard(std::uint64_t value) {
  return static_cast<std::uint32_t>((value >> 32) & 0xffu);
}
constexpr std::uint32_t id_gen(std::uint64_t value) {
  return static_cast<std::uint32_t>(value >> 40);
}
}  // namespace

EventKernel::EventKernel(std::uint32_t shard, std::uint64_t* shared_seq)
    : shard_(shard), seq_(shared_seq != nullptr ? shared_seq : &own_seq_) {
  if (shard >= kMaxShards) {
    throw std::invalid_argument("EventKernel: shard id exceeds " +
                                std::to_string(kMaxShards - 1));
  }
}

void EventKernel::push_entry(Scheduled entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventKernel::Scheduled EventKernel::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Scheduled entry = heap_.back();
  heap_.pop_back();
  return entry;
}

EventId EventKernel::schedule_entry(TimePoint t, std::uint64_t seq,
                                    Callback fn) {
  if (!fn) {
    throw std::invalid_argument("EventKernel: null callback");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  assert(!s.armed);
  s.fn = std::move(fn);
  s.armed = true;
  push_entry(Scheduled{t, seq, slot});
  ++live_;
  return EventId{make_id(slot, shard_, s.gen)};
}

void EventKernel::set_seq_lane(std::uint64_t start, std::uint64_t stride) {
  if (stride == 0) {
    throw std::invalid_argument("EventKernel::set_seq_lane: zero stride");
  }
  if (seq_ != &own_seq_) {
    throw std::logic_error(
        "EventKernel::set_seq_lane: kernel uses a shared sequence counter");
  }
  if (own_seq_ != 0 || executed_ != 0 || !heap_.empty()) {
    throw std::logic_error(
        "EventKernel::set_seq_lane: kernel has already drawn sequence "
        "numbers");
  }
  own_seq_ = start;
  seq_stride_ = stride;
  lane_residue_ = start % stride;
}

std::uint64_t EventKernel::draw_seq() {
  const std::uint64_t seq = *seq_;
  *seq_ += seq_stride_;
  return seq;
}

EventId EventKernel::schedule_at(TimePoint t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("EventKernel::schedule_at: time in the past");
  }
  return schedule_entry(t, draw_seq(), std::move(fn));
}

EventId EventKernel::schedule_after(Duration delay, Callback fn) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("EventKernel::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventKernel::schedule_with_seq(TimePoint t, std::uint64_t seq,
                                       Callback fn) {
  if (t < now_) {
    throw std::invalid_argument(
        "EventKernel::schedule_with_seq: time in the past");
  }
  // Only this kernel's own lane is bounded by its counter; an envelope
  // carrying another kernel's draw may legitimately exceed it.
  if (seq % seq_stride_ == lane_residue_ && seq >= *seq_) {
    throw std::invalid_argument(
        "EventKernel::schedule_with_seq: sequence number from the future");
  }
  return schedule_entry(t, seq, std::move(fn));
}

bool EventKernel::cancel(EventId id) {
  if (id_shard(id.value) != shard_) return false;
  const std::uint32_t slot = id_slot(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != id_gen(id.value) || !s.armed) return false;
  // Disarm and drop the callback now (releasing its captures); the heap
  // entry stays behind as a tombstone until it reaches the top.
  s.armed = false;
  s.fn = nullptr;
  --live_;
  return true;
}

void EventKernel::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.gen = (s.gen + 1) & kGenMask;
  if (s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

std::optional<EventKernel::Head> EventKernel::peek() {
  while (!heap_.empty()) {
    const Scheduled& top = heap_.front();
    if (!slots_[top.slot].armed) {  // Cancelled: retire, keep scanning.
      const Scheduled popped = pop_entry();
      retire(popped.slot);
      continue;
    }
    return Head{top.when, top.seq};
  }
  return std::nullopt;
}

bool EventKernel::step() {
  while (!heap_.empty()) {
    const Scheduled top = pop_entry();
    Slot& s = slots_[top.slot];
    if (!s.armed) {  // Cancelled: recycle the slot, keep scanning.
      retire(top.slot);
      continue;
    }
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    retire(top.slot);
    assert(top.when >= now_);
    if (top.when != now_) {
      now_ = top.when;
      ++time_epoch_;
    }
    ++executed_;
    --live_;
    fn();
    return true;
  }
  return false;
}

void EventKernel::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void EventKernel::run_until(TimePoint t) {
  while (const auto head = peek()) {
    if (head->when > t) break;
    step();
  }
  advance_to(t);
}

void EventKernel::run_before(TimePoint t) {
  while (const auto head = peek()) {
    if (head->when >= t) break;
    step();
  }
  advance_to(t);
}

void EventKernel::advance_to(TimePoint t) {
  if (t < now_) {
    throw std::invalid_argument("EventKernel::advance_to: time in the past");
  }
  if (t > now_) {
    now_ = t;
    ++time_epoch_;
  }
}

void EventKernel::debug_corrupt_slot_generation(std::uint32_t slot) {
  if (slot < slots_.size()) slots_[slot].gen = 0;
}

namespace {
[[noreturn]] void audit_fail(const std::string& what) {
  throw AuditError("EventKernel audit: " + what);
}
}  // namespace

void EventKernel::audit() const {
  // 1. Slot table: generations valid, armed <=> callback present.
  std::size_t armed = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.gen == 0 || s.gen > kGenMask) {
      audit_fail("slot " + std::to_string(i) +
                 " has generation outside [1, 2^24) — generations start "
                 "at 1 and wrap inside the 24-bit field");
    }
    if (s.armed && !s.fn) {
      audit_fail("armed slot " + std::to_string(i) + " has no callback");
    }
    if (!s.armed && s.fn) {
      audit_fail("disarmed slot " + std::to_string(i) +
                 " still holds a callback");
    }
    if (s.armed) ++armed;
  }
  if (armed != live_) {
    audit_fail("armed slot count " + std::to_string(armed) +
               " != live event count " + std::to_string(live_));
  }

  // 2. Heap: ordering property holds, every entry references a valid
  //    slot exactly once, armed slots all have their entry in the heap.
  if (!std::is_heap(heap_.begin(), heap_.end(), Later{})) {
    audit_fail("event heap violates the heap ordering property");
  }
  std::vector<std::uint8_t> heap_refs(slots_.size(), 0);
  for (const Scheduled& e : heap_) {
    if (e.slot >= slots_.size()) {
      audit_fail("heap entry references out-of-range slot " +
                 std::to_string(e.slot));
    }
    if (e.seq % seq_stride_ == lane_residue_ && e.seq >= *seq_) {
      audit_fail("heap entry for slot " + std::to_string(e.slot) +
                 " has sequence number from the future");
    }
    if (heap_refs[e.slot]++ != 0) {
      audit_fail("slot " + std::to_string(e.slot) +
                 " appears more than once in the heap");
    }
    if (slots_[e.slot].armed && e.when < now_) {
      audit_fail("armed heap entry for slot " + std::to_string(e.slot) +
                 " is scheduled in the past");
    }
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].armed && heap_refs[i] == 0) {
      audit_fail("armed slot " + std::to_string(i) + " has no heap entry");
    }
  }

  // 3. Free list: in-range, unique, disarmed, and not referenced by the
  //    heap (a slot is only retired once its heap entry was popped).
  std::vector<std::uint8_t> freed(slots_.size(), 0);
  for (const std::uint32_t slot : free_slots_) {
    if (slot >= slots_.size()) {
      audit_fail("free list references out-of-range slot " +
                 std::to_string(slot));
    }
    if (freed[slot]++ != 0) {
      audit_fail("slot " + std::to_string(slot) +
                 " appears more than once in the free list");
    }
    if (slots_[slot].armed) {
      audit_fail("free-listed slot " + std::to_string(slot) + " is armed");
    }
    if (heap_refs[slot] != 0) {
      audit_fail("free-listed slot " + std::to_string(slot) +
                 " still has a heap entry");
    }
  }
}

}  // namespace d2dhb::sim
