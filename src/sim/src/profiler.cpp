#include "sim/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>

#include "common/json.hpp"
#include "metrics/registry.hpp"

namespace d2dhb::sim {

namespace {

constexpr double kNsPerUs = 1000.0;

/// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

Profiler::Profiler() = default;
Profiler::~Profiler() = default;

void Profiler::begin_run(std::size_t workers, std::size_t shards) {
  workers_ = workers;
  shards_ = shards;
  finished_ = false;
  merged_.clear();
  buffers_.clear();
  buffers_.reserve(workers + 1);
  for (std::size_t w = 0; w <= workers; ++w) {
    buffers_.push_back(
        std::make_unique<SpanBuffer>(static_cast<std::uint32_t>(w)));
  }
  begin_ns_ = trace_now_ns();
  end_ns_ = begin_ns_;
}

SpanBuffer* Profiler::buffer(std::size_t worker) {
  return worker < buffers_.size() ? buffers_[worker].get() : nullptr;
}

void Profiler::end_run() {
  end_ns_ = trace_now_ns();
  merged_.clear();
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->size();
  merged_.reserve(total);
  // Buffers are appended in worker order and each is already in seq
  // order, so the merged vector is sorted by (worker, seq) — the
  // deterministic record order the tests pin (timestamps inside the
  // records are wall-clock and vary run to run; the order does not).
  for (const auto& buffer : buffers_) {
    merged_.insert(merged_.end(), buffer->spans().begin(),
                   buffer->spans().end());
  }
  finished_ = true;
}

ProfileSummary Profiler::summarize() const {
  ProfileSummary s;
  s.enabled = true;
  s.workers = workers_;
  s.wall_ns = end_ns_ >= begin_ns_ ? end_ns_ - begin_ns_ : 0;
  s.shard_busy_ns.assign(shards_, 0);
  s.shard_events.assign(shards_, 0);
  std::vector<double> waits_us;
  for (const SpanRecord& r : merged_) {
    const std::uint64_t dur = r.duration_ns();
    switch (r.kind) {
      case SpanKind::window:
        ++s.windows;
        s.windowed_ns += dur;
        break;
      case SpanKind::drain:
        s.drain_ns += dur;
        s.mailbox_drained += r.payload;
        break;
      case SpanKind::execute:
        s.execute_ns += dur;
        if (r.shard < s.shard_busy_ns.size()) {
          s.shard_busy_ns[r.shard] += dur;
          s.shard_events[r.shard] += r.payload;
        }
        break;
      case SpanKind::barrier_wait:
        s.barrier_wait_ns += dur;
        waits_us.push_back(static_cast<double>(dur) / kNsPerUs);
        break;
      case SpanKind::serial_tail:
        s.serial_tail_ns += dur;
        break;
    }
  }
  s.barrier_waits = waits_us.size();
  std::sort(waits_us.begin(), waits_us.end());
  s.barrier_wait_p50_us = percentile(waits_us, 0.50);
  s.barrier_wait_p90_us = percentile(waits_us, 0.90);
  s.barrier_wait_p99_us = percentile(waits_us, 0.99);
  s.barrier_wait_max_us = waits_us.empty() ? 0.0 : waits_us.back();
  std::uint64_t busy_max = 0;
  std::uint64_t busy_sum = 0;
  for (const std::uint64_t busy : s.shard_busy_ns) {
    busy_max = std::max(busy_max, busy);
    busy_sum += busy;
  }
  if (busy_sum > 0 && !s.shard_busy_ns.empty()) {
    const double mean = static_cast<double>(busy_sum) /
                        static_cast<double>(s.shard_busy_ns.size());
    s.load_imbalance = static_cast<double>(busy_max) / mean;
  }
  const double capacity = static_cast<double>(s.windowed_ns) *
                          static_cast<double>(workers_);
  if (capacity > 0.0) {
    s.window_utilization =
        static_cast<double>(s.drain_ns + s.execute_ns) / capacity;
  }
  return s;
}

void Profiler::publish(metrics::MetricsRegistry& registry) const {
  const ProfileSummary s = summarize();
  auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / kNsPerUs;
  };
  registry.gauge("runtime/workers")
      .set(static_cast<double>(s.workers));
  registry.gauge("runtime/windows")
      .set(static_cast<double>(s.windows));
  registry.gauge("runtime/wall_us").set(us(s.wall_ns));
  registry.gauge("runtime/windowed_us").set(us(s.windowed_ns));
  registry.gauge("runtime/serial_tail_us").set(us(s.serial_tail_ns));
  registry.gauge("runtime/drain_us").set(us(s.drain_ns));
  registry.gauge("runtime/execute_us").set(us(s.execute_ns));
  registry.gauge("runtime/barrier_wait_us").set(us(s.barrier_wait_ns));
  registry.gauge("runtime/mailbox_drained")
      .set(static_cast<double>(s.mailbox_drained));
  registry.gauge("runtime/load_imbalance").set(s.load_imbalance);
  registry.gauge("runtime/window_utilization").set(s.window_utilization);
  metrics::Histogram& waits = registry.histogram(
      "runtime/barrier_wait_dist_us",
      {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0});
  for (const SpanRecord& r : merged_) {
    if (r.kind != SpanKind::barrier_wait) continue;
    waits.observe(static_cast<double>(r.duration_ns()) / kNsPerUs);
  }
  for (std::size_t shard = 0; shard < s.shard_busy_ns.size(); ++shard) {
    metrics::Labels labels;
    labels.component = "shard-" + std::to_string(shard);
    registry.gauge("runtime/shard_busy_us", labels)
        .set(us(s.shard_busy_ns[shard]));
    registry.gauge("runtime/shard_events", labels)
        .set(static_cast<double>(s.shard_events[shard]));
  }
}

void Profiler::write_chrome_trace(std::ostream& os) const {
  auto us_since_origin = [this](std::uint64_t ns) {
    const std::uint64_t rel = ns >= begin_ns_ ? ns - begin_ns_ : 0;
    return static_cast<double>(rel) / kNsPerUs;
  };
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"schema\":\"d2dhb.trace.v1\",\"workers\":"
     << json::number(static_cast<std::uint64_t>(workers_))
     << ",\"shards\":" << json::number(static_cast<std::uint64_t>(shards_))
     << "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };
  auto meta = [&](int pid, std::uint64_t tid, const char* what,
                  const std::string& name) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
       << json::escape(name) << "\"}}";
  };
  meta(1, 0, "process_name", "engine workers");
  for (std::size_t w = 0; w < workers_; ++w) {
    meta(1, w, "thread_name", "worker-" + std::to_string(w));
  }
  meta(1, workers_, "thread_name", "main");
  meta(2, 0, "process_name", "shards");
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    meta(2, shard, "thread_name", "shard-" + std::to_string(shard));
  }
  auto event = [&](int pid, std::uint64_t tid, const SpanRecord& r) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << to_string(r.kind)
       << "\",\"cat\":\"engine\",\"ts\":"
       << json::number(us_since_origin(r.begin_ns))
       << ",\"dur\":" << json::number(static_cast<double>(r.duration_ns()) /
                                      kNsPerUs)
       << ",\"args\":{";
    switch (r.kind) {
      case SpanKind::window:
        os << "\"window\":" << json::number(r.payload);
        break;
      case SpanKind::drain:
        os << "\"shard\":" << r.shard
           << ",\"delivered\":" << json::number(r.payload);
        break;
      case SpanKind::execute:
        os << "\"shard\":" << r.shard
           << ",\"events\":" << json::number(r.payload);
        break;
      case SpanKind::barrier_wait:
        os << "\"round\":" << json::number(r.payload);
        break;
      case SpanKind::serial_tail:
        os << "\"events\":" << json::number(r.payload);
        break;
    }
    os << "}}";
  };
  for (const SpanRecord& r : merged_) {
    event(1, r.worker, r);
    // Drain/execute spans also land on their shard's track, so the
    // trace reads from either side: "what did worker 2 do" and "who
    // ran shard 5 and when".
    if (r.shard != SpanRecord::kNoShard) event(2, r.shard, r);
  }
  os << "\n]}\n";
}

bool Profiler::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write trace to " << path << '\n';
    return false;
  }
  write_chrome_trace(out);
  return true;
}

}  // namespace d2dhb::sim
