#include "sim/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include <memory>

#include "common/memory.hpp"
#include "common/thread_annotations.hpp"
#include "common/trace_span.hpp"

namespace d2dhb::sim {

namespace {

/// Persistent worker pool for the windowed executor. Workers block on a
/// condition variable between rounds (the host may have fewer cores
/// than workers; spinning would starve the very threads we wait for).
/// With a profiler armed, each worker records into its own SpanBuffer —
/// single-writer, no synchronization; the pool join publishes the
/// buffers to whoever merges them.
class WorkerPool {
 public:
  WorkerPool(Simulator& sim, std::size_t workers, Profiler* profiler)
      : sim_(sim), workers_(workers), profiler_(profiler) {
    threads_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~WorkerPool() { shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs one window in two barrier-separated phases: first every
  /// worker drains its kernels' mailboxes up to `target` (advancing
  /// every horizon while no kernel is executing), then every worker
  /// executes its kernels strictly before `target`. The drain barrier
  /// is what makes horizon enforcement deterministic: by the time any
  /// callback runs, every mailbox already refuses posts below the new
  /// horizon, so a too-wide window always fails loudly instead of
  /// racing a concurrent drain. Rethrows the first worker exception.
  void run_round(TimePoint target) {
    dispatch(Phase::drain, target);
    dispatch(Phase::execute, target);
  }

  void shutdown() D2DHB_EXCLUDES(mutex_) {
    {
      const MutexLock lock(mutex_);
      if (stop_) return;
      stop_ = true;
      cv_.notify_all();
    }
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  enum class Phase { drain, execute };

  void dispatch(Phase phase, TimePoint target) D2DHB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    phase_ = phase;
    target_ = target;
    done_ = 0;
    ++round_;
    cv_.notify_all();
    // Explicit wait loop (not the predicate overload): the lambda would
    // read `done_` from a context where the analysis cannot see the
    // lock, whereas here the wait re-establishes the capability on
    // every wakeup (condition_variable_any drops and reacquires via the
    // MutexLock's annotated unlock()/lock()).
    while (done_ != workers_) cv_.wait(lock);
    if (error_) {
      const std::exception_ptr error = error_;
      error_ = nullptr;
      lock.unlock();
      shutdown();
      std::rethrow_exception(error);
    }
  }

  void worker_main(std::size_t index) D2DHB_EXCLUDES(mutex_) {
    SpanBuffer* spans =
        profiler_ == nullptr ? nullptr : profiler_->buffer(index);
    std::uint64_t seen = 0;
    for (;;) {
      TimePoint target;
      Phase phase;
      // The wait interval is measured around the whole blocking stretch
      // (lock acquisition included) — that is the worker's idle time.
      const std::uint64_t wait_begin_ns =
          spans == nullptr ? 0 : trace_now_ns();
      {
        MutexLock lock(mutex_);
        while (!stop_ && round_ == seen) cv_.wait(lock);
        if (stop_) return;
        seen = round_;
        target = target_;
        phase = phase_;
      }
      if (spans != nullptr) {
        SpanRecord wait;
        wait.kind = SpanKind::barrier_wait;
        wait.begin_ns = wait_begin_ns;
        wait.end_ns = trace_now_ns();
        wait.payload = seen;
        spans->push(wait);
      }
      try {
        // Owned kernels: k % workers == index. The drain phase delivers
        // sorted (when, seq) envelopes below the new horizon; the
        // execute phase runs the window with the kernel context
        // installed on this thread.
        for (std::size_t s = index; s < sim_.shard_count(); s += workers_) {
          const auto shard = static_cast<std::uint32_t>(s);
          if (phase == Phase::drain) {
            ScopedSpan span(spans, SpanKind::drain, shard);
            span.set_payload(
                sim_.mailbox(shard).drain_window(sim_.kernel(shard), target));
          } else {
            ScopedSpan span(spans, SpanKind::execute, shard);
            const std::uint64_t before =
                spans == nullptr ? 0 : sim_.kernel(shard).executed_events();
            sim_.run_shard_before(shard, target);
            if (spans != nullptr) {
              span.set_payload(sim_.kernel(shard).executed_events() - before);
            }
          }
        }
      } catch (...) {
        const MutexLock lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      {
        const MutexLock lock(mutex_);
        if (++done_ == workers_) cv_.notify_all();
      }
    }
  }

  Simulator& sim_;
  std::size_t workers_;
  Profiler* profiler_;
  std::vector<std::thread> threads_;
  Mutex mutex_;
  /// _any variant: it waits on any BasicLockable, which lets it take
  /// the annotated MutexLock instead of a bare std::unique_lock.
  std::condition_variable_any cv_;
  std::uint64_t round_ D2DHB_GUARDED_BY(mutex_){0};
  Phase phase_ D2DHB_GUARDED_BY(mutex_){Phase::drain};
  TimePoint target_ D2DHB_GUARDED_BY(mutex_){};
  std::size_t done_ D2DHB_GUARDED_BY(mutex_){0};
  bool stop_ D2DHB_GUARDED_BY(mutex_){false};
  std::exception_ptr error_ D2DHB_GUARDED_BY(mutex_);
};

/// The earliest pending activity — a kernel head or an undelivered
/// envelope — across the whole world, or nullopt when drained.
std::optional<TimePoint> earliest_pending(Simulator& sim) {
  std::optional<TimePoint> earliest;
  for (std::uint32_t s = 0; s < sim.shard_count(); ++s) {
    if (const auto head = sim.kernel(s).peek()) {
      if (!earliest || head->when < *earliest) earliest = head->when;
    }
    if (const auto when = sim.mailbox(s).next_when()) {
      if (!earliest || *when < *earliest) earliest = *when;
    }
  }
  return earliest;
}

void collect(Simulator& sim, RunStats& stats) {
  stats.shard_events_executed.reserve(sim.shard_count());
  stats.shard_mailbox_delivered.reserve(sim.shard_count());
  for (std::uint32_t s = 0; s < sim.shard_count(); ++s) {
    stats.cross_posted += sim.mailbox(s).posted();
    stats.cross_delivered += sim.mailbox(s).delivered();
    stats.shard_events_executed.push_back(sim.kernel(s).executed_events());
    stats.shard_mailbox_delivered.push_back(sim.mailbox(s).delivered());
  }
  stats.min_slack_us = sim.cross_min_slack_us();
  stats.peak_rss_bytes = peak_rss_bytes();
}

}  // namespace

RunStats run(Simulator& sim, TimePoint until, const RunOptions& options) {
  if (until < sim.now()) {
    throw std::invalid_argument("sim::run: target time in the past");
  }
  if (options.window <= Duration::zero()) {
    throw std::invalid_argument("sim::run: window must be positive");
  }
  RunStats stats;
  stats.workers = std::max<std::size_t>(
      1, std::min({options.threads, options.shards, sim.shard_count()}));
  // Arm the span recorder before the pool exists: workers grab their
  // buffers on their first round. A caller-owned profiler keeps the
  // merged spans (trace export); bare `profile` uses a run-local one
  // that only feeds RunStats::profile and the runtime/ registry names.
  Profiler* profiler = options.profiler;
  std::unique_ptr<Profiler> run_local;
  if (profiler == nullptr && options.profile) {
    run_local = std::make_unique<Profiler>();
    profiler = run_local.get();
  }
  if (profiler != nullptr) {
    profiler->begin_run(stats.workers, sim.shard_count());
  }
  SpanBuffer* main_spans =
      profiler == nullptr ? nullptr : profiler->main_buffer();
  if (stats.workers > 1) {
    WorkerPool pool(sim, stats.workers, profiler);
    for (;;) {
      // Skip-ahead: jump straight to the earliest pending activity and
      // run one window from there. Events at exactly `until` (and the
      // idle tail) belong to the final serial step below.
      const auto earliest = earliest_pending(sim);
      if (!earliest || *earliest >= until) break;
      const TimePoint target = std::min(until, *earliest + options.window);
      ScopedSpan window_span(main_spans, SpanKind::window);
      window_span.set_payload(stats.windows);
      pool.run_round(target);
      sim.advance_world_to(target);
      window_span.close();
      ++stats.windows;
      if (options.audit || sim.audit_interval() != 0) sim.audit();
    }
    pool.shutdown();
  }
  {
    // Serial tail: boundary events at `until`, leftover envelopes, and
    // the clock advance to exactly `until` — the classic executor.
    ScopedSpan tail(main_spans, SpanKind::serial_tail);
    const std::uint64_t before =
        profiler == nullptr ? 0 : sim.executed_events();
    sim.run_until(until);
    if (profiler != nullptr) {
      tail.set_payload(sim.executed_events() - before);
    }
  }
  if (profiler != nullptr) {
    profiler->end_run();
    stats.profile = profiler->summarize();
    profiler->publish(sim.metrics());
  }
  collect(sim, stats);
  return stats;
}

}  // namespace d2dhb::sim
