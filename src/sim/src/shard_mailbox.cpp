#include "sim/shard_mailbox.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace d2dhb::sim {

namespace {
struct EnvelopeOrder {
  bool operator()(const std::pair<TimePoint, std::uint64_t>& key,
                  const std::pair<TimePoint, std::uint64_t>& other) const {
    if (key.first != other.first) return key.first < other.first;
    return key.second < other.second;
  }
};
}  // namespace

ShardMailbox::Ticket ShardMailbox::post(TimePoint when, std::uint64_t seq,
                                        std::uint32_t from_shard, Callback fn) {
  if (!fn) {
    throw std::invalid_argument("ShardMailbox::post: empty callback");
  }
  const MutexLock lock(mutex_);
  if (when < horizon_) {
    throw std::logic_error(
        "ShardMailbox::post: event below the synchronization horizon "
        "(destination shard has already executed past this time)");
  }
  const std::uint64_t ticket = next_ticket_++;
  // Insert keeping box_ sorted by (when, seq). Posts arrive roughly in
  // time order, so the scan from the back is short in practice.
  Envelope env{when, seq, from_shard, ticket, std::move(fn)};
  auto it = std::upper_bound(
      box_.begin(), box_.end(), std::make_pair(when, seq),
      [](const std::pair<TimePoint, std::uint64_t>& key, const Envelope& e) {
        return EnvelopeOrder{}(key, {e.when, e.seq});
      });
  box_.insert(it, std::move(env));
  ++posted_;
  return Ticket{ticket};
}

bool ShardMailbox::cancel(Ticket ticket) {
  if (!ticket.valid()) return false;
  const MutexLock lock(mutex_);
  const auto it =
      std::find_if(box_.begin(), box_.end(), [&](const Envelope& e) {
        return e.ticket == ticket.value;
      });
  if (it == box_.end()) return false;
  box_.erase(it);
  ++cancelled_;
  return true;
}

std::vector<ShardMailbox::Envelope> ShardMailbox::take_prefix(
    std::size_t count) {
  std::vector<Envelope> taken(
      std::make_move_iterator(box_.begin()),
      std::make_move_iterator(box_.begin() +
                              static_cast<std::ptrdiff_t>(count)));
  box_.erase(box_.begin(), box_.begin() + static_cast<std::ptrdiff_t>(count));
  delivered_ += count;
  return taken;
}

std::size_t ShardMailbox::deliver(EventKernel& kernel,
                                  std::vector<Envelope> envelopes) {
  for (Envelope& e : envelopes) {
    kernel.schedule_with_seq(e.when, e.seq, std::move(e.fn));
  }
  return envelopes.size();
}

std::size_t ShardMailbox::drain_into(EventKernel& kernel) {
  std::vector<Envelope> taken;
  {
    const MutexLock lock(mutex_);
    taken = take_prefix(box_.size());
  }
  return deliver(kernel, std::move(taken));
}

std::size_t ShardMailbox::drain_window(EventKernel& kernel,
                                       TimePoint new_horizon) {
  std::vector<Envelope> taken;
  {
    const MutexLock lock(mutex_);
    if (new_horizon < horizon_) {
      throw std::logic_error(
          "ShardMailbox::drain_window: horizon may not move backwards");
    }
    // Strict comparison: an envelope exactly at the boundary belongs to
    // the next window (its destination has only synchronized *up to*
    // the horizon, exclusive).
    const auto end = std::lower_bound(
        box_.begin(), box_.end(), new_horizon,
        [](const Envelope& e, TimePoint h) { return e.when < h; });
    const auto count = static_cast<std::size_t>(end - box_.begin());
    horizon_ = new_horizon;
    taken = take_prefix(count);
  }
  return deliver(kernel, std::move(taken));
}

TimePoint ShardMailbox::horizon() const {
  const MutexLock lock(mutex_);
  return horizon_;
}

std::optional<TimePoint> ShardMailbox::next_when() const {
  const MutexLock lock(mutex_);
  if (box_.empty()) return std::nullopt;
  return box_.front().when;
}

std::size_t ShardMailbox::pending() const {
  const MutexLock lock(mutex_);
  return box_.size();
}

std::uint64_t ShardMailbox::posted() const {
  const MutexLock lock(mutex_);
  return posted_;
}

std::uint64_t ShardMailbox::delivered() const {
  const MutexLock lock(mutex_);
  return delivered_;
}

std::uint64_t ShardMailbox::cancelled() const {
  const MutexLock lock(mutex_);
  return cancelled_;
}

void ShardMailbox::debug_corrupt_order() {
  const MutexLock lock(mutex_);
  if (box_.size() >= 2) std::swap(box_[0], box_[1]);
}

namespace {
[[noreturn]] void audit_fail(const std::string& what) {
  throw AuditError("ShardMailbox audit: " + what);
}
}  // namespace

void ShardMailbox::audit() const {
  const MutexLock lock(mutex_);
  for (std::size_t i = 0; i < box_.size(); ++i) {
    const Envelope& e = box_[i];
    if (!e.fn) {
      audit_fail("envelope " + std::to_string(i) + " has no callback");
    }
    if (e.when < horizon_) {
      audit_fail("envelope " + std::to_string(i) +
                 " is below the synchronization horizon");
    }
    if (e.ticket == 0 || e.ticket >= next_ticket_) {
      audit_fail("envelope " + std::to_string(i) + " has an invalid ticket");
    }
    if (i > 0) {
      const Envelope& prev = box_[i - 1];
      const bool ordered = prev.when < e.when ||
                           (prev.when == e.when && prev.seq < e.seq);
      if (!ordered) {
        audit_fail("envelopes " + std::to_string(i - 1) + " and " +
                   std::to_string(i) + " violate the (when, seq) order");
      }
    }
  }
  if (posted_ != delivered_ + cancelled_ + box_.size()) {
    audit_fail("posted " + std::to_string(posted_) +
               " != delivered + cancelled + pending (" +
               std::to_string(delivered_) + " + " + std::to_string(cancelled_) +
               " + " + std::to_string(box_.size()) + ")");
  }
}

}  // namespace d2dhb::sim
