// The unified run engine: one entrypoint that executes a Simulator to a
// target time, serially or on a pool of worker threads, behind a single
// RunOptions knob. Every driver — d2dhb_sim, the benches, SweepRunner
// scenarios — goes through sim::run(); the old hand-assembled
// Simulator::run_until / world::ShardedWorld::run_until pairing is
// gone (the deprecated shim was removed once its callers ported).
//
// Threading model: `workers = min(threads, shards, kernel count)`
// threads each own the kernels `k % workers == w`. Execution proceeds
// in windows: at each barrier the main thread finds the earliest
// pending event or envelope time M, picks the window target
// `min(until, M + window)`, and releases the pool in two
// barrier-separated phases: every worker first drains its kernels'
// mailboxes up to the target (sorted (when, seq) delivery, horizons
// advanced while no kernel executes), then — after all drains have
// finished — executes those kernels strictly before the target.
// Workers meet at the final barrier, the world clock advances, and the
// cycle repeats — skipping idle stretches in one hop because the next
// M is read off the kernel heads.
//
// Why determinism survives: each kernel executes its own events in
// (when, seq) order regardless of what other kernels do concurrently;
// cross-kernel work arrives only through mailbox envelopes stamped with
// the sender's lane sequence number and delivered in sorted order at a
// barrier at least one window before they fire. The "no post below the
// horizon" rule is enforced by ShardMailbox itself, so a window wider
// than the smallest cross-shard latency fails loudly instead of
// reordering the past. Events exactly at `until` run in a final serial
// merge-step, identical to the classic executor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::sim {

/// Execution knobs for sim::run(). Defaults reproduce the classic
/// single-threaded executor exactly.
struct RunOptions {
  /// Upper bound on kernels executed concurrently. This is a pure
  /// concurrency cap — it never changes results (the byte-identical
  /// contract); the kernel count itself is fixed by the Simulator.
  std::size_t shards{EventKernel::kMaxShards};
  /// Worker threads. 1 (the default) runs the classic serial executor;
  /// the effective pool size is min(threads, shards, kernel count).
  std::size_t threads{1};
  /// Window width of the parallel executor. Must not exceed the
  /// smallest cross-shard latency (the backhaul's 50 ms default) —
  /// ShardMailbox refuses posts below its horizon, so a too-wide
  /// window throws instead of corrupting order.
  Duration window{milliseconds(50)};
  /// Audit every window barrier even when the simulator's periodic
  /// audit interval is off.
  bool audit{false};
  /// Record runtime spans (window/drain/execute/barrier-wait) and fill
  /// RunStats::profile + the registry's `runtime/` namespace. Purely
  /// observational: a profiled run's deterministic metrics export is
  /// byte-identical to an unprofiled one (the profile-equivalence gate
  /// holds the engine to that).
  bool profile{false};
  /// Caller-owned span recorder; implies `profile`. Pass one to keep
  /// the merged spans after the run (Chrome trace export,
  /// tools/trace_report) — with only `profile` set the engine uses an
  /// internal recorder that lives for the duration of the call.
  Profiler* profiler{nullptr};
};

/// What one engine run did. Counters are cumulative over the
/// simulator's lifetime (matching the old ShardedWorld::Stats).
struct RunStats {
  /// Window barriers crossed (0 for a serial run).
  std::uint64_t windows{0};
  /// Worker threads actually used (1 = serial).
  std::size_t workers{1};
  std::uint64_t cross_posted{0};
  std::uint64_t cross_delivered{0};
  /// Smallest cross-shard post slack in microseconds; INT64_MAX when
  /// nothing crossed a kernel border.
  std::int64_t min_slack_us{INT64_MAX};
  /// Process peak RSS (getrusage) when the run returned, in bytes —
  /// monotone over the process lifetime, so it measures the largest
  /// world this process has driven, not this run in isolation.
  std::uint64_t peak_rss_bytes{0};
  /// Per-shard event/delivery counts (cumulative, like the counters
  /// above). Deterministic — byte-identical across thread counts — so
  /// load imbalance stays visible with profiling off.
  std::vector<std::uint64_t> shard_events_executed;
  std::vector<std::uint64_t> shard_mailbox_delivered;
  /// Runtime profile (host wall-clock; enabled=false unless
  /// RunOptions::profile/profiler asked for it).
  ProfileSummary profile;
};

/// Runs `sim` to `until` (inclusive, like Simulator::run_until) under
/// `options`. With an effective pool of one worker this IS
/// Simulator::run_until; with more it is the windowed parallel executor
/// described above, byte-identical to the serial run.
RunStats run(Simulator& sim, TimePoint until, const RunOptions& options = {});

}  // namespace d2dhb::sim
