// World context for the discrete-event core.
//
// The slot/generation/heap machinery lives in sim::EventKernel; the
// Simulator is the world wrapped around it — the global clock and time
// epoch, the unified metrics registry, the invariant-audit harness, and
// (new with the partition-ready split) the set of event kernels plus the
// ShardMailboxes that connect them.
//
// A default-constructed Simulator owns exactly one kernel and behaves
// byte-identically to the pre-split monolith. Constructed with N > 1
// shards, it runs N kernels on one thread by merge-stepping: each step
// drains every mailbox into its destination kernel, then executes the
// kernel whose head event has the globally smallest (when, seq). Each
// kernel draws sequence numbers from its own lane (kernel k of N draws
// k, k+N, k+2N, ...), so draws are globally unique without a shared
// counter — which is what lets the parallel executor (sim/engine.hpp)
// run the same kernels on worker threads. Cross-shard deliveries keep
// their original sequence number and mailbox drains deliver in sorted
// (when, seq) order, so each kernel executes its own events in the same
// order as the 1-shard run would have — and therefore every metric is
// identical for ANY partition of the nodes. That is the byte-identical
// contract the shard-equivalence CI gate enforces.
//
// Thread-awareness: while a worker thread executes a kernel's window
// (run_shard_before), a thread-local execution context routes now(),
// time_epoch(), current_shard(), schedule_* and post_* to that kernel,
// so substrate code is oblivious to whether it runs serially or on a
// worker. Outside any execution context the world-level members answer,
// exactly as before the parallel executor existed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/event_kernel.hpp"
#include "sim/shard_mailbox.hpp"

namespace d2dhb::metrics {
class MetricsRegistry;
}

namespace d2dhb::sim {

namespace detail {
/// Thread-local execution context: which simulator/kernel the current
/// thread is executing a window for. Installed by run_shard_before();
/// null outside the parallel executor (serial behaviour is unchanged).
struct ExecContext {
  const void* sim{nullptr};
  std::uint32_t shard{0};
};
inline thread_local constinit ExecContext exec_context{};
}  // namespace detail

class Simulator {
 public:
  using Callback = EventKernel::Callback;

  /// `shards` kernels share one clock, one sequence counter, and one
  /// metrics registry; shards > 1 adds one ShardMailbox per kernel.
  explicit Simulator(std::size_t shards = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at the epoch (t = 0). Serially this
  /// is the world clock — the time of the most recently executed event
  /// across all kernels. On a worker thread executing a kernel's window
  /// it is that kernel's clock, which during a callback equals the
  /// executing event's time — the same value the serial run would see.
  TimePoint now() const {
    if (in_exec_context()) {
      return kernels_[detail::exec_context.shard]->now();
    }
    return now_;
  }

  /// Monotone counter bumped whenever simulated time advances — the
  /// refresh key for time-lazy caches (the mobility::SpatialGrid world
  /// index re-bins moving nodes at most once per epoch, so every
  /// proximity query within one event instant shares a single refresh).
  /// On a worker thread this is the executing kernel's epoch; epochs
  /// only key caches together with the query time, so kernel-local and
  /// world-level epochs are interchangeable (time equality is what
  /// makes a cache hit valid).
  std::uint64_t time_epoch() const {
    if (in_exec_context()) {
      return kernels_[detail::exec_context.shard]->time_epoch();
    }
    return time_epoch_;
  }

  /// The world's unified metrics registry. Every substrate constructed
  /// against this simulator registers its counters/gauges here, keyed by
  /// (node, cell, component) labels — one queryable tree per run.
  metrics::MetricsRegistry& metrics() { return *metrics_; }
  const metrics::MetricsRegistry& metrics() const { return *metrics_; }

  // --- Sharding -----------------------------------------------------------

  std::size_t shard_count() const { return kernels_.size(); }

  /// The shard whose kernel is executing (or, outside of step(), the
  /// shard that schedule_at/schedule_after will target). Shard 0 hosts
  /// world-global machinery (server, cells) by convention. On a worker
  /// thread this is the kernel the thread is executing.
  std::uint32_t current_shard() const { return active_shard(); }

  /// Redirects subsequent schedule_* calls to `shard`'s kernel. Setup
  /// code (Scenario::add_phone) uses this — via ShardGuard — so each
  /// agent's timers are created on its home kernel; during event
  /// execution the executing kernel is selected automatically.
  void set_scheduling_shard(std::uint32_t shard);

  EventKernel& kernel(std::uint32_t shard);
  ShardMailbox& mailbox(std::uint32_t shard);

  /// Schedules `fn` onto `shard` at absolute time `when` (>= now()).
  /// Same-shard posts schedule directly; cross-shard posts go through
  /// the destination's mailbox under a freshly drawn global sequence
  /// number, so the event fires exactly where a direct schedule would
  /// have placed it. Fire-and-forget: cross-shard events have no kernel
  /// slot until delivery, so no EventId is returned — only events that
  /// are never cancelled (in-flight transfers, deliveries) may cross.
  void post_to(std::uint32_t shard, TimePoint when, Callback fn);
  void post_after(std::uint32_t shard, Duration delay, Callback fn);

  /// Smallest (when - now) over every cross-shard post so far, in
  /// microseconds — the conservative lookahead actually available to a
  /// windowed executor. INT64_MAX when nothing has crossed shards.
  std::int64_t cross_min_slack_us() const;

  // --- Parallel-executor hooks (see sim/engine.hpp) -----------------------

  /// Executes `shard`'s kernel strictly before `t` (then advances its
  /// clock to `t`) with this thread's execution context installed, so
  /// callbacks see the kernel-local now()/current_shard(). Safe to call
  /// concurrently for distinct shards; this is the per-window work unit
  /// of the parallel executor.
  void run_shard_before(std::uint32_t shard, TimePoint t);

  /// Advances the world clock (not the kernels) to `t` (>= now()); the
  /// executor calls this at each window barrier so audits and end-of-
  /// run accounting see a consistent world time.
  void advance_world_to(TimePoint t);

  // --- Scheduling (current shard) -----------------------------------------

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event. Safe to call for already-fired or already-
  /// cancelled events; returns whether the event was still pending. The
  /// id's shard bits route it to the kernel that issued it.
  bool cancel(EventId id);

  /// Executes the globally next event (smallest (when, seq) across all
  /// kernels, after draining mailboxes), advancing the world clock.
  /// Returns false if every kernel and mailbox was empty.
  bool step();

  /// Runs until the queues drain or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `t`, then advances the world clock and
  /// every kernel clock to exactly `t` (so idle intervals at the end of
  /// an experiment are accounted for).
  void run_until(TimePoint t);

  std::uint64_t executed_events() const;
  /// Number of live (scheduled, not yet fired or cancelled) events,
  /// including cross-shard events still waiting in mailboxes.
  std::size_t pending_events() const;

  // --- Invariant auditing -------------------------------------------------
  //
  // The audit layer re-derives the bookkeeping from scratch and throws
  // AuditError on any mismatch: each kernel's slot/heap cross-references
  // and ordering property, each mailbox's (when, seq) sort and horizon
  // invariants, kernel clocks never ahead of the world clock. Substrates
  // (WifiDirectMedium, NodeTable consumers) register their own auditors;
  // all auditors run together every `audit_interval` executed events.
  // Builds configured with -DD2DHB_AUDIT=ON enable the periodic sweep by
  // default; it is off in normal builds (audit() itself is always
  // available for tests).

  /// External invariant check, run after the kernel self-audits.
  using Auditor = std::function<void()>;

  /// Registers `fn`; returns a token for remove_auditor(). Auditors run
  /// in registration order.
  std::uint64_t add_auditor(Auditor fn);
  void remove_auditor(std::uint64_t token);

  /// Runs the kernel and mailbox self-audits plus every registered
  /// auditor once. Throws AuditError or whatever the auditor throws.
  void audit() const;

  /// Audits automatically every `every_n_events` executed events
  /// (0 disables). D2DHB_AUDIT builds default to kDefaultAuditInterval.
  void set_audit_interval(std::uint64_t every_n_events) {
    audit_interval_ = every_n_events;
  }
  std::uint64_t audit_interval() const { return audit_interval_; }

  static constexpr std::uint64_t kDefaultAuditInterval = 2048;

  /// Test-only: zeroes a kernel-0 slot's generation counter so audit()
  /// trips its "generation must be non-zero" invariant. Never call
  /// outside tests.
  void debug_corrupt_slot_generation(std::uint32_t slot);

 private:
  /// Delivers pending mailbox envelopes, picks the kernel with the
  /// globally smallest head, and executes it. `limit` (when given)
  /// stops before events later than it. Returns whether a step ran.
  bool step_head(const TimePoint* limit);
  void drain_mail();
  void maybe_audit();

  bool in_exec_context() const { return detail::exec_context.sim == this; }
  /// The shard scheduling targets right now: the executing kernel on a
  /// worker thread, otherwise the serially selected scheduling shard.
  std::uint32_t active_shard() const {
    return in_exec_context() ? detail::exec_context.shard : current_shard_;
  }

  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  TimePoint now_{};
  std::uint64_t time_epoch_{0};
  std::uint32_t current_shard_{0};
  /// Per-shard minimum cross-post slack; each entry is only written by
  /// the thread executing that shard (or the main thread serially), so
  /// no synchronisation is needed. Aggregated by cross_min_slack_us().
  std::vector<std::int64_t> cross_min_slack_;
  std::vector<std::unique_ptr<EventKernel>> kernels_;
  std::vector<std::unique_ptr<ShardMailbox>> mailboxes_;
  std::uint64_t audit_interval_{0};
  std::uint64_t next_auditor_token_{1};
  std::vector<std::pair<std::uint64_t, Auditor>> auditors_;
};

/// RAII selector for the scheduling shard: setup code wraps per-agent
/// construction in a ShardGuard so the agent's timers land on its home
/// kernel, and the previous shard is restored on scope exit.
class ShardGuard {
 public:
  ShardGuard(Simulator& sim, std::uint32_t shard)
      : sim_(sim), previous_(sim.current_shard()) {
    sim_.set_scheduling_shard(shard);
  }
  ~ShardGuard() { sim_.set_scheduling_shard(previous_); }
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  Simulator& sim_;
  std::uint32_t previous_;
};

/// Repeating timer built on the simulator. Survives cancellation and
/// restart; owner must outlive the simulator run or call stop().
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, Simulator::Callback on_tick);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; the first tick fires one period from now (or after
  /// `initial_delay` when given).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  Simulator::Callback on_tick_;
  EventId pending_{};
  bool running_{false};
};

}  // namespace d2dhb::sim
