// Discrete-event simulation kernel.
//
// A single-threaded event loop over simulated time. Events scheduled for
// the same instant run in scheduling order (FIFO), which keeps runs fully
// deterministic for a fixed seed.
//
// Storage layout: callbacks live in a flat slot array indexed by the heap
// entries, with a per-slot generation counter detecting stale handles.
// Cancellation disarms the slot in O(1) and leaves the heap entry behind;
// step() retires such tombstones lazily when they surface at the top.
// schedule / cancel / step therefore do no hashing — this kernel is the
// hot path of every experiment, and crowd-scale sweeps hammer it with
// millions of schedule/cancel pairs (feedback timers, RRC timers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace d2dhb::metrics {
class MetricsRegistry;
}

namespace d2dhb::sim {

/// Handle for cancelling a scheduled event. Encodes slot index (low 32
/// bits) and slot generation (high 32 bits); generations start at 1, so
/// a valid handle is never zero.
struct EventId {
  std::uint64_t value{0};
  constexpr auto operator<=>(const EventId&) const = default;
  constexpr bool valid() const { return value != 0; }
};

/// Thrown when an invariant audit fails (see Simulator::audit()). The
/// message names the violated invariant and the offending slot/entry.
struct AuditError : std::logic_error {
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at the epoch (t = 0).
  TimePoint now() const { return now_; }

  /// Monotone counter bumped whenever simulated time advances — the
  /// refresh key for time-lazy caches (the mobility::SpatialGrid world
  /// index re-bins moving nodes at most once per epoch, so every
  /// proximity query within one event instant shares a single refresh).
  std::uint64_t time_epoch() const { return time_epoch_; }

  /// The world's unified metrics registry. Every substrate constructed
  /// against this simulator registers its counters/gauges here, keyed by
  /// (node, cell, component) labels — one queryable tree per run.
  metrics::MetricsRegistry& metrics() { return *metrics_; }
  const metrics::MetricsRegistry& metrics() const { return *metrics_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event. Safe to call for already-fired or already-
  /// cancelled events; returns whether the event was still pending.
  bool cancel(EventId id);

  /// Executes the next event, advancing time. Returns false if the queue
  /// was empty.
  bool step();

  /// Runs until the queue drains or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `t`, then advances the clock to exactly `t`
  /// (so idle intervals at the end of an experiment are accounted for).
  void run_until(TimePoint t);

  std::uint64_t executed_events() const { return executed_; }
  /// Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending_events() const { return live_; }

  // --- Invariant auditing -------------------------------------------------
  //
  // The audit layer re-derives the kernel's bookkeeping from scratch and
  // throws AuditError on any mismatch: slot/heap cross-references, armed
  // counts vs live_, generation validity, free-list integrity, and the
  // heap ordering property. Substrates (WifiDirectMedium, SpatialGrid
  // consumers) register their own auditors; all auditors run together
  // every `audit_interval` executed events. Builds configured with
  // -DD2DHB_AUDIT=ON enable the periodic sweep by default; it is off in
  // normal builds (audit() itself is always available for tests).

  /// External invariant check, run after the kernel self-audit.
  using Auditor = std::function<void()>;

  /// Registers `fn`; returns a token for remove_auditor(). Auditors run
  /// in registration order.
  std::uint64_t add_auditor(Auditor fn);
  void remove_auditor(std::uint64_t token);

  /// Runs the kernel self-audit plus every registered auditor once.
  /// Throws AuditError (kernel) or whatever the auditor throws.
  void audit() const;

  /// Audits automatically every `every_n_events` executed events
  /// (0 disables). D2DHB_AUDIT builds default to kDefaultAuditInterval.
  void set_audit_interval(std::uint64_t every_n_events) {
    audit_interval_ = every_n_events;
  }
  std::uint64_t audit_interval() const { return audit_interval_; }

  static constexpr std::uint64_t kDefaultAuditInterval = 2048;

  /// Test-only: zeroes a slot's generation counter so audit() trips its
  /// "generation must be non-zero" invariant. Never call outside tests.
  void debug_corrupt_slot_generation(std::uint32_t slot);

 private:
  struct Scheduled {
    TimePoint when;
    std::uint64_t seq;   ///< Tie-breaker: FIFO within the same instant.
    std::uint32_t slot;  ///< Index into slots_.
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback fn;
    std::uint32_t gen{1};
    bool armed{false};
  };

  /// Bumps the slot generation (invalidating outstanding EventIds) and
  /// returns it to the free list. Only called once the slot's heap entry
  /// has been popped — a slot is never recycled while an entry for it is
  /// still in the heap, which is what makes stale-handle detection work.
  void retire(std::uint32_t slot);

  void push_entry(Scheduled entry);
  Scheduled pop_entry();
  void maybe_audit();

  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  TimePoint now_{};
  std::uint64_t time_epoch_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::size_t live_{0};
  /// Binary heap managed with std::push_heap/pop_heap (the same
  /// algorithms std::priority_queue uses, so ordering is identical);
  /// kept as a plain vector so audit() can walk the entries.
  std::vector<Scheduled> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t audit_interval_{0};
  std::uint64_t next_auditor_token_{1};
  std::vector<std::pair<std::uint64_t, Auditor>> auditors_;
};

/// Repeating timer built on the simulator. Survives cancellation and
/// restart; owner must outlive the simulator run or call stop().
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, Simulator::Callback on_tick);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; the first tick fires one period from now (or after
  /// `initial_delay` when given).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  Simulator::Callback on_tick_;
  EventId pending_{};
  bool running_{false};
};

}  // namespace d2dhb::sim
