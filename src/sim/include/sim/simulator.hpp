// Discrete-event simulation kernel.
//
// A single-threaded event loop over simulated time. Events scheduled for
// the same instant run in scheduling order (FIFO), which keeps runs fully
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace d2dhb::sim {

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value{0};
  constexpr auto operator<=>(const EventId&) const = default;
  constexpr bool valid() const { return value != 0; }
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at the epoch (t = 0).
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_after(Duration delay, Callback fn);

  /// Cancels a pending event. Safe to call for already-fired or already-
  /// cancelled events; returns whether the event was still pending.
  bool cancel(EventId id);

  /// Executes the next event, advancing time. Returns false if the queue
  /// was empty.
  bool step();

  /// Runs until the queue drains or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `t`, then advances the clock to exactly `t`
  /// (so idle intervals at the end of an experiment are accounted for).
  void run_until(TimePoint t);

  std::uint64_t executed_events() const { return executed_; }
  std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Scheduled {
    TimePoint when;
    std::uint64_t seq;  ///< Tie-breaker: FIFO within the same instant.
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t executed_{0};
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeating timer built on the simulator. Survives cancellation and
/// restart; owner must outlive the simulator run or call stop().
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, Simulator::Callback on_tick);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts ticking; the first tick fires one period from now (or after
  /// `initial_delay` when given).
  void start();
  void start_after(Duration initial_delay);
  void stop();
  bool running() const { return running_; }
  Duration period() const { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  Simulator::Callback on_tick_;
  EventId pending_{};
  bool running_{false};
};

}  // namespace d2dhb::sim
