// Cross-kernel event queue for the sharded world.
//
// A ShardMailbox is the only channel through which an event executing
// on one kernel may schedule work onto another (border D2D traffic,
// cellular uplink into the shared core). It is deterministic by
// construction: envelopes are kept sorted by (when, seq) — the same
// global ordering key the kernels use — and delivery re-schedules each
// envelope under its *original* sequence number, so a cross-shard event
// lands in exactly the place it would have occupied had it been
// scheduled directly (the byte-identical N-shard contract).
//
// Conservative lookahead: the mailbox tracks a horizon — the sync
// point up to which its destination shard has already executed. Posts
// below the horizon are refused (they would rewrite the past), and
// drain_window() delivers strictly-before-horizon envelopes only, the
// rule a parallel executor needs: a shard executing window [w, w+W)
// may only be handed events for w+W and later at the next barrier.
// The single-threaded executor drains eagerly (drain_into), which
// preserves global order exactly; the windowed path is what the
// parallel executor (sim/engine.hpp) runs at every barrier.
//
// Thread safety: every operation locks an internal mutex, so any worker
// may post while the destination's owner drains. Draining extracts the
// deliverable prefix under the lock but schedules into the kernel
// outside it — kernels are single-owner and never locked. The guarded
// fields carry D2DHB_GUARDED_BY annotations so the Clang thread-safety
// CI leg verifies the discipline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "sim/event_kernel.hpp"

namespace d2dhb::sim {

class ShardMailbox {
 public:
  using Callback = EventKernel::Callback;

  /// Handle for cancelling a posted-but-undelivered envelope (a relay
  /// withdrawing a cross-border transfer). Never zero when valid.
  struct Ticket {
    std::uint64_t value{0};
    constexpr bool valid() const { return value != 0; }
  };

  explicit ShardMailbox(std::uint32_t to_shard) : to_shard_(to_shard) {}

  std::uint32_t to_shard() const { return to_shard_; }

  /// Posts an event for the destination shard at absolute time `when`
  /// under the sender's already-drawn global sequence number. Throws
  /// std::logic_error if `when` is below the horizon (the destination
  /// has already synchronized past it).
  Ticket post(TimePoint when, std::uint64_t seq, std::uint32_t from_shard,
              Callback fn) D2DHB_EXCLUDES(mutex_);

  /// Cancels an undelivered envelope. Returns whether it was still
  /// pending (false after delivery or double-cancel).
  bool cancel(Ticket ticket) D2DHB_EXCLUDES(mutex_);

  /// Delivers every pending envelope into `kernel` (ascending
  /// (when, seq) order), keeping original sequence numbers. The eager
  /// path of the single-threaded executor. Returns envelopes delivered.
  std::size_t drain_into(EventKernel& kernel) D2DHB_EXCLUDES(mutex_);

  /// Windowed delivery: delivers envelopes with when < `new_horizon`
  /// and advances the horizon. An envelope exactly at the boundary
  /// stays queued for the next window. Throws std::logic_error if the
  /// horizon would move backwards. Returns envelopes delivered.
  std::size_t drain_window(EventKernel& kernel, TimePoint new_horizon)
      D2DHB_EXCLUDES(mutex_);

  /// Everything with when < horizon() has been handed over.
  TimePoint horizon() const D2DHB_EXCLUDES(mutex_);

  /// The earliest pending envelope's time, or nullopt when empty — the
  /// executor's skip-ahead probe for choosing the next window target.
  std::optional<TimePoint> next_when() const D2DHB_EXCLUDES(mutex_);

  std::size_t pending() const D2DHB_EXCLUDES(mutex_);
  std::uint64_t posted() const D2DHB_EXCLUDES(mutex_);
  std::uint64_t delivered() const D2DHB_EXCLUDES(mutex_);
  std::uint64_t cancelled() const D2DHB_EXCLUDES(mutex_);

  /// Invariant audit (runs under Simulator::audit()): envelopes sorted
  /// strictly by (when, seq), none below the horizon, callbacks
  /// present, and posted == delivered + cancelled + pending.
  void audit() const D2DHB_EXCLUDES(mutex_);

  /// Test-only: swaps the first two envelopes so audit() trips the
  /// ordering invariant. Never call outside tests.
  void debug_corrupt_order() D2DHB_EXCLUDES(mutex_);

 private:
  struct Envelope {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t from_shard;
    std::uint64_t ticket;
    Callback fn;
  };

  /// Removes the first `count` envelopes under the caller's lock and
  /// returns them for out-of-lock delivery.
  std::vector<Envelope> take_prefix(std::size_t count)
      D2DHB_REQUIRES(mutex_);
  static std::size_t deliver(EventKernel& kernel,
                             std::vector<Envelope> envelopes);

  mutable Mutex mutex_;
  std::uint32_t to_shard_;
  /// Sorted ascending by (when, seq); seqs are globally unique so the
  /// order is total and insertion-order independent.
  std::vector<Envelope> box_ D2DHB_GUARDED_BY(mutex_);
  TimePoint horizon_ D2DHB_GUARDED_BY(mutex_){};
  std::uint64_t next_ticket_ D2DHB_GUARDED_BY(mutex_){1};
  std::uint64_t posted_ D2DHB_GUARDED_BY(mutex_){0};
  std::uint64_t delivered_ D2DHB_GUARDED_BY(mutex_){0};
  std::uint64_t cancelled_ D2DHB_GUARDED_BY(mutex_){0};
};

}  // namespace d2dhb::sim
