// Event kernel: the slot/generation/heap machinery of the discrete-event
// core, extracted from the world context (sim::Simulator) so a sharded
// world can run several kernels side by side.
//
// One kernel is one totally ordered event stream: callbacks live in a
// flat slot array indexed by the heap entries, with a per-slot
// generation counter detecting stale handles. Cancellation disarms the
// slot in O(1) and leaves the heap entry behind; step() retires such
// tombstones lazily when they surface at the top. schedule / cancel /
// step therefore do no hashing — this is the hot path of every
// experiment, and crowd-scale sweeps hammer it with millions of
// schedule/cancel pairs (feedback timers, RRC timers).
//
// Sharding hooks (all optional; a default-constructed kernel behaves
// exactly like the pre-split Simulator core):
//  * a shard id baked into every EventId it issues, so the owning world
//    can route cancellations back to the right kernel;
//  * an externally owned sequence counter, so events scheduled across
//    N kernels remain globally totally ordered by (time, seq) — the
//    property the sharded executor's byte-identical contract rests on;
//  * a sequence *lane* (set_seq_lane), the thread-safe alternative to a
//    shared counter: kernel k of V draws seq k, k+V, k+2V, ... from its
//    own counter, so draws stay globally unique (and totally ordered
//    per kernel) without any cross-thread traffic;
//  * peek(), which exposes the head (time, seq) for merge-stepping,
//    and schedule_with_seq(), which lets a ShardMailbox deliver a
//    cross-shard event under its original global sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace d2dhb::sim {

/// Handle for cancelling a scheduled event. Encodes slot index (low 32
/// bits), the issuing kernel's shard id (bits 32..39), and the slot
/// generation (top 24 bits); generations start at 1, so a valid handle
/// is never zero. The 24-bit generation wraps after ~16.7M reuses of
/// one slot (skipping 0); handles are short-lived (timers cancelled
/// within a few heartbeat periods), so a wrap-around collision would
/// need a handle held across 16.7M reuses of its own slot.
struct EventId {
  std::uint64_t value{0};
  constexpr auto operator<=>(const EventId&) const = default;
  constexpr bool valid() const { return value != 0; }
};

/// Thrown when an invariant audit fails (see EventKernel::audit() and
/// Simulator::audit()). The message names the violated invariant and
/// the offending slot/entry.
struct AuditError : std::logic_error {
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

class EventKernel {
 public:
  using Callback = std::function<void()>;

  static constexpr std::uint32_t kGenBits = 24;
  static constexpr std::uint32_t kGenMask = (1u << kGenBits) - 1u;
  static constexpr std::uint32_t kMaxShards = 256;

  /// `shard` is baked into issued EventIds; `shared_seq`, when given,
  /// replaces the kernel-local sequence counter (the sharded world
  /// passes one counter to all its kernels so (when, seq) is a global
  /// total order).
  explicit EventKernel(std::uint32_t shard = 0,
                       std::uint64_t* shared_seq = nullptr);

  EventKernel(const EventKernel&) = delete;
  EventKernel& operator=(const EventKernel&) = delete;

  std::uint32_t shard() const { return shard_; }

  /// Restricts this kernel's sequence draws to the lane
  /// {start, start + stride, start + 2*stride, ...}. With one lane per
  /// kernel (start = k, stride = V) draws are globally unique without a
  /// shared counter, which is what lets kernels draw concurrently from
  /// worker threads. Only valid on a kernel that owns its counter and
  /// has not scheduled or executed anything yet. stride 1 / start 0 is
  /// the default single-kernel behaviour.
  void set_seq_lane(std::uint64_t start, std::uint64_t stride);

  /// Draws the next sequence number from this kernel's lane. Exposed so
  /// the world context can stamp cross-shard envelopes with a draw from
  /// the posting kernel's lane.
  std::uint64_t draw_seq();

  /// Current kernel-local time. In a sharded world this lags the world
  /// clock between this kernel's events; it never runs ahead of it.
  TimePoint now() const { return now_; }

  /// Monotone counter bumped whenever this kernel's time advances.
  std::uint64_t time_epoch() const { return time_epoch_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, Callback fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_after(Duration delay, Callback fn);

  /// Mailbox delivery path: schedules `fn` at `t` under an externally
  /// assigned sequence number (the one the sender drew when it posted),
  /// so a cross-shard event keeps its place in the global (when, seq)
  /// order instead of being re-sequenced at drain time.
  EventId schedule_with_seq(TimePoint t, std::uint64_t seq, Callback fn);

  /// Cancels a pending event. Safe to call for already-fired or
  /// already-cancelled events; returns whether it was still pending.
  /// Ids minted by a different kernel (shard mismatch) are rejected.
  bool cancel(EventId id);

  /// The earliest armed entry's (when, seq), or nullopt when drained.
  /// Retires any cancelled tombstones found on the way, so a returned
  /// head is always live and step() will execute exactly that entry.
  struct Head {
    TimePoint when;
    std::uint64_t seq;
  };
  std::optional<Head> peek();

  /// Executes the next event, advancing time. Returns false if the
  /// queue was empty.
  bool step();

  /// Runs until the queue drains or `max_events` have executed.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `t`, then advances the clock to exactly
  /// `t` (so idle intervals at the end of a window are accounted for).
  void run_until(TimePoint t);

  /// Runs events with time strictly < `t`, then advances the clock to
  /// exactly `t`. The parallel executor's per-window step: events at
  /// the window boundary itself must wait for the next window so that
  /// a cross-shard envelope landing exactly at the boundary still sorts
  /// ahead of same-instant, larger-seq local events.
  void run_before(TimePoint t);

  /// Clock-only advance to `t` (>= now()); used by the world context to
  /// close out a time window on an idle kernel.
  void advance_to(TimePoint t);

  std::uint64_t executed_events() const { return executed_; }
  /// Number of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending_events() const { return live_; }

  /// Re-derives the kernel's bookkeeping from scratch and throws
  /// AuditError on any mismatch: slot/heap cross-references, armed
  /// counts vs live_, generation validity, free-list integrity, and
  /// the heap ordering property.
  void audit() const;

  /// Test-only: zeroes a slot's generation counter so audit() trips its
  /// "generation must be non-zero" invariant. Never call outside tests.
  void debug_corrupt_slot_generation(std::uint32_t slot);

 private:
  struct Scheduled {
    TimePoint when;
    std::uint64_t seq;   ///< Tie-breaker: FIFO within the same instant.
    std::uint32_t slot;  ///< Index into slots_.
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback fn;
    std::uint32_t gen{1};
    bool armed{false};
  };

  /// Bumps the slot generation (invalidating outstanding EventIds) and
  /// returns it to the free list. Only called once the slot's heap
  /// entry has been popped — a slot is never recycled while an entry
  /// for it is still in the heap, which is what makes stale-handle
  /// detection work.
  void retire(std::uint32_t slot);

  EventId schedule_entry(TimePoint t, std::uint64_t seq, Callback fn);
  void push_entry(Scheduled entry);
  Scheduled pop_entry();

  std::uint32_t shard_;
  TimePoint now_{};
  std::uint64_t time_epoch_{0};
  std::uint64_t own_seq_{0};
  std::uint64_t* seq_;  ///< &own_seq_ or the world's shared counter.
  std::uint64_t seq_stride_{1};   ///< Lane stride (1 = every number).
  std::uint64_t lane_residue_{0};  ///< start % stride of this lane.
  std::uint64_t executed_{0};
  std::size_t live_{0};
  /// Binary heap managed with std::push_heap/pop_heap (the same
  /// algorithms std::priority_queue uses, so ordering is identical);
  /// kept as a plain vector so audit() can walk the entries.
  std::vector<Scheduled> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace d2dhb::sim
