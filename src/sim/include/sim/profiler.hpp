// Engine run profiler — aggregates the per-worker span buffers
// (common/trace_span.hpp) a profiled sim::run() fills, into:
//   * a ProfileSummary (per-shard busy time, barrier-wait percentiles,
//     window-width utilization, load-imbalance ratio),
//   * `runtime/` entries in the world's metrics registry (excluded
//     from the deterministic exporters — metrics/export.hpp),
//   * a Chrome trace-event JSON file loadable in Perfetto or
//     chrome://tracing (one track per worker, one per shard).
//
// Threading contract: begin_run() allocates one SpanBuffer per worker
// plus one for the main thread; each buffer is then written by exactly
// one thread with no synchronization. end_run() merges the buffers in
// deterministic (worker, seq) order — it may only be called after the
// pool has shut down (the run's final barrier is the happens-before
// edge that publishes every worker's appends to the merging thread).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/trace_span.hpp"

namespace d2dhb::metrics {
class MetricsRegistry;
}

namespace d2dhb::sim {

/// What a profiled run measured, in host time. Every field here is
/// wall-clock-derived and legitimately nondeterministic — it lives in
/// RunStats and the `runtime/` registry namespace, never in the
/// deterministic export.
struct ProfileSummary {
  /// False for unprofiled runs — every other field is then zero.
  bool enabled{false};
  std::size_t workers{0};
  std::uint64_t windows{0};
  /// Full sim::run wall time, begin_run to end_run.
  std::uint64_t wall_ns{0};
  /// Sum of window spans (the parallel region's wall time).
  std::uint64_t windowed_ns{0};
  /// The final serial merge-step (boundary events + idle tail).
  std::uint64_t serial_tail_ns{0};
  /// Phase totals summed across workers.
  std::uint64_t drain_ns{0};
  std::uint64_t execute_ns{0};
  std::uint64_t barrier_wait_ns{0};
  /// Envelopes delivered inside drain spans (mailbox drain volume).
  std::uint64_t mailbox_drained{0};
  /// Per-shard execute time / executed events over the windowed phase.
  std::vector<std::uint64_t> shard_busy_ns;
  std::vector<std::uint64_t> shard_events;
  /// Individual barrier waits, as a distribution.
  std::uint64_t barrier_waits{0};
  double barrier_wait_p50_us{0.0};
  double barrier_wait_p90_us{0.0};
  double barrier_wait_p99_us{0.0};
  double barrier_wait_max_us{0.0};
  /// max / mean over per-shard busy time (1.0 = perfectly balanced,
  /// 0.0 when no shard recorded busy time).
  double load_imbalance{0.0};
  /// (drain + execute) / (workers × windowed wall) — the fraction of
  /// the parallel region workers spent doing work rather than waiting.
  double window_utilization{0.0};
};

/// Span recorder for one engine run. Create one (or let RunOptions
/// profile=true make an engine-internal one), pass it via
/// RunOptions::profiler, then read summarize()/write_chrome_trace()
/// after sim::run returns.
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the recorder: one buffer per worker plus one for the main
  /// thread. Re-arming discards the previous run's spans.
  void begin_run(std::size_t workers, std::size_t shards);

  /// Buffer for pool worker `worker` (0..workers-1); index `workers`
  /// is the main/driver thread. Null until begin_run.
  SpanBuffer* buffer(std::size_t worker);
  SpanBuffer* main_buffer() { return buffer(workers_); }

  /// Stamps the run end and merges every buffer in (worker, seq)
  /// order. Call only after the worker pool has joined its threads.
  void end_run();

  bool finished() const { return finished_; }
  std::size_t workers() const { return workers_; }
  std::size_t shards() const { return shards_; }
  /// Host time of begin_run — trace timestamps are relative to it.
  std::uint64_t origin_ns() const { return begin_ns_; }
  /// Merged records in (worker, seq) order; empty before end_run.
  const std::vector<SpanRecord>& spans() const { return merged_; }

  ProfileSummary summarize() const;

  /// Writes the summary into `registry` under the `runtime/` name
  /// prefix — the namespace metrics::export_json deliberately skips
  /// (wall-clock data must never enter the byte-identical export).
  void publish(metrics::MetricsRegistry& registry) const;

  /// Chrome trace-event JSON ("traceEvents" array of ph:"X" complete
  /// events, µs timestamps): pid 1 carries one track per worker (plus
  /// the main thread), pid 2 one track per shard — drain/execute
  /// spans appear on both, so Perfetto shows the run from either side.
  void write_chrome_trace(std::ostream& os) const;
  /// write_chrome_trace to `path`; false (with a stderr warning) when
  /// the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  std::size_t workers_{0};
  std::size_t shards_{0};
  bool finished_{false};
  std::uint64_t begin_ns_{0};
  std::uint64_t end_ns_{0};
  /// unique_ptr: buffer addresses must stay stable while worker
  /// threads hold raw pointers into the vector.
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;
  std::vector<SpanRecord> merged_;
};

}  // namespace d2dhb::sim
