#include "radio/cellular_modem.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/tracelog.hpp"

namespace d2dhb::radio {

const char* to_string(RrcState s) {
  switch (s) {
    case RrcState::idle: return "IDLE";
    case RrcState::promoting: return "PROMOTING";
    case RrcState::high: return "HIGH";
    case RrcState::transmitting: return "TRANSMITTING";
    case RrcState::low: return "LOW";
  }
  return "?";
}

CellularModem::CellularModem(sim::Simulator& sim, NodeId owner,
                             RrcProfile profile, energy::EnergyMeter& meter,
                             SignalingCounter& signaling)
    : sim_(sim),
      owner_(owner),
      profile_(std::move(profile)),
      meter_(meter),
      component_(meter.register_component("cellular:" + profile_.name,
                                          profile_.idle_current)),
      signaling_(signaling) {
  auto& reg = sim_.metrics();
  const metrics::Labels labels{owner_.value, -1, "cellular"};
  bundles_sent_ctr_ = &reg.counter("cellular.bundles_sent", labels);
  promotions_ctr_ = &reg.counter("rrc.promotions", labels);
  transitions_ctr_ = &reg.counter("rrc.transitions", labels);
  state_sampler_ = &reg.sampler("rrc.state", labels);
  reg.gauge_fn("energy.cellular_uah", {owner_.value, -1, "cellular"},
               [this] { return radio_charge().value; });
}

MilliAmps CellularModem::state_current(RrcState s) const {
  switch (s) {
    case RrcState::idle: return profile_.idle_current;
    case RrcState::promoting: return profile_.promotion_current;
    case RrcState::high: return profile_.high_current;
    case RrcState::transmitting:
      return profile_.high_current + profile_.tx_extra_current;
    case RrcState::low: return profile_.low_current;
  }
  return MilliAmps{0};
}

void CellularModem::enter(RrcState next) {
  if (next != state_) {
    trace(sim_.now(), TraceCategory::rrc, owner_,
          std::string(to_string(state_)) + " -> " + to_string(next));
    transitions_ctr_->inc();
    state_sampler_->sample(sim_.now(), static_cast<double>(next));
  }
  state_ = next;
  meter_.set_current(component_, state_current(next));
}

void CellularModem::transmit(net::UplinkBundle bundle) {
  queue_.push_back(std::move(bundle));
  switch (state_) {
    case RrcState::idle: {
      // Full RRC connection establishment.
      signaling_.record_sequence(sim_.now(), owner_, profile_.setup_sequence);
      promotions_ctr_->inc();
      enter(RrcState::promoting);
      const std::uint64_t epoch = epoch_;
      sim_.schedule_after(profile_.promotion_delay, [this, epoch] {
        if (epoch != epoch_) return;
        enter(RrcState::high);
        start_next_burst();
      });
      break;
    }
    case RrcState::low: {
      // FACH -> DCH reconfiguration.
      signaling_.record_sequence(sim_.now(), owner_,
                                 profile_.low_to_high_sequence);
      cancel_inactivity();
      enter(RrcState::promoting);
      const std::uint64_t epoch = epoch_;
      sim_.schedule_after(profile_.reconfig_delay, [this, epoch] {
        if (epoch != epoch_) return;
        enter(RrcState::high);
        start_next_burst();
      });
      break;
    }
    case RrcState::high:
      cancel_inactivity();
      start_next_burst();
      break;
    case RrcState::promoting:
    case RrcState::transmitting:
      // Already on the way up or busy — the queued bundle rides along.
      break;
  }
}

void CellularModem::start_next_burst() {
  if (queue_.empty()) {
    if (fast_dormancy_) {
      // SCRI + immediate release: no tails, no inactivity timers.
      signaling_.record(sim_.now(), owner_,
                        L3MessageType::signaling_connection_release_indication);
      signaling_.record_sequence(sim_.now(), owner_,
                                 profile_.release_sequence);
      enter(RrcState::idle);
      return;
    }
    arm_high_inactivity();
    return;
  }
  net::UplinkBundle bundle = std::move(queue_.front());
  queue_.pop_front();

  const Bytes payload = bundle.payload_size();
  if (payload > profile_.rb_reconfig_threshold) {
    signaling_.record_sequence(sim_.now(), owner_,
                               profile_.rb_reconfig_sequence);
  }
  const Duration burst = std::max(
      profile_.min_tx_duration,
      seconds(static_cast<double>(payload.value) /
              profile_.uplink_bytes_per_second));
  enter(RrcState::transmitting);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_after(burst, [this, epoch, bundle = std::move(bundle)] {
    if (epoch != epoch_) return;
    bundles_sent_ctr_->inc();
    enter(RrcState::high);
    if (uplink_) uplink_(bundle);
    start_next_burst();
  });
}

void CellularModem::arm_high_inactivity() {
  cancel_inactivity();
  inactivity_event_ = sim_.schedule_after(profile_.high_inactivity, [this] {
    inactivity_event_ = {};
    signaling_.record_sequence(sim_.now(), owner_,
                               profile_.high_to_low_sequence);
    enter(RrcState::low);
    arm_low_inactivity();
  });
}

void CellularModem::arm_low_inactivity() {
  cancel_inactivity();
  inactivity_event_ = sim_.schedule_after(profile_.low_inactivity, [this] {
    inactivity_event_ = {};
    signaling_.record_sequence(sim_.now(), owner_, profile_.release_sequence);
    enter(RrcState::idle);
  });
}

void CellularModem::cancel_inactivity() {
  if (inactivity_event_.valid()) sim_.cancel(inactivity_event_);
  inactivity_event_ = {};
}

void CellularModem::force_idle() {
  cancel_inactivity();
  queue_.clear();
  ++epoch_;  // orphan any in-flight promotion/burst completions
  enter(RrcState::idle);
}

}  // namespace d2dhb::radio
