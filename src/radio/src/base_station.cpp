#include "radio/base_station.hpp"

namespace d2dhb::radio {

BaseStation::BaseStation(sim::Simulator& sim, net::ImServer& server,
                         net::Channel::Params backhaul, Rng rng,
                         std::size_t cell)
    : backhaul_(sim, backhaul, rng), cell_(cell) {
  backhaul_.set_receiver(
      [&server](const net::UplinkBundle& bundle) { server.deliver(bundle); });
  auto& reg = sim.metrics();
  const metrics::Labels labels{0, static_cast<std::int64_t>(cell_), "bs"};
  bundles_ctr_ = &reg.counter("bs.bundles_received", labels);
  heartbeats_ctr_ = &reg.counter("bs.heartbeats_received", labels);
  bytes_ctr_ = &reg.counter("bs.bytes_received", labels);
  reg.gauge_fn("signaling.l3_total", labels,
               [this] { return static_cast<double>(signaling_.total()); });
}

void BaseStation::receive(const net::UplinkBundle& bundle) {
  bundles_ctr_->inc();
  heartbeats_ctr_->inc(bundle.messages.size());
  bytes_ctr_->inc(bundle.payload_size().value);
  backhaul_.send(bundle);
}

}  // namespace d2dhb::radio
