#include "radio/base_station.hpp"

namespace d2dhb::radio {

BaseStation::BaseStation(sim::Simulator& sim, net::ImServer& server,
                         net::Channel::Params backhaul, Rng rng)
    : backhaul_(sim, backhaul, rng) {
  backhaul_.set_receiver(
      [&server](const net::UplinkBundle& bundle) { server.deliver(bundle); });
}

void BaseStation::receive(const net::UplinkBundle& bundle) {
  ++bundles_;
  heartbeats_ += bundle.messages.size();
  bytes_ += bundle.payload_size().value;
  backhaul_.send(bundle);
}

}  // namespace d2dhb::radio
