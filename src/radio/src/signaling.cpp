#include "radio/signaling.hpp"

#include <algorithm>

namespace d2dhb::radio {

const char* to_string(L3MessageType type) {
  switch (type) {
    case L3MessageType::rrc_connection_request:
      return "RRC CONNECTION REQUEST";
    case L3MessageType::rrc_connection_setup:
      return "RRC CONNECTION SETUP";
    case L3MessageType::rrc_connection_setup_complete:
      return "RRC CONNECTION SETUP COMPLETE";
    case L3MessageType::radio_bearer_setup:
      return "RADIO BEARER SETUP";
    case L3MessageType::radio_bearer_setup_complete:
      return "RADIO BEARER SETUP COMPLETE";
    case L3MessageType::radio_bearer_reconfiguration:
      return "RADIO BEARER RECONFIGURATION";
    case L3MessageType::physical_channel_reconfiguration:
      return "PHYSICAL CHANNEL RECONFIGURATION";
    case L3MessageType::rrc_connection_release:
      return "RRC CONNECTION RELEASE";
    case L3MessageType::rrc_connection_release_complete:
      return "RRC CONNECTION RELEASE COMPLETE";
    case L3MessageType::security_mode_command:
      return "SECURITY MODE COMMAND";
    case L3MessageType::measurement_report:
      return "MEASUREMENT REPORT";
    case L3MessageType::signaling_connection_release_indication:
      return "SIGNALING CONNECTION RELEASE INDICATION";
    case L3MessageType::kCount:
      break;
  }
  return "UNKNOWN";
}

void SignalingCounter::append(TimePoint when, NodeId node,
                              L3MessageType type) {
  records_.push_back(Record{when, node, type});
  ++per_node_[node];
  ++per_type_[static_cast<std::size_t>(type)];
}

void SignalingCounter::record(TimePoint when, NodeId node,
                              L3MessageType type) {
  const MutexLock lock(mutex_);
  append(when, node, type);
}

void SignalingCounter::record_sequence(
    TimePoint when, NodeId node, const std::vector<L3MessageType>& sequence) {
  const MutexLock lock(mutex_);
  for (const auto type : sequence) append(when, node, type);
}

std::uint64_t SignalingCounter::total() const {
  const MutexLock lock(mutex_);
  return records_.size();
}

std::uint64_t SignalingCounter::count_for(NodeId node) const {
  const MutexLock lock(mutex_);
  const auto it = per_node_.find(node);
  return it == per_node_.end() ? 0 : it->second;
}

std::uint64_t SignalingCounter::count_of(L3MessageType type) const {
  const MutexLock lock(mutex_);
  return per_type_[static_cast<std::size_t>(type)];
}

std::uint64_t SignalingCounter::peak_rate(Duration window) const {
  // Parallel execution interleaves cross-kernel records arbitrarily, so
  // sort a copy by timestamp before the two-pointer sweep; the peak is
  // then a pure function of the record multiset.
  std::vector<Record> sorted;
  {
    const MutexLock lock(mutex_);
    sorted = records_;
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Record& a, const Record& b) { return a.when < b.when; });
  std::uint64_t peak = 0;
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < sorted.size(); ++hi) {
    while (sorted[hi].when - sorted[lo].when > window) ++lo;
    peak = std::max<std::uint64_t>(peak, hi - lo + 1);
  }
  return peak;
}

std::vector<SignalingCounter::Record> SignalingCounter::records() const {
  const MutexLock lock(mutex_);
  return records_;
}

void SignalingCounter::clear() {
  const MutexLock lock(mutex_);
  records_.clear();
  per_node_.clear();
  per_type_.fill(0);
}

}  // namespace d2dhb::radio
