#include "radio/capture.hpp"

#include <iomanip>
#include <ostream>

namespace d2dhb::radio {

LinkDirection direction_of(L3MessageType type) {
  switch (type) {
    case L3MessageType::rrc_connection_request:
    case L3MessageType::rrc_connection_setup_complete:
    case L3MessageType::radio_bearer_setup_complete:
    case L3MessageType::rrc_connection_release_complete:
    case L3MessageType::measurement_report:
    case L3MessageType::signaling_connection_release_indication:
      return LinkDirection::uplink;
    case L3MessageType::rrc_connection_setup:
    case L3MessageType::radio_bearer_setup:
    case L3MessageType::radio_bearer_reconfiguration:
    case L3MessageType::physical_channel_reconfiguration:
    case L3MessageType::rrc_connection_release:
    case L3MessageType::security_mode_command:
      return LinkDirection::downlink;
    case L3MessageType::kCount:
      break;
  }
  return LinkDirection::uplink;
}

const char* channel_of(L3MessageType type) {
  switch (type) {
    case L3MessageType::rrc_connection_request:
      return "CCCH";  // common control channel, before the connection
    case L3MessageType::rrc_connection_setup:
      return "CCCH";
    default:
      return "DCCH";  // dedicated control channel once connected
  }
}

void print_capture(std::ostream& os, const SignalingCounter& counter,
                   std::size_t limit) {
  os << "  Time(s)    Dir  Chan  Message                              "
        "Node\n";
  os << "  ---------  ---  ----  -----------------------------------  "
        "----\n";
  std::size_t printed = 0;
  // One snapshot for both the rows and the "more" tally — records() now
  // copies under the counter's lock.
  const auto records = counter.records();
  for (const auto& record : records) {
    if (limit != 0 && printed >= limit) {
      os << "  ... (" << records.size() - printed
         << " more)\n";
      break;
    }
    os << "  " << std::fixed << std::setw(9) << std::setprecision(3)
       << to_seconds(record.when) << "  "
       << (direction_of(record.type) == LinkDirection::uplink ? "UL " : "DL ")
       << "  " << std::setw(4) << channel_of(record.type) << "  "
       << std::left << std::setw(35) << to_string(record.type) << std::right
       << "  #" << record.node.value << '\n';
    ++printed;
  }
}

}  // namespace d2dhb::radio
