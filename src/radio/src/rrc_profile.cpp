#include "radio/rrc_profile.hpp"

namespace d2dhb::radio {

// Calibration note (see DESIGN.md §5): one isolated 54 B heartbeat on the
// WCDMA profile draws
//   promotion 1.8 s · 400 mA + burst 0.4 s · 650 mA
//   + DCH tail 2.8 s · 330 mA + FACH tail 2.0 s · 125 mA
//   = 2154 mA·s = 598.3 µAh
// of cellular-radio charge, and one full RRC cycle emits 8 layer-3
// messages (5 setup + 1 demotion + 2 release) — the original-system
// slope of the paper's Fig. 15.
RrcProfile wcdma_profile() {
  RrcProfile p;
  p.name = "WCDMA";
  p.promotion_delay = milliseconds(1800);
  p.reconfig_delay = milliseconds(600);
  p.high_inactivity = milliseconds(2800);
  p.low_inactivity = milliseconds(2000);
  p.min_tx_duration = milliseconds(400);
  p.uplink_bytes_per_second = 200'000.0;
  p.idle_current = MilliAmps{0.0};
  p.promotion_current = MilliAmps{400.0};
  p.high_current = MilliAmps{330.0};
  p.tx_extra_current = MilliAmps{320.0};
  p.low_current = MilliAmps{125.0};
  p.setup_sequence = {
      L3MessageType::rrc_connection_request,
      L3MessageType::rrc_connection_setup,
      L3MessageType::rrc_connection_setup_complete,
      L3MessageType::radio_bearer_setup,
      L3MessageType::radio_bearer_setup_complete,
  };
  p.high_to_low_sequence = {L3MessageType::physical_channel_reconfiguration};
  p.low_to_high_sequence = {
      L3MessageType::physical_channel_reconfiguration,
      L3MessageType::measurement_report,
  };
  p.release_sequence = {
      L3MessageType::rrc_connection_release,
      L3MessageType::rrc_connection_release_complete,
  };
  p.rb_reconfig_sequence = {L3MessageType::radio_bearer_reconfiguration};
  p.rb_reconfig_threshold = Bytes{150};
  return p;
}

// LTE: fast promotion, higher active draw, long connected-DRX tail.
RrcProfile lte_profile() {
  RrcProfile p;
  p.name = "LTE";
  p.promotion_delay = milliseconds(300);
  p.reconfig_delay = milliseconds(100);
  p.high_inactivity = milliseconds(1000);
  p.low_inactivity = milliseconds(10000);
  p.min_tx_duration = milliseconds(250);
  p.uplink_bytes_per_second = 2'000'000.0;
  p.idle_current = MilliAmps{0.0};
  p.promotion_current = MilliAmps{450.0};
  p.high_current = MilliAmps{420.0};
  p.tx_extra_current = MilliAmps{380.0};
  p.low_current = MilliAmps{60.0};  // connected DRX
  p.setup_sequence = {
      L3MessageType::rrc_connection_request,
      L3MessageType::rrc_connection_setup,
      L3MessageType::rrc_connection_setup_complete,
      L3MessageType::security_mode_command,
      L3MessageType::radio_bearer_setup,
  };
  p.high_to_low_sequence = {};  // DRX entry is not an RRC exchange in LTE
  p.low_to_high_sequence = {L3MessageType::physical_channel_reconfiguration};
  p.release_sequence = {
      L3MessageType::rrc_connection_release,
      L3MessageType::rrc_connection_release_complete,
  };
  p.rb_reconfig_sequence = {L3MessageType::radio_bearer_reconfiguration};
  p.rb_reconfig_threshold = Bytes{300};
  return p;
}

}  // namespace d2dhb::radio
