// Cellular modem: RRC state machine + uplink engine + power coupling.
//
// One instance per smartphone. transmit() queues an uplink bundle; the
// modem walks the RRC machine (promotion, burst, demotion tail), charges
// the phone's EnergyMeter for every state it passes through, and records
// each control-plane exchange in the shared SignalingCounter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/id.hpp"
#include "common/units.hpp"
#include "energy/energy_meter.hpp"
#include "metrics/registry.hpp"
#include "net/message.hpp"
#include "radio/rrc_profile.hpp"
#include "radio/signaling.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::radio {

enum class RrcState { idle, promoting, high, transmitting, low };

const char* to_string(RrcState s);

class CellularModem {
 public:
  /// Called when a bundle finishes its uplink burst (i.e. reached the BS).
  using UplinkHandler = std::function<void(const net::UplinkBundle&)>;

  CellularModem(sim::Simulator& sim, NodeId owner, RrcProfile profile,
                energy::EnergyMeter& meter, SignalingCounter& signaling);

  CellularModem(const CellularModem&) = delete;
  CellularModem& operator=(const CellularModem&) = delete;

  void set_uplink_handler(UplinkHandler handler) {
    uplink_ = std::move(handler);
  }

  /// Queues a bundle for transmission. Triggers promotion if idle.
  void transmit(net::UplinkBundle bundle);

  /// Fast dormancy (the related-work baseline of [26]): after the last
  /// queued burst, the device sends an SCRI and drops straight to IDLE,
  /// skipping the DCH/FACH inactivity tails. Saves tail energy but
  /// costs a fresh RRC setup for every transmission — "aggravates
  /// signaling storm while reducing energy consumption".
  void set_fast_dormancy(bool enabled) { fast_dormancy_ = enabled; }
  bool fast_dormancy() const { return fast_dormancy_; }

  RrcState state() const { return state_; }
  NodeId owner() const { return owner_; }
  const RrcProfile& profile() const { return profile_; }

  /// Cumulative charge drawn by the cellular component.
  MicroAmpHours radio_charge() { return meter_.component_charge(component_); }

  std::uint64_t bundles_sent() const { return bundles_sent_ctr_->value(); }
  std::uint64_t rrc_promotions() const { return promotions_ctr_->value(); }
  std::uint64_t rrc_transitions() const { return transitions_ctr_->value(); }

  /// Drops the radio to IDLE immediately (airplane mode / network loss).
  /// Queued bundles are discarded; used by failure-injection tests.
  void force_idle();

 private:
  void enter(RrcState next);
  void start_next_burst();
  void arm_high_inactivity();
  void arm_low_inactivity();
  void cancel_inactivity();
  MilliAmps state_current(RrcState s) const;

  sim::Simulator& sim_;
  NodeId owner_;
  RrcProfile profile_;
  energy::EnergyMeter& meter_;
  energy::ComponentHandle component_;
  SignalingCounter& signaling_;
  UplinkHandler uplink_;

  RrcState state_{RrcState::idle};
  bool fast_dormancy_{false};
  std::deque<net::UplinkBundle> queue_;
  sim::EventId inactivity_event_{};
  std::uint64_t epoch_{0};  ///< Invalidates in-flight events on force_idle().

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* bundles_sent_ctr_;
  metrics::Counter* promotions_ctr_;
  metrics::Counter* transitions_ctr_;
  metrics::Sampler* state_sampler_;
};

}  // namespace d2dhb::radio
