// Base station: terminates modem uplinks and forwards heartbeats over a
// backhaul channel to the IM server. Owns the cell-wide signaling counter
// so control-channel load can be inspected per cell.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/channel.hpp"
#include "net/im_server.hpp"
#include "radio/signaling.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::radio {

class BaseStation {
 public:
  BaseStation(sim::Simulator& sim, net::ImServer& server,
              net::Channel::Params backhaul, Rng rng);

  /// Uplink entry point — wire this as every modem's UplinkHandler.
  void receive(const net::UplinkBundle& bundle);

  SignalingCounter& signaling() { return signaling_; }
  const SignalingCounter& signaling() const { return signaling_; }

  std::uint64_t bundles_received() const { return bundles_; }
  std::uint64_t heartbeats_received() const { return heartbeats_; }
  std::uint64_t bytes_received() const { return bytes_; }

 private:
  net::Channel backhaul_;
  SignalingCounter signaling_;
  std::uint64_t bundles_{0};
  std::uint64_t heartbeats_{0};
  std::uint64_t bytes_{0};
};

}  // namespace d2dhb::radio
