// Base station: terminates modem uplinks and forwards heartbeats over a
// backhaul channel to the IM server. Owns the cell-wide signaling counter
// so control-channel load can be inspected per cell.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "metrics/registry.hpp"
#include "net/channel.hpp"
#include "net/im_server.hpp"
#include "radio/signaling.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::radio {

class BaseStation {
 public:
  /// `cell` labels this station's metrics (site index in multi-cell
  /// scenarios; 0 for single-cell setups).
  BaseStation(sim::Simulator& sim, net::ImServer& server,
              net::Channel::Params backhaul, Rng rng, std::size_t cell = 0);

  /// Uplink entry point — wire this as every modem's UplinkHandler.
  void receive(const net::UplinkBundle& bundle);

  SignalingCounter& signaling() { return signaling_; }
  const SignalingCounter& signaling() const { return signaling_; }

  std::size_t cell() const { return cell_; }
  std::uint64_t bundles_received() const { return bundles_ctr_->value(); }
  std::uint64_t heartbeats_received() const {
    return heartbeats_ctr_->value();
  }
  std::uint64_t bytes_received() const { return bytes_ctr_->value(); }

 private:
  net::Channel backhaul_;
  SignalingCounter signaling_;
  std::size_t cell_;

  // Registry-backed counters (owned by the simulator's registry).
  metrics::Counter* bundles_ctr_;
  metrics::Counter* heartbeats_ctr_;
  metrics::Counter* bytes_ctr_;
};

}  // namespace d2dhb::radio
