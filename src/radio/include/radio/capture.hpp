// Layer-3 capture listing — the NetOptiMaster-style view of Fig. 14:
// one line per control-plane message with timestamp, direction, channel,
// and message name.
#pragma once

#include <iosfwd>

#include "radio/signaling.hpp"

namespace d2dhb::radio {

enum class LinkDirection { uplink, downlink };

/// Who transmits each L3 message type (UE -> network = uplink).
LinkDirection direction_of(L3MessageType type);

/// Logical channel the message rides on, as capture tools label it.
const char* channel_of(L3MessageType type);

/// Prints a NetOptiMaster-style listing of the first `limit` records
/// (0 = all): time, UL/DL, channel, message name, node.
void print_capture(std::ostream& os, const SignalingCounter& counter,
                   std::size_t limit = 0);

}  // namespace d2dhb::radio
