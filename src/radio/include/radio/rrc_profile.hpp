// RRC state machine parameterization.
//
// "RRC state machine, which is used to allocate the limited radio
// resources, is implemented in GPRS, EVDO, UMTS, and LTE Networks"
// (Section II-B). The modem models a three-tier machine:
//
//   IDLE --(promotion: delay + setup signaling)--> HIGH (DCH / CONNECTED)
//   HIGH --(inactivity T1)--> LOW (FACH / connected-DRX)
//   LOW  --(inactivity T2, release signaling)--> IDLE
//   LOW  --(uplink: reconfiguration signaling)--> HIGH
//
// Each transition costs layer-3 control messages — the signaling traffic
// the paper's framework exists to reduce — and each state has a current
// draw that the energy meter integrates.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "radio/signaling.hpp"

namespace d2dhb::radio {

struct RrcProfile {
  std::string name;

  // --- Timing ---
  Duration promotion_delay;   ///< IDLE -> HIGH ramp (RRC setup exchange).
  Duration reconfig_delay;    ///< LOW -> HIGH ramp.
  Duration high_inactivity;   ///< HIGH -> LOW demotion timer (T1).
  Duration low_inactivity;    ///< LOW -> IDLE demotion timer (T2).
  Duration min_tx_duration;   ///< Floor on an uplink burst (TCP/NAS chatter).
  double uplink_bytes_per_second;  ///< Burst length for large payloads.

  // --- Power (current draw of the cellular component per state) ---
  MilliAmps idle_current;
  MilliAmps promotion_current;
  MilliAmps high_current;     ///< Holding DCH / CONNECTED without traffic.
  MilliAmps tx_extra_current; ///< Added on top of high_current while bursting.
  MilliAmps low_current;      ///< FACH / DRX.

  // --- Layer-3 signaling message sequences per transition ---
  std::vector<L3MessageType> setup_sequence;        ///< IDLE -> HIGH.
  std::vector<L3MessageType> release_sequence;      ///< LOW -> IDLE.
  std::vector<L3MessageType> high_to_low_sequence;  ///< HIGH -> LOW.
  std::vector<L3MessageType> low_to_high_sequence;  ///< LOW -> HIGH.
  /// Extra radio-bearer reconfiguration sent when a single uplink payload
  /// exceeds `rb_reconfig_threshold` (reproduces the paper's observation
  /// that bigger aggregates cost slightly more signaling, Fig. 15).
  std::vector<L3MessageType> rb_reconfig_sequence;
  Bytes rb_reconfig_threshold;

  /// L3 messages in a full IDLE->HIGH->LOW->IDLE cycle with a small
  /// payload — the per-heartbeat signaling cost of the original system.
  std::size_t full_cycle_l3() const {
    return setup_sequence.size() + high_to_low_sequence.size() +
           release_sequence.size();
  }
};

/// WCDMA (UMTS) profile — the network the paper measures with
/// NetOptiMaster (Section V-B). Calibrated so that one isolated 54 B
/// heartbeat costs ~750 µAh of cellular-radio charge and 8 layer-3
/// messages per full RRC cycle (Fig. 15's original-system slope).
RrcProfile wcdma_profile();

/// LTE profile — shorter promotion, connected-mode DRX tail. Provided for
/// the generality discussion in Section III ("schemes ... vary in
/// different cellular networks"); benches default to WCDMA.
RrcProfile lte_profile();

}  // namespace d2dhb::radio
