// Layer-3 signaling accounting — the substitute for the paper's
// NetOptiMaster capture (Section V-B, Fig. 14/15). Every control-plane
// message a modem exchanges with the BS is recorded here with its
// timestamp, giving both per-node totals and control-channel load.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/id.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"

namespace d2dhb::radio {

enum class L3MessageType : std::uint8_t {
  rrc_connection_request,
  rrc_connection_setup,
  rrc_connection_setup_complete,
  radio_bearer_setup,
  radio_bearer_setup_complete,
  radio_bearer_reconfiguration,
  physical_channel_reconfiguration,
  rrc_connection_release,
  rrc_connection_release_complete,
  security_mode_command,
  measurement_report,
  /// Device-initiated fast dormancy request (3GPP SCRI): the phone asks
  /// the network to release the connection right after its data burst
  /// instead of waiting out the inactivity tails.
  signaling_connection_release_indication,
  kCount,
};

const char* to_string(L3MessageType type);

class SignalingCounter {
 public:
  struct Record {
    TimePoint when;
    NodeId node;
    L3MessageType type;
  };

  /// Thread-safe: one cell's counter is fed by phones homed on several
  /// kernels, so recording locks internally. Aggregates (total, counts,
  /// peak_rate) are insertion-order independent, which keeps them
  /// byte-identical across executor thread counts.
  void record(TimePoint when, NodeId node, L3MessageType type)
      D2DHB_EXCLUDES(mutex_);
  void record_sequence(TimePoint when, NodeId node,
                       const std::vector<L3MessageType>& sequence)
      D2DHB_EXCLUDES(mutex_);

  std::uint64_t total() const D2DHB_EXCLUDES(mutex_);
  std::uint64_t count_for(NodeId node) const D2DHB_EXCLUDES(mutex_);
  std::uint64_t count_of(L3MessageType type) const D2DHB_EXCLUDES(mutex_);

  /// Peak number of L3 messages inside any sliding window of `window`
  /// length — a proxy for instantaneous control-channel load (the
  /// quantity that overloads during a signaling storm). Sorts a copy by
  /// timestamp, so the answer does not depend on insertion order.
  std::uint64_t peak_rate(Duration window) const D2DHB_EXCLUDES(mutex_);

  /// Raw records in insertion order, copied under the lock — safe even
  /// while phones on other kernels are still recording.
  std::vector<Record> records() const D2DHB_EXCLUDES(mutex_);
  void clear() D2DHB_EXCLUDES(mutex_);

 private:
  void append(TimePoint when, NodeId node, L3MessageType type)
      D2DHB_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<Record> records_ D2DHB_GUARDED_BY(mutex_);
  std::map<NodeId, std::uint64_t> per_node_ D2DHB_GUARDED_BY(mutex_);
  std::array<std::uint64_t, static_cast<std::size_t>(L3MessageType::kCount)>
      per_type_ D2DHB_GUARDED_BY(mutex_){};
};

}  // namespace d2dhb::radio
