file(REMOVE_RECURSE
  "CMakeFiles/crowd_stadium.dir/crowd_stadium.cpp.o"
  "CMakeFiles/crowd_stadium.dir/crowd_stadium.cpp.o.d"
  "crowd_stadium"
  "crowd_stadium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_stadium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
