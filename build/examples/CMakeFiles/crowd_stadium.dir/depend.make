# Empty dependencies file for crowd_stadium.
# This may be replaced when dependencies are built.
