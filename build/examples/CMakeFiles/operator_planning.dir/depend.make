# Empty dependencies file for operator_planning.
# This may be replaced when dependencies are built.
