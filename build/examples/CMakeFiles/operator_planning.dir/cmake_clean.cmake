file(REMOVE_RECURSE
  "CMakeFiles/operator_planning.dir/operator_planning.cpp.o"
  "CMakeFiles/operator_planning.dir/operator_planning.cpp.o.d"
  "operator_planning"
  "operator_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
