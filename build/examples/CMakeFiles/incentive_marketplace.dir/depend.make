# Empty dependencies file for incentive_marketplace.
# This may be replaced when dependencies are built.
