file(REMOVE_RECURSE
  "CMakeFiles/incentive_marketplace.dir/incentive_marketplace.cpp.o"
  "CMakeFiles/incentive_marketplace.dir/incentive_marketplace.cpp.o.d"
  "incentive_marketplace"
  "incentive_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incentive_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
