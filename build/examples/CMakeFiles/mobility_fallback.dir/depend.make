# Empty dependencies file for mobility_fallback.
# This may be replaced when dependencies are built.
