file(REMOVE_RECURSE
  "CMakeFiles/mobility_fallback.dir/mobility_fallback.cpp.o"
  "CMakeFiles/mobility_fallback.dir/mobility_fallback.cpp.o.d"
  "mobility_fallback"
  "mobility_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
