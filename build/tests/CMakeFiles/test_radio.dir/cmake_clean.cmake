file(REMOVE_RECURSE
  "CMakeFiles/test_radio.dir/radio/test_base_station.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_base_station.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_capture.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_capture.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_rrc.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_rrc.cpp.o.d"
  "CMakeFiles/test_radio.dir/radio/test_signaling.cpp.o"
  "CMakeFiles/test_radio.dir/radio/test_signaling.cpp.o.d"
  "test_radio"
  "test_radio.pdb"
  "test_radio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
