
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analysis.cpp" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "/root/repo/tests/core/test_baseline_agent.cpp" "tests/CMakeFiles/test_core.dir/core/test_baseline_agent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baseline_agent.cpp.o.d"
  "/root/repo/tests/core/test_battery_relay.cpp" "tests/CMakeFiles/test_core.dir/core/test_battery_relay.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_battery_relay.cpp.o.d"
  "/root/repo/tests/core/test_detector.cpp" "tests/CMakeFiles/test_core.dir/core/test_detector.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_detector.cpp.o.d"
  "/root/repo/tests/core/test_feedback.cpp" "tests/CMakeFiles/test_core.dir/core/test_feedback.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_feedback.cpp.o.d"
  "/root/repo/tests/core/test_handover.cpp" "tests/CMakeFiles/test_core.dir/core/test_handover.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_handover.cpp.o.d"
  "/root/repo/tests/core/test_incentive.cpp" "tests/CMakeFiles/test_core.dir/core/test_incentive.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_incentive.cpp.o.d"
  "/root/repo/tests/core/test_message_monitor.cpp" "tests/CMakeFiles/test_core.dir/core/test_message_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_message_monitor.cpp.o.d"
  "/root/repo/tests/core/test_multi_app.cpp" "tests/CMakeFiles/test_core.dir/core/test_multi_app.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multi_app.cpp.o.d"
  "/root/repo/tests/core/test_operator_selection.cpp" "tests/CMakeFiles/test_core.dir/core/test_operator_selection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_operator_selection.cpp.o.d"
  "/root/repo/tests/core/test_original_agent.cpp" "tests/CMakeFiles/test_core.dir/core/test_original_agent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_original_agent.cpp.o.d"
  "/root/repo/tests/core/test_phone.cpp" "tests/CMakeFiles/test_core.dir/core/test_phone.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_phone.cpp.o.d"
  "/root/repo/tests/core/test_relay_agent.cpp" "tests/CMakeFiles/test_core.dir/core/test_relay_agent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_relay_agent.cpp.o.d"
  "/root/repo/tests/core/test_scheduler.cpp" "tests/CMakeFiles/test_core.dir/core/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_ue_agent.cpp" "tests/CMakeFiles/test_core.dir/core/test_ue_agent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ue_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/d2dhb_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/d2dhb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/d2dhb_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/d2d/CMakeFiles/d2dhb_d2d.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/d2dhb_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/d2dhb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
