file(REMOVE_RECURSE
  "CMakeFiles/test_energy.dir/energy/test_battery.cpp.o"
  "CMakeFiles/test_energy.dir/energy/test_battery.cpp.o.d"
  "CMakeFiles/test_energy.dir/energy/test_current_trace.cpp.o"
  "CMakeFiles/test_energy.dir/energy/test_current_trace.cpp.o.d"
  "CMakeFiles/test_energy.dir/energy/test_energy_meter.cpp.o"
  "CMakeFiles/test_energy.dir/energy/test_energy_meter.cpp.o.d"
  "CMakeFiles/test_energy.dir/energy/test_energy_report.cpp.o"
  "CMakeFiles/test_energy.dir/energy/test_energy_report.cpp.o.d"
  "test_energy"
  "test_energy.pdb"
  "test_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
