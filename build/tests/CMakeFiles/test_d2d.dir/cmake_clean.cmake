file(REMOVE_RECURSE
  "CMakeFiles/test_d2d.dir/d2d/test_energy_profile.cpp.o"
  "CMakeFiles/test_d2d.dir/d2d/test_energy_profile.cpp.o.d"
  "CMakeFiles/test_d2d.dir/d2d/test_medium.cpp.o"
  "CMakeFiles/test_d2d.dir/d2d/test_medium.cpp.o.d"
  "CMakeFiles/test_d2d.dir/d2d/test_technology.cpp.o"
  "CMakeFiles/test_d2d.dir/d2d/test_technology.cpp.o.d"
  "CMakeFiles/test_d2d.dir/d2d/test_wifi_direct.cpp.o"
  "CMakeFiles/test_d2d.dir/d2d/test_wifi_direct.cpp.o.d"
  "test_d2d"
  "test_d2d.pdb"
  "test_d2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_d2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
