# Empty dependencies file for test_d2d.
# This may be replaced when dependencies are built.
