
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_analysis_vs_simulation.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_analysis_vs_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_analysis_vs_simulation.cpp.o.d"
  "/root/repo/tests/integration/test_baseline_strategies.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_baseline_strategies.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_baseline_strategies.cpp.o.d"
  "/root/repo/tests/integration/test_crowd.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_crowd.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_crowd.cpp.o.d"
  "/root/repo/tests/integration/test_failure_injection.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "/root/repo/tests/integration/test_fuzz.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o.d"
  "/root/repo/tests/integration/test_headline_claims.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_headline_claims.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_headline_claims.cpp.o.d"
  "/root/repo/tests/integration/test_multicell.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_multicell.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_multicell.cpp.o.d"
  "/root/repo/tests/integration/test_pair_system.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_pair_system.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_pair_system.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/integration/test_scenario_harness.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_scenario_harness.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_scenario_harness.cpp.o.d"
  "/root/repo/tests/integration/test_technology_sweep.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_technology_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_technology_sweep.cpp.o.d"
  "/root/repo/tests/integration/test_trace_integration.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_trace_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_trace_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/d2dhb_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/d2dhb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/d2dhb_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/d2d/CMakeFiles/d2dhb_d2d.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/d2dhb_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/d2dhb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
