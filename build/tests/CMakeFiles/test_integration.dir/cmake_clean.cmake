file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_analysis_vs_simulation.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_analysis_vs_simulation.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_baseline_strategies.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_baseline_strategies.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_crowd.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_crowd.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_headline_claims.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_headline_claims.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_multicell.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_multicell.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_pair_system.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_pair_system.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_properties.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_properties.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_scenario_harness.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_scenario_harness.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_technology_sweep.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_technology_sweep.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_trace_integration.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_trace_integration.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
