file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_cli.dir/d2dhb_sim.cpp.o"
  "CMakeFiles/d2dhb_cli.dir/d2dhb_sim.cpp.o.d"
  "d2dhb_sim"
  "d2dhb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
