# Empty compiler generated dependencies file for d2dhb_cli.
# This may be replaced when dependencies are built.
