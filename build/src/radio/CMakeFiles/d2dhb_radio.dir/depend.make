# Empty dependencies file for d2dhb_radio.
# This may be replaced when dependencies are built.
