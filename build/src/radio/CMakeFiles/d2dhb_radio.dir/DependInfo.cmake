
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/src/base_station.cpp" "src/radio/CMakeFiles/d2dhb_radio.dir/src/base_station.cpp.o" "gcc" "src/radio/CMakeFiles/d2dhb_radio.dir/src/base_station.cpp.o.d"
  "/root/repo/src/radio/src/capture.cpp" "src/radio/CMakeFiles/d2dhb_radio.dir/src/capture.cpp.o" "gcc" "src/radio/CMakeFiles/d2dhb_radio.dir/src/capture.cpp.o.d"
  "/root/repo/src/radio/src/cellular_modem.cpp" "src/radio/CMakeFiles/d2dhb_radio.dir/src/cellular_modem.cpp.o" "gcc" "src/radio/CMakeFiles/d2dhb_radio.dir/src/cellular_modem.cpp.o.d"
  "/root/repo/src/radio/src/rrc_profile.cpp" "src/radio/CMakeFiles/d2dhb_radio.dir/src/rrc_profile.cpp.o" "gcc" "src/radio/CMakeFiles/d2dhb_radio.dir/src/rrc_profile.cpp.o.d"
  "/root/repo/src/radio/src/signaling.cpp" "src/radio/CMakeFiles/d2dhb_radio.dir/src/signaling.cpp.o" "gcc" "src/radio/CMakeFiles/d2dhb_radio.dir/src/signaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
