file(REMOVE_RECURSE
  "libd2dhb_radio.a"
)
