file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_radio.dir/src/base_station.cpp.o"
  "CMakeFiles/d2dhb_radio.dir/src/base_station.cpp.o.d"
  "CMakeFiles/d2dhb_radio.dir/src/capture.cpp.o"
  "CMakeFiles/d2dhb_radio.dir/src/capture.cpp.o.d"
  "CMakeFiles/d2dhb_radio.dir/src/cellular_modem.cpp.o"
  "CMakeFiles/d2dhb_radio.dir/src/cellular_modem.cpp.o.d"
  "CMakeFiles/d2dhb_radio.dir/src/rrc_profile.cpp.o"
  "CMakeFiles/d2dhb_radio.dir/src/rrc_profile.cpp.o.d"
  "CMakeFiles/d2dhb_radio.dir/src/signaling.cpp.o"
  "CMakeFiles/d2dhb_radio.dir/src/signaling.cpp.o.d"
  "libd2dhb_radio.a"
  "libd2dhb_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
