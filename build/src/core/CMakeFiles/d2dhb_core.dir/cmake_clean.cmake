file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_core.dir/src/analysis.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/analysis.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/baseline_agent.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/baseline_agent.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/detector.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/detector.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/feedback.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/feedback.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/incentive.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/incentive.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/message_monitor.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/message_monitor.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/operator_selection.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/operator_selection.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/original_agent.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/original_agent.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/phone.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/phone.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/relay_agent.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/relay_agent.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/scheduler.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/d2dhb_core.dir/src/ue_agent.cpp.o"
  "CMakeFiles/d2dhb_core.dir/src/ue_agent.cpp.o.d"
  "libd2dhb_core.a"
  "libd2dhb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
