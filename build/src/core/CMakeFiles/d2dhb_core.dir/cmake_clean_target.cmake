file(REMOVE_RECURSE
  "libd2dhb_core.a"
)
