
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/analysis.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/analysis.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/analysis.cpp.o.d"
  "/root/repo/src/core/src/baseline_agent.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/baseline_agent.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/baseline_agent.cpp.o.d"
  "/root/repo/src/core/src/detector.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/detector.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/detector.cpp.o.d"
  "/root/repo/src/core/src/feedback.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/feedback.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/feedback.cpp.o.d"
  "/root/repo/src/core/src/incentive.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/incentive.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/incentive.cpp.o.d"
  "/root/repo/src/core/src/message_monitor.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/message_monitor.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/message_monitor.cpp.o.d"
  "/root/repo/src/core/src/operator_selection.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/operator_selection.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/operator_selection.cpp.o.d"
  "/root/repo/src/core/src/original_agent.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/original_agent.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/original_agent.cpp.o.d"
  "/root/repo/src/core/src/phone.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/phone.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/phone.cpp.o.d"
  "/root/repo/src/core/src/relay_agent.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/relay_agent.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/relay_agent.cpp.o.d"
  "/root/repo/src/core/src/scheduler.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/scheduler.cpp.o.d"
  "/root/repo/src/core/src/ue_agent.cpp" "src/core/CMakeFiles/d2dhb_core.dir/src/ue_agent.cpp.o" "gcc" "src/core/CMakeFiles/d2dhb_core.dir/src/ue_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/d2dhb_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/d2dhb_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/d2d/CMakeFiles/d2dhb_d2d.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/d2dhb_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
