# Empty compiler generated dependencies file for d2dhb_core.
# This may be replaced when dependencies are built.
