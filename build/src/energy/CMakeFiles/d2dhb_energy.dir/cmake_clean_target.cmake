file(REMOVE_RECURSE
  "libd2dhb_energy.a"
)
