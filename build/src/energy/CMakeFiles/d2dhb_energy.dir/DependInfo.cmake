
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/src/battery.cpp" "src/energy/CMakeFiles/d2dhb_energy.dir/src/battery.cpp.o" "gcc" "src/energy/CMakeFiles/d2dhb_energy.dir/src/battery.cpp.o.d"
  "/root/repo/src/energy/src/current_trace.cpp" "src/energy/CMakeFiles/d2dhb_energy.dir/src/current_trace.cpp.o" "gcc" "src/energy/CMakeFiles/d2dhb_energy.dir/src/current_trace.cpp.o.d"
  "/root/repo/src/energy/src/energy_meter.cpp" "src/energy/CMakeFiles/d2dhb_energy.dir/src/energy_meter.cpp.o" "gcc" "src/energy/CMakeFiles/d2dhb_energy.dir/src/energy_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
