file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_energy.dir/src/battery.cpp.o"
  "CMakeFiles/d2dhb_energy.dir/src/battery.cpp.o.d"
  "CMakeFiles/d2dhb_energy.dir/src/current_trace.cpp.o"
  "CMakeFiles/d2dhb_energy.dir/src/current_trace.cpp.o.d"
  "CMakeFiles/d2dhb_energy.dir/src/energy_meter.cpp.o"
  "CMakeFiles/d2dhb_energy.dir/src/energy_meter.cpp.o.d"
  "libd2dhb_energy.a"
  "libd2dhb_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
