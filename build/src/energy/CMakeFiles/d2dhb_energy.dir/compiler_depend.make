# Empty compiler generated dependencies file for d2dhb_energy.
# This may be replaced when dependencies are built.
