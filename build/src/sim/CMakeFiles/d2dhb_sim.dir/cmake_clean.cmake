file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/d2dhb_sim.dir/src/simulator.cpp.o.d"
  "libd2dhb_sim.a"
  "libd2dhb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
