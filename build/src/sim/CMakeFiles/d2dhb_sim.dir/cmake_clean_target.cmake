file(REMOVE_RECURSE
  "libd2dhb_sim.a"
)
