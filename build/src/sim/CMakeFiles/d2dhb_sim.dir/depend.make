# Empty dependencies file for d2dhb_sim.
# This may be replaced when dependencies are built.
