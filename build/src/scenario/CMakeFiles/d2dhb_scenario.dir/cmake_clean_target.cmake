file(REMOVE_RECURSE
  "libd2dhb_scenario.a"
)
