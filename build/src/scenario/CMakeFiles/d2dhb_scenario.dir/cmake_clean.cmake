file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_scenario.dir/src/baselines.cpp.o"
  "CMakeFiles/d2dhb_scenario.dir/src/baselines.cpp.o.d"
  "CMakeFiles/d2dhb_scenario.dir/src/compressed_pair.cpp.o"
  "CMakeFiles/d2dhb_scenario.dir/src/compressed_pair.cpp.o.d"
  "CMakeFiles/d2dhb_scenario.dir/src/crowd.cpp.o"
  "CMakeFiles/d2dhb_scenario.dir/src/crowd.cpp.o.d"
  "CMakeFiles/d2dhb_scenario.dir/src/probes.cpp.o"
  "CMakeFiles/d2dhb_scenario.dir/src/probes.cpp.o.d"
  "CMakeFiles/d2dhb_scenario.dir/src/scenario.cpp.o"
  "CMakeFiles/d2dhb_scenario.dir/src/scenario.cpp.o.d"
  "libd2dhb_scenario.a"
  "libd2dhb_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
