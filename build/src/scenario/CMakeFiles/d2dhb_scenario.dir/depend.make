# Empty dependencies file for d2dhb_scenario.
# This may be replaced when dependencies are built.
