file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_apps.dir/src/app_profile.cpp.o"
  "CMakeFiles/d2dhb_apps.dir/src/app_profile.cpp.o.d"
  "CMakeFiles/d2dhb_apps.dir/src/heartbeat_app.cpp.o"
  "CMakeFiles/d2dhb_apps.dir/src/heartbeat_app.cpp.o.d"
  "CMakeFiles/d2dhb_apps.dir/src/traffic_mix.cpp.o"
  "CMakeFiles/d2dhb_apps.dir/src/traffic_mix.cpp.o.d"
  "libd2dhb_apps.a"
  "libd2dhb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
