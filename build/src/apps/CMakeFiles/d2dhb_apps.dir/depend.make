# Empty dependencies file for d2dhb_apps.
# This may be replaced when dependencies are built.
