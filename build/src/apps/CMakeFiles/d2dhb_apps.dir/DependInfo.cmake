
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/src/app_profile.cpp" "src/apps/CMakeFiles/d2dhb_apps.dir/src/app_profile.cpp.o" "gcc" "src/apps/CMakeFiles/d2dhb_apps.dir/src/app_profile.cpp.o.d"
  "/root/repo/src/apps/src/heartbeat_app.cpp" "src/apps/CMakeFiles/d2dhb_apps.dir/src/heartbeat_app.cpp.o" "gcc" "src/apps/CMakeFiles/d2dhb_apps.dir/src/heartbeat_app.cpp.o.d"
  "/root/repo/src/apps/src/traffic_mix.cpp" "src/apps/CMakeFiles/d2dhb_apps.dir/src/traffic_mix.cpp.o" "gcc" "src/apps/CMakeFiles/d2dhb_apps.dir/src/traffic_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
