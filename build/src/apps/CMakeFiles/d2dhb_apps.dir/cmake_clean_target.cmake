file(REMOVE_RECURSE
  "libd2dhb_apps.a"
)
