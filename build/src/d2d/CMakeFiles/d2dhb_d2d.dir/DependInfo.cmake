
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/d2d/src/energy_profile.cpp" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/energy_profile.cpp.o" "gcc" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/energy_profile.cpp.o.d"
  "/root/repo/src/d2d/src/medium.cpp" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/medium.cpp.o" "gcc" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/medium.cpp.o.d"
  "/root/repo/src/d2d/src/technology.cpp" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/technology.cpp.o" "gcc" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/technology.cpp.o.d"
  "/root/repo/src/d2d/src/wifi_direct.cpp" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/wifi_direct.cpp.o" "gcc" "src/d2d/CMakeFiles/d2dhb_d2d.dir/src/wifi_direct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/d2dhb_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
