file(REMOVE_RECURSE
  "libd2dhb_d2d.a"
)
