# Empty dependencies file for d2dhb_d2d.
# This may be replaced when dependencies are built.
