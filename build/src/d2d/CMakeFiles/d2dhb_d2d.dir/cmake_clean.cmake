file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_d2d.dir/src/energy_profile.cpp.o"
  "CMakeFiles/d2dhb_d2d.dir/src/energy_profile.cpp.o.d"
  "CMakeFiles/d2dhb_d2d.dir/src/medium.cpp.o"
  "CMakeFiles/d2dhb_d2d.dir/src/medium.cpp.o.d"
  "CMakeFiles/d2dhb_d2d.dir/src/technology.cpp.o"
  "CMakeFiles/d2dhb_d2d.dir/src/technology.cpp.o.d"
  "CMakeFiles/d2dhb_d2d.dir/src/wifi_direct.cpp.o"
  "CMakeFiles/d2dhb_d2d.dir/src/wifi_direct.cpp.o.d"
  "libd2dhb_d2d.a"
  "libd2dhb_d2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_d2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
