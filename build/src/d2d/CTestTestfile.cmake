# CMake generated Testfile for 
# Source directory: /root/repo/src/d2d
# Build directory: /root/repo/build/src/d2d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
