
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/src/channel.cpp" "src/net/CMakeFiles/d2dhb_net.dir/src/channel.cpp.o" "gcc" "src/net/CMakeFiles/d2dhb_net.dir/src/channel.cpp.o.d"
  "/root/repo/src/net/src/codec.cpp" "src/net/CMakeFiles/d2dhb_net.dir/src/codec.cpp.o" "gcc" "src/net/CMakeFiles/d2dhb_net.dir/src/codec.cpp.o.d"
  "/root/repo/src/net/src/im_server.cpp" "src/net/CMakeFiles/d2dhb_net.dir/src/im_server.cpp.o" "gcc" "src/net/CMakeFiles/d2dhb_net.dir/src/im_server.cpp.o.d"
  "/root/repo/src/net/src/message.cpp" "src/net/CMakeFiles/d2dhb_net.dir/src/message.cpp.o" "gcc" "src/net/CMakeFiles/d2dhb_net.dir/src/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
