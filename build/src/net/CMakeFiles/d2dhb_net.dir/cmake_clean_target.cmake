file(REMOVE_RECURSE
  "libd2dhb_net.a"
)
