file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_net.dir/src/channel.cpp.o"
  "CMakeFiles/d2dhb_net.dir/src/channel.cpp.o.d"
  "CMakeFiles/d2dhb_net.dir/src/codec.cpp.o"
  "CMakeFiles/d2dhb_net.dir/src/codec.cpp.o.d"
  "CMakeFiles/d2dhb_net.dir/src/im_server.cpp.o"
  "CMakeFiles/d2dhb_net.dir/src/im_server.cpp.o.d"
  "CMakeFiles/d2dhb_net.dir/src/message.cpp.o"
  "CMakeFiles/d2dhb_net.dir/src/message.cpp.o.d"
  "libd2dhb_net.a"
  "libd2dhb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
