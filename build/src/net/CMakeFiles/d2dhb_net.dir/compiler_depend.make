# Empty compiler generated dependencies file for d2dhb_net.
# This may be replaced when dependencies are built.
