# Empty compiler generated dependencies file for d2dhb_common.
# This may be replaced when dependencies are built.
