file(REMOVE_RECURSE
  "libd2dhb_common.a"
)
