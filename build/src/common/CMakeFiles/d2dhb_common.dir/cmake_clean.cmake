file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_common.dir/src/log.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/log.cpp.o.d"
  "CMakeFiles/d2dhb_common.dir/src/result.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/result.cpp.o.d"
  "CMakeFiles/d2dhb_common.dir/src/rng.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/rng.cpp.o.d"
  "CMakeFiles/d2dhb_common.dir/src/stats.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/stats.cpp.o.d"
  "CMakeFiles/d2dhb_common.dir/src/table.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/table.cpp.o.d"
  "CMakeFiles/d2dhb_common.dir/src/tracelog.cpp.o"
  "CMakeFiles/d2dhb_common.dir/src/tracelog.cpp.o.d"
  "libd2dhb_common.a"
  "libd2dhb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
