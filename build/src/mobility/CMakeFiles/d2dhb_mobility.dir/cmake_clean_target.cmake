file(REMOVE_RECURSE
  "libd2dhb_mobility.a"
)
