# Empty dependencies file for d2dhb_mobility.
# This may be replaced when dependencies are built.
