file(REMOVE_RECURSE
  "CMakeFiles/d2dhb_mobility.dir/src/mobility.cpp.o"
  "CMakeFiles/d2dhb_mobility.dir/src/mobility.cpp.o.d"
  "libd2dhb_mobility.a"
  "libd2dhb_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2dhb_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
