file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_relay_multi_ue.dir/fig10_relay_multi_ue.cpp.o"
  "CMakeFiles/bench_fig10_relay_multi_ue.dir/fig10_relay_multi_ue.cpp.o.d"
  "bench_fig10_relay_multi_ue"
  "bench_fig10_relay_multi_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_relay_multi_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
