# Empty compiler generated dependencies file for bench_fig10_relay_multi_ue.
# This may be replaced when dependencies are built.
