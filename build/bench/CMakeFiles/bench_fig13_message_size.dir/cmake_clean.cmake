file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_message_size.dir/fig13_message_size.cpp.o"
  "CMakeFiles/bench_fig13_message_size.dir/fig13_message_size.cpp.o.d"
  "bench_fig13_message_size"
  "bench_fig13_message_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_message_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
