file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_mixed_apps.dir/extension_mixed_apps.cpp.o"
  "CMakeFiles/bench_extension_mixed_apps.dir/extension_mixed_apps.cpp.o.d"
  "bench_extension_mixed_apps"
  "bench_extension_mixed_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_mixed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
