# Empty dependencies file for bench_extension_mixed_apps.
# This may be replaced when dependencies are built.
