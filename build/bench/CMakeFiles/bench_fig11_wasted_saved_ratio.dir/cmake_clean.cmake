file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_wasted_saved_ratio.dir/fig11_wasted_saved_ratio.cpp.o"
  "CMakeFiles/bench_fig11_wasted_saved_ratio.dir/fig11_wasted_saved_ratio.cpp.o.d"
  "bench_fig11_wasted_saved_ratio"
  "bench_fig11_wasted_saved_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_wasted_saved_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
