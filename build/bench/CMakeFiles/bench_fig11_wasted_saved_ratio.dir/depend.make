# Empty dependencies file for bench_fig11_wasted_saved_ratio.
# This may be replaced when dependencies are built.
