# Empty dependencies file for bench_table4_receive_energy.
# This may be replaced when dependencies are built.
