file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_receive_energy.dir/table4_receive_energy.cpp.o"
  "CMakeFiles/bench_table4_receive_energy.dir/table4_receive_energy.cpp.o.d"
  "bench_table4_receive_energy"
  "bench_table4_receive_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_receive_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
