file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_distance.dir/fig12_distance.cpp.o"
  "CMakeFiles/bench_fig12_distance.dir/fig12_distance.cpp.o.d"
  "bench_fig12_distance"
  "bench_fig12_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
