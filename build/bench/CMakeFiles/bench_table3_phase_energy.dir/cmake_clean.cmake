file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_phase_energy.dir/table3_phase_energy.cpp.o"
  "CMakeFiles/bench_table3_phase_energy.dir/table3_phase_energy.cpp.o.d"
  "bench_table3_phase_energy"
  "bench_table3_phase_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_phase_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
