# Empty compiler generated dependencies file for bench_table3_phase_energy.
# This may be replaced when dependencies are built.
