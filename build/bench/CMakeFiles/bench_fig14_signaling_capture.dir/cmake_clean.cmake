file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_signaling_capture.dir/fig14_signaling_capture.cpp.o"
  "CMakeFiles/bench_fig14_signaling_capture.dir/fig14_signaling_capture.cpp.o.d"
  "bench_fig14_signaling_capture"
  "bench_fig14_signaling_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_signaling_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
