# Empty compiler generated dependencies file for bench_fig14_signaling_capture.
# This may be replaced when dependencies are built.
