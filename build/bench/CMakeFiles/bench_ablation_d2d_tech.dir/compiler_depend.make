# Empty compiler generated dependencies file for bench_ablation_d2d_tech.
# This may be replaced when dependencies are built.
