file(REMOVE_RECURSE
  "CMakeFiles/bench_stress_exodus.dir/stress_exodus.cpp.o"
  "CMakeFiles/bench_stress_exodus.dir/stress_exodus.cpp.o.d"
  "bench_stress_exodus"
  "bench_stress_exodus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress_exodus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
