# Empty compiler generated dependencies file for bench_stress_exodus.
# This may be replaced when dependencies are built.
