# Empty dependencies file for bench_operator_selection.
# This may be replaced when dependencies are built.
