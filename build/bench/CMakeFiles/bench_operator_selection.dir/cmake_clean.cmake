file(REMOVE_RECURSE
  "CMakeFiles/bench_operator_selection.dir/operator_selection.cpp.o"
  "CMakeFiles/bench_operator_selection.dir/operator_selection.cpp.o.d"
  "bench_operator_selection"
  "bench_operator_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operator_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
