# Empty dependencies file for bench_multicell_storm.
# This may be replaced when dependencies are built.
