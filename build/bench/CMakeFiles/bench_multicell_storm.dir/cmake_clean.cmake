file(REMOVE_RECURSE
  "CMakeFiles/bench_multicell_storm.dir/multicell_storm.cpp.o"
  "CMakeFiles/bench_multicell_storm.dir/multicell_storm.cpp.o.d"
  "bench_multicell_storm"
  "bench_multicell_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicell_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
