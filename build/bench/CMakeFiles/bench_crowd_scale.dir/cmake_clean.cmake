file(REMOVE_RECURSE
  "CMakeFiles/bench_crowd_scale.dir/crowd_scale.cpp.o"
  "CMakeFiles/bench_crowd_scale.dir/crowd_scale.cpp.o.d"
  "bench_crowd_scale"
  "bench_crowd_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crowd_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
