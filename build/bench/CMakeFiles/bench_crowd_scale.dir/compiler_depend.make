# Empty compiler generated dependencies file for bench_crowd_scale.
# This may be replaced when dependencies are built.
