file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_current_traces.dir/fig6_7_current_traces.cpp.o"
  "CMakeFiles/bench_fig6_7_current_traces.dir/fig6_7_current_traces.cpp.o.d"
  "bench_fig6_7_current_traces"
  "bench_fig6_7_current_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_current_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
