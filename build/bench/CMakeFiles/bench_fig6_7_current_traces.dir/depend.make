# Empty dependencies file for bench_fig6_7_current_traces.
# This may be replaced when dependencies are built.
