file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_heartbeat_share.dir/table1_heartbeat_share.cpp.o"
  "CMakeFiles/bench_table1_heartbeat_share.dir/table1_heartbeat_share.cpp.o.d"
  "bench_table1_heartbeat_share"
  "bench_table1_heartbeat_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_heartbeat_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
