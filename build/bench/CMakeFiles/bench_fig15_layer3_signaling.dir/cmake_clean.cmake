file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_layer3_signaling.dir/fig15_layer3_signaling.cpp.o"
  "CMakeFiles/bench_fig15_layer3_signaling.dir/fig15_layer3_signaling.cpp.o.d"
  "bench_fig15_layer3_signaling"
  "bench_fig15_layer3_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_layer3_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
