# Empty dependencies file for bench_fig15_layer3_signaling.
# This may be replaced when dependencies are built.
