file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_strategies.dir/baseline_strategies.cpp.o"
  "CMakeFiles/bench_baseline_strategies.dir/baseline_strategies.cpp.o.d"
  "bench_baseline_strategies"
  "bench_baseline_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
