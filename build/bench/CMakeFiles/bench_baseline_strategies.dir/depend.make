# Empty dependencies file for bench_baseline_strategies.
# This may be replaced when dependencies are built.
