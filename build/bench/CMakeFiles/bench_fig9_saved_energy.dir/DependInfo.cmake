
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_saved_energy.cpp" "bench/CMakeFiles/bench_fig9_saved_energy.dir/fig9_saved_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_saved_energy.dir/fig9_saved_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/d2dhb_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/d2dhb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/d2dhb_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/d2d/CMakeFiles/d2dhb_d2d.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/d2dhb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/d2dhb_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/d2dhb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/d2dhb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2dhb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/d2dhb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
