file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_energy_vs_transmissions.dir/fig8_energy_vs_transmissions.cpp.o"
  "CMakeFiles/bench_fig8_energy_vs_transmissions.dir/fig8_energy_vs_transmissions.cpp.o.d"
  "bench_fig8_energy_vs_transmissions"
  "bench_fig8_energy_vs_transmissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_energy_vs_transmissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
