# Empty compiler generated dependencies file for bench_fig8_energy_vs_transmissions.
# This may be replaced when dependencies are built.
