// trace_report — reads the Chrome trace-event JSON the engine profiler
// writes (sim/profiler.hpp, `--trace-out`) and turns it back into the
// numbers a perf investigation starts from: the per-shard straggler
// table, barrier-wait percentiles, and the per-phase drain/execute/
// wait breakdown. Ships as a library (this header) driven by the CLI
// in main.cpp, so tests can exercise the parser and the analysis on
// in-memory traces without shelling out.
//
// The JSON parser here is deliberately minimal and local: the repo's
// common/json is writer-only by design (deterministic exports), and
// the only JSON this tool ever reads is the trace schema we write
// ourselves plus whatever Perfetto-compatible tools emit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace d2dhb::trace_report {

/// One parsed JSON value. Objects keep insertion order (the trace
/// format never relies on key ordering, and sorted maps would be
/// wasted work for a read-once document).
struct JsonValue {
  enum class Type : std::uint8_t { null, boolean, number, string, array,
                                   object };

  Type type{Type::null};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document. Throws std::runtime_error with a
/// byte-offset message on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// One ph:"X" complete event, with the engine-specific args pulled out.
struct TraceEvent {
  std::string name;
  std::int64_t pid{0};
  std::int64_t tid{0};
  double ts_us{0.0};
  double dur_us{0.0};
  /// args.shard for drain/execute events; -1 otherwise.
  std::int64_t shard{-1};
  /// args.events / args.delivered / args.window / args.round.
  std::uint64_t payload{0};
};

/// A loaded trace: the complete events plus what the metadata said.
struct Trace {
  std::size_t workers{0};
  std::size_t shards{0};
  std::size_t metadata_events{0};
  std::vector<TraceEvent> events;
};

/// parse_json + schema extraction. Throws std::runtime_error when the
/// document is not a well-formed trace (see check_trace for the rules).
Trace parse_trace(std::string_view text);

/// Validation verdict for `trace_report --check`.
struct CheckResult {
  bool ok{true};
  std::vector<std::string> errors;
  std::size_t complete_events{0};
  std::size_t metadata_events{0};
};

/// Validates without throwing: the document must parse, be a top-level
/// object with a "traceEvents" array, every element must be an object
/// with a string "ph", and every ph:"X" event must carry a string
/// name, numeric ts/pid/tid, and a numeric non-negative dur. A trace
/// with zero complete events is also an error — an empty trace means
/// the producer was not actually profiling.
CheckResult check_trace(std::string_view text);

/// What the report prints, as data.
struct Report {
  struct ShardRow {
    std::int64_t shard{0};
    double busy_ms{0.0};
    std::uint64_t events{0};
    /// busy / total busy over all shards.
    double share{0.0};
  };

  std::size_t workers{0};
  std::size_t shards{0};
  std::uint64_t windows{0};
  double windowed_ms{0.0};
  double serial_tail_ms{0.0};
  double drain_ms{0.0};
  double execute_ms{0.0};
  double barrier_wait_ms{0.0};
  double window_utilization{0.0};
  double load_imbalance{0.0};
  std::size_t barrier_waits{0};
  double barrier_p50_us{0.0};
  double barrier_p90_us{0.0};
  double barrier_p99_us{0.0};
  double barrier_max_us{0.0};
  std::uint64_t mailbox_delivered{0};
  /// Busiest shard first — the straggler table.
  std::vector<ShardRow> stragglers;
};

/// Computes the report from the worker-side tracks (pid 1); the shard
/// tracks (pid 2) duplicate drain/execute spans for Perfetto's benefit
/// and are ignored here to avoid double counting.
Report analyze(const Trace& trace);

void print_report(const Report& report, std::ostream& os);

}  // namespace d2dhb::trace_report
