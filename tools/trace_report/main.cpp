// trace_report CLI: `trace_report [--check] <trace.json>`.
//
//   trace_report trace.json          print the full run report
//   trace_report --check trace.json  validate only; exit 0/1, errors on
//                                    stderr — the CI trace-smoke gate
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "trace_report/trace_report.hpp"

namespace {

int usage() {
  std::cerr << "usage: trace_report [--check] <trace.json>\n"
            << "  --check  validate the trace schema and exit 0/1 instead\n"
            << "           of printing the report\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_report: unknown flag " << arg << "\n";
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "trace_report: more than one input file\n";
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_report: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  namespace tr = d2dhb::trace_report;
  const tr::CheckResult check = tr::check_trace(text);
  if (!check.ok) {
    for (const std::string& error : check.errors) {
      std::cerr << "trace_report: " << path << ": " << error << "\n";
    }
    return 1;
  }
  if (check_only) {
    std::cout << path << ": ok (" << check.complete_events
              << " complete events, " << check.metadata_events
              << " metadata events)\n";
    return 0;
  }

  const tr::Trace trace = tr::parse_trace(text);
  tr::print_report(tr::analyze(trace), std::cout);
  return 0;
}
