#include "trace_report/trace_report.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "common/table.hpp"

namespace d2dhb::trace_report {

namespace {

/// Recursive-descent JSON reader over one document. Depth-capped so a
/// hostile input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_space();
    JsonValue value;
    switch (peek()) {
      case '{':
        parse_object(value);
        break;
      case '[':
        parse_array(value);
        break;
      case '"':
        value.type = JsonValue::Type::string;
        value.string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::boolean;
        value.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::boolean;
        value.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value.type = JsonValue::Type::null;
        break;
      default:
        value.type = JsonValue::Type::number;
        value.number = parse_number();
        break;
    }
    --depth_;
    return value;
  }

  void parse_object(JsonValue& value) {
    value.type = JsonValue::Type::object;
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(JsonValue& value) {
    value.type = JsonValue::Type::array;
    expect('[');
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      value.array.push_back(parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the basic-multilingual-plane code point
          // (surrogate pairs are not reassembled — trace content is
          // ASCII identifiers, this path exists for well-formedness).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double out = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int depth_{0};
};

const JsonValue* events_array(const JsonValue& root,
                              std::vector<std::string>* errors) {
  auto err = [&](const std::string& what) {
    if (errors != nullptr) errors->push_back(what);
  };
  if (root.type != JsonValue::Type::object) {
    err("top level is not an object");
    return nullptr;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr) {
    err("missing \"traceEvents\"");
    return nullptr;
  }
  if (events->type != JsonValue::Type::array) {
    err("\"traceEvents\" is not an array");
    return nullptr;
  }
  return events;
}

double number_or(const JsonValue& object, std::string_view key,
                 double fallback) {
  const JsonValue* v = object.find(key);
  return v != nullptr && v->type == JsonValue::Type::number ? v->number
                                                            : fallback;
}

/// How many shards the straggler table prints; the rest are summarized
/// by the totals line above it.
constexpr std::size_t kStragglerRows = 12;

/// Nearest-rank percentile over an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

Trace parse_trace(std::string_view text) {
  CheckResult check = check_trace(text);
  if (!check.ok) {
    throw std::runtime_error("not a well-formed trace: " +
                             check.errors.front());
  }
  const JsonValue root = parse_json(text);
  Trace trace;
  if (const JsonValue* other = root.find("otherData")) {
    trace.workers =
        static_cast<std::size_t>(number_or(*other, "workers", 0.0));
    trace.shards = static_cast<std::size_t>(number_or(*other, "shards", 0.0));
  }
  const JsonValue* events = events_array(root, nullptr);
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph->string != "X") {
      ++trace.metadata_events;
      continue;
    }
    TraceEvent out;
    out.name = e.find("name")->string;
    out.pid = static_cast<std::int64_t>(number_or(e, "pid", 0.0));
    out.tid = static_cast<std::int64_t>(number_or(e, "tid", 0.0));
    out.ts_us = number_or(e, "ts", 0.0);
    out.dur_us = number_or(e, "dur", 0.0);
    if (const JsonValue* args = e.find("args")) {
      out.shard = static_cast<std::int64_t>(number_or(*args, "shard", -1.0));
      for (const char* key : {"events", "delivered", "window", "round"}) {
        if (const JsonValue* v = args->find(key)) {
          if (v->type == JsonValue::Type::number && v->number >= 0.0) {
            out.payload = static_cast<std::uint64_t>(v->number);
          }
          break;
        }
      }
    }
    trace.events.push_back(std::move(out));
  }
  return trace;
}

CheckResult check_trace(std::string_view text) {
  CheckResult result;
  auto err = [&result](const std::string& what) {
    result.ok = false;
    if (result.errors.size() < 20) result.errors.push_back(what);
  };
  JsonValue root;
  try {
    root = parse_json(text);
  } catch (const std::runtime_error& e) {
    err(e.what());
    return result;
  }
  std::vector<std::string> shape_errors;
  const JsonValue* events = events_array(root, &shape_errors);
  for (const std::string& e : shape_errors) err(e);
  if (events == nullptr) return result;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (e.type != JsonValue::Type::object) {
      err(at + " is not an object");
      continue;
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::string) {
      err(at + " has no string \"ph\"");
      continue;
    }
    if (ph->string != "X") {
      // Metadata and other phase types pass through unvalidated — the
      // engine only writes M besides X, but foreign tools add more.
      ++result.metadata_events;
      continue;
    }
    const JsonValue* name = e.find("name");
    if (name == nullptr || name->type != JsonValue::Type::string) {
      err(at + " complete event has no string \"name\"");
      continue;
    }
    bool fields_ok = true;
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const JsonValue* v = e.find(key);
      if (v == nullptr || v->type != JsonValue::Type::number) {
        err(at + " complete event has no numeric \"" + key + "\"");
        fields_ok = false;
      }
    }
    if (!fields_ok) continue;
    if (e.find("dur")->number < 0.0) {
      err(at + " has negative duration");
      continue;
    }
    ++result.complete_events;
  }
  if (result.ok && result.complete_events == 0) {
    err("trace has no complete (ph:\"X\") events");
  }
  return result;
}

Report analyze(const Trace& trace) {
  Report report;
  report.workers = trace.workers;
  report.shards = trace.shards;
  std::vector<double> waits_us;
  std::vector<double> shard_busy_us;
  std::vector<std::uint64_t> shard_events;
  auto shard_slot = [&](std::int64_t shard) -> std::size_t {
    const auto index = static_cast<std::size_t>(shard);
    if (index >= shard_busy_us.size()) {
      shard_busy_us.resize(index + 1, 0.0);
      shard_events.resize(index + 1, 0);
    }
    return index;
  };
  for (const TraceEvent& e : trace.events) {
    // Worker-side tracks only: pid 2 duplicates drain/execute spans on
    // the shard tracks, counting those would double every phase total.
    if (e.pid != 1) continue;
    if (e.name == "window") {
      ++report.windows;
      report.windowed_ms += e.dur_us / 1000.0;
    } else if (e.name == "drain") {
      report.drain_ms += e.dur_us / 1000.0;
      report.mailbox_delivered += e.payload;
    } else if (e.name == "execute") {
      report.execute_ms += e.dur_us / 1000.0;
      if (e.shard >= 0) {
        const std::size_t slot = shard_slot(e.shard);
        shard_busy_us[slot] += e.dur_us;
        shard_events[slot] += e.payload;
      }
    } else if (e.name == "barrier-wait") {
      report.barrier_wait_ms += e.dur_us / 1000.0;
      waits_us.push_back(e.dur_us);
    } else if (e.name == "serial-tail") {
      report.serial_tail_ms += e.dur_us / 1000.0;
    }
  }
  report.barrier_waits = waits_us.size();
  std::sort(waits_us.begin(), waits_us.end());
  report.barrier_p50_us = percentile(waits_us, 0.50);
  report.barrier_p90_us = percentile(waits_us, 0.90);
  report.barrier_p99_us = percentile(waits_us, 0.99);
  report.barrier_max_us = waits_us.empty() ? 0.0 : waits_us.back();
  double busy_total = 0.0;
  double busy_max = 0.0;
  for (std::size_t shard = 0; shard < shard_busy_us.size(); ++shard) {
    busy_total += shard_busy_us[shard];
    busy_max = std::max(busy_max, shard_busy_us[shard]);
    report.stragglers.push_back(
        Report::ShardRow{static_cast<std::int64_t>(shard),
                         shard_busy_us[shard] / 1000.0,
                         shard_events[shard], 0.0});
  }
  if (busy_total > 0.0) {
    for (Report::ShardRow& row : report.stragglers) {
      row.share = row.busy_ms * 1000.0 / busy_total;
    }
    const double mean =
        busy_total / static_cast<double>(shard_busy_us.size());
    report.load_imbalance = busy_max / mean;
  }
  std::stable_sort(report.stragglers.begin(), report.stragglers.end(),
                   [](const Report::ShardRow& a, const Report::ShardRow& b) {
                     return a.busy_ms > b.busy_ms;
                   });
  if (report.workers > 0 && report.windowed_ms > 0.0) {
    report.window_utilization =
        (report.drain_ms + report.execute_ms) /
        (report.windowed_ms * static_cast<double>(report.workers));
  }
  return report;
}

void print_report(const Report& report, std::ostream& os) {
  os << "Engine trace: " << report.workers << " worker"
     << (report.workers == 1 ? "" : "s") << ", " << report.shards
     << " shards, " << report.windows << " windows\n"
     << "  windowed " << Table::num(report.windowed_ms, 1)
     << " ms, serial tail " << Table::num(report.serial_tail_ms, 1)
     << " ms\n"
     << "  phases: drain " << Table::num(report.drain_ms, 1)
     << " ms, execute " << Table::num(report.execute_ms, 1)
     << " ms, barrier wait " << Table::num(report.barrier_wait_ms, 1)
     << " ms\n"
     << "  window utilization "
     << Table::num(100.0 * report.window_utilization, 1)
     << "%, load imbalance (max/mean shard busy) "
     << Table::num(report.load_imbalance, 2) << "\n"
     << "  mailbox envelopes drained " << report.mailbox_delivered << "\n"
     << "  barrier waits (us): p50 " << Table::num(report.barrier_p50_us, 0)
     << ", p90 " << Table::num(report.barrier_p90_us, 0) << ", p99 "
     << Table::num(report.barrier_p99_us, 0) << ", max "
     << Table::num(report.barrier_max_us, 0) << " (" << report.barrier_waits
     << " waits)\n\n";
  Table table{{"Shard", "Busy (ms)", "Events", "Share"}};
  const std::size_t rows = std::min<std::size_t>(report.stragglers.size(),
                                                 kStragglerRows);
  for (std::size_t i = 0; i < rows; ++i) {
    const Report::ShardRow& row = report.stragglers[i];
    table.add_row({std::to_string(row.shard), Table::num(row.busy_ms, 2),
                   std::to_string(row.events),
                   Table::num(100.0 * row.share, 1) + "%"});
  }
  os << "Straggler table (busiest " << rows << " of "
     << report.stragglers.size() << " shards):\n";
  table.print(os);
}

}  // namespace d2dhb::trace_report
