// d2dhb_sim — command-line experiment runner.
//
// Runs any of the library's canned experiment families from the shell,
// with the knobs exposed as flags and results printed as tables (CSV via
// D2DHB_CSV_DIR, like the benches).
//
//   d2dhb_sim pair   [--ues N] [--tx K] [--distance M] [--bytes B]
//                    [--period S] [--capacity M] [--lte] [--seed S]
//   d2dhb_sim crowd  [--phones N] [--relay-fraction F] [--area M]
//                    [--duration S] [--mobile] [--policy greedy|random|
//                    density|first-n] [--seed S]
//   d2dhb_sim baselines [--phones N] [--duration S] [--seed S]
//   d2dhb_sim traces
//
// Exit status: 0 on success, 2 on bad usage.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "scenario/baselines.hpp"
#include "scenario/compressed_pair.hpp"
#include "scenario/crowd.hpp"
#include "scenario/probes.hpp"

namespace {

using namespace d2dhb;
using namespace d2dhb::scenario;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <pair|crowd|baselines|traces> [flags]\n"
      << "  pair       relay + N UEs, compressed-period methodology\n"
      << "    --ues N --tx K --distance M --bytes B --period S\n"
      << "    --capacity M --lte --seed S\n"
      << "  crowd      clustered crowd, real heartbeat periods\n"
      << "    --phones N --relay-fraction F --area M --duration S\n"
      << "    --mobile --policy greedy|random|density|first-n --seed S\n"
      << "  baselines  related-work strategy comparison\n"
      << "    --phones N --duration S --seed S\n"
      << "  traces     Fig. 6/7 current traces\n";
  std::exit(2);
}

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> value(const std::string& name) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        used_[i] = used_[i + 1] = true;
        return args_[i + 1];
      }
    }
    return std::nullopt;
  }

  double number(const std::string& name, double fallback) {
    const auto v = value(name);
    return v ? std::stod(*v) : fallback;
  }

  /// Complains about anything not consumed. Returns false on leftovers.
  bool check(const char* argv0) {
    bool ok = true;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!used_.contains(i) && args_[i].rfind("--", 0) == 0) {
        std::cerr << "unknown flag: " << args_[i] << '\n';
        ok = false;
      }
    }
    if (!ok) usage(argv0);
    return ok;
  }

 private:
  std::vector<std::string> args_;
  std::map<std::size_t, bool> used_;
};

int run_pair(Flags& flags, const char* argv0) {
  CompressedPairConfig config;
  config.num_ues = static_cast<std::size_t>(flags.number("--ues", 1));
  config.transmissions = static_cast<std::size_t>(flags.number("--tx", 8));
  config.ue_distance_m = flags.number("--distance", 1.0);
  config.heartbeat_bytes =
      static_cast<std::uint32_t>(flags.number("--bytes", 54));
  config.period_s = flags.number("--period", 20.0);
  config.capacity = static_cast<std::size_t>(flags.number("--capacity", 7));
  config.use_lte = flags.has("--lte");
  config.seed = static_cast<std::uint64_t>(flags.number("--seed", 1));
  flags.check(argv0);

  const PairMetrics d2d = run_d2d_pair(config);
  const PairMetrics orig = run_original_pair(config);
  const Savings s = compare(orig, d2d);

  Table table{{"Metric", "Original", "D2D framework"}};
  table.add_row({"System radio energy (uAh)", Table::num(orig.system_uah, 0),
                 Table::num(d2d.system_uah, 0)});
  table.add_row({"UE radio energy (uAh)", Table::num(orig.ue_uah_total, 0),
                 Table::num(d2d.ue_uah_total, 0)});
  table.add_row({"Relay radio energy (uAh)", Table::num(orig.relay_uah, 0),
                 Table::num(d2d.relay_uah, 0)});
  table.add_row({"Layer-3 messages", std::to_string(orig.system_l3),
                 std::to_string(d2d.system_l3)});
  table.add_row({"Cellular bundles", std::to_string(orig.bundles),
                 std::to_string(d2d.bundles)});
  table.add_row({"Heartbeats delivered",
                 std::to_string(orig.server.delivered),
                 std::to_string(d2d.server.delivered)});
  table.add_row({"Late / offline",
                 std::to_string(orig.server.late) + " / " +
                     std::to_string(orig.server.offline_events),
                 std::to_string(d2d.server.late) + " / " +
                     std::to_string(d2d.server.offline_events)});
  table.print(std::cout);
  std::cout << "\nSavings: system energy "
            << Table::num(100 * s.system_energy_fraction, 1)
            << "%, UE energy " << Table::num(100 * s.ue_energy_fraction, 1)
            << "%, signaling "
            << Table::num(100 * s.signaling_fraction, 1) << "%\n";
  return 0;
}

int run_crowd(Flags& flags, const char* argv0) {
  CrowdConfig config;
  config.phones = static_cast<std::size_t>(flags.number("--phones", 48));
  config.relay_fraction = flags.number("--relay-fraction", 0.2);
  config.area_m = flags.number("--area", 100.0);
  config.duration_s = flags.number("--duration", 3600.0);
  config.mobile = flags.has("--mobile");
  config.seed = static_cast<std::uint64_t>(flags.number("--seed", 7));
  if (const auto policy = flags.value("--policy")) {
    if (*policy == "greedy") {
      config.operator_policy = core::SelectionPolicy::coverage_greedy;
    } else if (*policy == "random") {
      config.operator_policy = core::SelectionPolicy::random;
    } else if (*policy == "density") {
      config.operator_policy = core::SelectionPolicy::density;
    } else if (*policy == "first-n") {
      config.operator_policy.reset();
    } else {
      std::cerr << "unknown --policy: " << *policy << '\n';
      usage(argv0);
    }
  }
  flags.check(argv0);

  const CrowdMetrics d2d = run_d2d_crowd(config);
  const CrowdMetrics orig = run_original_crowd(config);

  Table table{{"Metric", "Original", "D2D framework"}};
  table.add_row({"Phones / relays",
                 std::to_string(config.phones) + " / 0",
                 std::to_string(config.phones) + " / " +
                     std::to_string(d2d.relays)});
  table.add_row({"Layer-3 messages", std::to_string(orig.total_l3),
                 std::to_string(d2d.total_l3)});
  table.add_row({"Peak L3 / 10 s", std::to_string(orig.peak_l3_per_10s),
                 std::to_string(d2d.peak_l3_per_10s)});
  table.add_row({"Fleet radio energy (uAh)",
                 Table::num(orig.total_radio_uah, 0),
                 Table::num(d2d.total_radio_uah, 0)});
  table.add_row({"Heartbeats delivered",
                 std::to_string(orig.heartbeats_delivered),
                 std::to_string(d2d.heartbeats_delivered)});
  table.add_row({"Forwarded via D2D", "0",
                 std::to_string(d2d.forwarded_via_d2d)});
  table.add_row({"Fallbacks / link losses", "0 / 0",
                 std::to_string(d2d.fallbacks) + " / " +
                     std::to_string(d2d.link_losses)});
  table.add_row({"Offline events", std::to_string(orig.server.offline_events),
                 std::to_string(d2d.server.offline_events)});
  table.add_row({"Relay credits issued", "0",
                 Table::num(d2d.credits_issued, 0)});
  table.print(std::cout);
  if (config.operator_policy.has_value()) {
    std::cout << "\nOperator relay coverage: "
              << Table::num(100 * d2d.relay_coverage, 1) << "%\n";
  }
  return 0;
}

int run_baselines(Flags& flags, const char* argv0) {
  BaselineConfig config;
  config.phones = static_cast<std::size_t>(flags.number("--phones", 12));
  config.duration_s = flags.number("--duration", 3600.0);
  config.seed = static_cast<std::uint64_t>(flags.number("--seed", 21));
  flags.check(argv0);

  Table table{{"Strategy", "L3 msgs", "Radio uAh", "Mean delay (s)",
               "Offline detect (s)", "Notes"}};
  for (const StrategyMetrics& s : run_all_strategies(config)) {
    table.add_row({s.name, std::to_string(s.total_l3),
                   Table::num(s.total_radio_uah, 0),
                   Table::num(s.mean_latency_s, 1),
                   Table::num(s.offline_detection_s, 0), s.note});
  }
  table.print(std::cout);
  return 0;
}

int run_traces(Flags& flags, const char* argv0) {
  flags.check(argv0);
  const TraceResult d2d = trace_d2d_transfer();
  const TraceResult cell = trace_cellular_transfer();
  AsciiChart chart{"Current traces (0.1 s sampling)", "time (s)",
                   "current (mA)"};
  chart.add(d2d.series);
  Series shifted = cell.series;
  chart.add(shifted);
  chart.print(std::cout);
  std::cout << "D2D: peak " << Table::num(d2d.peak_ma, 0) << " mA, "
            << Table::num(d2d.charge_uah, 1) << " uAh; cellular: peak "
            << Table::num(cell.peak_ma, 0) << " mA, "
            << Table::num(cell.charge_uah, 1) << " uAh\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string mode = argv[1];
  Flags flags{argc, argv, 2};
  if (mode == "pair") return run_pair(flags, argv[0]);
  if (mode == "crowd") return run_crowd(flags, argv[0]);
  if (mode == "baselines") return run_baselines(flags, argv[0]);
  if (mode == "traces") return run_traces(flags, argv[0]);
  usage(argv[0]);
}
