// d2dhb_sim — command-line experiment runner.
//
// Runs any of the library's canned experiment families from the shell,
// with the knobs exposed as flags and results printed as tables (CSV via
// D2DHB_CSV_DIR, like the benches). Independent runs (the two system
// arms, the seed matrix) execute in parallel through the runner library;
// that job-level thread count comes from D2DHB_THREADS or the hardware.
// For crowd, --threads instead sets the engine worker threads INSIDE
// each simulation (sim::RunOptions::threads) — results are byte-
// identical for any value.
//
//   d2dhb_sim pair   [--ues N] [--tx K] [--distance M] [--bytes B]
//                    [--period S] [--capacity M] [--lte] [--seed S]
//   d2dhb_sim crowd  [--phones N] [--relay-fraction F] [--area M]
//                    [--duration S] [--mobile] [--policy greedy|random|
//                    density|first-n] [--seed S] [--seeds N] [--threads T]
//                    [--city (the city preset, below)]
//   d2dhb_sim city   [--phones N] [--relay-fraction F] [--duration S]
//                    [--threads T] [--phones-per-cell N] [--heap-agents]
//                    [--seed S]
//   d2dhb_sim baselines [--phones N] [--duration S] [--seed S]
//   d2dhb_sim traces
//
// Exit status: 0 on success, 2 on bad usage.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "metrics/export.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/sweep_runner.hpp"
#include "scenario/baselines.hpp"
#include "scenario/city.hpp"
#include "scenario/compressed_pair.hpp"
#include "scenario/crowd.hpp"
#include "scenario/crowd_cli.hpp"
#include "scenario/probes.hpp"
#include "sim/profiler.hpp"

namespace {

using namespace d2dhb;
using namespace d2dhb::scenario;

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " <pair|crowd|city|baselines|traces> [flags]\n"
      << "  pair       relay + N UEs, compressed-period methodology\n"
      << "    --ues N --tx K --distance M --bytes B --period S\n"
      << "    --capacity M --lte --seed S\n"
      << "  crowd      clustered crowd, real heartbeat periods\n"
      << crowd_flags_help()
      << "    --seeds N (run N seeds starting at --seed, aggregated)\n"
      << "    --city (switch to the city preset below)\n"
      << "  city       city-scale crowd (100k-1M phones, multicell,\n"
      << "             strip-streamed construction, aggregate metrics)\n"
      << "    --phones N --relay-fraction F --duration S --threads T\n"
      << "    --phones-per-cell N --heap-agents --seed S\n"
      << "  baselines  related-work strategy comparison\n"
      << "    --phones N --duration S --seed S --threads T\n"
      << "  traces     Fig. 6/7 current traces\n"
      << "  pair/crowd/baselines also take --metrics-out PATH (full\n"
      << "  registry snapshot per arm; .csv extension switches to CSV)\n"
      << "  crowd/city also take --profile (engine runtime spans,\n"
      << "  summary printed after the run) and --trace-out PATH\n"
      << "  (Chrome trace-event JSON for Perfetto / chrome://tracing;\n"
      << "  implies --profile; check or summarize it with trace_report)\n";
  std::exit(2);
}

/// Human summary of a profiled run — the quick look before opening the
/// trace in Perfetto or running trace_report on it.
void print_profile_summary(const sim::ProfileSummary& p) {
  auto s = [](std::uint64_t ns) {
    return Table::num(static_cast<double>(ns) / 1e9, 3);
  };
  std::cout << "\nEngine profile: " << p.workers << " worker"
            << (p.workers == 1 ? "" : "s") << ", " << p.windows
            << " windows\n"
            << "  wall " << s(p.wall_ns) << " s (windowed "
            << s(p.windowed_ns) << " s, serial tail "
            << s(p.serial_tail_ns) << " s)\n"
            << "  drain " << s(p.drain_ns) << " s, execute "
            << s(p.execute_ns) << " s, barrier wait "
            << s(p.barrier_wait_ns) << " s\n"
            << "  window utilization "
            << Table::num(100.0 * p.window_utilization, 1)
            << "%, load imbalance " << Table::num(p.load_imbalance, 2)
            << "\n  barrier waits (us): p50 "
            << Table::num(p.barrier_wait_p50_us, 0) << ", p90 "
            << Table::num(p.barrier_wait_p90_us, 0) << ", p99 "
            << Table::num(p.barrier_wait_p99_us, 0) << ", max "
            << Table::num(p.barrier_wait_max_us, 0) << " ("
            << p.barrier_waits << " waits)\n";
}

/// Writes the Chrome trace when --trace-out was given.
void maybe_write_trace(const std::optional<std::string>& path,
                       const sim::Profiler& profiler) {
  if (!path) return;
  if (profiler.write_chrome_trace_file(*path)) {
    std::cout << "trace written to " << *path
              << " (Perfetto / chrome://tracing; see trace_report)\n";
  }
}

/// Complains about any flag no parser consumed, then exits via usage().
void check(const CliFlags& flags, const char* argv0) {
  const auto left = flags.leftover();
  for (const std::string& flag : left) {
    std::cerr << "unknown flag: " << flag << '\n';
  }
  if (!left.empty()) usage(argv0);
}

/// Writes the per-arm snapshot report when --metrics-out was given.
void maybe_write_metrics(const std::optional<std::string>& path,
                         const metrics::NamedSnapshots& sections) {
  if (!path) return;
  if (metrics::write_report(sections, *path)) {
    std::cout << "metrics written to " << *path << '\n';
  }
}

int run_pair(CliFlags& flags, const char* argv0) {
  CompressedPairConfig config;
  config.num_ues = static_cast<std::size_t>(flags.number("--ues", 1));
  config.transmissions = static_cast<std::size_t>(flags.number("--tx", 8));
  config.ue_distance_m = flags.number("--distance", 1.0);
  config.heartbeat_bytes =
      static_cast<std::uint32_t>(flags.number("--bytes", 54));
  config.period_s = flags.number("--period", 20.0);
  config.capacity = static_cast<std::size_t>(flags.number("--capacity", 7));
  config.use_lte = flags.has("--lte");
  config.seed = static_cast<std::uint64_t>(flags.number("--seed", 1));
  const auto metrics_out = flags.value("--metrics-out");
  check(flags, argv0);

  // The two arms are independent simulations; run them as parallel jobs.
  const runner::ExperimentRunner arms;
  const auto cells = arms.run_jobs(2, [&](std::size_t i) {
    return i == 0 ? run_original_pair(config) : run_d2d_pair(config);
  });
  const PairMetrics& orig = cells[0];
  const PairMetrics& d2d = cells[1];
  const Savings s = compare(orig, d2d);

  Table table{{"Metric", "Original", "D2D framework"}};
  table.add_row({"System radio energy (uAh)", Table::num(orig.system_uah, 0),
                 Table::num(d2d.system_uah, 0)});
  table.add_row({"UE radio energy (uAh)", Table::num(orig.ue_uah_total, 0),
                 Table::num(d2d.ue_uah_total, 0)});
  table.add_row({"Relay radio energy (uAh)", Table::num(orig.relay_uah, 0),
                 Table::num(d2d.relay_uah, 0)});
  table.add_row({"Layer-3 messages", std::to_string(orig.system_l3),
                 std::to_string(d2d.system_l3)});
  table.add_row({"Cellular bundles", std::to_string(orig.bundles),
                 std::to_string(d2d.bundles)});
  table.add_row({"Heartbeats delivered",
                 std::to_string(orig.server.delivered),
                 std::to_string(d2d.server.delivered)});
  table.add_row({"Late / offline",
                 std::to_string(orig.server.late) + " / " +
                     std::to_string(orig.server.offline_events),
                 std::to_string(d2d.server.late) + " / " +
                     std::to_string(d2d.server.offline_events)});
  table.print(std::cout);
  std::cout << "\nSavings: system energy "
            << Table::num(100 * s.system_energy_fraction, 1)
            << "%, UE energy " << Table::num(100 * s.ue_energy_fraction, 1)
            << "%, signaling "
            << Table::num(100 * s.signaling_fraction, 1) << "%\n";
  maybe_write_metrics(metrics_out,
                      {{"original", orig.metrics}, {"d2d", d2d.metrics}});
  return 0;
}

/// The city preset: one arm, aggregate counters only (no registry
/// snapshot — see scenario/city.hpp).
int run_city_mode(CliFlags& flags, const char* argv0) {
  CityConfig config;
  config.phones = static_cast<std::size_t>(
      flags.number("--phones", static_cast<double>(config.phones)));
  config.relay_fraction =
      flags.number("--relay-fraction", config.relay_fraction);
  config.duration_s = flags.number("--duration", config.duration_s);
  config.threads = static_cast<std::size_t>(
      flags.number("--threads", static_cast<double>(config.threads)));
  config.phones_per_cell = static_cast<std::size_t>(flags.number(
      "--phones-per-cell", static_cast<double>(config.phones_per_cell)));
  config.heap_agents = flags.has("--heap-agents");
  config.profile = flags.has("--profile");
  const auto trace_out = flags.value("--trace-out");
  config.seed = static_cast<std::uint64_t>(
      flags.number("--seed", static_cast<double>(config.seed)));
  check(flags, argv0);

  // --trace-out needs the merged spans after the run, so the driver
  // owns the recorder (a bare --profile would also work through the
  // engine's run-local one, but one code path is plenty here).
  sim::Profiler profiler;
  const bool profiled = config.profile || trace_out.has_value();
  if (profiled) config.profiler = &profiler;

  const CityMetrics m = run_city_crowd(config);
  Table table{{"Metric", "Value"}};
  table.add_row({"Phones / relays", std::to_string(m.phones) + " / " +
                                        std::to_string(m.relays)});
  table.add_row({"Cells / strips", std::to_string(m.cells) + " / " +
                                       std::to_string(m.strips)});
  table.add_row({"Layer-3 messages", std::to_string(m.total_l3)});
  table.add_row({"Peak L3 / 10 s", std::to_string(m.peak_l3_per_10s)});
  table.add_row(
      {"Heartbeats delivered", std::to_string(m.heartbeats_delivered)});
  table.add_row({"Forwarded via D2D", std::to_string(m.forwarded_via_d2d)});
  table.add_row({"Fallbacks", std::to_string(m.fallbacks)});
  table.add_row({"Sim events", std::to_string(m.sim_events)});
  table.add_row({"Cross-shard posted",
                 std::to_string(m.cross_shard_posted)});
  table.add_row({"Arena bytes (alloc/reserved)",
                 std::to_string(m.arena_bytes_allocated) + " / " +
                     std::to_string(m.arena_bytes_reserved)});
  table.add_row({"Arena objects", std::to_string(m.arena_objects)});
  table.add_row({"Peak RSS (MB)",
                 std::to_string(m.peak_rss_bytes / (1024 * 1024))});
  table.print(std::cout);
  if (profiled) {
    print_profile_summary(m.profile);
    maybe_write_trace(trace_out, profiler);
  }
  return 0;
}

/// Both arms of one crowd run under the same layout seed.
struct CrowdCell {
  CrowdMetrics d2d;
  CrowdMetrics orig;
};

int run_crowd(CliFlags& flags, const char* argv0) {
  // The city preset rides on the crowd mode as a flag, too.
  if (flags.has("--city")) return run_city_mode(flags, argv0);
  CrowdConfig config;
  config.phones = 48;
  config.area_m = 100.0;
  if (const std::string error = apply_crowd_flags(flags, config);
      !error.empty()) {
    std::cerr << error << '\n';
    usage(argv0);
  }
  const auto seed_count =
      static_cast<std::size_t>(flags.number("--seeds", 1));
  const auto metrics_out = flags.value("--metrics-out");
  const auto trace_out = flags.value("--trace-out");
  check(flags, argv0);
  if (seed_count == 0) {
    std::cerr << "--seeds must be >= 1\n";
    usage(argv0);
  }
  if (trace_out) config.profile = true;
  if (config.profile && seed_count > 1) {
    std::cerr << "--profile/--trace-out record one run; use --seeds 1\n";
    usage(argv0);
  }

  if (seed_count > 1) {
    // Seed matrix: aggregate both arms across layouts.
    runner::SweepRunner<CrowdConfig, CrowdCell> sweep(
        [](const CrowdConfig& base, std::uint64_t seed) {
          CrowdConfig cfg = base;
          cfg.seed = seed;
          return CrowdCell{run_d2d_crowd(cfg), run_original_crowd(cfg)};
        });
    // Job parallelism across seeds stays with the runner's default
    // (D2DHB_THREADS or hardware); --threads was consumed above into
    // config.threads — engine workers inside each simulation.
    sweep.point(std::to_string(config.phones) + " phones", config)
        .seeds(runner::seed_range(config.seed, seed_count))
        .metric("signaling saved",
                [](const CrowdCell& c) {
                  return 1.0 - static_cast<double>(c.d2d.total_l3) /
                                   static_cast<double>(c.orig.total_l3);
                })
        .metric("energy saved",
                [](const CrowdCell& c) {
                  return 1.0 - c.d2d.total_radio_uah / c.orig.total_radio_uah;
                })
        .metric("D2D L3 msgs",
                [](const CrowdCell& c) {
                  return static_cast<double>(c.d2d.total_l3);
                })
        .metric("peak L3/10s",
                [](const CrowdCell& c) {
                  return static_cast<double>(c.d2d.peak_l3_per_10s);
                })
        .metric("fallbacks",
                [](const CrowdCell& c) {
                  return static_cast<double>(c.d2d.fallbacks);
                })
        .metric("offline events",
                [](const CrowdCell& c) {
                  return static_cast<double>(c.d2d.server.offline_events);
                })
        .snapshot([](const CrowdCell& c) { return c.d2d.metrics; });
    std::cout << "Crowd sweep: " << seed_count << " seeds from "
              << config.seed << "\n";
    const auto result = sweep.run();
    result.table().print(std::cout);
    if (metrics_out) {
      // D2D arm merged across seeds via the runner's aggregation; the
      // original arm merged the same way by hand (one snapshot hook per
      // sweep, and the cells carry both arms).
      std::vector<metrics::Snapshot> orig_parts;
      for (const CrowdCell& cell : result.cells.at(0)) {
        orig_parts.push_back(cell.orig.metrics);
      }
      maybe_write_metrics(metrics_out,
                          {{"original", metrics::merge(orig_parts)},
                           {"d2d", result.merged_snapshot(0)}});
    }
    return 0;
  }

  sim::Profiler profiler;
  CrowdMetrics orig;
  CrowdMetrics d2d;
  if (config.profile) {
    // Profiled: arms run sequentially — concurrent arm jobs would
    // pollute the profiled arm's wall-clock spans — and only the d2d
    // arm (the headline) carries the recorder.
    CrowdConfig orig_config = config;
    orig_config.profile = false;
    orig = run_original_crowd(orig_config);
    config.profiler = &profiler;
    d2d = run_d2d_crowd(config);
  } else {
    const runner::ExperimentRunner arms;
    auto cells = arms.run_jobs(2, [&](std::size_t i) {
      return i == 0 ? run_original_crowd(config) : run_d2d_crowd(config);
    });
    orig = std::move(cells[0]);
    d2d = std::move(cells[1]);
  }

  Table table{{"Metric", "Original", "D2D framework"}};
  table.add_row({"Phones / relays",
                 std::to_string(config.phones) + " / 0",
                 std::to_string(config.phones) + " / " +
                     std::to_string(d2d.relays)});
  table.add_row({"Layer-3 messages", std::to_string(orig.total_l3),
                 std::to_string(d2d.total_l3)});
  table.add_row({"Peak L3 / 10 s", std::to_string(orig.peak_l3_per_10s),
                 std::to_string(d2d.peak_l3_per_10s)});
  table.add_row({"Fleet radio energy (uAh)",
                 Table::num(orig.total_radio_uah, 0),
                 Table::num(d2d.total_radio_uah, 0)});
  table.add_row({"Heartbeats delivered",
                 std::to_string(orig.heartbeats_delivered),
                 std::to_string(d2d.heartbeats_delivered)});
  table.add_row({"Forwarded via D2D", "0",
                 std::to_string(d2d.forwarded_via_d2d)});
  table.add_row({"Fallbacks / link losses", "0 / 0",
                 std::to_string(d2d.fallbacks) + " / " +
                     std::to_string(d2d.link_losses)});
  table.add_row({"Offline events", std::to_string(orig.server.offline_events),
                 std::to_string(d2d.server.offline_events)});
  table.add_row({"Relay credits issued", "0",
                 Table::num(d2d.credits_issued, 0)});
  table.print(std::cout);
  if (config.operator_policy.has_value()) {
    std::cout << "\nOperator relay coverage: "
              << Table::num(100 * d2d.relay_coverage, 1) << "%\n";
  }
  if (config.profile) {
    print_profile_summary(d2d.profile);
    maybe_write_trace(trace_out, profiler);
  }
  maybe_write_metrics(metrics_out,
                      {{"original", orig.metrics}, {"d2d", d2d.metrics}});
  return 0;
}

int run_baselines(CliFlags& flags, const char* argv0) {
  BaselineConfig config;
  config.phones = static_cast<std::size_t>(flags.number("--phones", 12));
  config.duration_s = flags.number("--duration", 3600.0);
  config.seed = static_cast<std::uint64_t>(flags.number("--seed", 21));
  const auto threads =
      static_cast<std::size_t>(flags.number("--threads", 0));
  const auto metrics_out = flags.value("--metrics-out");
  check(flags, argv0);

  // Each strategy arm is an independent simulation — parallel jobs.
  using StrategyFn = StrategyMetrics (*)(const BaselineConfig&);
  const StrategyFn arms[] = {
      run_baseline_original,
      +[](const BaselineConfig& c) {
        return run_baseline_period_extension(c, 2.0);
      },
      run_baseline_piggyback,
      run_baseline_fast_dormancy,
      run_d2d_framework_arm,
  };
  const runner::ExperimentRunner runner{threads};
  const auto strategies = runner.run_jobs(
      std::size(arms), [&](std::size_t i) { return arms[i](config); });

  Table table{{"Strategy", "L3 msgs", "Radio uAh", "Mean delay (s)",
               "Offline detect (s)", "Notes"}};
  for (const StrategyMetrics& s : strategies) {
    table.add_row({s.name, std::to_string(s.total_l3),
                   Table::num(s.total_radio_uah, 0),
                   Table::num(s.mean_latency_s, 1),
                   Table::num(s.offline_detection_s, 0), s.note});
  }
  table.print(std::cout);
  if (metrics_out) {
    metrics::NamedSnapshots sections;
    for (const StrategyMetrics& s : strategies) {
      sections.emplace_back(s.name, s.metrics);
    }
    maybe_write_metrics(metrics_out, sections);
  }
  return 0;
}

int run_traces(CliFlags& flags, const char* argv0) {
  check(flags, argv0);
  const TraceResult d2d = trace_d2d_transfer();
  const TraceResult cell = trace_cellular_transfer();
  AsciiChart chart{"Current traces (0.1 s sampling)", "time (s)",
                   "current (mA)"};
  chart.add(d2d.series);
  Series shifted = cell.series;
  chart.add(shifted);
  chart.print(std::cout);
  std::cout << "D2D: peak " << Table::num(d2d.peak_ma, 0) << " mA, "
            << Table::num(d2d.charge_uah, 1) << " uAh; cellular: peak "
            << Table::num(cell.peak_ma, 0) << " mA, "
            << Table::num(cell.charge_uah, 1) << " uAh\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string mode = argv[1];
  CliFlags flags{argc, argv, 2};
  if (mode == "pair") return run_pair(flags, argv[0]);
  if (mode == "crowd") return run_crowd(flags, argv[0]);
  if (mode == "city") return run_city_mode(flags, argv[0]);
  if (mode == "baselines") return run_baselines(flags, argv[0]);
  if (mode == "traces") return run_traces(flags, argv[0]);
  usage(argv[0]);
}
