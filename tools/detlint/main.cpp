// detlint CLI. Scans the given files/directories for determinism
// hazards and exits non-zero when findings remain after suppressions —
// the shape CI gates want. See detlint.hpp for the rule set.
//
//   detlint [--allowlist FILE] [--report FILE] [--list-rules]
//           [--prune-allowlist] PATH...
//
// Exit codes: 0 clean, 1 findings (or, under --prune-allowlist, stale
// suppressions), 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

int usage(std::ostream& os) {
  os << "usage: detlint [--allowlist FILE] [--report FILE] [--list-rules]\n"
        "               [--prune-allowlist] PATH...\n"
        "Scans C++ sources under each PATH for determinism hazards.\n"
        "  --allowlist FILE   per-file rule exemptions (rule-id path-glob)\n"
        "  --report FILE      also write findings (one per line) to FILE\n"
        "  --list-rules       print the rule table and exit\n"
        "  --prune-allowlist  report allowlist entries and inline allow()\n"
        "                     annotations that exempt no finding; exit 1\n"
        "                     when stale suppressions exist\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace d2dhb::detlint;

  Options options;
  std::string report_path;
  bool prune = false;
  std::vector<std::filesystem::path> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : rules()) {
        std::cout << rule.id << "  " << rule.summary << '\n';
      }
      return 0;
    }
    if (arg == "--allowlist") {
      if (++i >= argc) return usage(std::cerr);
      try {
        Options loaded = load_allowlist(argv[i]);
        options.allowlist.insert(options.allowlist.end(),
                                 loaded.allowlist.begin(),
                                 loaded.allowlist.end());
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
      }
      continue;
    }
    if (arg == "--report") {
      if (++i >= argc) return usage(std::cerr);
      report_path = argv[i];
      continue;
    }
    if (arg == "--prune-allowlist") {
      prune = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option " << arg << '\n';
      return usage(std::cerr);
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) return usage(std::cerr);

  std::vector<Finding> findings;
  Usage used;
  try {
    findings = scan_paths(paths, options, prune ? &used : nullptr);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  if (prune) {
    // Staleness mode: the findings themselves are not the output —
    // suppressions that exempted none of them are.
    const std::vector<StaleAllow> stale = used.stale(options);
    for (const StaleAllow& s : stale) {
      std::cout << s.file << ":" << s.line << ": stale: " << s.detail << '\n';
    }
    std::cout << "detlint: " << stale.size() << " stale suppression"
              << (stale.size() == 1 ? "" : "s") << '\n';
    if (!report_path.empty()) {
      std::ofstream report(report_path);
      if (!report) {
        std::cerr << "detlint: cannot write report " << report_path << '\n';
        return 2;
      }
      for (const StaleAllow& s : stale) {
        report << s.file << ":" << s.line << ": stale: " << s.detail << '\n';
      }
    }
    return stale.empty() ? 0 : 1;
  }

  for (const Finding& f : findings) std::cout << f.to_string() << '\n';
  std::cout << "detlint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << '\n';

  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "detlint: cannot write report " << report_path << '\n';
      return 2;
    }
    for (const Finding& f : findings) report << f.to_string() << '\n';
    report << "detlint: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << '\n';
  }

  return findings.empty() ? 0 : 1;
}
