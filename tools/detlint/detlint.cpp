#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace d2dhb::detlint {

namespace {

constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kUnorderedState = "unordered-state";
constexpr const char* kWallClock = "wall-clock";
constexpr const char* kLibcRand = "libc-rand";
constexpr const char* kRandomDevice = "random-device";
constexpr const char* kStdRng = "std-rng";
constexpr const char* kPtrKey = "ptr-key";
constexpr const char* kFloatAccum = "float-accum";
constexpr const char* kAllowNoReason = "allow-no-reason";
constexpr const char* kCrossStrip = "cross-strip-access";
constexpr const char* kArenaEscape = "arena-escape";
constexpr const char* kMailboxHorizon = "mailbox-horizon";
constexpr const char* kLaneMix = "lane-mix";

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the token at `pos` is reached through a member or
/// qualifier (`x.token`, `x->token`, `x::token`) — except the `std::`
/// qualifier, which still names the global hazard.
bool member_qualified(const std::string& s, std::size_t pos) {
  if (pos == 0) return false;
  const char prev = s[pos - 1];
  if (prev == '.' || prev == '>') return true;
  if (prev == ':') {
    return !(pos >= 5 && s.compare(pos - 5, 5, "std::") == 0);
  }
  return false;
}

/// Whole-word occurrence check: `source[pos..]` starts with `token` and
/// neither neighbour is a word character.
bool word_at(const std::string& s, std::size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_word(s[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < s.size() && is_word(s[end])) return false;
  return true;
}

/// All whole-word occurrences of `token` in `s`.
std::vector<std::size_t> word_positions(const std::string& s,
                                        const std::string& token) {
  std::vector<std::size_t> out;
  for (std::size_t pos = s.find(token); pos != std::string::npos;
       pos = s.find(token, pos + 1)) {
    if (word_at(s, pos, token)) out.push_back(pos);
  }
  return out;
}

/// True when the '"' at `quote` opens a raw string literal: preceded by
/// `R` with an optional encoding prefix (u8/u/L/U), and the prefix is
/// not the tail of a longer identifier (`FOOR"..."` is not raw).
bool raw_literal_at(const std::string& s, std::size_t quote) {
  if (quote == 0 || s[quote - 1] != 'R') return false;
  std::size_t begin = quote - 1;  // index of 'R'
  if (begin > 0) {
    if (s[begin - 1] == '8' && begin > 1 && s[begin - 2] == 'u') {
      begin -= 2;
    } else if (s[begin - 1] == 'u' || s[begin - 1] == 'L' ||
               s[begin - 1] == 'U') {
      begin -= 1;
    }
  }
  return begin == 0 || !is_word(s[begin - 1]);
}

/// Strips // and /* */ comments plus string and char literals —
/// including raw strings (`R"delim(...)delim"`) and backslash-newline
/// continued line comments — replacing them with spaces so offsets and
/// line numbers survive.
std::string strip_comments_and_strings(const std::string& source,
                                       std::string* kinds = nullptr) {
  std::string out = source;
  if (kinds != nullptr) kinds->assign(source.size(), 'c');
  const auto mark = [kinds](std::size_t at, char kind) {
    if (kinds != nullptr) (*kinds)[at] = kind;
  };
  enum class State { code, line_comment, block_comment, string, chr };
  State state = State::code;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out[i] = ' ';
          mark(i, 'm');
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out[i] = ' ';
          mark(i, 'm');
        } else if (c == '"' && raw_literal_at(source, i)) {
          // Raw string: everything through `)delim"` is literal text —
          // no escapes, quotes don't close it. A malformed delimiter
          // (too long, or holding a forbidden character) falls back to
          // the ordinary string scanner, like a compiler would reject.
          const std::size_t open = source.find('(', i + 1);
          const bool delim_ok =
              open != std::string::npos && open - i - 1 <= 16 &&
              [&] {
                for (std::size_t j = i + 1; j < open; ++j) {
                  const char d = source[j];
                  if (std::isspace(static_cast<unsigned char>(d)) != 0 ||
                      d == ')' || d == '\\' || d == '"') {
                    return false;
                  }
                }
                return true;
              }();
          if (!delim_ok) {
            state = State::string;
            out[i] = ' ';
            break;
          }
          const std::string terminator =
              ")" + source.substr(i + 1, open - i - 1) + "\"";
          const std::size_t close = source.find(terminator, open + 1);
          const std::size_t stop = close == std::string::npos
                                       ? source.size()
                                       : close + terminator.size();
          for (std::size_t j = i; j < stop; ++j) {
            if (out[j] != '\n') {
              out[j] = ' ';
              mark(j, 's');
            }
          }
          i = stop - 1;  // resume in code state after the literal
        } else if (c == '"') {
          state = State::string;
          out[i] = ' ';
          mark(i, 's');
        } else if (c == '\'') {
          state = State::chr;
          out[i] = ' ';
          mark(i, 's');
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          // A backslash-newline splice keeps the comment going on the
          // next physical line. Consult the original text — the copy's
          // backslash has already been blanked.
          std::size_t b = i;
          while (b > 0 && source[b - 1] == '\r') --b;
          if (!(b > 0 && source[b - 1] == '\\')) state = State::code;
        } else {
          out[i] = ' ';
          mark(i, 'm');
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          mark(i, 'm');
          mark(i + 1, 'm');
          ++i;
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
          mark(i, 'm');
        }
        break;
      case State::string:
        if (c == '\\') {
          out[i] = ' ';
          mark(i, 's');
          if (next != '\n') {
            if (i + 1 < out.size()) {
              out[i + 1] = ' ';
              mark(i + 1, 's');
            }
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          mark(i, 's');
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
          mark(i, 's');
        }
        break;
      case State::chr:
        if (c == '\\') {
          out[i] = ' ';
          mark(i, 's');
          if (i + 1 < out.size() && next != '\n') {
            out[i + 1] = ' ';
            mark(i + 1, 's');
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          mark(i, 's');
          state = State::code;
        } else if (c != '\n') {
          out[i] = ' ';
          mark(i, 's');
        }
        break;
    }
  }
  return out;
}

/// Position of the character after the matching closer for the opener
/// at `open` ('<'/'('/'{'), or npos if unbalanced. '>' handling treats
/// every '>' as a closer, which is right for template argument lists.
std::size_t skip_balanced(const std::string& s, std::size_t open,
                          char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == open_c) {
      ++depth;
    } else if (s[i] == close_c) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::size_t line_of(const std::vector<std::size_t>& line_starts,
                    std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<std::size_t>(it - line_starts.begin());
}

const std::vector<std::string>& unordered_type_tokens() {
  static const std::vector<std::string> tokens{
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return tokens;
}

struct Suppression {
  std::size_t line;  ///< 1-based line the annotation sits on.
  std::vector<std::string> rules;
  std::vector<bool> rule_used;  ///< Parallel to rules: exempted a finding.
  bool has_reason;
};

/// Parses every `detlint: allow(rule, ...)` annotation in the raw
/// (unstripped) source. An annotation only counts when it opens its
/// comment — `kinds` (the stripper's per-byte code/string/comment map)
/// rejects look-alikes inside string literals, and prose that merely
/// mentions the syntax mid-comment is skipped, so documentation never
/// registers as a (stale) suppression.
std::vector<Suppression> parse_suppressions(
    const std::string& source, const std::vector<std::size_t>& line_starts,
    const std::string& kinds) {
  std::vector<Suppression> out;
  const std::string marker = "detlint: allow(";
  for (std::size_t pos = source.find(marker); pos != std::string::npos;
       pos = source.find(marker, pos + 1)) {
    if (pos >= kinds.size() || kinds[pos] != 'm') continue;
    std::size_t begin = pos;
    while (begin > 0 && kinds[begin - 1] == 'm') --begin;
    bool opens_comment = true;
    for (std::size_t j = begin; j < pos; ++j) {
      const char c = source[j];
      if (c != '/' && c != '*' && c != '!' &&
          std::isspace(static_cast<unsigned char>(c)) == 0) {
        opens_comment = false;
        break;
      }
    }
    if (!opens_comment) continue;
    const std::size_t open = pos + marker.size() - 1;
    const std::size_t close = source.find(')', open);
    if (close == std::string::npos) continue;
    Suppression s;
    s.line = line_of(line_starts, pos);
    std::string list = source.substr(open + 1, close - open - 1);
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) s.rules.push_back(rule.substr(b, e - b + 1));
    }
    // A justification is any non-trivial text after the closing paren
    // on the same line, e.g. "): hot-path lookups, never iterated".
    std::size_t tail = close + 1;
    std::size_t eol = source.find('\n', close);
    if (eol == std::string::npos) eol = source.size();
    std::string reason = source.substr(tail, eol - tail);
    std::size_t letters = 0;
    for (const char c : reason) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) ++letters;
    }
    s.has_reason = letters >= 3;
    s.rule_used.assign(s.rules.size(), false);
    out.push_back(std::move(s));
  }
  return out;
}

struct ScanState {
  const std::string* raw;
  std::string code;  ///< Comment/string-stripped copy.
  std::vector<std::size_t> line_starts;
  std::vector<bool> comment_only;  ///< Per line: no code, some raw text.
  std::vector<Suppression> suppressions;
  std::vector<std::string> unordered_names;
  std::vector<Finding> findings;
  std::string path;
};

bool line_is_blank(const std::string& s,
                   const std::vector<std::size_t>& line_starts,
                   std::size_t line) {
  const std::size_t begin = line_starts[line - 1];
  const std::size_t end =
      line < line_starts.size() ? line_starts[line] : s.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// A finding at `line` is suppressed by an annotation on the same line
/// or in the contiguous comment block directly above it. A match marks
/// the annotation's rule as used (for --prune-allowlist staleness).
bool suppressed(ScanState& st, std::size_t line, const std::string& rule) {
  auto allows = [&](std::size_t l) {
    bool hit = false;
    for (Suppression& s : st.suppressions) {
      if (s.line != l) continue;
      for (std::size_t r = 0; r < s.rules.size(); ++r) {
        if (s.rules[r] == rule || s.rules[r] == "*") {
          s.rule_used[r] = true;
          hit = true;
        }
      }
    }
    return hit;
  };
  if (allows(line)) return true;
  for (std::size_t l = line; l-- > 1;) {
    if (!st.comment_only[l - 1]) break;  // hit a code line: stop
    if (allows(l)) return true;
  }
  return false;
}

void report(ScanState& st, std::size_t line, const char* rule,
            std::string message) {
  if (suppressed(st, line, rule)) return;
  st.findings.push_back(Finding{st.path, line, rule, std::move(message)});
}

/// Collects identifiers declared with an unordered container type and
/// reports each declaration site (rule unordered-state).
void scan_unordered_declarations(ScanState& st) {
  for (const std::string& token : unordered_type_tokens()) {
    for (const std::size_t pos : word_positions(st.code, token)) {
      std::size_t after = pos + token.size();
      while (after < st.code.size() &&
             std::isspace(static_cast<unsigned char>(st.code[after]))) {
        ++after;
      }
      if (after >= st.code.size() || st.code[after] != '<') continue;
      const std::size_t end = skip_balanced(st.code, after, '<', '>');
      if (end == std::string::npos) continue;
      // Skip qualifiers / declarators between the type and the name.
      std::size_t p = end;
      while (p < st.code.size() &&
             (std::isspace(static_cast<unsigned char>(st.code[p])) ||
              st.code[p] == '&' || st.code[p] == '*')) {
        ++p;
      }
      std::size_t name_end = p;
      while (name_end < st.code.size() && is_word(st.code[name_end])) {
        ++name_end;
      }
      if (name_end == p) continue;  // not a declaration (e.g. ::iterator)
      const std::string name = st.code.substr(p, name_end - p);
      if (name == "const" || name == "mutable" || name == "static") continue;
      st.unordered_names.push_back(name);
      report(st, line_of(st.line_starts, pos), kUnorderedState,
             "declaration of std::" + token + " '" + name +
                 "' in sim code; prove its iteration order never reaches "
                 "sim-visible state or convert to a sorted/dense structure");
    }
  }
  std::sort(st.unordered_names.begin(), st.unordered_names.end());
  st.unordered_names.erase(
      std::unique(st.unordered_names.begin(), st.unordered_names.end()),
      st.unordered_names.end());
}

bool mentions_unordered(const ScanState& st, const std::string& expr) {
  for (const std::string& token : unordered_type_tokens()) {
    if (!word_positions(expr, token).empty()) return true;
  }
  for (const std::string& name : st.unordered_names) {
    if (!word_positions(expr, name).empty()) return true;
  }
  return false;
}

/// Flags range-for and iterator loops whose range is an unordered
/// container, plus `+=` accumulation inside such loop bodies.
void scan_unordered_loops(ScanState& st) {
  for (const std::size_t pos : word_positions(st.code, "for")) {
    std::size_t open = pos + 3;
    while (open < st.code.size() &&
           std::isspace(static_cast<unsigned char>(st.code[open]))) {
      ++open;
    }
    if (open >= st.code.size() || st.code[open] != '(') continue;
    const std::size_t close = skip_balanced(st.code, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string head = st.code.substr(open + 1, close - open - 2);

    bool hazardous = false;
    // Range-for: a ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = 0; i < head.size(); ++i) {
      if (head[i] != ':') continue;
      if (i + 1 < head.size() && head[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && head[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon != std::string::npos) {
      hazardous = mentions_unordered(st, head.substr(colon + 1));
    } else if (head.find(".begin()") != std::string::npos ||
               head.find(".cbegin()") != std::string::npos) {
      // Iterator loop: `for (auto it = m.begin(); ...)`.
      hazardous = mentions_unordered(st, head);
    }
    if (!hazardous) continue;

    const std::size_t line = line_of(st.line_starts, pos);
    report(st, line, kUnorderedIter,
           "loop iterates an unordered container; iteration order is "
           "hash-bucket layout, not a deterministic order");

    // Secondary check: accumulation inside the loop body compounds the
    // hazard (reduction order changes the float result bit pattern).
    std::size_t body = close;
    while (body < st.code.size() &&
           std::isspace(static_cast<unsigned char>(st.code[body]))) {
      ++body;
    }
    std::size_t body_end;
    if (body < st.code.size() && st.code[body] == '{') {
      body_end = skip_balanced(st.code, body, '{', '}');
      if (body_end == std::string::npos) body_end = st.code.size();
    } else {
      body_end = st.code.find(';', body);
      if (body_end == std::string::npos) body_end = st.code.size();
    }
    for (std::size_t i = body; i + 1 < body_end; ++i) {
      if (st.code[i] != '+' || st.code[i + 1] != '=') continue;
      // An allow on the loop header covers accumulations in its body —
      // the loop is the unit being justified.
      if (suppressed(st, line, kFloatAccum)) continue;
      report(st, line_of(st.line_starts, i), kFloatAccum,
             "accumulation inside unordered iteration; reduction order "
             "(and any float rounding) depends on hash-bucket layout");
    }
  }
}

void scan_token_rules(ScanState& st) {
  struct TokenRule {
    const char* token;
    const char* rule;
    const char* message;
  };
  static const TokenRule kTokenRules[] = {
      {"system_clock", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"steady_clock", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"high_resolution_clock", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"gettimeofday", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"clock_gettime", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"timespec_get", kWallClock,
       "wall-clock read in sim code; use sim::Simulator::now()"},
      {"localtime", kWallClock, "wall-clock/calendar read in sim code"},
      {"gmtime", kWallClock, "wall-clock/calendar read in sim code"},
      {"rand", kLibcRand,
       "libc rand() bypasses the seeded common/rng discipline"},
      {"srand", kLibcRand,
       "libc srand() bypasses the seeded common/rng discipline"},
      {"random_device", kRandomDevice,
       "std::random_device draws hardware entropy; runs are never "
       "reproducible"},
      {"mt19937", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"mt19937_64", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"minstd_rand", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"minstd_rand0", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"default_random_engine", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"ranlux24", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"ranlux48", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
      {"knuth_b", kStdRng,
       "std RNG engine bypasses common/rng; use d2dhb::Rng with an "
       "explicit seed"},
  };
  for (const TokenRule& tr : kTokenRules) {
    const std::string token = tr.token;
    const bool call_like = token == "rand" || token == "srand";
    for (const std::size_t pos : word_positions(st.code, token)) {
      if (call_like) {
        // Require a call: `rand (`... and reject member/qualified uses
        // like `rng.rand(` — only the libc globals are the hazard.
        std::size_t after = pos + token.size();
        while (after < st.code.size() &&
               std::isspace(static_cast<unsigned char>(st.code[after]))) {
          ++after;
        }
        if (after >= st.code.size() || st.code[after] != '(') continue;
        if (member_qualified(st.code, pos)) continue;
      }
      report(st, line_of(st.line_starts, pos), tr.rule, tr.message);
    }
  }

  // time(...) and clock() calls — token + '(' with no qualifier.
  for (const char* fn : {"time", "clock"}) {
    for (const std::size_t pos : word_positions(st.code, fn)) {
      if (member_qualified(st.code, pos)) continue;
      std::size_t after = pos + std::string(fn).size();
      while (after < st.code.size() &&
             std::isspace(static_cast<unsigned char>(st.code[after]))) {
        ++after;
      }
      if (after >= st.code.size() || st.code[after] != '(') continue;
      const std::size_t close = skip_balanced(st.code, after, '(', ')');
      if (close == std::string::npos) continue;
      std::string args = st.code.substr(after + 1, close - after - 2);
      args.erase(std::remove_if(args.begin(), args.end(),
                                [](char c) {
                                  return std::isspace(
                                             static_cast<unsigned char>(c)) !=
                                         0;
                                }),
                 args.end());
      if (std::string(fn) == "clock" && !args.empty()) continue;
      if (std::string(fn) == "time" && !args.empty() && args != "0" &&
          args != "NULL" && args != "nullptr" && args[0] != '&') {
        continue;  // something else named `time` taking a real argument
      }
      report(st, line_of(st.line_starts, pos), kWallClock,
             std::string(fn) + "() reads the wall clock; sim code must "
                               "use sim::Simulator::now()");
    }
  }
}

/// std::map / std::set keyed on a pointer type.
void scan_pointer_keys(ScanState& st) {
  for (const char* container : {"map", "set", "multimap", "multiset"}) {
    for (const std::size_t pos : word_positions(st.code, container)) {
      std::size_t after = pos + std::string(container).size();
      if (after >= st.code.size() || st.code[after] != '<') continue;
      // First template argument at depth 1, up to ',' or the closer.
      int depth = 0;
      std::size_t arg_begin = after + 1;
      std::size_t arg_end = std::string::npos;
      for (std::size_t i = after; i < st.code.size(); ++i) {
        const char c = st.code[i];
        if (c == '<' || c == '(') {
          ++depth;
        } else if (c == '>' || c == ')') {
          if (--depth == 0) {
            arg_end = i;
            break;
          }
        } else if (c == ',' && depth == 1) {
          arg_end = i;
          break;
        }
      }
      if (arg_end == std::string::npos) continue;
      std::string arg = st.code.substr(arg_begin, arg_end - arg_begin);
      while (!arg.empty() &&
             std::isspace(static_cast<unsigned char>(arg.back()))) {
        arg.pop_back();
      }
      if (arg.empty() || arg.back() != '*') continue;
      report(st, line_of(st.line_starts, pos), kPtrKey,
             "ordered container keyed on a pointer; iteration order is "
             "allocation-address order, which varies run to run");
    }
  }
}

/// True when the token at `pos` is reached through `.` or `->` — a
/// member call on some object, as opposed to a `::` qualifier (its own
/// declaration / out-of-line definition) or a free function.
bool member_dot_qualified(const std::string& s, std::size_t pos) {
  if (pos == 0) return false;
  if (s[pos - 1] == '.') return true;
  return s[pos - 1] == '>' && pos >= 2 && s[pos - 2] == '-';
}

/// Start of the enclosing statement: just past the previous ';', '{',
/// or '}' (or the start of the file).
std::size_t statement_begin(const std::string& s, std::size_t pos) {
  std::size_t b = pos;
  while (b > 0) {
    const char c = s[b - 1];
    if (c == ';' || c == '{' || c == '}') break;
    --b;
  }
  return b;
}

/// Position after `token` at `pos`, whitespace skipped.
std::size_t after_token(const std::string& s, std::size_t pos,
                        std::size_t token_size) {
  std::size_t after = pos + token_size;
  while (after < s.size() &&
         std::isspace(static_cast<unsigned char>(s[after])) != 0) {
    ++after;
  }
  return after;
}

/// Top-level comma split of a call's argument list: `open` is the '('.
/// Depth counts ()/{}/[] only — '<' is ambiguous with less-than, and
/// none of the scanned call shapes nest commas inside bare template
/// argument lists. Empty when the parens are unbalanced.
std::vector<std::string> call_arguments(const std::string& s,
                                        std::size_t open) {
  const std::size_t close = skip_balanced(s, open, '(', ')');
  if (close == std::string::npos) return {};
  std::vector<std::string> args;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    const char c = s[i];
    if (c == '(' || c == '{' || c == '[') {
      ++depth;
    } else if (c == ')' || c == '}' || c == ']') {
      --depth;
    } else if (c == ',' && depth == 0) {
      args.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  args.push_back(s.substr(begin, close - 1 - begin));
  return args;
}

std::string without_spaces(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
  }
  return out;
}

/// cross-strip-access: substrate code must act on its own strip (the
/// active ShardGuard lane) and reach other strips via Simulator::post_to
/// only. Member calls on kernel()/mailbox() — the executor's direct
/// shard handles — and any set_scheduling_shard() override are flagged;
/// the engine/simulator internals that legitimately own them are
/// exempted by the src/sim allowlist entries.
void scan_cross_strip(ScanState& st) {
  for (const char* token : {"kernel", "mailbox"}) {
    const std::size_t token_size = std::string(token).size();
    for (const std::size_t pos : word_positions(st.code, token)) {
      if (!member_dot_qualified(st.code, pos)) continue;
      const std::size_t after = after_token(st.code, pos, token_size);
      if (after >= st.code.size() || st.code[after] != '(') continue;
      report(st, line_of(st.line_starts, pos), kCrossStrip,
             "direct " + std::string(token) +
                 "() access reaches into a shard's private state; stay "
                 "on the active strip and cross via Simulator::post_to");
    }
  }
  for (const std::size_t pos :
       word_positions(st.code, "set_scheduling_shard")) {
    const std::size_t after =
        after_token(st.code, pos, std::string("set_scheduling_shard").size());
    if (after >= st.code.size() || st.code[after] != '(') continue;
    report(st, line_of(st.line_starts, pos), kCrossStrip,
           "set_scheduling_shard() overrides the ShardGuard lane; use a "
           "scoped ShardGuard, never a bare override");
  }
}

/// arena-escape: `arena.create<T>()` / `arena.adopt()` hand out a
/// borrow tied to the strip arena's lifetime. Storing it in a `static`
/// or returning it straight out of the creating function are the two
/// lexically visible escape shapes.
void scan_arena_escape(ScanState& st) {
  for (const char* token : {"create", "adopt"}) {
    const bool is_create = std::string(token) == "create";
    const std::size_t token_size = std::string(token).size();
    for (const std::size_t pos : word_positions(st.code, token)) {
      if (!member_dot_qualified(st.code, pos)) continue;
      const std::size_t after = after_token(st.code, pos, token_size);
      if (after >= st.code.size() ||
          st.code[after] != (is_create ? '<' : '(')) {
        continue;
      }
      const std::size_t stmt = statement_begin(st.code, pos);
      const std::string head = st.code.substr(stmt, pos - stmt);
      const bool is_static = !word_positions(head, "static").empty();
      const bool is_return = !word_positions(head, "return").empty();
      if (!is_static && !is_return) continue;
      report(st, line_of(st.line_starts, pos), kArenaEscape,
             std::string("arena ") + token + "() borrow " +
                 (is_static ? "stored in a static — it outlives the "
                              "strip arena that owns the object"
                            : "returned from the creating scope — the "
                              "borrow must not outlive or leave its "
                              "strip's arena scope"));
    }
  }
}

/// mailbox-horizon: the conservative-lookahead contract. Draining
/// belongs to the engine's window barrier alone; posts must carry
/// positive slack above `now()` (an envelope at exactly now() is
/// already below the destination's next horizon when windows overlap).
void scan_mailbox_horizon(ScanState& st) {
  for (const char* token : {"drain_into", "drain_window"}) {
    const std::size_t token_size = std::string(token).size();
    for (const std::size_t pos : word_positions(st.code, token)) {
      const std::size_t after = after_token(st.code, pos, token_size);
      if (after >= st.code.size() || st.code[after] != '(') continue;
      report(st, line_of(st.line_starts, pos), kMailboxHorizon,
             std::string(token) +
                 "() outside the executor's window barrier races the "
                 "two-phase drain/execute contract");
    }
  }
  for (const std::size_t pos : word_positions(st.code, "post_to")) {
    const std::size_t after =
        after_token(st.code, pos, std::string("post_to").size());
    if (after >= st.code.size() || st.code[after] != '(') continue;
    const std::vector<std::string> args = call_arguments(st.code, after);
    if (args.size() < 2) continue;
    const std::string& when = args[1];
    bool now_call = false;
    for (const std::size_t p : word_positions(when, "now")) {
      const std::size_t a = after_token(when, p, 3);
      if (a < when.size() && when[a] == '(') now_call = true;
    }
    if (!now_call || when.find('+') != std::string::npos) continue;
    report(st, line_of(st.line_starts, pos), kMailboxHorizon,
           "post_to() at exactly now() has zero slack below the "
           "destination's conservative horizon; add positive delay");
  }
  for (const std::size_t pos : word_positions(st.code, "post_after")) {
    const std::size_t after =
        after_token(st.code, pos, std::string("post_after").size());
    if (after >= st.code.size() || st.code[after] != '(') continue;
    const std::vector<std::string> args = call_arguments(st.code, after);
    if (args.size() < 2) continue;
    const std::string delay = without_spaces(args[1]);
    const bool zero =
        delay == "0" || delay == "Duration{}" || delay == "Duration()" ||
        delay == "zero()" || delay == "Duration::zero()" ||
        delay == "milliseconds(0)" || delay == "microseconds(0)" ||
        delay == "seconds(0)" || delay == "minutes(0)" ||
        (delay.size() > 8 &&
         delay.compare(delay.size() - 8, 8, "::zero()") == 0);
    if (!zero) continue;
    report(st, line_of(st.line_starts, pos), kMailboxHorizon,
           "post_after() with zero delay posts at the horizon itself; "
           "cross-strip envelopes need positive slack");
  }
}

/// lane-mix: laned substrates (strided seq lanes, per-strip rng/stat
/// lanes) must be indexed by the executing shard, never a hard-coded
/// strip number; set_seq_lane re-striding belongs to the executor.
void scan_lane_mix(ScanState& st) {
  for (const std::size_t pos : word_positions(st.code, "set_seq_lane")) {
    const std::size_t after =
        after_token(st.code, pos, std::string("set_seq_lane").size());
    if (after >= st.code.size() || st.code[after] != '(') continue;
    report(st, line_of(st.line_starts, pos), kLaneMix,
           "set_seq_lane() re-strides a kernel's sequence lane; only "
           "the executor may assign lanes, at world construction");
  }
  // `*lanes[...]` / `*lanes_[...]` subscripted by an integer literal.
  for (std::size_t i = 0; i < st.code.size();) {
    if (!is_word(st.code[i]) || (i > 0 && is_word(st.code[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < st.code.size() && is_word(st.code[end])) ++end;
    const std::string ident = st.code.substr(i, end - i);
    const bool laned =
        (ident.size() >= 5 &&
         ident.compare(ident.size() - 5, 5, "lanes") == 0) ||
        (ident.size() >= 6 &&
         ident.compare(ident.size() - 6, 6, "lanes_") == 0);
    if (laned) {
      std::size_t open = end;
      while (open < st.code.size() &&
             std::isspace(static_cast<unsigned char>(st.code[open])) != 0) {
        ++open;
      }
      if (open < st.code.size() && st.code[open] == '[') {
        const std::size_t close = skip_balanced(st.code, open, '[', ']');
        if (close != std::string::npos) {
          const std::string index = without_spaces(
              st.code.substr(open + 1, close - 1 - open - 1));
          const bool literal =
              !index.empty() &&
              std::all_of(index.begin(), index.end(), [](char c) {
                return std::isdigit(static_cast<unsigned char>(c)) != 0;
              });
          if (literal) {
            report(st, line_of(st.line_starts, i), kLaneMix,
                   "laned substrate indexed by a hard-coded strip; "
                   "index by the executing shard "
                   "(sim.current_shard() / the ShardGuard lane)");
          }
        }
      }
    }
    i = end;
  }
  // Member `.lane(<integer literal>)` accessors.
  for (const std::size_t pos : word_positions(st.code, "lane")) {
    if (!member_dot_qualified(st.code, pos)) continue;
    const std::size_t after = after_token(st.code, pos, 4);
    if (after >= st.code.size() || st.code[after] != '(') continue;
    const std::vector<std::string> args = call_arguments(st.code, after);
    if (args.size() != 1) continue;
    const std::string arg = without_spaces(args[0]);
    const bool literal = !arg.empty() &&
                         std::all_of(arg.begin(), arg.end(), [](char c) {
                           return std::isdigit(static_cast<unsigned char>(c)) !=
                                  0;
                         });
    if (!literal) continue;
    report(st, line_of(st.line_starts, pos), kLaneMix,
           "lane() fetched for a hard-coded strip; fetch the executing "
           "shard's lane instead");
  }
}

void scan_bare_allows(ScanState& st) {
  for (const Suppression& s : st.suppressions) {
    if (s.has_reason) continue;
    st.findings.push_back(Finding{
        st.path, s.line, kAllowNoReason,
        "detlint suppression without a justification; write "
        "`// detlint: allow(rule): <why this is safe>`"});
  }
}

bool allowlisted(const Options& options, const std::string& path,
                 const std::string& rule, Usage* usage) {
  // Match against the full path and every '/'-suffix, so relative
  // allowlist entries work however the scanner was invoked.
  std::vector<std::string> candidates{path};
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '/') candidates.push_back(path.substr(i + 1));
  }
  if (usage != nullptr && usage->allowlist_used.size() <
                              options.allowlist.size()) {
    usage->allowlist_used.resize(options.allowlist.size(), false);
  }
  bool hit = false;
  for (std::size_t e = 0; e < options.allowlist.size(); ++e) {
    const AllowEntry& entry = options.allowlist[e];
    if (entry.rule != "*" && entry.rule != rule) continue;
    for (const std::string& c : candidates) {
      if (glob_match(entry.path_glob, c)) {
        // Keep matching so duplicate entries all get usage credit.
        if (usage != nullptr) usage->allowlist_used[e] = true;
        hit = true;
        break;
      }
    }
    if (hit && usage == nullptr) return true;
  }
  return hit;
}

}  // namespace

bool glob_match(const std::string& glob, const std::string& text) {
  // Iterative glob with '*' backtracking; '?' matches one char.
  std::size_t g = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == text[t])) {
      ++g;
      ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = t;
    } else if (star != std::string::npos) {
      g = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules{
      {kUnorderedIter,
       "loop over an unordered container (order = hash-bucket layout)"},
      {kUnorderedState,
       "unordered container declared in sim code (justify or convert)"},
      {kWallClock, "wall-clock read (use sim::Simulator::now())"},
      {kLibcRand, "libc rand()/srand() (use seeded common/rng)"},
      {kRandomDevice, "std::random_device (hardware entropy)"},
      {kStdRng, "std RNG engine construction (use d2dhb::Rng)"},
      {kPtrKey, "ordered container keyed on a pointer (address order)"},
      {kFloatAccum, "accumulation inside unordered iteration"},
      {kAllowNoReason, "suppression without an inline justification"},
      {kCrossStrip,
       "another strip's kernel()/mailbox() touched directly (use "
       "Simulator::post_to)"},
      {kArenaEscape,
       "arena create<>/adopt() borrow escapes its strip's arena scope"},
      {kMailboxHorizon,
       "mailbox drained off-barrier or posted with zero horizon slack"},
      {kLaneMix,
       "laned substrate used from the wrong strip (hard-coded lane "
       "index / set_seq_lane outside the executor)"},
  };
  return kRules;
}

std::vector<StaleAllow> Usage::stale(const Options& options) const {
  std::vector<StaleAllow> out;
  for (std::size_t e = 0; e < options.allowlist.size(); ++e) {
    if (e < allowlist_used.size() && allowlist_used[e]) continue;
    const AllowEntry& entry = options.allowlist[e];
    out.push_back(StaleAllow{
        entry.source.empty() ? "<allowlist>" : entry.source, entry.line,
        entry.rule, "allowlist entry `" + entry.rule + " " +
                        entry.path_glob + "` matched no finding"});
  }
  out.insert(out.end(), stale_inline.begin(), stale_inline.end());
  return out;
}

std::string Finding::to_string() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

Options load_allowlist(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) {
    throw std::runtime_error("detlint: cannot read allowlist " +
                             file.string());
  }
  Options options;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream ss(line);
    std::string rule, glob, extra;
    if (!(ss >> rule)) continue;  // blank / comment-only
    if (!(ss >> glob) || (ss >> extra)) {
      throw std::runtime_error("detlint: " + file.string() + ":" +
                               std::to_string(lineno) +
                               ": expected `<rule-id> <path-glob>`");
    }
    if (rule != "*") {
      const auto& table = rules();
      const bool known =
          std::any_of(table.begin(), table.end(),
                      [&](const RuleInfo& r) { return r.id == rule; });
      if (!known) {
        throw std::runtime_error("detlint: " + file.string() + ":" +
                                 std::to_string(lineno) + ": unknown rule '" +
                                 rule + "'");
      }
    }
    options.allowlist.push_back(AllowEntry{rule, glob, file.string(), lineno});
  }
  return options;
}

std::vector<Finding> scan_source(const std::string& path_label,
                                 const std::string& source,
                                 const Options& options, Usage* usage) {
  ScanState st;
  st.raw = &source;
  st.path = path_label;
  std::string kinds;
  st.code = strip_comments_and_strings(source, &kinds);

  st.line_starts.push_back(0);
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\n') st.line_starts.push_back(i + 1);
  }
  const std::size_t n_lines = st.line_starts.size();
  st.comment_only.resize(n_lines);
  for (std::size_t l = 1; l <= n_lines; ++l) {
    st.comment_only[l - 1] =
        line_is_blank(st.code, st.line_starts, l) &&
        !line_is_blank(source, st.line_starts, l);
  }
  st.suppressions = parse_suppressions(source, st.line_starts, kinds);

  scan_unordered_declarations(st);
  scan_unordered_loops(st);
  scan_token_rules(st);
  scan_pointer_keys(st);
  scan_cross_strip(st);
  scan_arena_escape(st);
  scan_mailbox_horizon(st);
  scan_lane_mix(st);
  scan_bare_allows(st);

  if (usage != nullptr) {
    for (const Suppression& s : st.suppressions) {
      for (std::size_t r = 0; r < s.rules.size(); ++r) {
        if (s.rule_used[r]) continue;
        usage->stale_inline.push_back(StaleAllow{
            path_label, s.line, s.rules[r],
            "inline allow(" + s.rules[r] + ") exempted no finding"});
      }
    }
  }

  std::vector<Finding> findings;
  for (Finding& f : st.findings) {
    if (!allowlisted(options, path_label, f.rule, usage)) {
      findings.push_back(std::move(f));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> scan_file(const std::filesystem::path& file,
                               const Options& options, Usage* usage) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("detlint: cannot read " + file.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_source(file.generic_string(), buffer.str(), options, usage);
}

std::vector<Finding> scan_paths(
    const std::vector<std::filesystem::path>& roots, const Options& options,
    Usage* usage) {
  std::vector<std::filesystem::path> files;
  const auto is_cpp = [](const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
           ext == ".h" || ext == ".hh";
  };
  for (const std::filesystem::path& root : roots) {
    if (std::filesystem::is_directory(root)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_cpp(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  if (usage != nullptr) {
    usage->allowlist_used.resize(options.allowlist.size(), false);
  }
  std::vector<Finding> findings;
  for (const std::filesystem::path& file : files) {
    std::vector<Finding> f = scan_file(file, options, usage);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }
  return findings;
}

}  // namespace d2dhb::detlint
