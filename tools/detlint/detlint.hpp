// detlint — determinism lint for the d2d_heartbeat tree.
//
// The repo's headline guarantee is byte-identical seeded runs: the same
// (config, seed) must produce the same metrics whether it runs on one
// runner thread or eight, through the grid or the legacy scan path.
// That property is easy to break silently — iterate an unordered_map
// where the order reaches sim-visible state, read the wall clock, or
// construct an RNG outside common/rng — and nothing fails until a
// golden diff goes red two PRs later. detlint scans the sources and
// flags those hazard patterns statically, so the CI gate catches them
// in the PR that introduces them.
//
// Rules (ids are stable; see rules() for the machine-readable table):
//   unordered-iter   range-for / .begin() iteration over an unordered
//                    container — iteration order is hash-bucket layout.
//   unordered-state  declaration of an unordered container in scanned
//                    code; must prove (via allow + justification) that
//                    its iteration order never escapes.
//   wall-clock       system_clock / steady_clock / time() / clock() /
//                    gettimeofday etc. — sim code must use sim time.
//   libc-rand        rand() / srand() — unseeded process-global RNG.
//   random-device    std::random_device — hardware entropy, never
//                    reproducible.
//   std-rng          std:: random engines (mt19937, minstd_rand, ...)
//                    bypassing the seeded common/rng discipline.
//   ptr-key          std::map / std::set keyed on a pointer type —
//                    ordered by allocation address, not by value.
//   float-accum      `+=` accumulation inside an unordered-iter loop —
//                    float reduction order depends on bucket layout.
//   allow-no-reason  a `detlint: allow(...)` suppression without a
//                    justification; every suppression must say why.
//
// v2 shard/arena rules — DESIGN.md §12-13's strip-confinement and
// arena-lifetime conventions as gates (see DESIGN.md §14):
//   cross-strip-access  member calls on another strip's kernel()/
//                    mailbox() or a set_scheduling_shard() override —
//                    substrate code must stay on its ShardGuard lane
//                    and cross strips via Simulator::post_to only.
//   arena-escape     an arena create<>/adopt() borrow stored into a
//                    `static` or returned — the T& must not outlive
//                    or leave its strip's arena scope.
//   mailbox-horizon  draining a mailbox outside the engine's window
//                    barrier, posting at exactly now() (zero slack
//                    below the conservative horizon), or post_after
//                    with a zero delay.
//   lane-mix         seq-lane re-striding (set_seq_lane) outside the
//                    executor, or a laned substrate (`*lanes_[...]`,
//                    `.lane(...)`) indexed by a hard-coded strip
//                    number instead of the executing shard.
//
// Suppressions: `// detlint: allow(rule-id): <reason>` on the offending
// line or in the comment block directly above it. Several rules may be
// listed (comma-separated). A checked-in allowlist file exempts whole
// files per rule (see load_allowlist()).
//
// Matching runs on comment- and string-literal-stripped source, so rule
// tokens inside strings or docs never fire — which is also why detlint
// can scan its own sources.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace d2dhb::detlint {

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// The stable rule table (id + one-line summary), in report order.
const std::vector<RuleInfo>& rules();

struct Finding {
  std::string file;   ///< Path label as given to the scanner.
  std::size_t line;   ///< 1-based line number.
  std::string rule;   ///< Rule id (see rules()).
  std::string message;

  /// "file:line: [rule] message" — the CI-artifact line format.
  std::string to_string() const;
};

/// One allowlist entry: `rule` (or "*") is exempt in files matching
/// `path_glob` (shell-style glob, matched against the path label and
/// every '/'-suffix of it, so "bench/*" works for absolute paths too).
struct AllowEntry {
  std::string rule;
  std::string path_glob;
  /// Where the entry came from (filled by load_allowlist; empty for
  /// programmatic entries) so stale entries report their own site.
  std::string source;
  std::size_t line{0};
};

struct Options {
  std::vector<AllowEntry> allowlist;
};

/// One suppression — file-level (allowlist entry) or inline
/// (`// detlint: allow(rule)`) — that exempted no finding in the scan.
struct StaleAllow {
  std::string file;  ///< Allowlist file, or the scanned file for inline.
  std::size_t line;  ///< Entry / annotation line (0 when unknown).
  std::string rule;
  std::string detail;  ///< Human-readable description of the entry.
};

/// Suppression usage collected across a scan, for --prune-allowlist.
/// `allowlist_used` is parallel to Options::allowlist; `stale_inline`
/// lists per-rule inline allows that matched nothing in their file.
struct Usage {
  std::vector<bool> allowlist_used;
  std::vector<StaleAllow> stale_inline;

  /// All stale suppressions: unused allowlist entries first (in entry
  /// order), then the stale inline allows (in scan order).
  std::vector<StaleAllow> stale(const Options& options) const;
};

/// Parses an allowlist file: one `<rule-id> <path-glob>` pair per line,
/// '#' comments and blank lines ignored. Throws std::runtime_error on
/// unreadable files or unknown rule ids.
Options load_allowlist(const std::filesystem::path& file);

/// Scans one translation unit given as a string. `path_label` is used
/// for reporting and allowlist matching. Findings come back sorted by
/// (line, rule). With `usage`, suppression use is accumulated into it
/// (allowlist_used grows to the allowlist's size on first need; pass
/// one Usage across many files to aggregate).
std::vector<Finding> scan_source(const std::string& path_label,
                                 const std::string& source,
                                 const Options& options = {},
                                 Usage* usage = nullptr);

/// Scans one file from disk. Throws std::runtime_error if unreadable.
std::vector<Finding> scan_file(const std::filesystem::path& file,
                               const Options& options = {},
                               Usage* usage = nullptr);

/// Scans every C++ source/header under the given roots (files are taken
/// as-is, directories are walked recursively), in sorted path order so
/// the report is deterministic. Returns all findings.
std::vector<Finding> scan_paths(const std::vector<std::filesystem::path>& roots,
                                const Options& options = {},
                                Usage* usage = nullptr);

/// True if `glob` ('*' and '?' wildcards) matches `text`.
bool glob_match(const std::string& glob, const std::string& text);

}  // namespace d2dhb::detlint
