// Incentive marketplace: the Karma-Go-style reward loop of Section
// III-A. Several relays with different placements compete for forwarding
// work in a crowd; the operator's ledger pays out credits per forwarded
// heartbeat, redeemable as free data or cash.
//
//   $ ./incentive_marketplace
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "scenario/scenario.hpp"

using namespace d2dhb;

int main() {
  scenario::Scenario world;
  apps::AppProfile app = apps::standard_app();
  app.heartbeat_period = seconds(60);
  app.expiry = seconds(60);

  auto phone_at = [&](double x, double y) -> core::Phone& {
    core::PhoneConfig config;
    config.mobility = std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{x, y});
    return world.add_phone(std::move(config));
  };

  // Three relays: one in the middle of the crowd, one at its edge, one
  // off on its own.
  struct RelayEntry {
    const char* label;
    core::Phone* phone;
    core::RelayAgent* agent;
  };
  std::vector<RelayEntry> relays;
  for (const auto& [label, x, y] :
       {std::tuple{"center", 10.0, 10.0}, std::tuple{"edge", 20.0, 10.0},
        std::tuple{"remote", 45.0, 45.0}}) {
    core::Phone& phone = phone_at(x, y);
    core::RelayAgent::Params params;
    params.own_app = app;
    params.scheduler.max_own_delay = app.heartbeat_period;
    params.scheduler.deadline_margin = seconds(5);
    core::RelayAgent& agent = world.add_relay(phone, params);
    world.register_session(phone, 3 * app.heartbeat_period);
    relays.push_back({label, &phone, &agent});
  }

  // Ten UEs clustered around (10, 10) — nearest-relay matching should
  // route most of them to the "center" relay.
  Rng placement = world.fork_rng();
  std::vector<core::UeAgent*> ues;
  for (int i = 0; i < 10; ++i) {
    core::Phone& phone = phone_at(placement.normal(10.0, 3.0),
                                  placement.normal(10.0, 3.0));
    core::UeAgent::Params params;
    params.app = app;
    params.feedback_timeout = seconds(90);
    core::UeAgent& ue = world.add_ue(phone, params);
    world.register_session(phone, 3 * app.heartbeat_period);
    ues.push_back(&ue);
  }

  for (auto& r : relays) r.agent->start();
  double offset = 3.0;
  for (core::UeAgent* ue : ues) ue->start(seconds(offset += 4.0));

  world.run_for(minutes(60));

  std::cout << "Incentive marketplace — one simulated hour, 10 UEs, 3 "
               "relays\n\n";
  Table table{{"Relay", "Forwarded", "Bundles", "Credits", "Payout ($)",
               "Payout (MB)", "Extra energy spent (uAh)"}};
  for (const auto& r : relays) {
    const NodeId id = r.phone->id();
    table.add_row(
        {r.label, std::to_string(r.agent->stats().forwarded_received),
         std::to_string(r.agent->stats().bundles_sent),
         Table::num(world.ledger().balance(id), 0),
         Table::num(world.ledger().redeemable_usd(id), 2),
         Table::num(world.ledger().redeemable_mb(id), 0),
         Table::num(r.phone->wifi_charge().value, 0)});
  }
  table.print(std::cout);

  const auto totals = world.server().totals();
  std::cout << "\nOperator view: " << totals.delivered
            << " heartbeats delivered, " << totals.offline_events
            << " offline events, "
            << Table::num(world.ledger().total_issued(), 0)
            << " credits issued.\n";
  std::cout << "Placement pays: the relay inside the crowd collects the "
               "forwarding work\n(and the rewards); the remote one earns "
               "nothing.\n";

  // Cash-out demo.
  const NodeId center = relays[0].phone->id();
  const double redeemed = world.ledger().redeem(center, 50.0);
  std::cout << "\n\"center\" redeems " << Table::num(redeemed, 0)
            << " credits; remaining balance "
            << Table::num(world.ledger().balance(center), 0) << ".\n";
  return 0;
}
