// Quickstart: the smallest end-to-end use of the public API.
//
// Builds a world with one relay and two UEs a meter apart, runs fifteen
// simulated minutes of WeChat-like heartbeats through the D2D framework,
// and prints what the operator, the relay owner, and the UE owners each
// got out of it.
//
//   $ ./quickstart
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "scenario/scenario.hpp"

using namespace d2dhb;

int main() {
  // 1. A Scenario owns the simulator, the Wi-Fi Direct medium, the base
  //    station, the IM server, and the incentive ledger.
  scenario::Scenario world;

  // 2. An app profile: WeChat-like, compressed to a 60 s period so the
  //    example finishes instantly.
  apps::AppProfile app = apps::standard_app();
  app.heartbeat_period = seconds(60);
  app.expiry = seconds(60);

  // 3. Phones. Each needs a position (mobility model); everything else
  //    defaults to the calibrated WCDMA + Wi-Fi Direct models.
  auto phone_at = [&](double x, double y) -> core::Phone& {
    core::PhoneConfig config;
    config.mobility = std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{x, y});
    return world.add_phone(std::move(config));
  };
  core::Phone& relay_phone = phone_at(0.0, 0.0);
  core::Phone& ue1_phone = phone_at(1.0, 0.0);
  core::Phone& ue2_phone = phone_at(0.0, 1.0);

  // 4. Roles. The relay advertises itself and schedules aggregates with
  //    Algorithm 1; UEs discover, match, forward, and fall back to
  //    cellular if anything goes wrong.
  core::RelayAgent::Params relay_params;
  relay_params.own_app = app;
  relay_params.scheduler.max_own_delay = app.heartbeat_period;
  relay_params.scheduler.deadline_margin = seconds(5);
  core::RelayAgent& relay = world.add_relay(relay_phone, relay_params);

  core::UeAgent::Params ue_params;
  ue_params.app = app;
  ue_params.feedback_timeout = seconds(90);
  core::UeAgent& ue1 = world.add_ue(ue1_phone, ue_params);
  core::UeAgent& ue2 = world.add_ue(ue2_phone, ue_params);

  // 5. Server-side sessions (commercial servers tolerate ~3 periods).
  for (core::Phone* p : {&relay_phone, &ue1_phone, &ue2_phone}) {
    world.register_session(*p, 3 * app.heartbeat_period);
  }

  // 6. Run 15 simulated minutes.
  relay.start();
  ue1.start();
  ue2.start();
  world.run_for(minutes(15));

  // 7. Results.
  std::cout << "D2D heartbeat forwarding — quickstart (15 simulated "
               "minutes, 60 s heartbeats)\n\n";
  Table table{{"Phone", "Role", "Radio energy (uAh)", "L3 messages",
               "Heartbeats delivered"}};
  auto session = [&](core::Phone& p) {
    return world.server().stats(p.id(), AppId{p.id().value}).delivered;
  };
  table.add_row({"#1", "relay",
                 Table::num(relay_phone.radio_charge().value, 0),
                 std::to_string(world.bs().signaling().count_for(
                     relay_phone.id())),
                 std::to_string(session(relay_phone))});
  table.add_row({"#2", "UE", Table::num(ue1_phone.radio_charge().value, 0),
                 std::to_string(world.bs().signaling().count_for(
                     ue1_phone.id())),
                 std::to_string(session(ue1_phone))});
  table.add_row({"#3", "UE", Table::num(ue2_phone.radio_charge().value, 0),
                 std::to_string(world.bs().signaling().count_for(
                     ue2_phone.id())),
                 std::to_string(session(ue2_phone))});
  table.print(std::cout);

  std::cout << "\nRelay aggregated " << relay.stats().forwarded_received
            << " forwarded heartbeats into " << relay.stats().bundles_sent
            << " cellular connections (mean bundle "
            << Table::num(relay.scheduler().stats().mean_bundle_size(), 1)
            << " messages) and earned "
            << Table::num(world.ledger().balance(relay_phone.id()), 0)
            << " credits.\n";
  std::cout << "Everyone stayed online: "
            << world.server().totals().offline_events
            << " offline events, " << world.server().totals().late
            << " late heartbeats.\n";
  return 0;
}
