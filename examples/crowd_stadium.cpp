// Stadium scenario: the high-density crowd that motivates the paper
// (Section II-D). Eighty phones packed into four stands; a fifth of them
// volunteer as relays. Compares an hour of the D2D framework against the
// original system and prints the operator-facing dashboard: total and
// peak control-channel load, fleet energy, and delivery quality.
//
//   $ ./crowd_stadium
#include <iostream>

#include "common/table.hpp"
#include "scenario/crowd.hpp"

using namespace d2dhb;
using namespace d2dhb::scenario;

int main() {
  CrowdConfig config;
  config.phones = 80;
  config.relay_fraction = 0.2;
  config.area_m = 120.0;
  config.clusters = 4;       // four stands
  config.cluster_stddev_m = 8.0;
  config.duration_s = 3600.0;
  config.app = apps::wechat();

  std::cout << "Stadium: " << config.phones << " phones, "
            << static_cast<int>(config.relay_fraction * 100)
            << "% relays, four stands, one hour of WeChat heartbeats\n\n";

  const CrowdMetrics d2d = run_d2d_crowd(config);
  const CrowdMetrics orig = run_original_crowd(config);

  Table table{{"Metric", "Original system", "D2D framework", "Change"}};
  auto pct_change = [](double before, double after) {
    if (before == 0.0) return std::string("-");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  (after - before) / before * 100.0);
    return std::string(buf);
  };
  table.add_row({"Layer-3 messages (total)", std::to_string(orig.total_l3),
                 std::to_string(d2d.total_l3),
                 pct_change(static_cast<double>(orig.total_l3),
                            static_cast<double>(d2d.total_l3))});
  table.add_row({"Peak L3 per 10 s", std::to_string(orig.peak_l3_per_10s),
                 std::to_string(d2d.peak_l3_per_10s),
                 pct_change(static_cast<double>(orig.peak_l3_per_10s),
                            static_cast<double>(d2d.peak_l3_per_10s))});
  table.add_row({"Fleet radio energy (uAh)",
                 Table::num(orig.total_radio_uah, 0),
                 Table::num(d2d.total_radio_uah, 0),
                 pct_change(orig.total_radio_uah, d2d.total_radio_uah)});
  table.add_row({"Heartbeats delivered",
                 std::to_string(orig.heartbeats_delivered),
                 std::to_string(d2d.heartbeats_delivered), "-"});
  table.add_row({"Offline events",
                 std::to_string(orig.server.offline_events),
                 std::to_string(d2d.server.offline_events), "-"});
  table.print(std::cout);

  const double via_d2d =
      d2d.heartbeats_emitted == 0
          ? 0.0
          : static_cast<double>(d2d.forwarded_via_d2d) /
                static_cast<double>(d2d.heartbeats_emitted);
  std::cout << "\n" << Table::num(via_d2d * 100.0, 1)
            << "% of heartbeats travelled over Wi-Fi Direct; relays earned "
            << Table::num(d2d.credits_issued, 0)
            << " operator credits for it.\n"
            << "Cellular fallbacks: " << d2d.fallbacks
            << ", D2D link losses: " << d2d.link_losses << ".\n";
  return 0;
}
