// Operator planning: a venue operator sizing a relay deployment.
//
// A 2x2-cell venue hosts a clustered crowd. The operator sweeps the
// relay budget under coverage-greedy selection and reads off the
// trade-off: how many volunteers must be drafted (and paid credits) to
// hit a target control-channel relief.
//
//   $ ./operator_planning
#include <iostream>

#include "common/table.hpp"
#include "scenario/crowd.hpp"

using namespace d2dhb;
using namespace d2dhb::scenario;

int main() {
  CrowdConfig base;
  base.phones = 60;
  base.area_m = 150.0;
  base.clusters = 4;
  base.cluster_stddev_m = 9.0;
  base.duration_s = 2700.0;  // 45 minutes
  base.cell_grid = 4;
  base.operator_policy = core::SelectionPolicy::coverage_greedy;
  base.app = apps::wechat();

  std::cout << "Venue: " << base.phones
            << " phones, four stands, 2x2 cells, 45 min of WeChat "
               "heartbeats.\nOperator drafts relays greedily by coverage "
               "and pays 1 credit per forwarded heartbeat.\n\n";

  const CrowdMetrics orig = run_original_crowd(base);
  std::cout << "Without the framework: " << orig.total_l3
            << " L3 messages, worst-cell peak " << orig.peak_l3_per_10s
            << " per 10 s.\n\n";

  Table table{{"Relay budget", "Relays", "Coverage", "L3 saved",
               "Worst-cell peak", "Credits owed", "Offline"}};
  for (const double fraction : {0.05, 0.10, 0.20, 0.30}) {
    CrowdConfig config = base;
    config.relay_fraction = fraction;
    const CrowdMetrics m = run_d2d_crowd(config);
    const double saved = 1.0 - static_cast<double>(m.total_l3) /
                                   static_cast<double>(orig.total_l3);
    char budget[16];
    std::snprintf(budget, sizeof(budget), "%.0f%%", fraction * 100);
    char coverage[16];
    std::snprintf(coverage, sizeof(coverage), "%.0f%%",
                  m.relay_coverage * 100);
    char saved_s[16];
    std::snprintf(saved_s, sizeof(saved_s), "%.1f%%", saved * 100);
    table.add_row({budget, std::to_string(m.relays), coverage, saved_s,
                   std::to_string(m.peak_l3_per_10s),
                   Table::num(m.credits_issued, 0),
                   std::to_string(m.server.offline_events)});
  }
  table.print(std::cout);

  std::cout << "\nReading the sweep: coverage (and the signaling relief "
               "that follows it)\nsaturates once every cluster has a "
               "relay — past that point extra budget only\nbuys credits "
               "the operator needn't spend.\n";
  return 0;
}
