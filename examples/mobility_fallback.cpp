// Mobility and fallback: a UE pairs with a relay, walks out of Wi-Fi
// Direct range mid-connection, falls back to cellular, and keeps its IM
// session alive throughout. Narrates the framework's events as they
// happen — the "negative impacts" discussion of Section V-C, made
// observable.
//
//   $ ./mobility_fallback
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "scenario/scenario.hpp"

using namespace d2dhb;

int main() {
  scenario::Scenario world;
  apps::AppProfile app = apps::standard_app();
  app.heartbeat_period = seconds(30);
  app.expiry = seconds(30);

  // Relay fixed at the origin.
  core::PhoneConfig relay_config;
  relay_config.mobility = std::make_unique<mobility::StaticMobility>(
      mobility::Vec2{0.0, 0.0});
  core::Phone& relay_phone = world.add_phone(std::move(relay_config));
  core::RelayAgent::Params relay_params;
  relay_params.own_app = app;
  relay_params.scheduler.max_own_delay = app.heartbeat_period;
  relay_params.scheduler.deadline_margin = seconds(3);
  core::RelayAgent& relay = world.add_relay(relay_phone, relay_params);

  // UE starts 2 m away and strolls off at 0.25 m/s: out of the 30 m
  // radio range around t = 112 s.
  core::PhoneConfig ue_config;
  ue_config.mobility = std::make_unique<mobility::LinearMobility>(
      mobility::Vec2{2.0, 0.0}, mobility::Vec2{0.25, 0.0});
  core::Phone& ue_phone = world.add_phone(std::move(ue_config));
  core::UeAgent::Params ue_params;
  ue_params.app = app;
  ue_params.feedback_timeout = seconds(45);
  ue_params.retry_backoff = seconds(60);
  core::UeAgent& ue = world.add_ue(ue_phone, ue_params);

  world.register_session(relay_phone, 3 * app.heartbeat_period);
  world.register_session(ue_phone, 3 * app.heartbeat_period);

  // Narrate: poll the observable state every 15 s.
  auto state_name = [](core::UeAgent::LinkState s) {
    switch (s) {
      case core::UeAgent::LinkState::idle: return "idle";
      case core::UeAgent::LinkState::discovering: return "discovering";
      case core::UeAgent::LinkState::connecting: return "connecting";
      case core::UeAgent::LinkState::connected: return "connected";
    }
    return "?";
  };
  std::cout << "t(s)  distance  link state   d2d  cellular  fallbacks  "
               "online\n";
  sim::PeriodicTimer narrator{world.sim(), seconds(15), [&] {
    const double d =
        world.medium().distance(relay_phone.id(), ue_phone.id()).value;
    std::printf("%4.0f  %6.1fm  %-11s  %3llu  %8llu  %9llu  %s\n",
                to_seconds(world.sim().now()), d,
                state_name(ue.link_state()),
                static_cast<unsigned long long>(ue.stats().sent_via_d2d),
                static_cast<unsigned long long>(
                    ue.stats().sent_via_cellular),
                static_cast<unsigned long long>(
                    ue.stats().fallback_cellular),
                world.server().online(ue_phone.id(),
                                      AppId{ue_phone.id().value})
                    ? "yes"
                    : "NO");
  }};
  narrator.start();
  relay.start();
  ue.start();
  world.run_for(seconds(300));

  std::cout << "\nSummary: " << ue.stats().link_losses
            << " link loss(es); feedback timed out "
            << ue.feedback().stats().timed_out << " time(s), failed over "
            << ue.feedback().stats().failed_immediately
            << " pending message(s) on disconnect; server recorded "
            << world.server().totals().offline_events
            << " offline events.\n";
  std::cout << "The session survived the walk-away: the framework's "
               "feedback/fallback path\nre-routed un-acked heartbeats "
               "over cellular the moment the D2D link died.\n";
  return 0;
}
