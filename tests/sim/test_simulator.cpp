#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace d2dhb::sim {
namespace {

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{});
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(seconds(3), [&] { order.push_back(3); });
  sim.schedule_after(seconds(1), [&] { order.push_back(1); });
  sim.schedule_after(seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(3));
}

TEST(Simulator, FifoWithinSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_after(seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_after(milliseconds(1500), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint{} + milliseconds(1500));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] {
    sim.schedule_after(seconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(2));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::zero(), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint{});
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_after(seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint{} + seconds(1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(seconds(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_after(seconds(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] { ++fired; });
  sim.schedule_after(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] { ++fired; });
  sim.schedule_after(seconds(10), [&] { ++fired; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(seconds(5), [&] { fired = true; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  sim.schedule_after(seconds(2), [] {});
  sim.cancel(id);
  sim.run_until(TimePoint{} + seconds(3));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, MaxEventsBound) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(seconds(i + 1), [&] { ++fired; });
  }
  sim.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  TimePoint last{};
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    // Deterministic pseudo-scatter of delays.
    const auto delay = microseconds((i * 7919) % 100000);
    sim.schedule_after(delay, [&, delay] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 5000u);
}

}  // namespace
}  // namespace d2dhb::sim
