#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace d2dhb::sim {
namespace {

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{});
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(seconds(3), [&] { order.push_back(3); });
  sim.schedule_after(seconds(1), [&] { order.push_back(1); });
  sim.schedule_after(seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(3));
}

TEST(Simulator, FifoWithinSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_after(seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule_after(milliseconds(1500), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint{} + milliseconds(1500));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] {
    sim.schedule_after(seconds(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(2));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::zero(), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint{});
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_after(seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint{} + seconds(1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(seconds(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_after(seconds(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] { ++fired; });
  sim.schedule_after(seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(seconds(1), [&] { ++fired; });
  sim.schedule_after(seconds(10), [&] { ++fired; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(seconds(5), [&] { fired = true; });
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  sim.schedule_after(seconds(2), [] {});
  sim.cancel(id);
  sim.run_until(TimePoint{} + seconds(3));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, MaxEventsBound) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(seconds(i + 1), [&] { ++fired; });
  }
  sim.run(3);
  EXPECT_EQ(fired, 3);
}

// Regression: pending_events() must track live events exactly through
// cancel-after-fire and double-cancel, where the old heap-minus-tombstone
// arithmetic could drift.
TEST(Simulator, PendingEventsAccounting) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  const EventId a = sim.schedule_after(seconds(1), [] {});
  const EventId b = sim.schedule_after(seconds(2), [] {});
  sim.schedule_after(seconds(3), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);

  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_FALSE(sim.cancel(a));  // double-cancel: no drift
  EXPECT_EQ(sim.pending_events(), 2u);

  EXPECT_TRUE(sim.step());  // fires b (a's tombstone skipped)
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(b));  // cancel-after-fire: no drift
  EXPECT_EQ(sim.pending_events(), 1u);

  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A stale handle must never cancel a later event that reuses the same
// internal storage slot.
TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  const EventId old_id = sim.schedule_after(seconds(1), [] {});
  sim.run();  // fires; the slot is recycled
  bool fired = false;
  const EventId new_id =
      sim.schedule_after(seconds(1), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(sim.cancel(old_id));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledStormKeepsAccountingExact) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_after(microseconds((i * 31) % 500 + 1), [] {}));
  }
  // Cancel every other event, some of them twice.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(ids[i]));
    EXPECT_FALSE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.pending_events(), 500u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 500u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelWithinCallbackOfSameInstant) {
  Simulator sim;
  bool second_fired = false;
  EventId second{};
  sim.schedule_after(seconds(1), [&] { sim.cancel(second); });
  second = sim.schedule_after(seconds(1), [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// run_until must retire tombstones it walks past without disturbing the
// live count.
TEST(Simulator, RunUntilAccountsCancelledHeads) {
  Simulator sim;
  const EventId a = sim.schedule_after(seconds(1), [] {});
  sim.schedule_after(seconds(10), [] {});
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  TimePoint last{};
  bool monotone = true;
  for (int i = 0; i < 5000; ++i) {
    // Deterministic pseudo-scatter of delays.
    const auto delay = microseconds((i * 7919) % 100000);
    sim.schedule_after(delay, [&, delay] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 5000u);
}

}  // namespace
}  // namespace d2dhb::sim
