// Tests for the runtime invariant auditor: the simulator kernel
// self-audit, the periodic sweep, registered substrate auditors, and
// the SpatialGrid / WifiDirectMedium invariant checks — including the
// negative paths that prove the auditor actually trips on corrupted
// state (a zeroed event-slot generation, an asymmetric link table).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "d2d/wifi_direct.hpp"
#include "energy/energy_meter.hpp"
#include "mobility/mobility.hpp"
#include "mobility/spatial_grid.hpp"
#include "sim/simulator.hpp"
#include "world/node_table.hpp"

namespace d2dhb::d2d {

/// Test backdoor: WifiDirectRadio befriends this struct so audit tests
/// can corrupt the link table without widening the public API.
struct WifiDirectRadio::Internal {
  static void drop_first_link(WifiDirectRadio& radio) {
    radio.links_.erase(radio.links_.begin());
  }
  static void corrupt_first_group(WifiDirectRadio& radio) {
    radio.links_.front().group = GroupId{9999};
  }
};

}  // namespace d2dhb::d2d

namespace d2dhb::sim {
namespace {

TEST(SimulatorAudit, HealthyKernelPassesUnderChurn) {
  Simulator sim;
  sim.set_audit_interval(1);  // audit after every executed event
  int fired = 0;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_after(seconds(i % 7), [&] { ++fired; });
    cancelled.push_back(sim.schedule_after(seconds(i % 5), [&] { ++fired; }));
  }
  for (EventId id : cancelled) EXPECT_TRUE(sim.cancel(id));
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(fired, 64);
  EXPECT_NO_THROW(sim.audit());  // explicit audit on the drained kernel
}

TEST(SimulatorAudit, CorruptedSlotGenerationTripsAudit) {
  Simulator sim;
  const EventId id = sim.schedule_after(seconds(1), [] {});
  ASSERT_TRUE(id.valid());
  const auto slot = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  sim.debug_corrupt_slot_generation(slot);
  EXPECT_THROW(sim.audit(), AuditError);
}

TEST(SimulatorAudit, PeriodicSweepCatchesCorruptionDuringRun) {
  Simulator sim;
  sim.set_audit_interval(1);
  const EventId victim = sim.schedule_after(seconds(10), [] {});
  const auto slot = static_cast<std::uint32_t>(victim.value & 0xffffffffu);
  sim.schedule_after(seconds(1), [&] {
    sim.debug_corrupt_slot_generation(slot);
  });
  // The corrupting event executes, then the post-event sweep trips.
  EXPECT_THROW(sim.run(), AuditError);
}

TEST(SimulatorAudit, RegisteredAuditorRunsEveryIntervalEvents) {
  Simulator sim;
  sim.set_audit_interval(4);
  int audits = 0;
  const std::uint64_t token = sim.add_auditor([&] { ++audits; });
  for (int i = 0; i < 12; ++i) {
    sim.schedule_after(seconds(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(audits, 3);  // after events 4, 8, 12

  sim.remove_auditor(token);
  audits = 0;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_after(seconds(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(audits, 0);
}

TEST(SimulatorAudit, AuditorExceptionPropagatesOutOfStep) {
  Simulator sim;
  sim.set_audit_interval(1);
  sim.add_auditor([] { throw AuditError("substrate invariant broken"); });
  sim.schedule_after(seconds(1), [] {});
  EXPECT_THROW(sim.run(), AuditError);
}

TEST(SimulatorAudit, IntervalZeroDisablesPeriodicSweep) {
  Simulator sim;
  sim.set_audit_interval(0);
  int audits = 0;
  sim.add_auditor([&] { ++audits; });
  for (int i = 0; i < 16; ++i) {
    sim.schedule_after(seconds(i + 1), [] {});
  }
  sim.run();
  EXPECT_EQ(audits, 0);
  sim.audit();  // explicit call still runs registered auditors
  EXPECT_EQ(audits, 1);
}

TEST(SimulatorAudit, SweepCoversEveryKernelAndMailbox) {
  Simulator sim{4};
  // Healthy cross-shard traffic passes: shard 0 posts into shard 3.
  ShardGuard guard(sim, 0);
  sim.post_to(3, TimePoint{} + seconds(5), [] {});
  EXPECT_NO_THROW(sim.audit());
  // A corrupted mailbox trips the same sweep.
  sim.post_to(3, TimePoint{} + seconds(2), [] {});
  sim.mailbox(3).debug_corrupt_order();
  EXPECT_THROW(sim.audit(), AuditError);
}

TEST(SimulatorAudit, CorruptedShardKernelTripsWorldAudit) {
  Simulator sim{2};
  // Schedule onto kernel 1, then corrupt that kernel's slot table: the
  // world-level sweep must reach non-zero shards too.
  ShardGuard guard(sim, 1);
  const EventId id = sim.schedule_after(seconds(1), [] {});
  ASSERT_EQ((id.value >> 32) & 0xffu, 1u);
  sim.kernel(1).debug_corrupt_slot_generation(
      static_cast<std::uint32_t>(id.value & 0xffffffffu));
  EXPECT_THROW(sim.audit(), AuditError);
}

TEST(NodeTableAudit, RegisteredTableAuditorTripsOnDuplicateSlots) {
  Simulator sim;
  sim.set_audit_interval(1);
  world::NodeTable table;
  sim.add_auditor([&table] { table.audit(); });
  mobility::StaticMobility still{mobility::Vec2{0.0, 0.0}};
  table.add(NodeId{1}, &still);
  table.add(NodeId{2}, &still);
  sim.schedule_after(seconds(1), [] {});
  EXPECT_NO_THROW(sim.run());
  // Two nodes claiming one D2D radio slot is the cross-substrate
  // corruption the table auditor exists to catch.
  table.set_d2d_slot(NodeId{1}, 0);
  table.set_d2d_slot(NodeId{2}, 0);
  sim.schedule_after(seconds(1), [] {});
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SpatialGridAudit, HealthyGridPassesAcrossMovementAndRemoval) {
  mobility::SpatialGrid grid(Meters{30.0});
  mobility::StaticMobility fixed(mobility::Vec2{5.0, 5.0});
  mobility::LinearMobility walker(mobility::Vec2{0.0, 0.0},
                                  mobility::Vec2{1.5, 0.0});
  grid.insert(NodeId{1}, fixed);
  grid.insert(NodeId{2}, walker);
  for (int tick = 0; tick <= 60; tick += 10) {
    const TimePoint t = TimePoint{} + seconds(tick);
    EXPECT_NO_THROW(grid.audit(t, static_cast<std::uint64_t>(tick)));
  }
  grid.remove(NodeId{2});
  EXPECT_NO_THROW(grid.audit(TimePoint{} + seconds(70), 70));
}

class MediumAuditTest : public ::testing::Test {
 protected:
  struct Phone {
    Phone(sim::Simulator& sim, d2d::WifiDirectMedium& medium, std::uint64_t id,
          double x, double y)
        : meter(sim),
          mobility(mobility::Vec2{x, y}),
          radio(sim, NodeId{id}, medium, mobility, meter,
                d2d::D2dEnergyProfile{}, Rng{id}) {}

    energy::EnergyMeter meter;
    mobility::StaticMobility mobility;
    d2d::WifiDirectRadio radio;
  };

  MediumAuditTest()
      : medium_(sim_, nodes_, d2d::WifiDirectMedium::Params{}, Rng{7}) {}

  /// Connects a at->b and runs the sim until the link is up.
  void connect(Phone& a, Phone& b) {
    b.radio.set_listening(true);
    b.radio.set_group_owner_intent(d2d::kMaxGroupOwnerIntent);
    bool done = false;
    a.radio.connect(b.radio.owner(), [&](Result<GroupId> r) {
      ASSERT_TRUE(r.ok());
      done = true;
    });
    sim_.run_until(sim_.now() + seconds(30));
    ASSERT_TRUE(done);
  }

  sim::Simulator sim_;
  world::NodeTable nodes_;
  d2d::WifiDirectMedium medium_;
};

TEST_F(MediumAuditTest, SymmetricLinksPassTheMediumAuditor) {
  Phone ue(sim_, medium_, 1, 0.0, 0.0);
  Phone relay(sim_, medium_, 2, 1.0, 0.0);
  connect(ue, relay);
  ASSERT_TRUE(ue.radio.connected_to(NodeId{2}));
  EXPECT_NO_THROW(sim_.audit());
}

TEST_F(MediumAuditTest, DroppedBackLinkTripsTheMediumAuditor) {
  Phone ue(sim_, medium_, 1, 0.0, 0.0);
  Phone relay(sim_, medium_, 2, 1.0, 0.0);
  connect(ue, relay);
  d2d::WifiDirectRadio::Internal::drop_first_link(relay.radio);
  EXPECT_THROW(sim_.audit(), sim::AuditError);
}

TEST_F(MediumAuditTest, MismatchedGroupIdTripsTheMediumAuditor) {
  Phone ue(sim_, medium_, 1, 0.0, 0.0);
  Phone relay(sim_, medium_, 2, 1.0, 0.0);
  connect(ue, relay);
  d2d::WifiDirectRadio::Internal::corrupt_first_group(ue.radio);
  EXPECT_THROW(sim_.audit(), sim::AuditError);
}

}  // namespace
}  // namespace d2dhb::sim
