#include "sim/event_kernel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace d2dhb::sim {
namespace {

TEST(EventKernel, StartsEmptyAtEpoch) {
  EventKernel kernel;
  EXPECT_EQ(kernel.now(), TimePoint{});
  EXPECT_EQ(kernel.shard(), 0u);
  EXPECT_EQ(kernel.executed_events(), 0u);
  EXPECT_EQ(kernel.pending_events(), 0u);
  EXPECT_FALSE(kernel.peek().has_value());
  EXPECT_FALSE(kernel.step());
}

TEST(EventKernel, ExecutesInTimeOrderThenFifo) {
  EventKernel kernel;
  std::vector<int> order;
  kernel.schedule_after(seconds(2), [&] { order.push_back(2); });
  kernel.schedule_after(seconds(1), [&] { order.push_back(1); });
  kernel.schedule_after(seconds(1), [&] { order.push_back(10); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
  EXPECT_EQ(kernel.now(), TimePoint{} + seconds(2));
  EXPECT_EQ(kernel.executed_events(), 3u);
}

TEST(EventKernel, PendingAccountingTracksScheduleFireCancel) {
  EventKernel kernel;
  const EventId a = kernel.schedule_after(seconds(1), [] {});
  const EventId b = kernel.schedule_after(seconds(2), [] {});
  EXPECT_EQ(kernel.pending_events(), 2u);

  EXPECT_TRUE(kernel.cancel(a));
  EXPECT_EQ(kernel.pending_events(), 1u);
  // Cancel is idempotent and does not double-decrement.
  EXPECT_FALSE(kernel.cancel(a));
  EXPECT_EQ(kernel.pending_events(), 1u);

  EXPECT_TRUE(kernel.step());
  EXPECT_EQ(kernel.pending_events(), 0u);
  EXPECT_EQ(kernel.executed_events(), 1u);
  // Fired events cannot be cancelled retroactively.
  EXPECT_FALSE(kernel.cancel(b));
  kernel.audit();
}

TEST(EventKernel, CancelledEventNeverRuns) {
  EventKernel kernel;
  bool ran = false;
  const EventId id = kernel.schedule_after(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(kernel.cancel(id));
  kernel.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(kernel.executed_events(), 0u);
}

TEST(EventKernel, SlotReuseInvalidatesStaleHandles) {
  EventKernel kernel;
  const EventId first = kernel.schedule_after(seconds(1), [] {});
  kernel.run();
  // The slot is recycled under a new generation; the old handle must
  // not cancel the new tenant.
  bool ran = false;
  const EventId second = kernel.schedule_after(seconds(1), [&] { ran = true; });
  EXPECT_NE(first.value, second.value);
  EXPECT_FALSE(kernel.cancel(first));
  kernel.run();
  EXPECT_TRUE(ran);
}

TEST(EventKernel, ShardIdBakedIntoHandles) {
  EventKernel kernel{7};
  const EventId id = kernel.schedule_after(seconds(1), [] {});
  EXPECT_EQ((id.value >> 32) & 0xffu, 7u);
  // A kernel refuses handles minted by another shard.
  EventKernel other{3};
  const EventId foreign = other.schedule_after(seconds(1), [] {});
  EXPECT_FALSE(kernel.cancel(foreign));
  EXPECT_EQ(other.pending_events(), 1u);
}

TEST(EventKernel, SharedSequenceCounterOrdersAcrossKernels) {
  std::uint64_t seq = 0;
  EventKernel a{0, &seq};
  EventKernel b{1, &seq};
  a.schedule_after(seconds(1), [] {});
  b.schedule_after(seconds(1), [] {});
  a.schedule_after(seconds(1), [] {});
  EXPECT_EQ(seq, 3u);
  // Heads expose the global draw order: a got 0 and 2, b got 1.
  EXPECT_EQ(a.peek()->seq, 0u);
  EXPECT_EQ(b.peek()->seq, 1u);
}

TEST(EventKernel, PeekRetiresTombstonesAndMatchesStep) {
  EventKernel kernel;
  const EventId doomed = kernel.schedule_after(seconds(1), [] {});
  bool ran = false;
  kernel.schedule_after(seconds(2), [&] { ran = true; });
  kernel.cancel(doomed);
  // peek() must skip the cancelled head and report the live event...
  const auto head = kernel.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->when, TimePoint{} + seconds(2));
  // ...and step() then executes exactly that entry.
  EXPECT_TRUE(kernel.step());
  EXPECT_TRUE(ran);
  EXPECT_EQ(kernel.now(), TimePoint{} + seconds(2));
}

TEST(EventKernel, ScheduleWithSeqPreservesExternalOrder) {
  std::uint64_t seq = 0;
  EventKernel kernel{0, &seq};
  std::vector<int> order;
  kernel.schedule_at(TimePoint{} + seconds(1), [&] { order.push_back(1); });
  kernel.schedule_at(TimePoint{} + seconds(1), [&] { order.push_back(2); });
  seq = 10;  // Another kernel drew sequence numbers in between.
  kernel.schedule_at(TimePoint{} + seconds(1), [&] { order.push_back(4); });
  // A mailbox delivery carrying an older draw slots in ahead of it.
  kernel.schedule_with_seq(TimePoint{} + seconds(1), 5,
                           [&] { order.push_back(3); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventKernel, ScheduleWithSeqRejectsFutureSequence) {
  EventKernel kernel;
  EXPECT_THROW(kernel.schedule_with_seq(TimePoint{} + seconds(1), 99, [] {}),
               std::logic_error);
}

TEST(EventKernel, RejectsPastAndInvalid) {
  EventKernel kernel;
  kernel.schedule_after(seconds(5), [] {});
  kernel.run();
  EXPECT_THROW(kernel.schedule_at(TimePoint{} + seconds(1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(kernel.schedule_after(seconds(-1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(kernel.schedule_after(seconds(1), nullptr),
               std::invalid_argument);
  EXPECT_FALSE(kernel.cancel(EventId{}));
}

TEST(EventKernel, RunUntilAdvancesIdleClock) {
  EventKernel kernel;
  bool ran = false;
  kernel.schedule_after(seconds(1), [&] { ran = true; });
  kernel.run_until(TimePoint{} + seconds(10));
  EXPECT_TRUE(ran);
  EXPECT_EQ(kernel.now(), TimePoint{} + seconds(10));
  const std::uint64_t epoch = kernel.time_epoch();
  kernel.advance_to(TimePoint{} + seconds(20));
  EXPECT_EQ(kernel.now(), TimePoint{} + seconds(20));
  EXPECT_GT(kernel.time_epoch(), epoch);
  EXPECT_THROW(kernel.advance_to(TimePoint{} + seconds(5)),
               std::invalid_argument);
}

TEST(EventKernel, AuditPassesThroughChurn) {
  EventKernel kernel;
  std::vector<EventId> ids;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      ids.push_back(
          kernel.schedule_after(seconds(1 + (round + i) % 7), [] {}));
    }
    // Cancel every third handle, fire a few, audit after each phase.
    for (std::size_t i = 0; i < ids.size(); i += 3) kernel.cancel(ids[i]);
    kernel.audit();
    kernel.step();
    kernel.step();
    kernel.audit();
  }
}

TEST(EventKernel, AuditDetectsCorruptedGeneration) {
  EventKernel kernel;
  const EventId id = kernel.schedule_after(seconds(1), [] {});
  kernel.debug_corrupt_slot_generation(
      static_cast<std::uint32_t>(id.value & 0xffffffffu));
  EXPECT_THROW(kernel.audit(), AuditError);
}

}  // namespace
}  // namespace d2dhb::sim
