#include "sim/shard_mailbox.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_kernel.hpp"

namespace d2dhb::sim {
namespace {

TimePoint at(double s) { return TimePoint{} + seconds(s); }

TEST(ShardMailbox, DeliversInGlobalOrderWithOriginalSeqs) {
  std::uint64_t seq = 0;
  EventKernel kernel{1, &seq};
  ShardMailbox box{1};
  std::vector<int> order;

  // The destination kernel has its own traffic drawing seqs 0 and 3...
  kernel.schedule_at(at(5), [&] { order.push_back(1); });
  box.post(at(5), seq++, 0, [&] { order.push_back(2); });  // seq 1
  box.post(at(3), seq++, 0, [&] { order.push_back(0); });  // seq 2
  kernel.schedule_at(at(5), [&] { order.push_back(3); });

  EXPECT_EQ(box.pending(), 2u);
  EXPECT_EQ(box.drain_into(kernel), 2u);
  EXPECT_EQ(box.pending(), 0u);
  kernel.run();
  // ...and the drained envelopes interleave by their post-time draws,
  // not by delivery time: (3s,seq2), (5s,seq0), (5s,seq1), (5s,seq3).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(box.posted(), 2u);
  EXPECT_EQ(box.delivered(), 2u);
  box.audit();
}

TEST(ShardMailbox, WindowBoundaryEventStaysQueued) {
  std::uint64_t seq = 0;
  EventKernel kernel{2, &seq};
  ShardMailbox box{2};
  box.post(at(9.999), seq++, 0, [] {});
  box.post(at(10), seq++, 0, [] {});  // exactly at the boundary
  box.post(at(11), seq++, 0, [] {});

  // drain_window(h) hands over strictly-before-h envelopes only: the
  // boundary event belongs to the NEXT window.
  EXPECT_EQ(box.drain_window(kernel, at(10)), 1u);
  EXPECT_EQ(box.pending(), 2u);
  EXPECT_EQ(box.horizon(), at(10));

  EXPECT_EQ(box.drain_window(kernel, at(20)), 2u);
  EXPECT_EQ(box.pending(), 0u);
  box.audit();
}

TEST(ShardMailbox, EmptyWindowStillAdvancesHorizon) {
  EventKernel kernel{0};
  ShardMailbox box{0};
  EXPECT_EQ(box.drain_window(kernel, at(10)), 0u);
  EXPECT_EQ(box.horizon(), at(10));
  // Same horizon again is a no-op; moving backwards is a logic error.
  EXPECT_EQ(box.drain_window(kernel, at(10)), 0u);
  EXPECT_THROW(box.drain_window(kernel, at(5)), std::logic_error);
}

TEST(ShardMailbox, RefusesPostsBelowHorizon) {
  EventKernel kernel{0};
  ShardMailbox box{0};
  box.drain_window(kernel, at(10));
  // Posting into the destination's past would rewrite executed history.
  EXPECT_THROW(box.post(at(9), 0, 1, [] {}), std::logic_error);
  // The horizon itself is still postable (delivered next window).
  box.post(at(10), 0, 1, [] {});
  EXPECT_EQ(box.pending(), 1u);
}

TEST(ShardMailbox, CancelledEnvelopeIsNeverDelivered) {
  std::uint64_t seq = 0;
  EventKernel kernel{1, &seq};
  ShardMailbox box{1};
  bool ran = false;
  const ShardMailbox::Ticket doomed =
      box.post(at(5), seq++, 0, [&] { ran = true; });
  box.post(at(6), seq++, 0, [] {});

  EXPECT_TRUE(box.cancel(doomed));
  EXPECT_FALSE(box.cancel(doomed));  // double-cancel reports not-pending
  EXPECT_EQ(box.pending(), 1u);

  EXPECT_EQ(box.drain_into(kernel), 1u);
  kernel.run();
  EXPECT_FALSE(ran);
  // Conservation: posted == delivered + cancelled + pending.
  EXPECT_EQ(box.posted(), 2u);
  EXPECT_EQ(box.delivered(), 1u);
  EXPECT_EQ(box.cancelled(), 1u);
  box.audit();

  // A ticket for an already-delivered envelope is dead too.
  EXPECT_FALSE(box.cancel(ShardMailbox::Ticket{}));
}

TEST(ShardMailbox, RejectsInvalidPosts) {
  ShardMailbox box{0};
  EXPECT_THROW(box.post(at(1), 0, 1, nullptr), std::invalid_argument);
}

TEST(ShardMailbox, AuditDetectsCorruptedOrder) {
  std::uint64_t seq = 0;
  ShardMailbox box{0};
  box.post(at(1), seq++, 1, [] {});
  box.post(at(2), seq++, 1, [] {});
  box.audit();
  box.debug_corrupt_order();
  EXPECT_THROW(box.audit(), AuditError);
}

}  // namespace
}  // namespace d2dhb::sim
