// The unified run engine (sim/engine.hpp): serial fallback, parallel
// window execution, horizon enforcement, and the byte-identical
// serial-vs-parallel contract on a raw Simulator (no scenario layer —
// the executor alone is under test here).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::sim {
namespace {

/// A deterministic multi-kernel workload: each shard ticks on its own
/// cadence and every tick posts a cross-shard event to the next shard
/// at a 60 ms latency (above the engine's 50 ms window). Every log
/// entry is appended by the kernel that owns its shard — single writer
/// per vector, serially and in parallel alike.
class RingWorkload {
 public:
  RingWorkload(Simulator& sim, int ticks)
      : sim_(sim), ticks_(ticks), logs_(sim.shard_count()) {
    for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
      ShardGuard guard(sim_, s);
      schedule_tick(s, 0);
    }
  }

  const std::vector<std::vector<std::string>>& logs() const { return logs_; }

 private:
  void note(std::uint32_t shard, const std::string& what) {
    logs_[shard].push_back(
        what + " @us=" +
        std::to_string(to_microseconds(sim_.now() - TimePoint{})));
  }

  void schedule_tick(std::uint32_t shard, int i) {
    sim_.schedule_after(milliseconds(7 + shard), [this, shard, i] {
      note(shard, "tick " + std::to_string(i));
      const auto peer = static_cast<std::uint32_t>(
          (shard + 1) % sim_.shard_count());
      if (peer != shard) {
        sim_.post_after(peer, milliseconds(60), [this, peer, i] {
          note(peer, "mail " + std::to_string(i));
        });
      }
      if (i + 1 < ticks_) schedule_tick(shard, i + 1);
    });
  }

  static std::int64_t to_microseconds(Duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

  Simulator& sim_;
  int ticks_;
  std::vector<std::vector<std::string>> logs_;
};

TEST(Engine, SerialFallbackMatchesRunUntil) {
  const TimePoint until = TimePoint{} + seconds(2);

  Simulator classic{4};
  RingWorkload classic_load{classic, 30};
  classic.run_until(until);

  Simulator engine{4};
  RingWorkload engine_load{engine, 30};
  const RunStats stats = run(engine, until);  // defaults: threads = 1

  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.windows, 0u);
  EXPECT_EQ(engine.executed_events(), classic.executed_events());
  EXPECT_EQ(engine.now(), classic.now());
  EXPECT_EQ(engine_load.logs(), classic_load.logs());
}

TEST(Engine, ParallelRunIsByteIdenticalToSerial) {
  const TimePoint until = TimePoint{} + seconds(2);

  Simulator serial{4};
  RingWorkload serial_load{serial, 40};
  run(serial, until);

  Simulator parallel{4};
  RingWorkload parallel_load{parallel, 40};
  RunOptions options;
  options.threads = 4;
  const RunStats stats = run(parallel, until, options);

  EXPECT_EQ(stats.workers, 4u);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.cross_posted, 0u);
  EXPECT_EQ(stats.cross_posted, stats.cross_delivered);
  EXPECT_EQ(parallel.executed_events(), serial.executed_events());
  EXPECT_EQ(parallel.now(), serial.now());
  EXPECT_EQ(parallel_load.logs(), serial_load.logs());
}

TEST(Engine, WorkerCountIsCappedByShardsOption) {
  Simulator sim{4};
  RingWorkload load{sim, 10};
  RunOptions options;
  options.threads = 8;
  options.shards = 2;
  const RunStats stats = run(sim, TimePoint{} + seconds(1), options);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.cross_posted, stats.cross_delivered);
}

// Satellite stress: a chain that posts cross-shard at EXACTLY the
// horizon boundary, from worker threads. Each hop executes at the head
// time M of its window; the engine's next target (and therefore the
// mailbox horizon) is M + window, and the hop posts its successor at
// precisely now + window == horizon. ShardMailbox must accept the
// boundary post (only strictly-below-horizon is a violation), deliver
// it in the NEXT window, and preserve order — for every one of the
// 200 hops. Barrier audits are forced on to sweep the invariants at
// every window.
TEST(Engine, PostsAtExactHorizonBoundaryFromWorkers) {
  constexpr int kHops = 200;
  Simulator sim{4};
  std::vector<std::uint64_t> hops_per_shard(sim.shard_count(), 0);

  struct Chain {
    Simulator& sim;
    std::vector<std::uint64_t>& hops;
    Duration window;
    int remaining;

    void hop() {
      const std::uint32_t shard = sim.current_shard();
      ++hops[shard];
      if (remaining-- <= 0) return;
      const auto next =
          static_cast<std::uint32_t>((shard + 1) % sim.shard_count());
      // now + window is exactly the next window target == the horizon
      // the destination mailbox will hold after this round's drain.
      sim.post_after(next, window, [this] { hop(); });
    }
  };

  RunOptions options;
  options.threads = 4;
  options.audit = true;
  Chain chain{sim, hops_per_shard, options.window, kHops - 1};
  {
    ShardGuard guard(sim, 0);
    sim.schedule_at(TimePoint{} + seconds(1), [&chain] { chain.hop(); });
  }

  const TimePoint until =
      TimePoint{} + seconds(1) + (kHops + 2) * options.window;
  const RunStats stats = run(sim, until, options);

  std::uint64_t total = 0;
  for (std::uint64_t h : hops_per_shard) total += h;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kHops));
  // Every hop after the first crossed a kernel border...
  EXPECT_EQ(stats.cross_posted, static_cast<std::uint64_t>(kHops - 1));
  EXPECT_EQ(stats.cross_posted, stats.cross_delivered);
  // ...with zero slack beyond the window itself.
  EXPECT_EQ(stats.min_slack_us, 50'000);
  EXPECT_GT(stats.windows, 0u);
}

// A window wider than the smallest cross-shard latency must fail
// loudly (the mailbox refuses below-horizon posts) instead of
// reordering the past — and the worker's exception must propagate to
// the caller.
TEST(Engine, TooWideWindowThrowsInsteadOfReordering) {
  Simulator sim{2};
  {
    ShardGuard guard(sim, 0);
    sim.schedule_at(TimePoint{} + seconds(1), [&sim] {
      sim.post_after(1, milliseconds(50), [] {});
    });
  }
  RunOptions options;
  options.threads = 2;
  options.window = seconds(1);  // >> the 50 ms post latency
  EXPECT_THROW(run(sim, TimePoint{} + seconds(5), options),
               std::logic_error);
}

TEST(Engine, RejectsBadArguments) {
  Simulator sim;
  sim.run_until(TimePoint{} + seconds(2));
  EXPECT_THROW(run(sim, TimePoint{} + seconds(1)), std::invalid_argument);
  RunOptions options;
  options.window = Duration::zero();
  EXPECT_THROW(run(sim, TimePoint{} + seconds(3), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace d2dhb::sim
