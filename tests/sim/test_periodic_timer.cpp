#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace d2dhb::sim {
namespace {

TEST(PeriodicTimer, FiresEveryPeriod) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTimer timer{sim, seconds(10),
                      [&] { fire_times.push_back(to_seconds(sim.now())); }};
  timer.start();
  sim.run_until(TimePoint{} + seconds(35));
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(PeriodicTimer, StartAfterCustomDelay) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTimer timer{sim, seconds(10),
                      [&] { fire_times.push_back(to_seconds(sim.now())); }};
  timer.start_after(seconds(3));
  sim.run_until(TimePoint{} + seconds(25));
  EXPECT_EQ(fire_times, (std::vector<double>{3.0, 13.0, 23.0}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, seconds(1), [&] { ++ticks; }};
  timer.start();
  sim.run_until(TimePoint{} + seconds(3));
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(TimePoint{} + seconds(10));
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, seconds(1), [&] {
                        if (++ticks == 2) timer.stop();
                      }};
  timer.start();
  sim.run_until(TimePoint{} + seconds(10));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTimer timer{sim, seconds(10),
                      [&] { fire_times.push_back(to_seconds(sim.now())); }};
  timer.start();
  sim.run_until(TimePoint{} + seconds(15));  // one tick at 10
  timer.start();                             // re-phase from t=15
  sim.run_until(TimePoint{} + seconds(30));
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 25.0}));
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Duration::zero(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(PeriodicTimer(sim, seconds(-1), [] {}), std::invalid_argument);
}

TEST(PeriodicTimer, DestructionCancelsCleanly) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer{sim, seconds(1), [&] { ++ticks; }};
    timer.start();
  }  // destroyed while armed
  sim.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace d2dhb::sim
