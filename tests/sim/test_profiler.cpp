// The engine profiling layer: ScopedSpan RAII recording (exceptions
// included), deterministic (worker, seq) buffer merging, ProfileSummary
// math on synthetic spans, and the live engine integration — profiled
// runs must report real spans while staying byte-identical to
// unprofiled ones, and the deterministic per-shard counters must agree
// at every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/trace_span.hpp"
#include "metrics/registry.hpp"
#include "sim/engine.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::sim {
namespace {

SpanRecord make_span(SpanKind kind, std::uint32_t shard,
                     std::uint64_t begin_us, std::uint64_t duration_us,
                     std::uint64_t payload) {
  SpanRecord r;
  r.kind = kind;
  r.shard = shard;
  r.begin_ns = begin_us * 1000;
  r.end_ns = (begin_us + duration_us) * 1000;
  r.payload = payload;
  return r;
}

TEST(TraceSpan, ScopedSpanRecordsOnNormalExit) {
  SpanBuffer buffer{3};
  {
    ScopedSpan span(&buffer, SpanKind::execute, 7);
    span.set_payload(42);
  }
  ASSERT_EQ(buffer.size(), 1u);
  const SpanRecord& r = buffer.spans().front();
  EXPECT_EQ(r.kind, SpanKind::execute);
  EXPECT_EQ(r.worker, 3u);
  EXPECT_EQ(r.shard, 7u);
  EXPECT_EQ(r.seq, 0u);
  EXPECT_EQ(r.payload, 42u);
  EXPECT_GE(r.end_ns, r.begin_ns);
}

TEST(TraceSpan, ScopedSpanRecordsWhenScopeUnwindsThroughException) {
  SpanBuffer buffer{0};
  try {
    ScopedSpan span(&buffer, SpanKind::drain, 1);
    span.set_payload(5);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.spans().front().kind, SpanKind::drain);
  EXPECT_EQ(buffer.spans().front().payload, 5u);
}

TEST(TraceSpan, ExplicitCloseIsIdempotent) {
  SpanBuffer buffer{0};
  {
    ScopedSpan span(&buffer, SpanKind::window);
    span.close();
    span.close();  // second close and the destructor must both no-op
  }
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TraceSpan, NullBufferMakesSpansNoOps) {
  ScopedSpan span(nullptr, SpanKind::execute, 0);
  span.set_payload(1);
  span.close();  // must not crash; nothing to record into
}

TEST(TraceSpan, BufferStampsMonotoneSequenceNumbers) {
  SpanBuffer buffer{2};
  for (int i = 0; i < 3; ++i) {
    buffer.push(make_span(SpanKind::execute, 0, 0, 1, 0));
  }
  ASSERT_EQ(buffer.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(buffer.spans()[i].seq, i);
    EXPECT_EQ(buffer.spans()[i].worker, 2u);
  }
}

TEST(Profiler, MergesBuffersInWorkerSeqOrder) {
  Profiler profiler;
  profiler.begin_run(2, 2);
  // Interleave pushes across buffers; the merge must come out grouped
  // by worker (main thread last) with seq ascending within each.
  profiler.buffer(1)->push(make_span(SpanKind::execute, 1, 10, 5, 0));
  profiler.buffer(0)->push(make_span(SpanKind::execute, 0, 0, 5, 0));
  profiler.main_buffer()->push(make_span(SpanKind::window,
                                         SpanRecord::kNoShard, 0, 20, 0));
  profiler.buffer(0)->push(make_span(SpanKind::drain, 0, 6, 1, 0));
  profiler.end_run();

  const std::vector<SpanRecord>& merged = profiler.spans();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const bool ordered =
        merged[i - 1].worker < merged[i].worker ||
        (merged[i - 1].worker == merged[i].worker &&
         merged[i - 1].seq < merged[i].seq);
    EXPECT_TRUE(ordered) << "records " << i - 1 << " and " << i;
  }
  EXPECT_EQ(merged[0].worker, 0u);
  EXPECT_EQ(merged.back().worker, 2u);  // the main thread's buffer
}

TEST(Profiler, SummarizeComputesPhaseTotalsPercentilesAndImbalance) {
  Profiler profiler;
  profiler.begin_run(2, 2);
  SpanBuffer* main = profiler.main_buffer();
  main->push(make_span(SpanKind::window, SpanRecord::kNoShard, 0, 100, 0));
  main->push(make_span(SpanKind::window, SpanRecord::kNoShard, 100, 100, 1));
  main->push(make_span(SpanKind::serial_tail, SpanRecord::kNoShard,
                       200, 30, 7));
  profiler.buffer(0)->push(make_span(SpanKind::drain, 0, 0, 10, 5));
  profiler.buffer(0)->push(make_span(SpanKind::execute, 0, 10, 50, 100));
  profiler.buffer(0)->push(
      make_span(SpanKind::barrier_wait, SpanRecord::kNoShard, 60, 20, 0));
  profiler.buffer(1)->push(make_span(SpanKind::drain, 1, 0, 10, 3));
  profiler.buffer(1)->push(make_span(SpanKind::execute, 1, 10, 100, 200));
  profiler.buffer(1)->push(
      make_span(SpanKind::barrier_wait, SpanRecord::kNoShard, 110, 40, 1));
  profiler.end_run();

  const ProfileSummary s = profiler.summarize();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.windows, 2u);
  EXPECT_EQ(s.windowed_ns, 200'000u);
  EXPECT_EQ(s.serial_tail_ns, 30'000u);
  EXPECT_EQ(s.drain_ns, 20'000u);
  EXPECT_EQ(s.execute_ns, 150'000u);
  EXPECT_EQ(s.barrier_wait_ns, 60'000u);
  EXPECT_EQ(s.mailbox_drained, 8u);
  ASSERT_EQ(s.shard_busy_ns.size(), 2u);
  EXPECT_EQ(s.shard_busy_ns[0], 50'000u);
  EXPECT_EQ(s.shard_busy_ns[1], 100'000u);
  ASSERT_EQ(s.shard_events.size(), 2u);
  EXPECT_EQ(s.shard_events[0], 100u);
  EXPECT_EQ(s.shard_events[1], 200u);
  EXPECT_EQ(s.barrier_waits, 2u);
  // Nearest-rank over {20, 40} µs.
  EXPECT_DOUBLE_EQ(s.barrier_wait_p50_us, 20.0);
  EXPECT_DOUBLE_EQ(s.barrier_wait_p90_us, 40.0);
  EXPECT_DOUBLE_EQ(s.barrier_wait_p99_us, 40.0);
  EXPECT_DOUBLE_EQ(s.barrier_wait_max_us, 40.0);
  // max / mean busy = 100k / 75k.
  EXPECT_NEAR(s.load_imbalance, 100.0 / 75.0, 1e-9);
  // (drain + execute) / (workers × windowed) = 170k / 400k.
  EXPECT_NEAR(s.window_utilization, 0.425, 1e-9);
  EXPECT_GT(s.wall_ns, 0u);
}

TEST(Profiler, RearmingDiscardsThePreviousRun) {
  Profiler profiler;
  profiler.begin_run(1, 1);
  profiler.buffer(0)->push(make_span(SpanKind::execute, 0, 0, 5, 1));
  profiler.end_run();
  ASSERT_EQ(profiler.spans().size(), 1u);
  profiler.begin_run(1, 1);
  profiler.end_run();
  EXPECT_TRUE(profiler.spans().empty());
}

/// The engine-side workload: each shard ticks on its own cadence and
/// posts a cross-shard event to the next shard above the window width
/// (mirrors test_engine.cpp's ring).
class RingWorkload {
 public:
  RingWorkload(Simulator& sim, int ticks) : sim_(sim), ticks_(ticks) {
    for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
      ShardGuard guard(sim_, s);
      schedule_tick(s, 0);
    }
  }

 private:
  void schedule_tick(std::uint32_t shard, int i) {
    sim_.schedule_after(milliseconds(7 + shard), [this, shard, i] {
      const auto peer =
          static_cast<std::uint32_t>((shard + 1) % sim_.shard_count());
      if (peer != shard) {
        sim_.post_after(peer, milliseconds(60), [] {});
      }
      if (i + 1 < ticks_) schedule_tick(shard, i + 1);
    });
  }

  Simulator& sim_;
  int ticks_;
};

TEST(Profiler, EngineRunFillsProfileSummary) {
  Simulator sim{4};
  RingWorkload load{sim, 40};
  RunOptions options;
  options.threads = 4;
  options.profile = true;
  const RunStats stats = run(sim, TimePoint{} + seconds(2), options);

  const ProfileSummary& p = stats.profile;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.workers, stats.workers);
  EXPECT_EQ(p.windows, stats.windows);
  EXPECT_GT(p.windows, 0u);
  EXPECT_GT(p.windowed_ns, 0u);
  EXPECT_GT(p.execute_ns, 0u);
  ASSERT_EQ(p.shard_busy_ns.size(), sim.shard_count());
  ASSERT_EQ(p.shard_events.size(), sim.shard_count());
  std::uint64_t span_events = 0;
  for (std::uint64_t e : p.shard_events) span_events += e;
  EXPECT_GT(span_events, 0u);
  EXPECT_LE(span_events, sim.executed_events());
  EXPECT_GT(p.barrier_waits, 0u);
  EXPECT_LE(p.barrier_wait_p50_us, p.barrier_wait_p90_us);
  EXPECT_LE(p.barrier_wait_p90_us, p.barrier_wait_p99_us);
  EXPECT_LE(p.barrier_wait_p99_us, p.barrier_wait_max_us);
  EXPECT_GE(p.load_imbalance, 1.0);
  EXPECT_GT(p.window_utilization, 0.0);
  EXPECT_LE(p.window_utilization, 1.0);
  // The drain volume the spans saw is the engine's delivered count.
  EXPECT_EQ(p.mailbox_drained, stats.cross_delivered);
}

TEST(Profiler, UnprofiledRunLeavesSummaryDisabled) {
  Simulator sim{2};
  RingWorkload load{sim, 10};
  RunOptions options;
  options.threads = 2;
  const RunStats stats = run(sim, TimePoint{} + seconds(1), options);
  EXPECT_FALSE(stats.profile.enabled);
  EXPECT_EQ(stats.profile.windows, 0u);
}

TEST(Profiler, CallerOwnedProfilerKeepsSpansAndPublishesRuntimeMetrics) {
  Simulator sim{2};
  RingWorkload load{sim, 20};
  Profiler profiler;
  RunOptions options;
  options.threads = 2;
  options.profiler = &profiler;  // implies profile
  const RunStats stats = run(sim, TimePoint{} + seconds(1), options);

  EXPECT_TRUE(stats.profile.enabled);
  EXPECT_TRUE(profiler.finished());
  EXPECT_FALSE(profiler.spans().empty());

  // publish() ran inside the engine: the registry now carries the
  // runtime/ namespace (and only profiled runs do).
  const metrics::Snapshot snapshot = sim.metrics().snapshot();
  bool saw_runtime = false;
  for (const metrics::SnapshotEntry& e : snapshot.entries) {
    if (e.name.rfind("runtime/", 0) == 0) saw_runtime = true;
  }
  EXPECT_TRUE(saw_runtime);
  EXPECT_DOUBLE_EQ(snapshot.gauge("runtime/windows"),
                   static_cast<double>(stats.windows));
}

TEST(Engine, PerShardCountersAreDeterministicAcrossThreadCounts) {
  const TimePoint until = TimePoint{} + seconds(2);

  Simulator serial{4};
  RingWorkload serial_load{serial, 40};
  const RunStats serial_stats = run(serial, until);

  Simulator parallel{4};
  RingWorkload parallel_load{parallel, 40};
  RunOptions options;
  options.threads = 4;
  options.profile = true;  // profiling must not perturb the counters
  const RunStats parallel_stats = run(parallel, until, options);

  ASSERT_EQ(serial_stats.shard_events_executed.size(), 4u);
  EXPECT_EQ(serial_stats.shard_events_executed,
            parallel_stats.shard_events_executed);
  EXPECT_EQ(serial_stats.shard_mailbox_delivered,
            parallel_stats.shard_mailbox_delivered);
  std::uint64_t total = 0;
  for (std::uint64_t e : serial_stats.shard_events_executed) total += e;
  EXPECT_EQ(total, serial.executed_events());
}

}  // namespace
}  // namespace d2dhb::sim
