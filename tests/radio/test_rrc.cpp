#include <gtest/gtest.h>

#include "energy/energy_meter.hpp"
#include "radio/cellular_modem.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::radio {
namespace {

net::UplinkBundle small_bundle(std::uint64_t node,
                               std::uint32_t bytes = 54) {
  net::UplinkBundle b;
  b.sender = NodeId{node};
  net::HeartbeatMessage m;
  m.id = MessageId{node};
  m.origin = NodeId{node};
  m.size = Bytes{bytes};
  b.messages = {m};
  return b;
}

class RrcTest : public ::testing::Test {
 protected:
  RrcTest()
      : meter_(sim_),
        modem_(sim_, NodeId{1}, wcdma_profile(), meter_, signaling_) {}

  sim::Simulator sim_;
  energy::EnergyMeter meter_;
  SignalingCounter signaling_;
  CellularModem modem_;
};

TEST_F(RrcTest, StartsIdle) {
  EXPECT_EQ(modem_.state(), RrcState::idle);
  EXPECT_DOUBLE_EQ(modem_.radio_charge().value, 0.0);
}

TEST_F(RrcTest, FullCycleStateWalk) {
  modem_.transmit(small_bundle(1));
  EXPECT_EQ(modem_.state(), RrcState::promoting);
  sim_.run_until(sim_.now() + seconds(2));  // past 1.8 s promotion
  EXPECT_EQ(modem_.state(), RrcState::transmitting);
  sim_.run_until(sim_.now() + seconds(1));  // past 0.4 s burst
  EXPECT_EQ(modem_.state(), RrcState::high);
  sim_.run_until(sim_.now() + seconds(3));  // past 2.8 s DCH inactivity
  EXPECT_EQ(modem_.state(), RrcState::low);
  sim_.run_until(sim_.now() + seconds(2.5));  // past 2.0 s FACH inactivity
  EXPECT_EQ(modem_.state(), RrcState::idle);
}

TEST_F(RrcTest, OneHeartbeatCosts8L3Messages) {
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(modem_.state(), RrcState::idle);
  // 5 setup + 1 demotion + 2 release (DESIGN.md §5 / Fig. 15 slope).
  EXPECT_EQ(signaling_.total(), 8u);
  EXPECT_EQ(wcdma_profile().full_cycle_l3(), 8u);
}

TEST_F(RrcTest, OneHeartbeatCostsCalibratedCharge) {
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(20));
  // 1.8·400 + 0.4·650 + 2.8·330 + 2.0·125 = 2154 mA·s = 598.33 µAh.
  EXPECT_NEAR(modem_.radio_charge().value, 598.33, 0.5);
}

TEST_F(RrcTest, UplinkHandlerFiresAfterBurst) {
  TimePoint done{};
  modem_.set_uplink_handler(
      [&](const net::UplinkBundle&) { done = sim_.now(); });
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(20));
  // Promotion 1.8 s + min burst 0.4 s.
  EXPECT_EQ(done, TimePoint{} + milliseconds(2200));
  EXPECT_EQ(modem_.bundles_sent(), 1u);
}

TEST_F(RrcTest, TransmitFromLowUsesReconfigurationNotSetup) {
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(6));  // now in LOW (FACH)
  ASSERT_EQ(modem_.state(), RrcState::low);
  const auto l3_before = signaling_.total();
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(modem_.state(), RrcState::idle);
  // LOW->HIGH costs 2 (reconfig + measurement), then demote 1, release 2.
  EXPECT_EQ(signaling_.total() - l3_before, 5u);
  EXPECT_EQ(modem_.rrc_promotions(), 1u);  // only the first was a promotion
}

TEST_F(RrcTest, BackToBackTransmitsShareOneConnection) {
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(2.5));  // first burst done, still HIGH
  const auto l3_before = signaling_.total();
  modem_.transmit(small_bundle(1));  // while HIGH: no new signaling
  sim_.run_until(sim_.now() + seconds(1));
  EXPECT_EQ(signaling_.total(), l3_before);
  EXPECT_EQ(modem_.bundles_sent(), 2u);
}

TEST_F(RrcTest, QueuedDuringPromotionRideAlong) {
  modem_.transmit(small_bundle(1));
  modem_.transmit(small_bundle(1));
  modem_.transmit(small_bundle(1));
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(modem_.bundles_sent(), 3u);
  EXPECT_EQ(modem_.rrc_promotions(), 1u);
  // One setup (5) + demote (1) + release (2) despite three bundles.
  EXPECT_EQ(signaling_.total(), 8u);
}

TEST_F(RrcTest, LargePayloadTriggersRbReconfiguration) {
  modem_.transmit(small_bundle(1, 400));  // > 150 B threshold
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(signaling_.total(), 9u);
  EXPECT_EQ(signaling_.count_of(L3MessageType::radio_bearer_reconfiguration),
            1u);
}

TEST_F(RrcTest, BigPayloadStretchesBurst) {
  TimePoint done{};
  modem_.set_uplink_handler(
      [&](const net::UplinkBundle&) { done = sim_.now(); });
  modem_.transmit(small_bundle(1, 200'000));  // 1 s at 200 kB/s
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(done, TimePoint{} + milliseconds(2800));  // 1.8 s + 1.0 s
}

TEST_F(RrcTest, ForceIdleDropsQueueAndState) {
  modem_.transmit(small_bundle(1));
  modem_.transmit(small_bundle(1));
  modem_.force_idle();
  EXPECT_EQ(modem_.state(), RrcState::idle);
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(modem_.bundles_sent(), 0u);
  // Setup signaling already went out before the drop (realistic: the
  // request hit the air), but no further exchanges happen.
  EXPECT_EQ(signaling_.total(), 5u);
}

TEST_F(RrcTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(RrcState::idle), "IDLE");
  EXPECT_STREQ(to_string(RrcState::promoting), "PROMOTING");
  EXPECT_STREQ(to_string(RrcState::high), "HIGH");
  EXPECT_STREQ(to_string(RrcState::transmitting), "TRANSMITTING");
  EXPECT_STREQ(to_string(RrcState::low), "LOW");
}

TEST(RrcLte, ShorterPromotionAndFewerCycleMessages) {
  sim::Simulator sim;
  energy::EnergyMeter meter{sim};
  SignalingCounter signaling;
  CellularModem modem{sim, NodeId{1}, lte_profile(), meter, signaling};
  TimePoint done{};
  modem.set_uplink_handler(
      [&](const net::UplinkBundle&) { done = sim.now(); });
  modem.transmit(small_bundle(1));
  sim.run_until(sim.now() + seconds(30));
  EXPECT_EQ(modem.state(), RrcState::idle);
  EXPECT_EQ(done, TimePoint{} + milliseconds(550));  // 0.3 s + 0.25 s
  // LTE: 5 setup + 0 DRX-entry + 2 release.
  EXPECT_EQ(signaling.total(), 7u);
}

TEST(RrcProfiles, WcdmaVsLteEnergyShape) {
  // LTE's short promotion but long DRX tail: one isolated heartbeat
  // costs less in the WCDMA promotion phase but pays the DRX tail.
  sim::Simulator sim;
  energy::EnergyMeter meter{sim};
  SignalingCounter signaling;
  CellularModem wcdma{sim, NodeId{1}, wcdma_profile(), meter, signaling};
  CellularModem lte{sim, NodeId{2}, lte_profile(), meter, signaling};
  wcdma.transmit(small_bundle(1));
  lte.transmit(small_bundle(2));
  sim.run_until(sim.now() + seconds(30));
  EXPECT_GT(wcdma.radio_charge().value, 100.0);
  EXPECT_GT(lte.radio_charge().value, 100.0);
}

}  // namespace
}  // namespace d2dhb::radio
