#include "radio/base_station.hpp"

#include <gtest/gtest.h>

namespace d2dhb::radio {
namespace {

net::UplinkBundle bundle_with(std::initializer_list<std::uint64_t> origins) {
  net::UplinkBundle b;
  b.sender = NodeId{*origins.begin()};
  std::uint64_t id = 0;
  for (const auto origin : origins) {
    net::HeartbeatMessage m;
    m.id = MessageId{++id};
    m.origin = NodeId{origin};
    m.app = AppId{origin};
    m.size = Bytes{54};
    m.expiry = seconds(300);
    b.messages.push_back(m);
  }
  return b;
}

TEST(BaseStation, ForwardsToServer) {
  sim::Simulator sim;
  net::ImServer server{sim};
  BaseStation bs{sim, server, net::Channel::Params{milliseconds(50), 0.0},
                 Rng{1}};
  bs.receive(bundle_with({1, 2, 3}));
  sim.run();
  EXPECT_EQ(server.totals().delivered, 3u);
  EXPECT_EQ(bs.bundles_received(), 1u);
  EXPECT_EQ(bs.heartbeats_received(), 3u);
}

TEST(BaseStation, CountsBytesWithAggregationHeaders) {
  sim::Simulator sim;
  net::ImServer server{sim};
  BaseStation bs{sim, server, net::Channel::Params{}, Rng{1}};
  bs.receive(bundle_with({1, 2}));
  EXPECT_EQ(bs.bytes_received(),
            2u * 54u + 2u * net::UplinkBundle::kAggregationHeader.value);
}

TEST(BaseStation, LossyBackhaulDropsDeliveries) {
  sim::Simulator sim;
  net::ImServer server{sim};
  BaseStation bs{sim, server, net::Channel::Params{milliseconds(1), 1.0},
                 Rng{1}};
  bs.receive(bundle_with({1}));
  sim.run();
  EXPECT_EQ(server.totals().delivered, 0u);
  EXPECT_EQ(bs.bundles_received(), 1u);  // the BS still saw it
}

TEST(BaseStation, SignalingCounterIsShared) {
  sim::Simulator sim;
  net::ImServer server{sim};
  BaseStation bs{sim, server, net::Channel::Params{}, Rng{1}};
  bs.signaling().record(sim.now(), NodeId{1},
                        L3MessageType::rrc_connection_request);
  EXPECT_EQ(bs.signaling().total(), 1u);
}

}  // namespace
}  // namespace d2dhb::radio
