#include "radio/signaling.hpp"

#include <gtest/gtest.h>

namespace d2dhb::radio {
namespace {

TEST(SignalingCounter, RecordsAndCounts) {
  SignalingCounter counter;
  counter.record(TimePoint{}, NodeId{1}, L3MessageType::rrc_connection_request);
  counter.record(TimePoint{}, NodeId{1}, L3MessageType::rrc_connection_setup);
  counter.record(TimePoint{}, NodeId{2}, L3MessageType::rrc_connection_request);
  EXPECT_EQ(counter.total(), 3u);
  EXPECT_EQ(counter.count_for(NodeId{1}), 2u);
  EXPECT_EQ(counter.count_for(NodeId{2}), 1u);
  EXPECT_EQ(counter.count_for(NodeId{3}), 0u);
  EXPECT_EQ(counter.count_of(L3MessageType::rrc_connection_request), 2u);
  EXPECT_EQ(counter.count_of(L3MessageType::rrc_connection_release), 0u);
}

TEST(SignalingCounter, RecordSequence) {
  SignalingCounter counter;
  const std::vector<L3MessageType> seq{
      L3MessageType::rrc_connection_request,
      L3MessageType::rrc_connection_setup,
      L3MessageType::rrc_connection_setup_complete,
  };
  counter.record_sequence(TimePoint{} + seconds(1), NodeId{1}, seq);
  EXPECT_EQ(counter.total(), 3u);
  EXPECT_EQ(counter.records().front().when, TimePoint{} + seconds(1));
}

TEST(SignalingCounter, PeakRateSlidingWindow) {
  SignalingCounter counter;
  // 5 messages at t=0..4 s, then 2 at t=100.
  for (int i = 0; i < 5; ++i) {
    counter.record(TimePoint{} + seconds(i), NodeId{1},
                   L3MessageType::measurement_report);
  }
  counter.record(TimePoint{} + seconds(100), NodeId{1},
                 L3MessageType::measurement_report);
  counter.record(TimePoint{} + seconds(100), NodeId{1},
                 L3MessageType::measurement_report);
  EXPECT_EQ(counter.peak_rate(seconds(10)), 5u);
  EXPECT_EQ(counter.peak_rate(seconds(2)), 3u);
  EXPECT_EQ(counter.peak_rate(seconds(200)), 7u);
}

TEST(SignalingCounter, PeakRateEmpty) {
  SignalingCounter counter;
  EXPECT_EQ(counter.peak_rate(seconds(10)), 0u);
}

TEST(SignalingCounter, ClearResets) {
  SignalingCounter counter;
  counter.record(TimePoint{}, NodeId{1}, L3MessageType::rrc_connection_setup);
  counter.clear();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.count_for(NodeId{1}), 0u);
  EXPECT_EQ(counter.count_of(L3MessageType::rrc_connection_setup), 0u);
}

TEST(L3MessageType, NamesAreStable) {
  EXPECT_STREQ(to_string(L3MessageType::rrc_connection_request),
               "RRC CONNECTION REQUEST");
  EXPECT_STREQ(to_string(L3MessageType::radio_bearer_reconfiguration),
               "RADIO BEARER RECONFIGURATION");
  EXPECT_STREQ(to_string(L3MessageType::rrc_connection_release_complete),
               "RRC CONNECTION RELEASE COMPLETE");
}

}  // namespace
}  // namespace d2dhb::radio
