#include "radio/capture.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace d2dhb::radio {
namespace {

TEST(Capture, DirectionsFollowProtocolRoles) {
  EXPECT_EQ(direction_of(L3MessageType::rrc_connection_request),
            LinkDirection::uplink);
  EXPECT_EQ(direction_of(L3MessageType::rrc_connection_setup),
            LinkDirection::downlink);
  EXPECT_EQ(direction_of(L3MessageType::rrc_connection_setup_complete),
            LinkDirection::uplink);
  EXPECT_EQ(direction_of(L3MessageType::rrc_connection_release),
            LinkDirection::downlink);
  EXPECT_EQ(direction_of(L3MessageType::rrc_connection_release_complete),
            LinkDirection::uplink);
  EXPECT_EQ(direction_of(L3MessageType::radio_bearer_reconfiguration),
            LinkDirection::downlink);
  // Fast dormancy's SCRI is device-initiated, hence uplink.
  EXPECT_EQ(
      direction_of(L3MessageType::signaling_connection_release_indication),
      LinkDirection::uplink);
}

TEST(Capture, ChannelAssignment) {
  // Connection request/setup ride the common control channel; the rest
  // use the dedicated one.
  EXPECT_STREQ(channel_of(L3MessageType::rrc_connection_request), "CCCH");
  EXPECT_STREQ(channel_of(L3MessageType::rrc_connection_setup), "CCCH");
  EXPECT_STREQ(channel_of(L3MessageType::radio_bearer_setup), "DCCH");
  EXPECT_STREQ(channel_of(L3MessageType::rrc_connection_release), "DCCH");
}

TEST(Capture, PrintsOneLinePerRecord) {
  SignalingCounter counter;
  counter.record(TimePoint{} + seconds(1), NodeId{1},
                 L3MessageType::rrc_connection_request);
  counter.record(TimePoint{} + seconds(2), NodeId{1},
                 L3MessageType::rrc_connection_setup);
  std::ostringstream os;
  print_capture(os, counter);
  const std::string out = os.str();
  EXPECT_NE(out.find("RRC CONNECTION REQUEST"), std::string::npos);
  EXPECT_NE(out.find("RRC CONNECTION SETUP"), std::string::npos);
  EXPECT_NE(out.find("UL"), std::string::npos);
  EXPECT_NE(out.find("DL"), std::string::npos);
  EXPECT_NE(out.find("#1"), std::string::npos);
}

TEST(Capture, LimitTruncatesWithEllipsis) {
  SignalingCounter counter;
  for (int i = 0; i < 5; ++i) {
    counter.record(TimePoint{} + seconds(i), NodeId{1},
                   L3MessageType::measurement_report);
  }
  std::ostringstream os;
  print_capture(os, counter, 2);
  EXPECT_NE(os.str().find("(3 more)"), std::string::npos);
}

TEST(Capture, EmptyCounterPrintsHeaderOnly) {
  SignalingCounter counter;
  std::ostringstream os;
  print_capture(os, counter);
  EXPECT_NE(os.str().find("Message"), std::string::npos);
}

}  // namespace
}  // namespace d2dhb::radio
