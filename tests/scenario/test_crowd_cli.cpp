// apply_crowd_flags() is the one flag table every crowd driver shares
// (the d2dhb_sim CLI and the scaling benches). These tests pin the
// interactions between knobs: --threads is allowed to exceed --shards
// (the engine caps the pool, never the parser), out-of-range values
// are rejected loudly with the exact message the driver prints, and
// flags that are absent leave pre-loaded defaults untouched.
#include "scenario/crowd_cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/operator_selection.hpp"
#include "sim/event_kernel.hpp"

namespace d2dhb::scenario {
namespace {

/// Owns argv storage for a CliFlags built from a plain list of flags.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    ptrs_.reserve(args_.size());
    for (std::string& arg : args_) ptrs_.push_back(arg.data());
  }

  CliFlags flags() {
    return CliFlags(static_cast<int>(ptrs_.size()), ptrs_.data(), 0);
  }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(CrowdCliFlags, ThreadsMayExceedShards) {
  // The parser must accept an oversubscribed pool: the effective
  // worker count is min(threads, shards, kernel count) inside the
  // engine (see sim/engine.hpp), not a parse-time constraint.
  Argv argv({"--shards", "2", "--threads", "8"});
  CliFlags flags = argv.flags();
  CrowdConfig config;
  EXPECT_EQ(apply_crowd_flags(flags, config), "");
  EXPECT_EQ(config.shards, 2u);
  EXPECT_EQ(config.threads, 8u);
  EXPECT_TRUE(flags.leftover().empty());
}

TEST(CrowdCliFlags, ShardsOutOfRangeRejected) {
  const std::string expected =
      "--shards must be in [1, " +
      std::to_string(sim::EventKernel::kMaxShards) + "]";
  {
    Argv argv({"--shards", "0"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), expected);
  }
  {
    Argv argv({"--shards",
               std::to_string(sim::EventKernel::kMaxShards + 1)});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), expected);
  }
  {
    // The boundary itself is legal.
    Argv argv({"--shards", std::to_string(sim::EventKernel::kMaxShards)});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), "");
    EXPECT_EQ(config.shards, sim::EventKernel::kMaxShards);
  }
}

TEST(CrowdCliFlags, ZeroThreadsRejected) {
  Argv argv({"--threads", "0"});
  CliFlags flags = argv.flags();
  CrowdConfig config;
  EXPECT_EQ(apply_crowd_flags(flags, config), "--threads must be at least 1");
}

TEST(CrowdCliFlags, UnknownPolicyRejectedKnownPoliciesMap) {
  {
    Argv argv({"--policy", "bogus"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), "unknown --policy: bogus");
  }
  {
    Argv argv({"--policy", "greedy"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), "");
    ASSERT_TRUE(config.operator_policy.has_value());
    EXPECT_EQ(*config.operator_policy,
              core::SelectionPolicy::coverage_greedy);
  }
  {
    // first-n is the legacy layout: it clears a pre-loaded policy.
    Argv argv({"--policy", "first-n"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    config.operator_policy = core::SelectionPolicy::density;
    EXPECT_EQ(apply_crowd_flags(flags, config), "");
    EXPECT_FALSE(config.operator_policy.has_value());
  }
}

TEST(CrowdCliFlags, HeapAgentsIsOptInAndSticky) {
  {
    Argv argv({"--heap-agents"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    EXPECT_EQ(apply_crowd_flags(flags, config), "");
    EXPECT_TRUE(config.heap_agents);
  }
  {
    // Absent flag leaves a driver's pre-loaded default untouched.
    Argv argv({"--phones", "12"});
    CliFlags flags = argv.flags();
    CrowdConfig config;
    config.heap_agents = true;
    EXPECT_EQ(apply_crowd_flags(flags, config), "");
    EXPECT_TRUE(config.heap_agents);
  }
}

TEST(CrowdCliFlags, UnconsumedFlagsSurfaceAsLeftover) {
  Argv argv({"--phones", "12", "--bogus", "1"});
  CliFlags flags = argv.flags();
  CrowdConfig config;
  EXPECT_EQ(apply_crowd_flags(flags, config), "");
  const std::vector<std::string> leftover = flags.leftover();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "--bogus");
}

}  // namespace
}  // namespace d2dhb::scenario
