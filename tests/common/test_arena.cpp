#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace d2dhb {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

/// Appends its tag to a shared journal on destruction, so tests can
/// assert the exact teardown order.
struct Journaled {
  Journaled(int tag, std::vector<int>& journal)
      : tag_(tag), journal_(journal) {}
  ~Journaled() { journal_.push_back(tag_); }
  int tag_;
  std::vector<int>& journal_;
};

struct alignas(64) Overaligned {
  double payload[4];
};

TEST(ArenaTest, AllocateRespectsAlignment) {
  for (const Arena::Mode mode : {Arena::Mode::pooled, Arena::Mode::heap}) {
    Arena arena{mode};
    for (const std::size_t align : {1u, 2u, 8u, 16u, 64u, 256u}) {
      // Offset the cursor by an odd size first so alignment is earned,
      // not inherited from a fresh block.
      arena.allocate(3, 1);
      EXPECT_TRUE(aligned_to(arena.allocate(8, align), align))
          << "mode " << static_cast<int>(mode) << " align " << align;
    }
  }
}

TEST(ArenaTest, CreatePlacesOveralignedTypes) {
  Arena arena;
  arena.allocate(1, 1);
  Overaligned& o = arena.create<Overaligned>();
  EXPECT_TRUE(aligned_to(&o, alignof(Overaligned)));
}

TEST(ArenaTest, RejectsBadAlignment) {
  Arena arena;
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(Arena(Arena::Mode::pooled, 0), std::invalid_argument);
}

TEST(ArenaTest, DestructorsRunInReverseAllocationOrder) {
  std::vector<int> journal;
  {
    Arena arena;
    arena.create<Journaled>(1, journal);
    arena.create<Journaled>(2, journal);
    arena.create<Journaled>(3, journal);
  }
  EXPECT_EQ(journal, (std::vector<int>{3, 2, 1}));
}

TEST(ArenaTest, ResetRunsFinalizersAndAllowsReuse) {
  std::vector<int> journal;
  Arena arena;
  void* first = &arena.create<Journaled>(1, journal);
  arena.create<Journaled>(2, journal);
  const std::uint64_t reserved = arena.stats().bytes_reserved;
  const std::uint64_t blocks = arena.stats().blocks;
  arena.reset();
  EXPECT_EQ(journal, (std::vector<int>{2, 1}));
  EXPECT_EQ(arena.stats().objects, 0u);
  // Pooled blocks are retained: the next generation reuses the same
  // storage from the start instead of growing the footprint.
  void* again = &arena.create<Journaled>(3, journal);
  EXPECT_EQ(again, first);
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);
  EXPECT_EQ(arena.stats().blocks, blocks);
}

TEST(ArenaTest, HeapModeReleasesMemoryOnReset) {
  Arena arena{Arena::Mode::heap};
  arena.allocate(1024, 8);
  EXPECT_GT(arena.stats().bytes_reserved, 0u);
  EXPECT_EQ(arena.stats().blocks, 0u);
  arena.reset();
  EXPECT_EQ(arena.stats().bytes_reserved, 0u);
  EXPECT_EQ(arena.stats().bytes_allocated, 0u);
}

TEST(ArenaTest, AdoptTakesOwnershipAndDeletesInOrder) {
  std::vector<int> journal;
  {
    Arena arena;
    arena.create<Journaled>(1, journal);
    arena.adopt(std::make_unique<Journaled>(2, journal));
    arena.create<Journaled>(3, journal);
    EXPECT_EQ(arena.stats().objects, 3u);
  }
  EXPECT_EQ(journal, (std::vector<int>{3, 2, 1}));
}

TEST(ArenaTest, OversizeAllocationGetsDedicatedBlock) {
  Arena arena{Arena::Mode::pooled, 1024};
  void* small = arena.allocate(16, 8);
  void* huge = arena.allocate(64 * 1024, 8);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(arena.stats().blocks, 2u);
  // The small block stays current: the next small allocation does not
  // land in (and waste) the dedicated oversize block... but any block
  // with room is acceptable; what matters is both survive writes.
  auto* bytes = static_cast<std::byte*>(huge);
  bytes[0] = std::byte{0xAB};
  bytes[64 * 1024 - 1] = std::byte{0xCD};
  EXPECT_EQ(bytes[0], std::byte{0xAB});
}

TEST(ArenaTest, StatsTrackAllocations) {
  Arena arena;
  EXPECT_EQ(arena.stats().bytes_allocated, 0u);
  arena.allocate(100, 4);
  EXPECT_EQ(arena.stats().bytes_allocated, 100u);
  arena.allocate(1, 8);  // rounded up to one aligned unit
  EXPECT_EQ(arena.stats().bytes_allocated, 108u);
  EXPECT_GE(arena.stats().bytes_reserved, arena.stats().bytes_allocated);
}

TEST(ArenaTest, TriviallyDestructibleCreateCountsAsObject) {
  Arena arena;
  arena.create<int>(7);
  EXPECT_EQ(arena.stats().objects, 1u);
}

TEST(ArenaHandleTest, BorrowedHandleUsesTheSharedArena) {
  Arena shared;
  ArenaHandle handle{&shared};
  handle.get().create<int>(1);
  EXPECT_EQ(shared.stats().objects, 1u);
}

TEST(ArenaHandleTest, UnborrowedHandleOwnsAPrivateHeapArena) {
  std::vector<int> journal;
  {
    ArenaHandle handle;
    Arena& arena = handle.get();
    EXPECT_EQ(arena.mode(), Arena::Mode::heap);
    arena.create<Journaled>(1, journal);
    EXPECT_EQ(&handle.get(), &arena);
  }
  EXPECT_EQ(journal, (std::vector<int>{1}));
}

}  // namespace
}  // namespace d2dhb
