// Negative-compile probe for the thread-safety annotation layer.
//
// Compiled twice by ctest under Clang with -Werror=thread-safety (see
// tests/CMakeLists.txt):
//   - as-is: must compile clean, proving the macros expand to valid
//     attributes and the lock/guard idioms used across the tree pass
//     the analysis;
//   - with -DNEGCOMPILE_VIOLATE: drops the D2DHB_REQUIRES below, so
//     add() writes a guarded field without declaring the capability —
//     the analysis MUST reject this (WILL_FAIL), proving the CI leg
//     actually has teeth and is not silently annotating into the void.
//
// GCC has no thread-safety analysis; the ctest entries are gated on
// the Clang compiler id, so this file is never built elsewhere.
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) D2DHB_EXCLUDES(mutex_) {
    const d2dhb::MutexLock lock(mutex_);
    add(amount);
  }

  int balance() const D2DHB_EXCLUDES(mutex_) {
    const d2dhb::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  void add(int amount)
#ifndef NEGCOMPILE_VIOLATE
      D2DHB_REQUIRES(mutex_)
#endif
  {
    balance_ += amount;
  }

  mutable d2dhb::Mutex mutex_;
  int balance_ D2DHB_GUARDED_BY(mutex_){0};
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
