#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace d2dhb {
namespace {

TEST(Table, PrintsAlignedMarkdown) {
  Table t{{"App", "Heartbeats"}};
  t.add_row({"WeChat", "50%"});
  t.add_row({"WhatsApp", "61.9%"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| App "), std::string::npos);
  EXPECT_NE(out.find("WeChat"), std::string::npos);
  EXPECT_NE(out.find("61.9%"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, CsvEscapesSpecials) {
  Table t{{"name", "value"}};
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t{{"x"}};
  t.add_row({"plain"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\nplain\n");
}

TEST(AsciiChart, RendersAllSeries) {
  AsciiChart chart{"Energy", "transmissions", "uAh"};
  chart.add(Series{"ue", {0, 1, 2}, {100, 150, 200}});
  chart.add(Series{"relay", {0, 1, 2}, {600, 1200, 1800}});
  std::ostringstream os;
  chart.print(os, 40, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("== Energy =="), std::string::npos);
  EXPECT_NE(out.find("* = ue"), std::string::npos);
  EXPECT_NE(out.find("o = relay"), std::string::npos);
}

TEST(AsciiChart, HandlesSinglePoint) {
  AsciiChart chart{"Point", "x", "y"};
  chart.add(Series{"p", {1.0}, {2.0}});
  std::ostringstream os;
  chart.print(os, 20, 5);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiChart, HandlesEmptySeriesList) {
  AsciiChart chart{"Empty", "x", "y"};
  std::ostringstream os;
  chart.print(os, 20, 5);  // must not crash
  EXPECT_NE(os.str().find("== Empty =="), std::string::npos);
}

}  // namespace
}  // namespace d2dhb
