#include "common/units.hpp"

#include <gtest/gtest.h>

namespace d2dhb {
namespace {

TEST(Units, DurationConstructors) {
  EXPECT_EQ(seconds(1).count(), 1'000'000);
  EXPECT_EQ(milliseconds(250).count(), 250'000);
  EXPECT_EQ(microseconds(42).count(), 42);
  EXPECT_EQ(minutes(2).count(), 120'000'000);
}

TEST(Units, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(270)), 270.0);
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(100)), 0.1);
}

TEST(Units, ToSecondsOfTimePoint) {
  const TimePoint t = TimePoint{} + seconds(3.5);
  EXPECT_DOUBLE_EQ(to_seconds(t), 3.5);
}

TEST(Units, MilliAmpsArithmetic) {
  MilliAmps a{200.0};
  MilliAmps b{130.5};
  EXPECT_DOUBLE_EQ((a + b).value, 330.5);
  EXPECT_DOUBLE_EQ((a - b).value, 69.5);
  a += b;
  EXPECT_DOUBLE_EQ(a.value, 330.5);
  a -= b;
  EXPECT_DOUBLE_EQ(a.value, 200.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 400.0);
}

TEST(Units, MicroAmpHoursArithmetic) {
  MicroAmpHours a{100.0};
  MicroAmpHours b{25.0};
  EXPECT_DOUBLE_EQ((a + b).value, 125.0);
  EXPECT_DOUBLE_EQ((a - b).value, 75.0);
  EXPECT_DOUBLE_EQ((a * 0.5).value, 50.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value, 25.0);
  EXPECT_LT(b, a);
}

TEST(Units, IntegrateConstantCurrent) {
  // 360 mA for 10 s = 3600 mA·s / 3.6 = 1000 µAh.
  const MicroAmpHours q = integrate(MilliAmps{360.0}, seconds(10));
  EXPECT_NEAR(q.value, 1000.0, 1e-9);
}

TEST(Units, IntegrateZeroDuration) {
  EXPECT_DOUBLE_EQ(integrate(MilliAmps{500.0}, Duration::zero()).value, 0.0);
}

TEST(Units, EnergyConversion) {
  // 1000 µAh at 3.7 V = 3.6 C · 3.7 V = 13.32 J = 13320 mJ.
  EXPECT_NEAR(to_millijoules(MicroAmpHours{1000.0}), 13320.0, 1e-6);
}

TEST(Units, BytesOrderingAndSum) {
  Bytes a{54};
  Bytes b{74};
  EXPECT_LT(a, b);
  EXPECT_EQ((a + b).value, 128u);
  a += b;
  EXPECT_EQ(a.value, 128u);
}

TEST(Units, MetersOrdering) {
  EXPECT_LT(Meters{1.0}, Meters{10.0});
}

}  // namespace
}  // namespace d2dhb
