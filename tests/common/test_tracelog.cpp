#include "common/tracelog.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace d2dhb {
namespace {

TEST(TraceLog, DisabledByDefaultRecordsNothing) {
  TraceLog log;
  log.record(TimePoint{}, TraceCategory::rrc, NodeId{1}, "x");
  EXPECT_TRUE(log.events().empty());
}

TEST(TraceLog, RecordsWhenEnabled) {
  TraceLog log;
  log.set_enabled(true);
  log.record(TimePoint{} + seconds(1), TraceCategory::rrc, NodeId{1},
             "IDLE -> PROMOTING");
  log.record(TimePoint{} + seconds(2), TraceCategory::d2d, NodeId{2},
             "link up");
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].message, "IDLE -> PROMOTING");
  EXPECT_EQ(log.count(TraceCategory::rrc), 1u);
  EXPECT_EQ(log.count(TraceCategory::d2d), 1u);
  EXPECT_EQ(log.count(TraceCategory::agent), 0u);
}

TEST(TraceLog, RingBufferDropsOldest) {
  TraceLog log{3};
  log.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    log.record(TimePoint{} + seconds(i), TraceCategory::agent, NodeId{1},
               std::to_string(i));
  }
  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events().front().message, "2");
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.count(TraceCategory::agent), 3u);  // decremented on drop
}

TEST(TraceLog, ForNodeFilters) {
  TraceLog log;
  log.set_enabled(true);
  log.record(TimePoint{}, TraceCategory::rrc, NodeId{1}, "a");
  log.record(TimePoint{}, TraceCategory::rrc, NodeId{2}, "b");
  log.record(TimePoint{}, TraceCategory::d2d, NodeId{1}, "c");
  const auto mine = log.for_node(NodeId{1});
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].message, "a");
  EXPECT_EQ(mine[1].message, "c");
}

TEST(TraceLog, ClearResetsEverything) {
  TraceLog log{2};
  log.set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    log.record(TimePoint{}, TraceCategory::rrc, NodeId{1}, "x");
  }
  log.clear();
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.count(TraceCategory::rrc), 0u);
}

TEST(TraceLog, PrintFormatsAndFilters) {
  TraceLog log;
  log.set_enabled(true);
  log.record(TimePoint{} + seconds(1.5), TraceCategory::rrc, NodeId{7},
             "IDLE -> PROMOTING");
  log.record(TimePoint{} + seconds(2), TraceCategory::agent, NodeId{8},
             "fallback");
  std::ostringstream all;
  log.print(all);
  EXPECT_NE(all.str().find("1.500"), std::string::npos);
  EXPECT_NE(all.str().find("#7"), std::string::npos);
  EXPECT_NE(all.str().find("fallback"), std::string::npos);
  std::ostringstream only_rrc;
  log.print(only_rrc, TraceCategory::rrc);
  EXPECT_NE(only_rrc.str().find("PROMOTING"), std::string::npos);
  EXPECT_EQ(only_rrc.str().find("fallback"), std::string::npos);
}

TEST(TraceLog, CapacityIsReportedAndEnforced) {
  TraceLog log{2};
  EXPECT_EQ(log.capacity(), 2u);
  log.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    log.record(TimePoint{} + seconds(i), TraceCategory::rrc, NodeId{1},
               std::to_string(i));
  }
  EXPECT_EQ(log.events().size(), log.capacity());
  EXPECT_EQ(log.dropped(), 3u);
  // Accounting invariant: everything recorded is either retained or
  // counted as dropped.
  EXPECT_EQ(log.events().size() + log.dropped(), 5u);
  log.clear();
  EXPECT_EQ(log.capacity(), 2u);  // capacity survives clear()
}

TEST(TraceLog, WriteJsonlGolden) {
  TraceLog log{8};
  log.set_enabled(true);
  log.record(TimePoint{} + seconds(1.5), TraceCategory::rrc, NodeId{7},
             "IDLE -> PROMOTING");
  log.record(TimePoint{} + seconds(2), TraceCategory::d2d, NodeId{3},
             "link \"up\"");
  std::ostringstream os;
  log.write_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"t\":1.5,\"category\":\"rrc\",\"node\":7,"
            "\"message\":\"IDLE -> PROMOTING\"}\n"
            "{\"t\":2,\"category\":\"d2d\",\"node\":3,"
            "\"message\":\"link \\\"up\\\"\"}\n"
            "{\"meta\":{\"events\":2,\"capacity\":8,\"dropped\":0}}\n");
}

TEST(TraceLog, WriteJsonlMetaCountsDrops) {
  TraceLog log{1};
  log.set_enabled(true);
  log.record(TimePoint{}, TraceCategory::agent, NodeId{1}, "a");
  log.record(TimePoint{}, TraceCategory::agent, NodeId{1}, "b");
  std::ostringstream os;
  log.write_jsonl(os);
  EXPECT_NE(os.str().find(
                "{\"meta\":{\"events\":1,\"capacity\":1,\"dropped\":1}}"),
            std::string::npos);
}

TEST(TraceLog, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::rrc), "rrc");
  EXPECT_STREQ(to_string(TraceCategory::d2d), "d2d");
  EXPECT_STREQ(to_string(TraceCategory::scheduler), "sched");
  EXPECT_STREQ(to_string(TraceCategory::agent), "agent");
}

}  // namespace
}  // namespace d2dhb
