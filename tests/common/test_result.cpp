#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace d2dhb {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Errc::not_found, "missing"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string("hello")};
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.error().code, Errc::ok);
}

TEST(Status, CarriesError) {
  Status s{Errc::disconnected, "link lost"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::disconnected);
  EXPECT_EQ(s.error().message, "link lost");
}

TEST(Status, SuccessFactory) { EXPECT_TRUE(Status::success().ok()); }

TEST(Errc, NamesAreStable) {
  EXPECT_STREQ(to_string(Errc::ok), "ok");
  EXPECT_STREQ(to_string(Errc::capacity_exceeded), "capacity_exceeded");
  EXPECT_STREQ(to_string(Errc::expired), "expired");
  EXPECT_STREQ(to_string(Errc::timeout), "timeout");
  EXPECT_STREQ(to_string(Errc::rejected), "rejected");
}

}  // namespace
}  // namespace d2dhb
