#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace d2dhb {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegatives) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(LinearFit, PerfectLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, TableIvLikeData) {
  // The paper's Table IV receive energies are approximately linear.
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> ys{123.22, 252.40, 386.106, 517.97,
                               655.82, 791.178, 911.196};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 131.0, 5.0);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, RejectsMismatchedInput) {
  EXPECT_THROW(fit_linear({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1.0}, {1.0}), std::invalid_argument);
}

TEST(LinearFit, VerticalLineDegenerates) {
  const LinearFit fit = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, EmptyAndClamping) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 150), 3.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, -10), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bucket 0
  h.add(9.9);    // bucket 4
  h.add(-5.0);   // clamped to bucket 0
  h.add(100.0);  // clamped to bucket 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace d2dhb
