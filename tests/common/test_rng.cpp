#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace d2dhb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{19};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{23};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng{29};
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  // Parent continues; child diverges.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng{37};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next_u64());
  rng.reseed(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

}  // namespace
}  // namespace d2dhb
