#include "d2d/wifi_direct.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {
namespace {

struct TestPhone {
  TestPhone(sim::Simulator& sim, WifiDirectMedium& medium, std::uint64_t id,
            std::unique_ptr<mobility::MobilityModel> mob)
      : meter(sim),
        mobility(std::move(mob)),
        radio(sim, NodeId{id}, medium, *mobility, meter, D2dEnergyProfile{},
              Rng{id}) {}

  static std::unique_ptr<TestPhone> at(sim::Simulator& sim,
                                       WifiDirectMedium& medium,
                                       std::uint64_t id, double x, double y) {
    return std::make_unique<TestPhone>(
        sim, medium, id,
        std::make_unique<mobility::StaticMobility>(mobility::Vec2{x, y}));
  }

  energy::EnergyMeter meter;
  std::unique_ptr<mobility::MobilityModel> mobility;
  WifiDirectRadio radio;
};

net::HeartbeatMessage heartbeat(std::uint64_t id, std::uint64_t origin) {
  net::HeartbeatMessage m;
  m.id = MessageId{id};
  m.origin = NodeId{origin};
  m.app = AppId{origin};
  m.size = net::kStandardHeartbeatSize;
  m.period = seconds(270);
  m.expiry = seconds(270);
  return m;
}

class WifiDirectTest : public ::testing::Test {
 protected:
  WifiDirectTest() : medium_(sim_, nodes_, WifiDirectMedium::Params{}, Rng{77}) {}

  sim::Simulator sim_;
  world::NodeTable nodes_;
  WifiDirectMedium medium_;
};

TEST_F(WifiDirectTest, DiscoveryChargesBothSidesPerTableIII) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  relay->radio.set_listening(true);
  bool done = false;
  ue->radio.start_discovery(
      [&](const std::vector<DiscoveredPeer>& peers) {
        done = true;
        ASSERT_EQ(peers.size(), 1u);
        EXPECT_EQ(peers[0].node, NodeId{2});
      });
  sim_.run_until(sim_.now() + seconds(10));
  EXPECT_TRUE(done);
  EXPECT_NEAR(ue->radio.radio_charge().value, 132.24, 0.01);
  EXPECT_NEAR(relay->radio.radio_charge().value, 122.50, 0.01);
}

TEST_F(WifiDirectTest, ConnectFormsGroupWithIntentArbitration) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  relay->radio.set_listening(true);
  relay->radio.set_group_owner_intent(kMaxGroupOwnerIntent);
  ue->radio.set_group_owner_intent(0);

  GroupId group{};
  ue->radio.connect(NodeId{2}, [&](Result<GroupId> r) {
    ASSERT_TRUE(r.ok());
    group = r.value();
  });
  sim_.run_until(sim_.now() + seconds(4));
  EXPECT_TRUE(group.valid());
  EXPECT_TRUE(ue->radio.connected_to(NodeId{2}));
  EXPECT_TRUE(relay->radio.connected_to(NodeId{1}));
  EXPECT_TRUE(relay->radio.is_group_owner());
  EXPECT_FALSE(ue->radio.is_group_owner());
  EXPECT_EQ(ue->radio.group(), relay->radio.group());
}

TEST_F(WifiDirectTest, ConnectionEnergyMatchesTableIII) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));
  // Idle-connected draw starts after setup; allow a small margin.
  EXPECT_NEAR(ue->radio.radio_charge().value, 63.74, 1.0);
  EXPECT_NEAR(relay->radio.radio_charge().value, 60.29, 1.0);
}

TEST_F(WifiDirectTest, ConnectToSelfIsRejected) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  bool rejected = false;
  ue->radio.connect(NodeId{1}, [&](Result<GroupId> r) {
    rejected = !r.ok() && r.error().code == Errc::rejected;
  });
  EXPECT_TRUE(rejected);
  EXPECT_EQ(ue->radio.link_count(), 0u);
  // No energy was spent on the refused attempt.
  sim_.run_until(sim_.now() + seconds(5));
  EXPECT_DOUBLE_EQ(ue->radio.radio_charge().value, 0.0);
}

TEST_F(WifiDirectTest, ConnectToUnknownPeerFails) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  bool failed = false;
  ue->radio.connect(NodeId{42}, [&](Result<GroupId> r) {
    failed = !r.ok() && r.error().code == Errc::not_found;
  });
  EXPECT_TRUE(failed);
}

TEST_F(WifiDirectTest, ConnectBeyondRangeFails) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto far = TestPhone::at(sim_, medium_, 2, 50, 0);
  bool failed = false;
  far->radio.set_listening(true);
  ue->radio.connect(NodeId{2}, [&](Result<GroupId> r) {
    failed = !r.ok() && r.error().code == Errc::out_of_range;
  });
  EXPECT_TRUE(failed);
}

TEST_F(WifiDirectTest, ConnectIsIdempotentWhenAlreadyLinked) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  GroupId first{};
  ue->radio.connect(NodeId{2}, [&](Result<GroupId> r) { first = r.value(); });
  sim_.run_until(sim_.now() + seconds(4));
  GroupId second{};
  ue->radio.connect(NodeId{2},
                    [&](Result<GroupId> r) { second = r.value(); });
  EXPECT_EQ(first, second);
}

TEST_F(WifiDirectTest, SendDeliversHeartbeatAndChargesBothSides) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));

  const double ue_before = ue->radio.radio_charge().value;
  const double relay_before = relay->radio.radio_charge().value;
  net::HeartbeatMessage received;
  relay->radio.set_receive_handler(
      [&](const net::D2dPayload& p, NodeId from) {
        received = std::get<net::HeartbeatMessage>(p);
        EXPECT_EQ(from, NodeId{1});
      });
  bool sent_ok = false;
  ue->radio.send(NodeId{2}, net::D2dPayload{heartbeat(5, 1)},
                 [&](Status s) { sent_ok = s.ok(); });
  sim_.run_until(sim_.now() + seconds(4));
  EXPECT_TRUE(sent_ok);
  EXPECT_EQ(received.id, MessageId{5});
  EXPECT_NEAR(ue->radio.radio_charge().value - ue_before, 73.09, 1.5);
  EXPECT_NEAR(relay->radio.radio_charge().value - relay_before, 131.3, 1.5);
}

TEST_F(WifiDirectTest, SendWithoutLinkFails) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  bool failed = false;
  ue->radio.send(NodeId{2}, net::D2dPayload{heartbeat(1, 1)},
                 [&](Status s) {
                   failed = !s.ok() && s.error().code == Errc::disconnected;
                 });
  EXPECT_TRUE(failed);
}

TEST_F(WifiDirectTest, FeedbackAckTravelsAsControlFrame) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));

  net::FeedbackAck got;
  ue->radio.set_receive_handler([&](const net::D2dPayload& p, NodeId) {
    got = std::get<net::FeedbackAck>(p);
  });
  net::FeedbackAck ack;
  ack.relay = NodeId{2};
  ack.delivered = {MessageId{1}, MessageId{2}};
  relay->radio.send(NodeId{1}, net::D2dPayload{ack}, [](Status) {});
  sim_.run_until(sim_.now() + seconds(1));
  EXPECT_EQ(got.delivered.size(), 2u);
  EXPECT_EQ(got.relay, NodeId{2});
}

TEST_F(WifiDirectTest, MovingOutOfRangeBreaksLink) {
  auto ue = std::make_unique<TestPhone>(
      sim_, medium_, 1,
      std::make_unique<mobility::LinearMobility>(
          mobility::Vec2{0.0, 0.0}, mobility::Vec2{2.0, 0.0}));  // 2 m/s
  auto relay = TestPhone::at(sim_, medium_, 2, 0, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));
  ASSERT_TRUE(ue->radio.connected_to(NodeId{2}));

  NodeId lost{};
  ue->radio.set_disconnect_handler([&](NodeId peer) { lost = peer; });
  // Range is 30 m; at 2 m/s the link must break by t ~ 16 s.
  sim_.run_until(sim_.now() + seconds(20));
  EXPECT_EQ(lost, NodeId{2});
  EXPECT_FALSE(ue->radio.connected_to(NodeId{2}));
  EXPECT_FALSE(relay->radio.connected_to(NodeId{1}));
  EXPECT_EQ(ue->radio.link_count(), 0u);
}

TEST_F(WifiDirectTest, ExplicitDisconnectNotifiesBothSides) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));

  NodeId ue_lost{}, relay_lost{};
  ue->radio.set_disconnect_handler([&](NodeId p) { ue_lost = p; });
  relay->radio.set_disconnect_handler([&](NodeId p) { relay_lost = p; });
  ue->radio.disconnect(NodeId{2});
  EXPECT_EQ(ue_lost, NodeId{2});
  EXPECT_EQ(relay_lost, NodeId{1});
}

TEST_F(WifiDirectTest, GroupOwnerServesMultipleClients) {
  auto relay = TestPhone::at(sim_, medium_, 1, 0, 0);
  relay->radio.set_group_owner_intent(kMaxGroupOwnerIntent);
  auto ue_a = TestPhone::at(sim_, medium_, 2, 1, 0);
  auto ue_b = TestPhone::at(sim_, medium_, 3, 0, 1);
  ue_a->radio.connect(NodeId{1}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));
  ue_b->radio.connect(NodeId{1}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));
  EXPECT_EQ(relay->radio.link_count(), 2u);
  EXPECT_TRUE(relay->radio.is_group_owner());
  // Both clients joined the same group.
  EXPECT_EQ(ue_a->radio.group(), ue_b->radio.group());
}

TEST_F(WifiDirectTest, IdleConnectedDrawAccumulatesWhileLinked) {
  auto ue = TestPhone::at(sim_, medium_, 1, 0, 0);
  auto relay = TestPhone::at(sim_, medium_, 2, 1, 0);
  ue->radio.connect(NodeId{2}, [](Result<GroupId>) {});
  sim_.run_until(sim_.now() + seconds(4));
  const double before = ue->radio.radio_charge().value;
  sim_.run_until(sim_.now() + seconds(3600));
  // 1 mA for 1 h = 1000 µAh.
  EXPECT_NEAR(ue->radio.radio_charge().value - before, 1000.0, 1.0);
  ue->radio.disconnect(NodeId{2});
  const double after_disconnect = ue->radio.radio_charge().value;
  sim_.run_until(sim_.now() + seconds(3600));
  EXPECT_NEAR(ue->radio.radio_charge().value - after_disconnect, 0.0, 1e-6);
}

}  // namespace
}  // namespace d2dhb::d2d
