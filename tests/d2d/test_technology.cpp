#include "d2d/technology.hpp"

#include <gtest/gtest.h>

namespace d2dhb::d2d {
namespace {

TEST(Technology, WifiDirectIsThePaperCalibration) {
  const D2dTechnology tech = wifi_direct_tech();
  EXPECT_EQ(tech.name, "Wi-Fi Direct");
  EXPECT_DOUBLE_EQ(tech.medium.range.value, 30.0);
  EXPECT_DOUBLE_EQ(tech.energy.ue_discovery.value, 132.24);
  EXPECT_TRUE(tech.widely_deployed);
}

TEST(Technology, BluetoothRangeUnder10m) {
  // "its communication range is typically less than 10 m" (Section IV-A).
  const D2dTechnology tech = bluetooth_tech();
  EXPECT_LT(tech.medium.range.value, 10.0);
  EXPECT_TRUE(tech.widely_deployed);
}

TEST(Technology, BluetoothIsCheaperPerPhaseAtCloseRange) {
  const D2dTechnology bt = bluetooth_tech();
  const D2dTechnology wifi = wifi_direct_tech();
  EXPECT_LT(bt.energy.ue_discovery.value, wifi.energy.ue_discovery.value);
  EXPECT_LT(bt.energy.ue_connection.value, wifi.energy.ue_connection.value);
  EXPECT_LT(bt.energy.send_charge(Bytes{54}, Meters{1.0}).value,
            wifi.energy.send_charge(Bytes{54}, Meters{1.0}).value);
}

TEST(Technology, BluetoothDistancePenaltyIsSteeper) {
  const D2dTechnology bt = bluetooth_tech();
  const D2dTechnology wifi = wifi_direct_tech();
  const double bt_growth =
      bt.energy.send_charge(Bytes{54}, Meters{8.0}).value /
      bt.energy.send_charge(Bytes{54}, Meters{1.0}).value;
  const double wifi_growth =
      wifi.energy.send_charge(Bytes{54}, Meters{8.0}).value /
      wifi.energy.send_charge(Bytes{54}, Meters{1.0}).value;
  EXPECT_GT(bt_growth, wifi_growth);
}

TEST(Technology, LteDirectReaches500m) {
  // "the discovery of thousands of devices in proximity of approximately
  // 500 meters" — but "many countries ... have not deployed".
  const D2dTechnology tech = lte_direct_tech();
  EXPECT_DOUBLE_EQ(tech.medium.range.value, 500.0);
  EXPECT_FALSE(tech.widely_deployed);
}

TEST(Technology, LteDirectDiscoveryIsCheapest) {
  const auto all = all_technologies();
  const D2dTechnology lte = lte_direct_tech();
  for (const auto& tech : all) {
    EXPECT_LE(lte.energy.ue_discovery.value, tech.energy.ue_discovery.value)
        << tech.name;
  }
}

TEST(Technology, LteDirectNearlyDistanceFlat) {
  const D2dTechnology lte = lte_direct_tech();
  const double near = lte.energy.send_charge(Bytes{54}, Meters{1.0}).value;
  const double far = lte.energy.send_charge(Bytes{54}, Meters{100.0}).value;
  EXPECT_LT(far / near, 20.0);  // vs Wi-Fi blowing up within 30 m
}

TEST(Technology, CatalogHasPaperOrder) {
  const auto all = all_technologies();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "Bluetooth");
  EXPECT_EQ(all[1].name, "Wi-Fi Direct");
  EXPECT_EQ(all[2].name, "LTE Direct");
}

}  // namespace
}  // namespace d2dhb::d2d
