#include "d2d/energy_profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {
namespace {

TEST(PhaseShape, TotalsAndWeights) {
  const PhaseShape shape{{{seconds(1), 2.0}, {seconds(3), 0.5}}};
  EXPECT_EQ(shape.total_duration(), seconds(4));
  EXPECT_DOUBLE_EQ(shape.weighted_seconds(), 2.0 * 1.0 + 0.5 * 3.0);
}

TEST(ApplyPhase, IntegratesToExactTarget) {
  sim::Simulator sim;
  energy::EnergyMeter meter{sim};
  const auto c = meter.register_component("wifi");
  const PhaseShape shape = D2dEnergyProfile::send_shape();
  const Duration total =
      apply_phase(sim, meter, c, shape, MicroAmpHours{73.09});
  EXPECT_EQ(total, shape.total_duration());
  sim.run_until(sim.now() + total + seconds(1));
  EXPECT_NEAR(meter.component_charge(c).value, 73.09, 1e-9);
}

TEST(ApplyPhase, RejectsZeroAreaShape) {
  sim::Simulator sim;
  energy::EnergyMeter meter{sim};
  const auto c = meter.register_component("wifi");
  EXPECT_THROW(apply_phase(sim, meter, c, PhaseShape{}, MicroAmpHours{10.0}),
               std::invalid_argument);
}

TEST(ApplyPhase, SendShapeSpikesThenDecays) {
  sim::Simulator sim;
  energy::EnergyMeter meter{sim};
  const auto c = meter.register_component("wifi");
  apply_phase(sim, meter, c, D2dEnergyProfile::send_shape(),
              MicroAmpHours{73.09});
  // Sample the burst (inside 100..350 ms) and the decay (>350 ms).
  double burst = 0.0, decay = 0.0;
  sim.schedule_after(milliseconds(200),
                     [&] { burst = meter.component_current(c).value; });
  sim.schedule_after(milliseconds(500),
                     [&] { decay = meter.component_current(c).value; });
  sim.run();
  EXPECT_GT(burst, 500.0);  // Fig. 6 spike
  EXPECT_LT(decay, 200.0);  // rapid descent
  EXPECT_GT(decay, 0.0);
}

TEST(D2dEnergyProfile, DefaultsMatchTableIII) {
  const D2dEnergyProfile p;
  EXPECT_DOUBLE_EQ(p.ue_discovery.value, 132.24);
  EXPECT_DOUBLE_EQ(p.relay_discovery.value, 122.50);
  EXPECT_DOUBLE_EQ(p.ue_connection.value, 63.74);
  EXPECT_DOUBLE_EQ(p.relay_connection.value, 60.29);
  EXPECT_DOUBLE_EQ(p.ue_send_reference.value, 73.09);
}

TEST(D2dEnergyProfile, SendChargeAtReferenceDistance) {
  const D2dEnergyProfile p;
  EXPECT_NEAR(
      p.send_charge(net::kStandardHeartbeatSize, p.reference_distance).value,
      73.09, 1e-9);
}

TEST(D2dEnergyProfile, SendChargeGrowsQuadraticallyWithDistance) {
  const D2dEnergyProfile p;
  const double at1 = p.send_charge(Bytes{54}, Meters{1.0}).value;
  const double at5 = p.send_charge(Bytes{54}, Meters{5.0}).value;
  const double at10 = p.send_charge(Bytes{54}, Meters{10.0}).value;
  const double at15 = p.send_charge(Bytes{54}, Meters{15.0}).value;
  EXPECT_LT(at1, at5);
  EXPECT_LT(at5, at10);
  EXPECT_LT(at10, at15);
  // Fig. 12: at 15 m a D2D send costs several times the reference —
  // beyond the cellular break-even.
  EXPECT_GT(at15, 800.0);
  // Quadratic ratio check: (at10-at1)/(at5-at1) ≈ (9²)/(4²).
  EXPECT_NEAR((at10 - at1) / (at5 - at1), 81.0 / 16.0, 0.01);
}

TEST(D2dEnergyProfile, SendChargeBelowReferenceClamped) {
  const D2dEnergyProfile p;
  EXPECT_DOUBLE_EQ(p.send_charge(Bytes{54}, Meters{0.2}).value, 73.09);
}

TEST(D2dEnergyProfile, SizeHasMinorEffect) {
  // Fig. 13: 1x..5x the standard size stays "almost constant".
  const D2dEnergyProfile p;
  const double x1 = p.send_charge(Bytes{54}, Meters{1.0}).value;
  const double x5 = p.send_charge(Bytes{270}, Meters{1.0}).value;
  EXPECT_GT(x5, x1);
  EXPECT_LT((x5 - x1) / x1, 0.2);  // < 20 % growth across 5x size
}

TEST(D2dEnergyProfile, ReceiveChargeMatchesTableIvSlope) {
  const D2dEnergyProfile p;
  EXPECT_NEAR(p.receive_charge(Bytes{54}).value, 131.3, 1e-9);
}

}  // namespace
}  // namespace d2dhb::d2d
