#include "d2d/medium.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "d2d/wifi_direct.hpp"
#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {
namespace {

// Minimal device bundle for medium/radio tests.
struct TestPhone {
  TestPhone(sim::Simulator& sim, WifiDirectMedium& medium, std::uint64_t id,
            mobility::Vec2 pos)
      : meter(sim),
        mobility(pos),
        radio(sim, NodeId{id}, medium, mobility, meter, D2dEnergyProfile{},
              Rng{id}) {}

  energy::EnergyMeter meter;
  mobility::StaticMobility mobility;
  WifiDirectRadio radio;
};

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(sim_, nodes_, WifiDirectMedium::Params{}, Rng{99}) {}

  sim::Simulator sim_;
  world::NodeTable nodes_;
  WifiDirectMedium medium_;
};

TEST_F(MediumTest, DistanceBetweenRegisteredRadios) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone b{sim_, medium_, 2, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(medium_.distance(NodeId{1}, NodeId{2}).value, 5.0);
  EXPECT_TRUE(medium_.in_range(NodeId{1}, NodeId{2}));
}

TEST_F(MediumTest, OutOfRangeBeyond30m) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone b{sim_, medium_, 2, {31.0, 0.0}};
  EXPECT_FALSE(medium_.in_range(NodeId{1}, NodeId{2}));
}

TEST_F(MediumTest, UnknownNodeThrows) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  EXPECT_THROW(medium_.distance(NodeId{1}, NodeId{9}), std::out_of_range);
  EXPECT_THROW(medium_.position_of(NodeId{9}), std::out_of_range);
}

TEST_F(MediumTest, ScanFindsOnlyListeningPeersInRange) {
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone listening_near{sim_, medium_, 2, {5.0, 0.0}};
  TestPhone silent_near{sim_, medium_, 3, {5.0, 5.0}};
  TestPhone listening_far{sim_, medium_, 4, {100.0, 0.0}};
  listening_near.radio.set_listening(true);
  listening_far.radio.set_listening(true);

  const auto peers = medium_.scan_from(NodeId{1});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].node, NodeId{2});
}

TEST_F(MediumTest, ScanCarriesAdvertAndNoisyDistance) {
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone relay{sim_, medium_, 2, {10.0, 0.0}};
  relay.radio.set_listening(true);
  relay.radio.set_advert(RelayAdvert{true, 5});

  const auto peers = medium_.scan_from(NodeId{1});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_TRUE(peers[0].advert.offers_relay);
  EXPECT_EQ(peers[0].advert.capacity_remaining, 5u);
  // RSSI noise is sub-meter by default.
  EXPECT_NEAR(peers[0].estimated_distance.value, 10.0, 2.0);
}

TEST_F(MediumTest, DetachedRadioDisappears) {
  auto phone = std::make_unique<TestPhone>(sim_, medium_, 2,
                                           mobility::Vec2{1.0, 0.0});
  phone->radio.set_listening(true);
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  EXPECT_EQ(medium_.scan_from(NodeId{1}).size(), 1u);
  phone.reset();  // destructor detaches
  EXPECT_EQ(medium_.scan_from(NodeId{1}).size(), 0u);
  EXPECT_EQ(medium_.radio(NodeId{2}), nullptr);
}

TEST_F(MediumTest, DiscoveryMissProbabilityDropsPeers) {
  world::NodeTable flaky_nodes;
  WifiDirectMedium flaky{sim_, flaky_nodes,
                         WifiDirectMedium::Params{Meters{30.0}, 0.0, 1.0},
                         Rng{5}};
  TestPhone scanner{sim_, flaky, 1, {0.0, 0.0}};
  TestPhone relay{sim_, flaky, 2, {1.0, 0.0}};
  relay.radio.set_listening(true);
  EXPECT_TRUE(flaky.scan_from(NodeId{1}).empty());
}

TEST_F(MediumTest, ScanResultsAreInAscendingNodeIdOrder) {
  TestPhone scanner{sim_, medium_, 3, {0.0, 0.0}};
  TestPhone far_id{sim_, medium_, 9, {2.0, 0.0}};
  TestPhone low_id{sim_, medium_, 1, {4.0, 0.0}};
  TestPhone mid_id{sim_, medium_, 5, {6.0, 0.0}};
  far_id.radio.set_listening(true);
  low_id.radio.set_listening(true);
  mid_id.radio.set_listening(true);

  const auto peers = medium_.scan_from(NodeId{3});
  ASSERT_EQ(peers.size(), 3u);
  EXPECT_EQ(peers[0].node, NodeId{1});
  EXPECT_EQ(peers[1].node, NodeId{5});
  EXPECT_EQ(peers[2].node, NodeId{9});
}

TEST_F(MediumTest, LegacyScanAndGridScanAreIdenticalUnderOneSeed) {
  // Same layout + same RNG seed, answered by both paths: the peer sets,
  // order, and noisy distance draws must match exactly.
  auto run = [this](bool legacy, double cell_m) {
    WifiDirectMedium::Params params;
    params.rssi_noise_stddev_m = 0.5;
    params.discovery_miss_probability = 0.3;
    params.legacy_scan = legacy;
    params.grid_cell_m = cell_m;
    world::NodeTable nodes;
    WifiDirectMedium medium{sim_, nodes, params, Rng{77}};
    std::vector<std::unique_ptr<TestPhone>> phones;
    phones.push_back(std::make_unique<TestPhone>(
        sim_, medium, 1, mobility::Vec2{0.0, 0.0}));
    for (std::uint64_t id = 2; id <= 12; ++id) {
      phones.push_back(std::make_unique<TestPhone>(
          sim_, medium, id,
          mobility::Vec2{2.0 * static_cast<double>(id), 1.0}));
      phones.back()->radio.set_listening(true);
    }
    std::vector<std::pair<std::uint64_t, double>> seen;
    for (int scan = 0; scan < 5; ++scan) {
      for (const auto& p : medium.scan_from(NodeId{1})) {
        seen.emplace_back(p.node.value, p.estimated_distance.value);
      }
    }
    return seen;
  };
  const auto grid = run(false, 0.0);
  const auto legacy = run(true, 0.0);
  const auto coarse = run(false, 100.0);  // one bucket holds everyone
  const auto fine = run(false, 1.5);      // everyone in a distinct cell
  EXPECT_EQ(grid, legacy);
  EXPECT_EQ(grid, coarse);
  EXPECT_EQ(grid, fine);
}

TEST_F(MediumTest, LostPeersFlagsDetachedAndOutOfRange) {
  TestPhone owner{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone near{sim_, medium_, 2, {5.0, 0.0}};
  TestPhone far{sim_, medium_, 3, {100.0, 0.0}};
  auto doomed = std::make_unique<TestPhone>(sim_, medium_, 4,
                                            mobility::Vec2{6.0, 0.0});
  const std::vector<NodeId> peers{NodeId{2}, NodeId{3}, NodeId{4}};
  EXPECT_EQ(medium_.lost_peers(NodeId{1}, peers),
            (std::vector<NodeId>{NodeId{3}}));
  doomed.reset();  // detaches
  EXPECT_EQ(medium_.lost_peers(NodeId{1}, peers),
            (std::vector<NodeId>{NodeId{3}, NodeId{4}}));

  // The legacy path answers the same sweep the same way.
  WifiDirectMedium::Params legacy_params;
  legacy_params.legacy_scan = true;
  world::NodeTable legacy_nodes;
  WifiDirectMedium legacy{sim_, legacy_nodes, legacy_params, Rng{99}};
  TestPhone l_owner{sim_, legacy, 1, {0.0, 0.0}};
  TestPhone l_near{sim_, legacy, 2, {5.0, 0.0}};
  TestPhone l_far{sim_, legacy, 3, {100.0, 0.0}};
  EXPECT_EQ(legacy.lost_peers(NodeId{1}, {NodeId{2}, NodeId{3}}),
            (std::vector<NodeId>{NodeId{3}}));
}

TEST_F(MediumTest, UnknownNodeErrorsNameTheNode) {
  try {
    medium_.position_of(NodeId{41});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("41"), std::string::npos);
  }
  // A scan from a detached/unknown node is a no-op, not an error — a
  // pending scan timer may outlive its radio.
  EXPECT_TRUE(medium_.scan_from(NodeId{41}).empty());
}

}  // namespace
}  // namespace d2dhb::d2d
