#include "d2d/medium.hpp"

#include <gtest/gtest.h>

#include "d2d/wifi_direct.hpp"
#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::d2d {
namespace {

// Minimal device bundle for medium/radio tests.
struct TestPhone {
  TestPhone(sim::Simulator& sim, WifiDirectMedium& medium, std::uint64_t id,
            mobility::Vec2 pos)
      : meter(sim),
        mobility(pos),
        radio(sim, NodeId{id}, medium, mobility, meter, D2dEnergyProfile{},
              Rng{id}) {}

  energy::EnergyMeter meter;
  mobility::StaticMobility mobility;
  WifiDirectRadio radio;
};

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(sim_, WifiDirectMedium::Params{}, Rng{99}) {}

  sim::Simulator sim_;
  WifiDirectMedium medium_;
};

TEST_F(MediumTest, DistanceBetweenRegisteredRadios) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone b{sim_, medium_, 2, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(medium_.distance(NodeId{1}, NodeId{2}).value, 5.0);
  EXPECT_TRUE(medium_.in_range(NodeId{1}, NodeId{2}));
}

TEST_F(MediumTest, OutOfRangeBeyond30m) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone b{sim_, medium_, 2, {31.0, 0.0}};
  EXPECT_FALSE(medium_.in_range(NodeId{1}, NodeId{2}));
}

TEST_F(MediumTest, UnknownNodeThrows) {
  TestPhone a{sim_, medium_, 1, {0.0, 0.0}};
  EXPECT_THROW(medium_.distance(NodeId{1}, NodeId{9}), std::out_of_range);
  EXPECT_THROW(medium_.position_of(NodeId{9}), std::out_of_range);
}

TEST_F(MediumTest, ScanFindsOnlyListeningPeersInRange) {
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone listening_near{sim_, medium_, 2, {5.0, 0.0}};
  TestPhone silent_near{sim_, medium_, 3, {5.0, 5.0}};
  TestPhone listening_far{sim_, medium_, 4, {100.0, 0.0}};
  listening_near.radio.set_listening(true);
  listening_far.radio.set_listening(true);

  const auto peers = medium_.scan_from(NodeId{1});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].node, NodeId{2});
}

TEST_F(MediumTest, ScanCarriesAdvertAndNoisyDistance) {
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  TestPhone relay{sim_, medium_, 2, {10.0, 0.0}};
  relay.radio.set_listening(true);
  relay.radio.set_advert(RelayAdvert{true, 5});

  const auto peers = medium_.scan_from(NodeId{1});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_TRUE(peers[0].advert.offers_relay);
  EXPECT_EQ(peers[0].advert.capacity_remaining, 5u);
  // RSSI noise is sub-meter by default.
  EXPECT_NEAR(peers[0].estimated_distance.value, 10.0, 2.0);
}

TEST_F(MediumTest, DetachedRadioDisappears) {
  auto phone = std::make_unique<TestPhone>(sim_, medium_, 2,
                                           mobility::Vec2{1.0, 0.0});
  phone->radio.set_listening(true);
  TestPhone scanner{sim_, medium_, 1, {0.0, 0.0}};
  EXPECT_EQ(medium_.scan_from(NodeId{1}).size(), 1u);
  phone.reset();  // destructor detaches
  EXPECT_EQ(medium_.scan_from(NodeId{1}).size(), 0u);
  EXPECT_EQ(medium_.radio(NodeId{2}), nullptr);
}

TEST_F(MediumTest, DiscoveryMissProbabilityDropsPeers) {
  WifiDirectMedium flaky{sim_,
                         WifiDirectMedium::Params{Meters{30.0}, 0.0, 1.0},
                         Rng{5}};
  TestPhone scanner{sim_, flaky, 1, {0.0, 0.0}};
  TestPhone relay{sim_, flaky, 2, {1.0, 0.0}};
  relay.radio.set_listening(true);
  EXPECT_TRUE(flaky.scan_from(NodeId{1}).empty());
}

}  // namespace
}  // namespace d2dhb::d2d
