#include "net/channel.hpp"

#include <gtest/gtest.h>

namespace d2dhb::net {
namespace {

UplinkBundle bundle_of(std::uint64_t node) {
  UplinkBundle b;
  b.sender = NodeId{node};
  HeartbeatMessage m;
  m.id = MessageId{node};
  m.origin = NodeId{node};
  m.size = Bytes{54};
  b.messages = {m};
  return b;
}

TEST(Channel, DeliversAfterLatency) {
  sim::Simulator sim;
  Channel ch{sim, Channel::Params{milliseconds(50), 0.0}, Rng{1}};
  TimePoint delivered_at{};
  ch.set_receiver([&](const UplinkBundle&) { delivered_at = sim.now(); });
  EXPECT_TRUE(ch.send(bundle_of(1)));
  sim.run();
  EXPECT_EQ(delivered_at, TimePoint{} + milliseconds(50));
  EXPECT_EQ(ch.sent(), 1u);
  EXPECT_EQ(ch.delivered(), 1u);
  EXPECT_EQ(ch.dropped(), 0u);
}

TEST(Channel, LossDropsDeterministically) {
  sim::Simulator sim;
  Channel ch{sim, Channel::Params{milliseconds(1), 1.0}, Rng{2}};
  int received = 0;
  ch.set_receiver([&](const UplinkBundle&) { ++received; });
  EXPECT_FALSE(ch.send(bundle_of(1)));
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(ch.dropped(), 1u);
}

TEST(Channel, PartialLossApproximatesRate) {
  sim::Simulator sim;
  Channel ch{sim, Channel::Params{milliseconds(1), 0.25}, Rng{3}};
  int received = 0;
  ch.set_receiver([&](const UplinkBundle&) { ++received; });
  const int n = 4000;
  for (int i = 0; i < n; ++i) ch.send(bundle_of(1));
  sim.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.75, 0.03);
  EXPECT_EQ(ch.delivered() + ch.dropped(), static_cast<std::uint64_t>(n));
}

TEST(Channel, NoReceiverIsSafe) {
  sim::Simulator sim;
  Channel ch{sim, Channel::Params{}, Rng{4}};
  ch.send(bundle_of(1));
  sim.run();  // must not crash
  EXPECT_EQ(ch.delivered(), 1u);
}

TEST(Channel, PreservesBundleContents) {
  sim::Simulator sim;
  Channel ch{sim, Channel::Params{}, Rng{5}};
  UplinkBundle got;
  ch.set_receiver([&](const UplinkBundle& b) { got = b; });
  UplinkBundle b = bundle_of(7);
  b.messages.push_back(b.messages.front());
  ch.send(b);
  sim.run();
  EXPECT_EQ(got.sender, NodeId{7});
  EXPECT_EQ(got.messages.size(), 2u);
}

}  // namespace
}  // namespace d2dhb::net
