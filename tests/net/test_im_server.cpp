#include "net/im_server.hpp"

#include <gtest/gtest.h>

namespace d2dhb::net {
namespace {

class ImServerTest : public ::testing::Test {
 protected:
  HeartbeatMessage heartbeat(std::uint64_t node, double expiry_s = 300.0) {
    HeartbeatMessage m;
    m.id = MessageId{++next_id_};
    m.origin = NodeId{node};
    m.app = AppId{node};
    m.size = Bytes{54};
    m.period = seconds(300);
    m.expiry = seconds(expiry_s);
    m.created_at = sim_.now();
    return m;
  }

  sim::Simulator sim_;
  ImServer server_{sim_};
  std::uint64_t next_id_{0};
};

TEST_F(ImServerTest, RegisteredClientStartsOnline) {
  server_.register_client(NodeId{1}, AppId{1}, seconds(300));
  EXPECT_TRUE(server_.online(NodeId{1}, AppId{1}));
}

TEST_F(ImServerTest, UnknownClientIsOffline) {
  EXPECT_FALSE(server_.online(NodeId{99}, AppId{99}));
}

TEST_F(ImServerTest, GoesOfflineAfterExpiry) {
  server_.register_client(NodeId{1}, AppId{1}, seconds(300));
  sim_.run_until(TimePoint{} + seconds(301));
  EXPECT_FALSE(server_.online(NodeId{1}, AppId{1}));
}

TEST_F(ImServerTest, HeartbeatResetsDeadline) {
  server_.register_client(NodeId{1}, AppId{1}, seconds(300));
  sim_.run_until(TimePoint{} + seconds(250));
  server_.deliver(heartbeat(1));
  sim_.run_until(TimePoint{} + seconds(500));
  EXPECT_TRUE(server_.online(NodeId{1}, AppId{1}));  // deadline now 550
  const auto& s = server_.stats(NodeId{1}, AppId{1});
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.on_time, 1u);
  EXPECT_EQ(s.late, 0u);
}

TEST_F(ImServerTest, LateHeartbeatCountsOfflineEvent) {
  server_.register_client(NodeId{1}, AppId{1}, seconds(300));
  sim_.run_until(TimePoint{} + seconds(400));  // 100 s past deadline
  server_.deliver(heartbeat(1));
  const auto& s = server_.stats(NodeId{1}, AppId{1});
  EXPECT_EQ(s.late, 1u);
  EXPECT_EQ(s.offline_events, 1u);
  EXPECT_EQ(s.total_offline, seconds(100));
  // Back online after the late heartbeat.
  EXPECT_TRUE(server_.online(NodeId{1}, AppId{1}));
}

TEST_F(ImServerTest, AutoRegistersOnFirstContact) {
  server_.deliver(heartbeat(5, 200.0));
  EXPECT_TRUE(server_.online(NodeId{5}, AppId{5}));
  sim_.run_until(TimePoint{} + seconds(201));
  EXPECT_FALSE(server_.online(NodeId{5}, AppId{5}));
}

TEST_F(ImServerTest, BundleDeliversAllMessages) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  bundle.messages = {heartbeat(1), heartbeat(2), heartbeat(3)};
  server_.deliver(bundle);
  EXPECT_EQ(server_.session_count(), 3u);
  EXPECT_EQ(server_.totals().delivered, 3u);
  EXPECT_EQ(server_.totals().on_time, 3u);
}

TEST_F(ImServerTest, TotalsAggregateAcrossSessions) {
  server_.register_client(NodeId{1}, AppId{1}, seconds(100));
  server_.register_client(NodeId{2}, AppId{2}, seconds(100));
  sim_.run_until(TimePoint{} + seconds(150));  // both lapsed
  server_.deliver(heartbeat(1));
  server_.deliver(heartbeat(2));
  const auto t = server_.totals();
  EXPECT_EQ(t.delivered, 2u);
  EXPECT_EQ(t.late, 2u);
  EXPECT_EQ(t.offline_events, 2u);
}

TEST_F(ImServerTest, StatsThrowsForUnknownSession) {
  EXPECT_THROW(server_.stats(NodeId{42}, AppId{42}), std::out_of_range);
}

TEST_F(ImServerTest, DistinctAppsOnSameNodeAreIndependent) {
  server_.register_client(NodeId{1}, AppId{10}, seconds(100));
  server_.register_client(NodeId{1}, AppId{20}, seconds(500));
  sim_.run_until(TimePoint{} + seconds(200));
  EXPECT_FALSE(server_.online(NodeId{1}, AppId{10}));
  EXPECT_TRUE(server_.online(NodeId{1}, AppId{20}));
}

}  // namespace
}  // namespace d2dhb::net
