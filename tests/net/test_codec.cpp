#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace d2dhb::net {
namespace {

HeartbeatMessage sample(std::uint64_t id) {
  HeartbeatMessage m;
  m.id = MessageId{id};
  m.origin = NodeId{id * 3 + 1};
  m.app = AppId{id * 7 + 2};
  m.seq = id * 11;
  m.size = Bytes{static_cast<std::uint32_t>(54 + id)};
  m.period = seconds(270);
  m.expiry = seconds(240);
  m.created_at = TimePoint{} + seconds(100.5 + static_cast<double>(id));
  return m;
}

void expect_equal(const HeartbeatMessage& a, const HeartbeatMessage& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.size, b.size);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.expiry, b.expiry);
  EXPECT_EQ(a.created_at, b.created_at);
}

TEST(Codec, HeartbeatRoundTrip) {
  std::vector<std::uint8_t> buffer;
  encode(sample(42), buffer);
  EXPECT_EQ(buffer.size(), envelope_overhead());
  std::size_t offset = 0;
  const auto decoded = decode_heartbeat(buffer, offset);
  ASSERT_TRUE(decoded.ok());
  expect_equal(decoded.value(), sample(42));
  EXPECT_EQ(offset, buffer.size());
}

TEST(Codec, BundleRoundTrip) {
  UplinkBundle bundle;
  bundle.sender = NodeId{9};
  bundle.extra_payload = Bytes{300};
  for (std::uint64_t i = 1; i <= 5; ++i) bundle.messages.push_back(sample(i));

  const auto wire = encode(bundle);
  const auto decoded = decode_bundle(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sender, NodeId{9});
  EXPECT_EQ(decoded.value().extra_payload.value, 300u);
  ASSERT_EQ(decoded.value().messages.size(), 5u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    expect_equal(decoded.value().messages[i - 1], sample(i));
  }
}

TEST(Codec, EmptyBundleRoundTrip) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  const auto decoded = decode_bundle(encode(bundle));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().messages.empty());
}

TEST(Codec, DetectsCorruption) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  bundle.messages.push_back(sample(1));
  auto wire = encode(bundle);
  wire[10] ^= 0x40;  // flip a bit in the body
  const auto decoded = decode_bundle(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::rejected);
}

TEST(Codec, DetectsTruncation) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  bundle.messages.push_back(sample(1));
  auto wire = encode(bundle);
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(decode_bundle(wire).ok());
  EXPECT_FALSE(decode_bundle({}).ok());
}

TEST(Codec, DetectsBadMagicAndVersion) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  auto wire = encode(bundle);
  auto bad_magic = wire;
  bad_magic[0] = 0x00;
  // Recompute nothing: checksum now fails first, which is also a reject.
  EXPECT_FALSE(decode_bundle(bad_magic).ok());
}

TEST(Codec, DetectsTrailingGarbage) {
  UplinkBundle bundle;
  bundle.sender = NodeId{1};
  auto wire = encode(bundle);
  // Insert a junk byte before the checksum and recompute it so only the
  // structural check can catch it.
  wire.insert(wire.end() - 2, 0xAB);
  // Checksum is now stale -> rejected either way.
  EXPECT_FALSE(decode_bundle(wire).ok());
}

TEST(Codec, FuzzRoundTripRandomBundles) {
  Rng rng{2024};
  for (int trial = 0; trial < 50; ++trial) {
    UplinkBundle bundle;
    bundle.sender = NodeId{rng.uniform_int(1, 1000)};
    bundle.extra_payload =
        Bytes{static_cast<std::uint32_t>(rng.uniform_int(0, 5000))};
    const auto n = rng.uniform_int(0, 12);
    for (std::uint64_t i = 0; i < n; ++i) {
      bundle.messages.push_back(sample(rng.uniform_int(1, 1'000'000)));
    }
    const auto decoded = decode_bundle(encode(bundle));
    ASSERT_TRUE(decoded.ok()) << "trial " << trial;
    EXPECT_EQ(decoded.value().messages.size(), bundle.messages.size());
    EXPECT_EQ(decoded.value().sender, bundle.sender);
  }
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng rng{77};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.uniform_int(0, 200));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_bundle(junk);  // must not crash; usually rejects
  }
}

}  // namespace
}  // namespace d2dhb::net
