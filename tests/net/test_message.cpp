#include "net/message.hpp"

#include <gtest/gtest.h>

namespace d2dhb::net {
namespace {

HeartbeatMessage make(std::uint64_t id, std::uint32_t size,
                      double expiry_s = 270.0) {
  HeartbeatMessage m;
  m.id = MessageId{id};
  m.origin = NodeId{1};
  m.app = AppId{1};
  m.size = Bytes{size};
  m.period = seconds(270);
  m.expiry = seconds(expiry_s);
  m.created_at = TimePoint{} + seconds(100);
  return m;
}

TEST(HeartbeatMessage, DeadlineIsCreationPlusExpiry) {
  const HeartbeatMessage m = make(1, 54, 270.0);
  EXPECT_EQ(m.deadline(), TimePoint{} + seconds(370));
}

TEST(UplinkBundle, SingleMessageHasNoAggregationHeader) {
  UplinkBundle b;
  b.sender = NodeId{1};
  b.messages = {make(1, 54)};
  EXPECT_EQ(b.payload_size().value, 54u);
}

TEST(UplinkBundle, AggregatePaysPerMessageHeader) {
  UplinkBundle b;
  b.sender = NodeId{1};
  b.messages = {make(1, 54), make(2, 54), make(3, 54)};
  EXPECT_EQ(b.payload_size().value,
            3 * 54 + 3 * UplinkBundle::kAggregationHeader.value);
}

TEST(UplinkBundle, EmptyBundleIsZeroBytes) {
  UplinkBundle b;
  EXPECT_EQ(b.payload_size().value, 0u);
}

TEST(D2dPayload, HeartbeatSize) {
  const D2dPayload p{make(1, 74)};
  EXPECT_EQ(payload_size(p).value, 74u);
}

TEST(D2dPayload, FeedbackAckSizeScalesWithIds) {
  FeedbackAck ack;
  ack.relay = NodeId{9};
  ack.delivered = {MessageId{1}, MessageId{2}};
  EXPECT_EQ(payload_size(D2dPayload{ack}).value, 12u + 16u);
}

TEST(StandardSize, MatchesPaper) {
  EXPECT_EQ(kStandardHeartbeatSize.value, 54u);
}

TEST(UplinkBundle, ExtraPayloadRidesAlong) {
  UplinkBundle b;
  b.sender = NodeId{1};
  b.extra_payload = Bytes{500};  // chat data a heartbeat piggybacks on
  b.messages = {make(1, 54)};
  EXPECT_EQ(b.payload_size().value, 554u);
}

TEST(UplinkBundle, DataOnlyBundle) {
  UplinkBundle b;
  b.sender = NodeId{1};
  b.extra_payload = Bytes{300};
  EXPECT_EQ(b.payload_size().value, 300u);
}

}  // namespace
}  // namespace d2dhb::net
