#include "mobility/mobility.hpp"

#include <gtest/gtest.h>

namespace d2dhb::mobility {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
}

TEST(Vec2, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}).value, 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}).value, 0.0);
}

TEST(StaticMobility, NeverMoves) {
  StaticMobility m{{5.0, 7.0}};
  EXPECT_EQ(m.position_at(TimePoint{}), (Vec2{5.0, 7.0}));
  EXPECT_EQ(m.position_at(TimePoint{} + seconds(1e6)), (Vec2{5.0, 7.0}));
}

TEST(LinearMobility, MovesAtConstantVelocity) {
  LinearMobility m{{0.0, 0.0}, {1.0, 0.5}};  // 1 m/s east, 0.5 m/s north
  const Vec2 p = m.position_at(TimePoint{} + seconds(10));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(LinearMobility, WalkAwayCrossesRange) {
  // A UE walking 1 m/s away from a relay at the origin leaves a 30 m
  // radio range at t = 30 s.
  LinearMobility ue{{0.0, 0.0}, {1.0, 0.0}};
  StaticMobility relay{{0.0, 0.0}};
  const auto d_at = [&](double t_s) {
    return distance(ue.position_at(TimePoint{} + seconds(t_s)),
                    relay.position_at(TimePoint{} + seconds(t_s)))
        .value;
  };
  EXPECT_LT(d_at(29.0), 30.0);
  EXPECT_GT(d_at(31.0), 30.0);
}

TEST(RandomWaypoint, StaysInsideArea) {
  RandomWaypoint::Params params;
  params.area_min = {0.0, 0.0};
  params.area_max = {50.0, 50.0};
  RandomWaypoint m{params, {25.0, 25.0}, Rng{42}};
  for (int t = 0; t <= 3600; t += 10) {
    const Vec2 p = m.position_at(TimePoint{} + seconds(t));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 50.0);
  }
}

TEST(RandomWaypoint, DeterministicForSeed) {
  RandomWaypoint::Params params;
  RandomWaypoint a{params, {10.0, 10.0}, Rng{7}};
  RandomWaypoint b{params, {10.0, 10.0}, Rng{7}};
  for (int t = 0; t <= 600; t += 30) {
    const Vec2 pa = a.position_at(TimePoint{} + seconds(t));
    const Vec2 pb = b.position_at(TimePoint{} + seconds(t));
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(RandomWaypoint, OutOfOrderQueriesConsistent) {
  RandomWaypoint::Params params;
  RandomWaypoint m{params, {10.0, 10.0}, Rng{9}};
  const Vec2 late = m.position_at(TimePoint{} + seconds(500));
  const Vec2 early = m.position_at(TimePoint{} + seconds(100));
  const Vec2 late_again = m.position_at(TimePoint{} + seconds(500));
  EXPECT_DOUBLE_EQ(late.x, late_again.x);
  EXPECT_DOUBLE_EQ(late.y, late_again.y);
  // Early query must also be in-area and stable.
  const Vec2 early_again = m.position_at(TimePoint{} + seconds(100));
  EXPECT_DOUBLE_EQ(early.x, early_again.x);
}

TEST(RandomWaypoint, SpeedBounded) {
  RandomWaypoint::Params params;
  params.min_speed_mps = 0.5;
  params.max_speed_mps = 1.5;
  params.max_pause = Duration::zero() + seconds(0.001);
  RandomWaypoint m{params, {50.0, 50.0}, Rng{11}};
  Vec2 prev = m.position_at(TimePoint{});
  for (int t = 1; t <= 600; ++t) {
    const Vec2 cur = m.position_at(TimePoint{} + seconds(t));
    // Over 1 s the node can move at most max_speed (+ epsilon).
    EXPECT_LE(length(cur - prev), 1.5 + 1e-6);
    prev = cur;
  }
}

TEST(ClusteredCrowd, GeneratesRequestedCount) {
  Rng rng{13};
  const auto positions =
      clustered_crowd(100, 4, {0.0, 0.0}, {100.0, 100.0}, 5.0, rng);
  EXPECT_EQ(positions.size(), 100u);
  for (const Vec2& p : positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(ClusteredCrowd, ClusteringIsTighterThanUniform) {
  Rng rng{17};
  const auto clustered =
      clustered_crowd(200, 2, {0.0, 0.0}, {1000.0, 1000.0}, 5.0, rng);
  // With 2 tight clusters in a huge area, the mean nearest-neighbour
  // distance is far below the ~uniform expectation (~35 m for n=200).
  double total_nn = 0.0;
  for (const Vec2& p : clustered) {
    double nn = 1e18;
    for (const Vec2& q : clustered) {
      if (&p == &q) continue;
      nn = std::min(nn, length(p - q));
    }
    total_nn += nn;
  }
  EXPECT_LT(total_nn / static_cast<double>(clustered.size()), 10.0);
}

TEST(ClusteredCrowd, ZeroClustersStillWorks) {
  Rng rng{19};
  const auto positions =
      clustered_crowd(10, 0, {0.0, 0.0}, {10.0, 10.0}, 1.0, rng);
  EXPECT_EQ(positions.size(), 10u);
}

}  // namespace
}  // namespace d2dhb::mobility
