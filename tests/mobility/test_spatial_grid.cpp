// World-index correctness: PointGrid / SpatialGrid answers must match a
// naive all-pairs scan exactly (same admitted set, same order rules) on
// random seeded layouts — the property the seeded-run equivalence of
// the whole simulator rests on.
#include "mobility/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace d2dhb::mobility {
namespace {

std::vector<Vec2> random_layout(std::size_t n, double area, Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-area / 4, area), rng.uniform(-area / 4, area)});
  }
  return points;
}

// ---------------------------------------------------------------------------
// PointGrid
// ---------------------------------------------------------------------------

TEST(PointGrid, MatchesBruteForceOnRandomLayouts) {
  Rng rng{2024};
  for (int trial = 0; trial < 20; ++trial) {
    const double area = rng.uniform(20.0, 300.0);
    const auto points = random_layout(40, area, rng);
    const Meters cell{rng.uniform(3.0, 40.0)};
    PointGrid grid{cell};
    for (std::size_t i = 0; i < points.size(); ++i) grid.insert(i, points[i]);

    for (int q = 0; q < 10; ++q) {
      const Vec2 center{rng.uniform(-area / 4, area),
                        rng.uniform(-area / 4, area)};
      const Meters radius{rng.uniform(0.0, area / 2)};
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (distance(center, points[i]).value <= radius.value) {
          expected.push_back(i);
        }
      }
      std::vector<std::size_t> got;
      grid.query_radius(center, radius, got);
      EXPECT_EQ(got, expected) << "trial " << trial << " query " << q;
      EXPECT_EQ(grid.count_within(center, radius), expected.size());
      EXPECT_EQ(grid.any_within(center, radius), !expected.empty());
    }
  }
}

TEST(PointGrid, NearestMatchesLinearScanIncludingTies) {
  Rng rng{7};
  for (int trial = 0; trial < 20; ++trial) {
    const auto points = random_layout(25, 100.0, rng);
    PointGrid grid{Meters{12.0}};
    for (std::size_t i = 0; i < points.size(); ++i) grid.insert(i, points[i]);
    for (int q = 0; q < 10; ++q) {
      const Vec2 center{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
      std::size_t best = 0;
      double best_d = distance(center, points[0]).value;
      for (std::size_t i = 1; i < points.size(); ++i) {
        const double d = distance(center, points[i]).value;
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      EXPECT_EQ(grid.nearest(center), best);
    }
  }
}

TEST(PointGrid, NearestBreaksExactTiesByLowestIndex) {
  PointGrid grid{Meters{5.0}};
  grid.insert(3, {10.0, 0.0});
  grid.insert(1, {0.0, 10.0});  // same distance from the origin
  grid.insert(7, {50.0, 50.0});
  EXPECT_EQ(grid.nearest({0.0, 0.0}), 1u);
}

TEST(PointGrid, EmptyNearestThrows) {
  PointGrid grid{Meters{5.0}};
  EXPECT_THROW(grid.nearest({0.0, 0.0}), std::out_of_range);
}

TEST(PointGrid, RejectsNonPositiveCellSize) {
  EXPECT_THROW(PointGrid{Meters{0.0}}, std::invalid_argument);
  EXPECT_THROW(PointGrid{Meters{-1.0}}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SpatialGrid
// ---------------------------------------------------------------------------

struct World {
  std::vector<std::unique_ptr<MobilityModel>> models;
  SpatialGrid grid{Meters{15.0}};

  NodeId add(std::unique_ptr<MobilityModel> model) {
    const NodeId id{models.size() + 1};
    grid.insert(id, *model);
    models.push_back(std::move(model));
    return id;
  }

  /// Naive all-pairs reference: in-range nodes sorted by id.
  std::vector<SpatialGrid::Neighbor> brute(Vec2 center, Meters radius,
                                           TimePoint t, NodeId exclude) {
    std::vector<SpatialGrid::Neighbor> out;
    for (std::size_t i = 0; i < models.size(); ++i) {
      const NodeId id{i + 1};
      if (id == exclude) continue;
      const Meters d = distance(center, models[i]->position_at(t));
      if (d.value <= radius.value) out.push_back({id, d});
    }
    return out;
  }
};

/// The tentpole property: grid radius queries match the naive all-pairs
/// scan on random seeded layouts — static and random-waypoint — across
/// query times, radii, and centers, including result order.
TEST(SpatialGrid, MatchesBruteForceOnStaticAndWaypointLayouts) {
  Rng rng{99};
  for (int trial = 0; trial < 10; ++trial) {
    World world;
    const double area = rng.uniform(40.0, 200.0);
    // Half static, half random-waypoint (the crowd mix).
    for (int i = 0; i < 18; ++i) {
      const Vec2 start{rng.uniform(0.0, area), rng.uniform(0.0, area)};
      if (i % 2 == 0) {
        world.add(std::make_unique<StaticMobility>(start));
      } else {
        RandomWaypoint::Params params;
        params.area_max = {area, area};
        world.add(
            std::make_unique<RandomWaypoint>(params, start, rng.fork()));
      }
    }
    std::uint64_t epoch = 0;
    std::vector<SpatialGrid::Neighbor> got;
    // Non-monotonic query times exercise the lazy refresh both ways.
    for (const double t_s : {0.0, 30.0, 30.0, 400.0, 120.0, 3600.0}) {
      const TimePoint t = TimePoint{} + seconds(t_s);
      ++epoch;
      for (int q = 0; q < 6; ++q) {
        const Vec2 center{rng.uniform(0.0, area), rng.uniform(0.0, area)};
        const Meters radius{rng.uniform(0.0, area / 2)};
        const NodeId exclude{q % 2 == 0 ? 0u : 1u + (q % 18)};
        world.grid.query_radius(center, radius, t, epoch, got, exclude);
        const auto expected = world.brute(center, radius, t, exclude);
        ASSERT_EQ(got.size(), expected.size())
            << "trial " << trial << " t=" << t_s << " q=" << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].node, expected[i].node);
          EXPECT_DOUBLE_EQ(got[i].distance.value, expected[i].distance.value);
        }
        EXPECT_EQ(
            world.grid.count_within(center, radius, t, epoch, exclude),
            expected.size());
      }
    }
  }
}

TEST(SpatialGrid, ResultsAreSortedByNodeId) {
  World world;
  // Insert in a scrambled id order via direct grid calls.
  StaticMobility a{{1.0, 0.0}}, b{{2.0, 0.0}}, c{{3.0, 0.0}};
  world.grid.insert(NodeId{9}, c);
  world.grid.insert(NodeId{2}, a);
  world.grid.insert(NodeId{5}, b);
  std::vector<SpatialGrid::Neighbor> got;
  world.grid.query_radius({0.0, 0.0}, Meters{10.0}, TimePoint{}, 0, got);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].node, NodeId{2});
  EXPECT_EQ(got[1].node, NodeId{5});
  EXPECT_EQ(got[2].node, NodeId{9});
}

TEST(SpatialGrid, RemoveAndReinsert) {
  SpatialGrid grid{Meters{10.0}};
  StaticMobility a{{0.0, 0.0}};
  StaticMobility b{{5.0, 0.0}};
  grid.insert(NodeId{1}, a);
  grid.insert(NodeId{2}, b);
  EXPECT_EQ(grid.size(), 2u);
  grid.remove(NodeId{1});
  EXPECT_FALSE(grid.contains(NodeId{1}));
  EXPECT_EQ(grid.size(), 1u);
  std::vector<SpatialGrid::Neighbor> got;
  grid.query_radius({0.0, 0.0}, Meters{20.0}, TimePoint{}, 0, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, NodeId{2});
  grid.insert(NodeId{1}, a);
  grid.query_radius({0.0, 0.0}, Meters{20.0}, TimePoint{}, 0, got);
  EXPECT_EQ(got.size(), 2u);
  // Removing an unknown node is a no-op.
  grid.remove(NodeId{42});
  EXPECT_EQ(grid.size(), 2u);
}

TEST(SpatialGrid, MovingNodeCrossesCells) {
  SpatialGrid grid{Meters{10.0}};
  // 2 m/s along +x: at t=0 in cell 0, at t=60 s 120 m away.
  LinearMobility walker{{0.0, 0.0}, {2.0, 0.0}};
  StaticMobility anchor{{0.0, 0.0}};
  grid.insert(NodeId{1}, walker);
  grid.insert(NodeId{2}, anchor);
  std::vector<SpatialGrid::Neighbor> got;
  grid.query_radius({0.0, 0.0}, Meters{30.0}, TimePoint{}, 1, got);
  EXPECT_EQ(got.size(), 2u);
  grid.query_radius({0.0, 0.0}, Meters{30.0}, TimePoint{} + seconds(60), 2,
                    got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, NodeId{2});
  // And it is findable at its new location.
  grid.query_radius({120.0, 0.0}, Meters{5.0}, TimePoint{} + seconds(60), 2,
                    got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node, NodeId{1});
}

TEST(SpatialGrid, PositionIsExactNeverCached) {
  SpatialGrid grid{Meters{10.0}};
  LinearMobility walker{{0.0, 0.0}, {1.0, 0.0}};
  grid.insert(NodeId{1}, walker);
  // No query (so no refresh) has happened at t=10, yet position() reads
  // the model directly.
  const Vec2 at = grid.position(NodeId{1}, TimePoint{} + seconds(10));
  EXPECT_DOUBLE_EQ(at.x, 10.0);
  EXPECT_THROW(grid.position(NodeId{3}, TimePoint{}), std::out_of_range);
}

TEST(SpatialGrid, StaticModelsAreDetected) {
  StaticMobility still{{1.0, 1.0}};
  OffsetMobility offset_still{still, {2.0, 0.0}};
  LinearMobility moving{{0.0, 0.0}, {1.0, 0.0}};
  OffsetMobility offset_moving{moving, {2.0, 0.0}};
  EXPECT_TRUE(still.is_static());
  EXPECT_TRUE(offset_still.is_static());
  EXPECT_FALSE(moving.is_static());
  EXPECT_FALSE(offset_moving.is_static());
}

}  // namespace
}  // namespace d2dhb::mobility
