#include <gtest/gtest.h>

#include "mobility/mobility.hpp"

namespace d2dhb::mobility {
namespace {

TEST(DepartureMobility, StationaryBeforeDeparture) {
  DepartureMobility m{{10.0, 10.0}, {100.0, 10.0},
                      TimePoint{} + seconds(100), 1.0};
  EXPECT_EQ(m.position_at(TimePoint{}), (Vec2{10.0, 10.0}));
  EXPECT_EQ(m.position_at(TimePoint{} + seconds(100)), (Vec2{10.0, 10.0}));
}

TEST(DepartureMobility, WalksStraightAfterDeparture) {
  DepartureMobility m{{0.0, 0.0}, {90.0, 0.0}, TimePoint{} + seconds(100),
                      1.5};
  // 90 m at 1.5 m/s = 60 s of travel.
  EXPECT_EQ(m.arrival_time(), TimePoint{} + seconds(160));
  const Vec2 halfway = m.position_at(TimePoint{} + seconds(130));
  EXPECT_NEAR(halfway.x, 45.0, 1e-9);
  EXPECT_NEAR(halfway.y, 0.0, 1e-9);
}

TEST(DepartureMobility, StaysAtTarget) {
  DepartureMobility m{{0.0, 0.0}, {10.0, 0.0}, TimePoint{}, 2.0};
  EXPECT_EQ(m.position_at(TimePoint{} + seconds(1000)), (Vec2{10.0, 0.0}));
}

TEST(DepartureMobility, ZeroDistanceIsSafe) {
  DepartureMobility m{{5.0, 5.0}, {5.0, 5.0}, TimePoint{} + seconds(10),
                      1.0};
  EXPECT_EQ(m.position_at(TimePoint{} + seconds(20)), (Vec2{5.0, 5.0}));
}

TEST(OffsetMobility, TracksLeader) {
  LinearMobility leader{{0.0, 0.0}, {1.0, 0.0}};
  OffsetMobility follower{leader, {0.0, 2.0}};
  const Vec2 p = follower.position_at(TimePoint{} + seconds(10));
  EXPECT_DOUBLE_EQ(p.x, 10.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(OffsetMobility, GroupStaysCoherent) {
  // A "family" around one random-waypoint leader keeps its shape.
  RandomWaypoint::Params params;
  RandomWaypoint leader{params, {50.0, 50.0}, Rng{5}};
  OffsetMobility a{leader, {1.0, 0.0}};
  OffsetMobility b{leader, {-1.0, 0.0}};
  for (int t = 0; t <= 600; t += 60) {
    const TimePoint tp = TimePoint{} + seconds(t);
    EXPECT_NEAR(distance(a.position_at(tp), b.position_at(tp)).value, 2.0,
                1e-9);
  }
}

}  // namespace
}  // namespace d2dhb::mobility
