#include "apps/heartbeat_app.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace d2dhb::apps {
namespace {

class HeartbeatAppTest : public ::testing::Test {
 protected:
  HeartbeatApp make_app(AppProfile profile) {
    return HeartbeatApp{
        sim_, NodeId{1}, AppId{1}, std::move(profile), ids_,
        [this](const net::HeartbeatMessage& m) { received_.push_back(m); }};
  }

  sim::Simulator sim_;
  IdGenerator<MessageId> ids_;
  std::vector<net::HeartbeatMessage> received_;
};

TEST_F(HeartbeatAppTest, EmitsOnProfilePeriod) {
  HeartbeatApp app = make_app(standard_app());
  app.start();
  sim_.run_until(TimePoint{} + seconds(270 * 3 + 1));
  EXPECT_EQ(received_.size(), 3u);
  EXPECT_EQ(received_[0].created_at, TimePoint{} + seconds(270));
  EXPECT_EQ(received_[2].created_at, TimePoint{} + seconds(810));
}

TEST_F(HeartbeatAppTest, MessagesCarryProfileParameters) {
  HeartbeatApp app = make_app(wechat());
  app.start();
  sim_.run_until(TimePoint{} + seconds(271));
  ASSERT_EQ(received_.size(), 1u);
  const auto& m = received_[0];
  EXPECT_EQ(m.app_name, "WeChat");
  EXPECT_EQ(m.size.value, 74u);
  EXPECT_EQ(m.period, seconds(270));
  EXPECT_EQ(m.expiry, seconds(270));
  EXPECT_EQ(m.origin, NodeId{1});
  EXPECT_EQ(m.seq, 1u);
  EXPECT_TRUE(m.id.valid());
}

TEST_F(HeartbeatAppTest, SequenceNumbersIncrease) {
  HeartbeatApp app = make_app(standard_app());
  app.start();
  sim_.run_until(TimePoint{} + seconds(270 * 4));
  ASSERT_EQ(received_.size(), 4u);
  for (std::size_t i = 0; i < received_.size(); ++i) {
    EXPECT_EQ(received_[i].seq, i + 1);
  }
}

TEST_F(HeartbeatAppTest, UniqueMessageIds) {
  HeartbeatApp a = make_app(standard_app());
  HeartbeatApp b = make_app(whatsapp());
  a.start();
  b.start();
  sim_.run_until(TimePoint{} + seconds(1000));
  std::set<std::uint64_t> ids;
  for (const auto& m : received_) ids.insert(m.id.value);
  EXPECT_EQ(ids.size(), received_.size());
}

TEST_F(HeartbeatAppTest, StartWithOffsetStaggersFirstBeat) {
  HeartbeatApp app = make_app(standard_app());
  app.start(seconds(100));
  sim_.run_until(TimePoint{} + seconds(400));
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[0].created_at, TimePoint{} + seconds(100));
  EXPECT_EQ(received_[1].created_at, TimePoint{} + seconds(370));
}

TEST_F(HeartbeatAppTest, StopHaltsEmission) {
  HeartbeatApp app = make_app(standard_app());
  app.start();
  sim_.run_until(TimePoint{} + seconds(271));
  app.stop();
  sim_.run_until(TimePoint{} + seconds(2000));
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(HeartbeatAppTest, MaxEmissionsBoundsOutput) {
  HeartbeatApp app = make_app(standard_app());
  app.set_max_emissions(3);
  app.start();
  sim_.run_until(TimePoint{} + seconds(270 * 10));
  EXPECT_EQ(received_.size(), 3u);
  EXPECT_EQ(app.emitted(), 3u);
}

TEST_F(HeartbeatAppTest, EmitNowBypassesSchedule) {
  HeartbeatApp app = make_app(standard_app());
  const net::HeartbeatMessage m = app.emit_now();
  EXPECT_EQ(m.created_at, TimePoint{});
  EXPECT_EQ(received_.size(), 1u);
  EXPECT_EQ(app.emitted(), 1u);
}

}  // namespace
}  // namespace d2dhb::apps
