#include "apps/app_profile.hpp"

#include <gtest/gtest.h>

namespace d2dhb::apps {
namespace {

TEST(AppProfile, WeChatMatchesPaper) {
  const AppProfile p = wechat();
  EXPECT_EQ(p.name, "WeChat");
  EXPECT_EQ(p.heartbeat_period, seconds(270));
  EXPECT_EQ(p.heartbeat_size.value, 74u);
  EXPECT_DOUBLE_EQ(p.heartbeat_share, 0.50);
}

TEST(AppProfile, QqMatchesPaper) {
  const AppProfile p = qq();
  EXPECT_EQ(p.heartbeat_period, seconds(300));
  EXPECT_EQ(p.heartbeat_size.value, 378u);
  EXPECT_DOUBLE_EQ(p.heartbeat_share, 0.526);
}

TEST(AppProfile, WhatsAppMatchesPaper) {
  const AppProfile p = whatsapp();
  EXPECT_EQ(p.heartbeat_period, seconds(240));
  EXPECT_EQ(p.heartbeat_size.value, 66u);
  EXPECT_DOUBLE_EQ(p.heartbeat_share, 0.619);
}

TEST(AppProfile, FacebookShareMatchesTableI) {
  EXPECT_DOUBLE_EQ(facebook().heartbeat_share, 0.484);
}

TEST(AppProfile, StandardAppUses54Bytes) {
  const AppProfile p = standard_app();
  EXPECT_EQ(p.heartbeat_size.value, 54u);
  EXPECT_EQ(p.heartbeat_period, seconds(270));
}

TEST(AppProfile, PopularAppsInTableOrder) {
  const auto all = popular_apps();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "WeChat");
  EXPECT_EQ(all[1].name, "WhatsApp");
  EXPECT_EQ(all[2].name, "QQ");
  EXPECT_EQ(all[3].name, "Facebook");
}

TEST(AppProfile, ExpiryDefaultsToOnePeriod) {
  for (const auto& p : popular_apps()) {
    EXPECT_EQ(p.expiry, p.heartbeat_period) << p.name;
  }
}

}  // namespace
}  // namespace d2dhb::apps
