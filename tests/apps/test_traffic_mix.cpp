#include "apps/traffic_mix.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace d2dhb::apps {
namespace {

TEST(TrafficMix, DataRateImpliedByShare) {
  sim::Simulator sim;
  MixedTrafficGenerator gen{sim, wechat(), Rng{1},
                            [](MixedTrafficGenerator::Kind, Bytes) {}};
  // share = 0.5 => data rate equals heartbeat rate (1/270 s).
  EXPECT_NEAR(gen.data_rate_per_second(), 1.0 / 270.0, 1e-12);
}

TEST(TrafficMix, ObservedShareConvergesToProfile) {
  // Table I reproduction at unit scale: run one app for a long simulated
  // stretch and check the heartbeat share matches the profile.
  for (const AppProfile& profile : popular_apps()) {
    sim::Simulator sim;
    MixedTrafficGenerator gen{sim, profile, Rng{profile.heartbeat_size.value},
                              [](MixedTrafficGenerator::Kind, Bytes) {}};
    gen.start();
    sim.run_until(TimePoint{} + seconds(3600.0 * 24 * 7));  // one week
    EXPECT_NEAR(gen.heartbeat_share(), profile.heartbeat_share, 0.03)
        << profile.name;
  }
}

TEST(TrafficMix, HeartbeatsArePeriodic) {
  sim::Simulator sim;
  std::uint64_t heartbeats = 0;
  MixedTrafficGenerator gen{
      sim, standard_app(), Rng{3},
      [&](MixedTrafficGenerator::Kind k, Bytes) {
        if (k == MixedTrafficGenerator::Kind::heartbeat) ++heartbeats;
      }};
  gen.start();
  sim.run_until(TimePoint{} + seconds(2700));
  EXPECT_EQ(heartbeats, 10u);
  EXPECT_EQ(gen.heartbeats(), 10u);
}

TEST(TrafficMix, StopHaltsBothStreams) {
  sim::Simulator sim;
  MixedTrafficGenerator gen{sim, standard_app(), Rng{5},
                            [](MixedTrafficGenerator::Kind, Bytes) {}};
  gen.start();
  sim.run_until(TimePoint{} + seconds(3000));
  const auto hb = gen.heartbeats();
  const auto data = gen.data_messages();
  gen.stop();
  sim.run_until(TimePoint{} + seconds(30000));
  EXPECT_EQ(gen.heartbeats(), hb);
  EXPECT_EQ(gen.data_messages(), data);
}

TEST(TrafficMix, ShareIsZeroBeforeTraffic) {
  sim::Simulator sim;
  MixedTrafficGenerator gen{sim, standard_app(), Rng{7},
                            [](MixedTrafficGenerator::Kind, Bytes) {}};
  EXPECT_DOUBLE_EQ(gen.heartbeat_share(), 0.0);
}

TEST(TrafficMix, DataSizesAreChatLike) {
  sim::Simulator sim;
  bool all_in_range = true;
  MixedTrafficGenerator gen{
      sim, whatsapp(), Rng{9},
      [&](MixedTrafficGenerator::Kind k, Bytes size) {
        if (k == MixedTrafficGenerator::Kind::data) {
          if (size.value < 120 || size.value > 900) all_in_range = false;
        }
      }};
  gen.start();
  sim.run_until(TimePoint{} + seconds(3600 * 24));
  EXPECT_TRUE(all_in_range);
  EXPECT_GT(gen.data_messages(), 0u);
}

}  // namespace
}  // namespace d2dhb::apps
