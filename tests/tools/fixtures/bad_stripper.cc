// Fixture: stripper correctness. Hazard tokens inside the raw string
// literals and the backslash-continued comment must NOT fire
// (fabrication), and the srand after the quote-bearing raw string must
// still fire (masking) — as must the plain rand() at the end.
const char* fabricate1 = R"(rand() srand(1) steady_clock)";
const char* fabricate2 = R"delim(unbalanced " quote " mt19937)delim";
int masked = (R"(")", srand(7));
// a continued comment \
int fabricated = rand();
int real = rand();
