// Fixture: known-bad — horizon-contract violations. Off-barrier
// drains, a zero-slack post_to(now()), and zero-delay post_afters must
// fire; the slack-carrying posts in fine() are negatives and must stay
// clean.
struct Sim;
struct Box;
struct Kernel;
void probe(Sim& sim, Box& box, Kernel& kernel) {
  box.drain_into(kernel);
  box.drain_window(kernel, 0);
  sim.post_to(1, sim.now(), nullptr);
  sim.post_after(2, Duration::zero(), nullptr);
  sim.post_after(2, milliseconds(0), nullptr);
}
void fine(Sim& sim, int delay) {
  sim.post_to(1, sim.now() + delay, nullptr);
  sim.post_after(1, delay, nullptr);
}
