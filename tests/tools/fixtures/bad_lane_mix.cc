// Fixture: known-bad — lanes used from the wrong strip. Hard-coded
// lane subscripts, a literal lane() fetch, and a set_seq_lane call
// must fire; the shard-indexed uses in fine() are negatives and must
// stay clean.
struct Kernel;
void probe(Kernel& kernel, int* lanes_, int* message_lanes) {
  lanes_[0] = 1;
  message_lanes[3] = 2;
  kernel.set_seq_lane(0, 4);
  kernel.lane(2);
}
void fine(Kernel& kernel, int* lanes_, int shard) {
  lanes_[shard] = 1;
  kernel.lane(shard);
}
