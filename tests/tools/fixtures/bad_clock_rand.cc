// Fixture: known-bad — wall-clock reads and non-reproducible RNG.
// Expected rules per line are asserted by test_detlint.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double jitter_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  const int noise = rand() % 7;
  std::random_device entropy;
  std::mt19937 engine(entropy());
  const auto t1 = std::chrono::system_clock::now();
  (void)t0;
  (void)t1;
  (void)engine;
  return static_cast<double>(noise) + static_cast<double>(clock());
}
