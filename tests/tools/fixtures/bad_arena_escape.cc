// Fixture: known-bad — arena borrows escaping their strip scope. The
// static-cached create<> and the returned adopt() must fire; the two
// plain local borrows in fine() are negatives and must stay clean.
struct Arena;
struct Foo;
Foo& leak_static(Arena& arena) {
  static Foo& cached = arena.create<Foo>(1);
  return cached;
}
Foo* leak_return(Arena* arena) {
  return &arena->adopt(nullptr);
}
void fine(Arena& arena) {
  Foo& local = arena.create<Foo>(2);
  Foo& adopted = arena.adopt(nullptr);
  (void)local;
  (void)adopted;
}
