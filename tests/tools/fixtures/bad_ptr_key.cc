// Fixture: known-bad — ordered containers keyed on pointers iterate in
// allocation-address order, which changes run to run.
#include <map>
#include <set>

struct Node {};

struct Registry {
  std::map<Node*, int> ranks_;
  std::set<const Node*> seen_;
};
