// Fixture: known-bad — direct cross-strip access. Member calls on
// kernel()/mailbox() and set_scheduling_shard() overrides must fire;
// the free-function declarations and the ::-qualified out-of-line
// definition below are negatives and must stay clean.
struct Sim;
void probe(Sim& sim, Sim* world) {
  sim.kernel(2);
  world->mailbox(0);
  sim.set_scheduling_shard(3);
}
int kernel(int shard);
int mailbox(int shard);
struct Simulator {};
int Simulator::kernel(int shard) { return shard; }
