// Fixture: known-bad — unordered container state + sim-visible
// iteration + float accumulation over hash-bucket order.
// Expected: unordered-state(8), unordered-iter(12), float-accum(13),
// unordered-iter(18) — line numbers asserted by test_detlint.cpp.
#include <unordered_map>

struct EnergyBook {
  std::unordered_map<unsigned, double> charges_;

  double total() const {
    double sum = 0.0;
    for (const auto& [node, charge] : charges_) {
      sum += charge;
    }
    return sum;
  }
  void drain() {
    for (auto it = charges_.begin(); it != charges_.end(); ++it) {
      it->second = 0.0;
    }
  }
};
