// Fixture: known-good — the same hazards as the bad fixtures, each
// carrying a justified suppression (same line or the comment block
// directly above). Expected: zero findings.
#include <unordered_map>
#include <unordered_set>

struct Buckets {
  // detlint: allow(unordered-state): key-only lookups; query results
  // are sorted before they escape this struct.
  std::unordered_map<unsigned, int> index_;

  std::unordered_set<unsigned> seen_;  // detlint: allow(unordered-state): membership tests only

  int checksum() const {
    int sum = 0;
    // detlint: allow(unordered-iter, float-accum): commutative integer
    // sum — the result is independent of iteration order.
    for (const auto& [key, value] : index_) {
      sum += value;
    }
    return sum;
  }
};
