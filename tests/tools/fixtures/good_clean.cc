// Fixture: known-good — deterministic patterns that must NOT fire:
// sorted containers, value-keyed maps, seeded RNG via common/rng
// idiom, sim-time reads, and rule tokens inside comments/strings
// ("rand()", "steady_clock", std::unordered_map) that the stripper
// must hide from the matcher.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

struct Rng {
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64() { return state_ *= 6364136223846793005ull; }
  std::uint64_t state_;
};

struct Sim {
  double now() const { return 0.0; }
};

double run(Sim& sim, std::uint64_t seed) {
  const char* docs = "never call rand() or read steady_clock here";
  Rng rng(seed);
  std::map<std::uint64_t, double> charges;
  charges[rng.next_u64() % 16] = 1.0;
  std::vector<double> samples;
  for (const auto& [node, charge] : charges) samples.push_back(charge);
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double s : samples) sum += s;
  (void)docs;
  return sum + sim.now();
}
