// Fixture: a suppression with no justification still suppresses its
// target rule, but fires allow-no-reason — suppressions must say why.
#include <unordered_map>

struct Table {
  std::unordered_map<int, int> cells_;  // detlint: allow(unordered-state)
};
