// trace_report: the minimal JSON parser, the --check schema rules, and
// the end-to-end loop — a profiled engine run's write_chrome_trace()
// output must validate and analyze back into the same phase totals the
// profiler summarized.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"
#include "trace_report/trace_report.hpp"

namespace d2dhb::trace_report {
namespace {

TEST(JsonParser, ParsesScalarsContainersAndEscapes) {
  const JsonValue v = parse_json(
      R"({"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null,)"
      R"( "d": "q\"\\\nA"})");
  ASSERT_EQ(v.type, JsonValue::Type::object);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, 1000.0);
  EXPECT_TRUE(v.find("b")->find("nested")->boolean);
  EXPECT_EQ(v.find("c")->type, JsonValue::Type::null);
  EXPECT_EQ(v.find("d")->string, "q\"\\\nA");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, ThrowsWithByteOffsetOnMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
        "{\"a\": 1} trailing", "nan", "[1, 2,, 3]"}) {
    EXPECT_THROW(parse_json(bad), std::runtime_error) << bad;
  }
  try {
    parse_json("[1, 2,, 3]");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonParser, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(parse_json(deep), std::runtime_error);
}

TEST(CheckTrace, AcceptsAMinimalWellFormedTrace) {
  const CheckResult r = check_trace(
      R"({"traceEvents": [)"
      R"({"ph": "M", "name": "process_name", "pid": 1},)"
      R"({"ph": "X", "name": "execute", "pid": 1, "tid": 0,)"
      R"( "ts": 0, "dur": 5, "args": {"shard": 0, "events": 3}}]})");
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_EQ(r.complete_events, 1u);
  EXPECT_EQ(r.metadata_events, 1u);
}

TEST(CheckTrace, RejectsStructuralViolations) {
  // Not JSON at all; not an object; no traceEvents; traceEvents not an
  // array; event without ph; X event missing dur; negative dur; a trace
  // with zero complete events.
  for (const char* bad : {
           "not json",
           "[]",
           "{}",
           R"({"traceEvents": 7})",
           R"({"traceEvents": [{"name": "x"}]})",
           R"({"traceEvents": [{"ph": "X", "name": "x", "pid": 1,)"
           R"( "tid": 0, "ts": 0}]})",
           R"({"traceEvents": [{"ph": "X", "name": "x", "pid": 1,)"
           R"( "tid": 0, "ts": 0, "dur": -1}]})",
           R"({"traceEvents": [{"ph": "M", "name": "meta"}]})",
       }) {
    const CheckResult r = check_trace(bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_FALSE(r.errors.empty()) << bad;
  }
}

TEST(ParseTrace, ThrowsOnDocumentsCheckRejects) {
  EXPECT_THROW(parse_trace(R"({"traceEvents": []})"), std::runtime_error);
}

/// Cross-shard ring workload (mirrors test_engine.cpp) — enough
/// activity that every phase kind shows up in the trace.
class RingWorkload {
 public:
  RingWorkload(sim::Simulator& sim, int ticks) : sim_(sim), ticks_(ticks) {
    for (std::uint32_t s = 0; s < sim_.shard_count(); ++s) {
      sim::ShardGuard guard(sim_, s);
      schedule_tick(s, 0);
    }
  }

 private:
  void schedule_tick(std::uint32_t shard, int i) {
    sim_.schedule_after(milliseconds(7 + shard), [this, shard, i] {
      const auto peer =
          static_cast<std::uint32_t>((shard + 1) % sim_.shard_count());
      if (peer != shard) {
        sim_.post_after(peer, milliseconds(60), [] {});
      }
      if (i + 1 < ticks_) schedule_tick(shard, i + 1);
    });
  }

  sim::Simulator& sim_;
  int ticks_;
};

TEST(TraceReport, EndToEndProfiledRunValidatesAndAnalyzes) {
  sim::Simulator simulator{4};
  RingWorkload load{simulator, 40};
  sim::Profiler profiler;
  sim::RunOptions options;
  options.threads = 4;
  options.profiler = &profiler;
  const sim::RunStats stats =
      sim::run(simulator, TimePoint{} + seconds(2), options);

  std::ostringstream trace_json;
  profiler.write_chrome_trace(trace_json);
  const std::string text = trace_json.str();

  const CheckResult check = check_trace(text);
  ASSERT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
  EXPECT_GT(check.complete_events, 0u);
  EXPECT_GT(check.metadata_events, 0u);

  const Trace trace = parse_trace(text);
  EXPECT_EQ(trace.workers, stats.workers);
  EXPECT_EQ(trace.shards, simulator.shard_count());

  const Report report = analyze(trace);
  EXPECT_EQ(report.workers, stats.workers);
  EXPECT_EQ(report.windows, stats.windows);
  EXPECT_GT(report.execute_ms, 0.0);
  EXPECT_GT(report.barrier_waits, 0u);
  EXPECT_LE(report.barrier_p50_us, report.barrier_p90_us);
  EXPECT_LE(report.barrier_p90_us, report.barrier_p99_us);
  EXPECT_LE(report.barrier_p99_us, report.barrier_max_us);
  EXPECT_GE(report.load_imbalance, 1.0);
  EXPECT_GT(report.window_utilization, 0.0);
  EXPECT_LE(report.window_utilization, 1.0);
  EXPECT_EQ(report.mailbox_delivered, stats.cross_delivered);

  // The straggler table covers every shard, busiest first, shares
  // summing to one.
  ASSERT_EQ(report.stragglers.size(), simulator.shard_count());
  double share_total = 0.0;
  for (std::size_t i = 0; i < report.stragglers.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(report.stragglers[i].busy_ms,
                report.stragglers[i - 1].busy_ms);
    }
    share_total += report.stragglers[i].share;
  }
  EXPECT_NEAR(share_total, 1.0, 1e-9);

  // Against the profiler's own summary: same span set, same totals.
  const sim::ProfileSummary summary = profiler.summarize();
  EXPECT_NEAR(report.execute_ms,
              static_cast<double>(summary.execute_ns) / 1e6, 0.1);
  EXPECT_NEAR(report.barrier_wait_ms,
              static_cast<double>(summary.barrier_wait_ns) / 1e6, 0.1);

  std::ostringstream rendered;
  print_report(report, rendered);
  const std::string out = rendered.str();
  EXPECT_NE(out.find("Straggler table"), std::string::npos);
  EXPECT_NE(out.find("barrier waits"), std::string::npos);
  EXPECT_NE(out.find("load imbalance"), std::string::npos);
}

TEST(Analyze, IgnoresTheDuplicatedShardTracks) {
  // Two copies of the same execute span, one per pid — only the worker
  // (pid 1) copy may count toward the totals.
  const char* text =
      R"({"otherData": {"workers": 1, "shards": 1}, "traceEvents": [)"
      R"({"ph": "X", "name": "execute", "pid": 1, "tid": 0, "ts": 0,)"
      R"( "dur": 1000, "args": {"shard": 0, "events": 10}},)"
      R"({"ph": "X", "name": "execute", "pid": 2, "tid": 0, "ts": 0,)"
      R"( "dur": 1000, "args": {"shard": 0, "events": 10}}]})";
  const Report report = analyze(parse_trace(text));
  EXPECT_DOUBLE_EQ(report.execute_ms, 1.0);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0].events, 10u);
}

}  // namespace
}  // namespace d2dhb::trace_report
