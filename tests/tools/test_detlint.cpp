// Tests for the detlint determinism linter, driven by the fixture
// corpus under tests/tools/fixtures/. Each known-bad fixture documents
// the exact (rule, line) pairs it must produce; the known-good fixtures
// must scan clean. DETLINT_FIXTURE_DIR is injected by CMake.
#include "detlint/detlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using d2dhb::detlint::AllowEntry;
using d2dhb::detlint::Finding;
using d2dhb::detlint::Options;
using d2dhb::detlint::glob_match;
using d2dhb::detlint::load_allowlist;
using d2dhb::detlint::rules;
using d2dhb::detlint::scan_file;
using d2dhb::detlint::scan_paths;
using d2dhb::detlint::scan_source;

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(DETLINT_FIXTURE_DIR) / name;
}

/// Findings reduced to the (line, rule) pairs the fixtures document.
std::vector<std::pair<std::size_t, std::string>> line_rules(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::size_t, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

TEST(DetlintRules, TableListsEveryDocumentedRule) {
  std::vector<std::string> ids;
  for (const auto& r : rules()) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.summary.empty()) << r.id;
  }
  for (const char* expected :
       {"unordered-iter", "unordered-state", "wall-clock", "libc-rand",
        "random-device", "std-rng", "ptr-key", "float-accum",
        "allow-no-reason", "cross-strip-access", "arena-escape",
        "mailbox-horizon", "lane-mix"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << "missing rule id: " << expected;
  }
}

TEST(DetlintFixtures, UnorderedIterFixtureFiresExactRules) {
  const auto findings = scan_file(fixture("bad_unordered_iter.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {8, "unordered-state"},
      {12, "unordered-iter"},
      {13, "float-accum"},
      {18, "unordered-iter"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, ClockAndRandFixtureFiresExactRules) {
  const auto findings = scan_file(fixture("bad_clock_rand.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {9, "wall-clock"},    // steady_clock
      {10, "libc-rand"},    // std::srand
      {10, "wall-clock"},   // std::time(nullptr)
      {11, "libc-rand"},    // rand()
      {12, "random-device"},
      {13, "std-rng"},      // mt19937
      {14, "wall-clock"},   // system_clock
      {18, "wall-clock"},   // clock()
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, PointerKeyFixtureFiresExactRules) {
  const auto findings = scan_file(fixture("bad_ptr_key.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {9, "ptr-key"},
      {10, "ptr-key"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, CrossStripFixtureFiresExactRules) {
  // Positives: member kernel()/mailbox() calls and the scheduling-shard
  // override. Negatives (pinned by their absence): the free-function
  // declarations on lines 11-12 and the ::-qualified definition on 14.
  const auto findings = scan_file(fixture("bad_cross_strip.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {7, "cross-strip-access"},
      {8, "cross-strip-access"},
      {9, "cross-strip-access"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, ArenaEscapeFixtureFiresExactRules) {
  // Positives: static-cached create<> and returned adopt(). Negatives:
  // the two local borrows in fine() (lines 14-15).
  const auto findings = scan_file(fixture("bad_arena_escape.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {7, "arena-escape"},
      {11, "arena-escape"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, MailboxHorizonFixtureFiresExactRules) {
  // Positives: both drain shapes, a zero-slack post_to(now()), and two
  // zero-delay post_after spellings. Negatives: the slack-carrying
  // post_to(now() + delay) and variable-delay post_after (lines 16-17).
  const auto findings = scan_file(fixture("bad_mailbox_horizon.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {9, "mailbox-horizon"},
      {10, "mailbox-horizon"},
      {11, "mailbox-horizon"},
      {12, "mailbox-horizon"},
      {13, "mailbox-horizon"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, LaneMixFixtureFiresExactRules) {
  // Positives: two hard-coded lane subscripts, a set_seq_lane call,
  // and a literal lane() fetch. Negatives: the shard-indexed subscript
  // and lane(shard) fetch in fine() (lines 13-14).
  const auto findings = scan_file(fixture("bad_lane_mix.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {7, "lane-mix"},
      {8, "lane-mix"},
      {9, "lane-mix"},
      {10, "lane-mix"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, StripperHandlesRawStringsAndContinuedComments) {
  // Raw-string contents and a backslash-continued comment must neither
  // fabricate findings (lines 5, 6, 9) nor mask the real calls that
  // follow them (lines 7 and 10).
  const auto findings = scan_file(fixture("bad_stripper.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {7, "libc-rand"},
      {10, "libc-rand"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintFixtures, CleanFixtureHasZeroFindings) {
  const auto findings = scan_file(fixture("good_clean.cc"));
  EXPECT_TRUE(findings.empty()) << findings.front().to_string();
}

TEST(DetlintFixtures, JustifiedSuppressionsSilenceEverything) {
  const auto findings = scan_file(fixture("good_suppressed.cc"));
  EXPECT_TRUE(findings.empty()) << findings.front().to_string();
}

TEST(DetlintFixtures, BareAllowSuppressesRuleButFiresAllowNoReason) {
  const auto findings = scan_file(fixture("bad_bare_allow.cc"));
  const std::vector<std::pair<std::size_t, std::string>> expected = {
      {6, "allow-no-reason"},
  };
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(DetlintScan, SeededViolationInSimPathReportsUnorderedIter) {
  // The acceptance-criterion shape: a hazard seeded into sim code must
  // come back with the right rule id and path label.
  const std::string source =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m) s += v;\n"
      "  return s;\n"
      "}\n";
  const auto findings = scan_source("src/sim/src/seeded.cpp", source);
  ASSERT_FALSE(findings.empty());
  bool saw_iter = false;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file, "src/sim/src/seeded.cpp");
    if (f.rule == "unordered-iter" && f.line == 5) saw_iter = true;
  }
  EXPECT_TRUE(saw_iter);
}

TEST(DetlintScan, FindingToStringUsesFileLineRuleFormat) {
  const auto findings = scan_file(fixture("bad_ptr_key.cc"));
  ASSERT_FALSE(findings.empty());
  const std::string line = findings.front().to_string();
  EXPECT_NE(line.find(":9: [ptr-key]"), std::string::npos) << line;
}

TEST(DetlintScan, ScanPathsWalksFixtureDirDeterministically) {
  const std::vector<std::filesystem::path> roots = {
      std::filesystem::path(DETLINT_FIXTURE_DIR)};
  const auto first = scan_paths(roots);
  const auto second = scan_paths(roots);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].to_string(), second[i].to_string());
  }
  // Files are visited in sorted order: bad_* findings precede good_*.
  EXPECT_NE(first.front().file.find("bad_"), std::string::npos);
}

TEST(DetlintAllowlist, EntryExemptsMatchingFileAndRuleOnly) {
  Options options;
  options.allowlist.push_back(
      AllowEntry{"wall-clock", "*bad_clock_rand.cc", "", 0});
  const auto findings = scan_file(fixture("bad_clock_rand.cc"), options);
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, "wall-clock") << f.to_string();
  }
  // The non-wall-clock findings survive.
  const auto lr = line_rules(findings);
  EXPECT_NE(std::find(lr.begin(), lr.end(),
                      std::make_pair(std::size_t{11}, std::string("libc-rand"))),
            lr.end());
}

TEST(DetlintAllowlist, StarRuleExemptsWholeFile) {
  Options options;
  options.allowlist.push_back(AllowEntry{"*", "*bad_ptr_key.cc", "", 0});
  EXPECT_TRUE(scan_file(fixture("bad_ptr_key.cc"), options).empty());
}

TEST(DetlintAllowlist, LoadParsesFileAndRejectsUnknownRules) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto good = dir / "detlint_allow_good.txt";
  {
    std::ofstream out(good);
    out << "# comment\n\nwall-clock bench/*\n* tests/tools/fixtures/*\n";
  }
  const Options options = load_allowlist(good);
  ASSERT_EQ(options.allowlist.size(), 2u);
  EXPECT_EQ(options.allowlist[0].rule, "wall-clock");
  EXPECT_EQ(options.allowlist[0].path_glob, "bench/*");
  EXPECT_EQ(options.allowlist[1].rule, "*");

  const auto bad = dir / "detlint_allow_bad.txt";
  {
    std::ofstream out(bad);
    out << "not-a-rule src/*\n";
  }
  EXPECT_THROW(load_allowlist(bad), std::runtime_error);
  EXPECT_THROW(load_allowlist(dir / "does_not_exist.txt"),
               std::runtime_error);
}

TEST(DetlintPrune, StaleInlineAllowIsReportedUsedOneIsNot) {
  const std::string source =
      "#include <unordered_set>\n"
      "// detlint: allow(unordered-state): probes only, never iterated.\n"
      "std::unordered_set<int> seen;\n"
      "// detlint: allow(wall-clock): justification for nothing.\n"
      "int x = 0;\n";
  d2dhb::detlint::Usage usage;
  const auto findings = scan_source("probe.cpp", source, {}, &usage);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(usage.stale_inline.size(), 1u);
  EXPECT_EQ(usage.stale_inline[0].file, "probe.cpp");
  EXPECT_EQ(usage.stale_inline[0].line, 4u);
  EXPECT_EQ(usage.stale_inline[0].rule, "wall-clock");
}

TEST(DetlintPrune, StaleAllowlistEntryIsReportedUsedOneIsNot) {
  Options options;
  options.allowlist.push_back(
      AllowEntry{"ptr-key", "*bad_ptr_key.cc", "allow.txt", 1});
  options.allowlist.push_back(
      AllowEntry{"wall-clock", "*no_such_file.cc", "allow.txt", 2});
  d2dhb::detlint::Usage usage;
  const auto findings = scan_file(fixture("bad_ptr_key.cc"), options, &usage);
  EXPECT_TRUE(findings.empty());
  const auto stale = usage.stale(options);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "allow.txt");
  EXPECT_EQ(stale[0].line, 2u);
  EXPECT_EQ(stale[0].rule, "wall-clock");
}

TEST(DetlintPrune, MultiRuleInlineAllowReportsOnlyTheStaleRule) {
  const std::string source =
      "#include <unordered_set>\n"
      "// detlint: allow(unordered-state, libc-rand): set is probe-only.\n"
      "std::unordered_set<int> seen;\n";
  d2dhb::detlint::Usage usage;
  const auto findings = scan_source("probe.cpp", source, {}, &usage);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(usage.stale_inline.size(), 1u);
  EXPECT_EQ(usage.stale_inline[0].rule, "libc-rand");
  EXPECT_EQ(usage.stale_inline[0].line, 2u);
}

TEST(DetlintPrune, UsageAggregatesAcrossScanPaths) {
  Options options;
  options.allowlist.push_back(AllowEntry{"*", "*does_not_exist*", "a.txt", 3});
  d2dhb::detlint::Usage usage;
  const auto findings = scan_paths(
      {std::filesystem::path(DETLINT_FIXTURE_DIR)}, options, &usage);
  ASSERT_FALSE(findings.empty());
  ASSERT_EQ(usage.allowlist_used.size(), 1u);
  EXPECT_FALSE(usage.allowlist_used[0]);
  const auto stale = usage.stale(options);
  ASSERT_FALSE(stale.empty());
  EXPECT_EQ(stale[0].file, "a.txt");
  EXPECT_EQ(stale[0].line, 3u);
}

TEST(DetlintGlob, MatchesShellStylePatterns) {
  EXPECT_TRUE(glob_match("*.cc", "foo.cc"));
  EXPECT_TRUE(glob_match("bench/*", "bench/perf_kernel.cpp"));
  EXPECT_TRUE(glob_match("?at.h", "cat.h"));
  EXPECT_FALSE(glob_match("*.cc", "foo.hpp"));
  EXPECT_FALSE(glob_match("bench/*", "src/bench_thing.cpp"));
  EXPECT_TRUE(glob_match("*", "anything/at/all.cpp"));
}

TEST(DetlintScan, StringsAndCommentsNeverFire) {
  const std::string source =
      "// rand() steady_clock std::unordered_map\n"
      "const char* s = \"srand(time(nullptr)) random_device\";\n"
      "/* for (auto& kv : bad_unordered_map_) {} */\n";
  EXPECT_TRUE(scan_source("probe.cpp", source).empty());
}

TEST(DetlintScan, SuppressionAppliesToCommentBlockDirectlyAbove) {
  const std::string suppressed =
      "#include <unordered_set>\n"
      "// detlint: allow(unordered-state): membership probes only, the\n"
      "// set is never iterated.\n"
      "std::unordered_set<int> seen;\n";
  EXPECT_TRUE(scan_source("probe.cpp", suppressed).empty());

  // A blank line breaks the block: the suppression no longer reaches
  // the declaration.
  const std::string detached =
      "#include <unordered_set>\n"
      "// detlint: allow(unordered-state): stale justification.\n"
      "\n"
      "std::unordered_set<int> seen;\n";
  const auto findings = scan_source("probe.cpp", detached);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-state");
  EXPECT_EQ(findings[0].line, 4u);
}

}  // namespace
