#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/aggregate.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/parallel.hpp"
#include "runner/sweep_runner.hpp"
#include "scenario/crowd.hpp"

namespace d2dhb::runner {
namespace {

TEST(Parallel, ResultsInIndexOrder) {
  const auto out = parallel_index_map(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, EmptyInput) {
  const auto out =
      parallel_index_map(0, [](std::size_t i) { return i; }, 4);
  EXPECT_TRUE(out.empty());
}

TEST(Parallel, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_index_map(
      hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        return 0;
      },
      8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ExceptionPropagatesSingleThread) {
  EXPECT_THROW(parallel_index_map(
                   4,
                   [](std::size_t i) {
                     if (i == 2) throw std::runtime_error("boom");
                     return i;
                   },
                   1),
               std::runtime_error);
}

TEST(Parallel, ExceptionPropagatesMultiThread) {
  try {
    parallel_index_map(
        32,
        [](std::size_t i) {
          if (i % 7 == 3) throw std::runtime_error("cell failed");
          return i;
        },
        4);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell failed");
  }
}

TEST(Parallel, StopsLaunchingAfterFailure) {
  // With one worker the jobs run in index order, so nothing past the
  // throwing job may start.
  std::atomic<int> started{0};
  EXPECT_THROW(parallel_index_map(
                   100,
                   [&](std::size_t i) {
                     started.fetch_add(1);
                     if (i == 5) throw std::runtime_error("stop");
                     return i;
                   },
                   1),
               std::runtime_error);
  EXPECT_EQ(started.load(), 6);
}

TEST(SeedHelpers, Range) {
  EXPECT_EQ(seed_range(101, 3),
            (std::vector<std::uint64_t>{101, 102, 103}));
  EXPECT_TRUE(seed_range(5, 0).empty());
}

TEST(SeedHelpers, ParseStartCount) {
  EXPECT_EQ(parse_seed_list("101:5"),
            (std::vector<std::uint64_t>{101, 102, 103, 104, 105}));
}

TEST(SeedHelpers, ParseExplicitList) {
  EXPECT_EQ(parse_seed_list("1,2,9"),
            (std::vector<std::uint64_t>{1, 2, 9}));
  EXPECT_EQ(parse_seed_list("7"), (std::vector<std::uint64_t>{7}));
}

TEST(SeedHelpers, ParseRejectsGarbage) {
  EXPECT_THROW(parse_seed_list(""), std::invalid_argument);
  EXPECT_THROW(parse_seed_list("1,x"), std::invalid_argument);
  EXPECT_THROW(parse_seed_list("5:0"), std::invalid_argument);
}

TEST(Aggregate, SummarizeKnownSamples) {
  const Aggregate a = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(a.n, 5u);
  EXPECT_DOUBLE_EQ(a.mean, 3.0);
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
  EXPECT_DOUBLE_EQ(a.p50, 3.0);
  EXPECT_NEAR(a.stddev, 1.5811, 1e-3);
  EXPECT_NEAR(a.ci95_half, 1.96 * a.stddev / std::sqrt(5.0), 1e-12);
}

TEST(Aggregate, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Aggregate one = summarize({42.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);  // no spread estimate from n=1
}

TEST(ExperimentRunner, SeedOrderPreserved) {
  const std::vector<std::uint64_t> seeds{9, 3, 7, 1};
  const ExperimentRunner runner{4};
  const auto out =
      runner.run(seeds, [](std::uint64_t seed) { return seed * 10; });
  EXPECT_EQ(out, (std::vector<std::uint64_t>{90, 30, 70, 10}));
}

struct ToyConfig {
  double scale{1.0};
};
struct ToyMetrics {
  double value{0.0};
};

SweepRunner<ToyConfig, ToyMetrics> toy_sweep() {
  SweepRunner<ToyConfig, ToyMetrics> sweep(
      [](const ToyConfig& c, std::uint64_t seed) {
        // Deterministic pseudo-random function of (config, seed).
        const auto mixed = static_cast<double>((seed * 2654435761u) % 1000);
        return ToyMetrics{c.scale * mixed};
      });
  sweep.point("a", ToyConfig{1.0})
      .point("b", ToyConfig{2.5})
      .seeds(seed_range(1, 8))
      .metric("value", [](const ToyMetrics& m) { return m.value; });
  return sweep;
}

std::string table_csv(const Table& table) {
  std::ostringstream os;
  table.write_csv(os);
  return os.str();
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  auto single = toy_sweep();
  auto multi = toy_sweep();
  const auto r1 = single.threads(1).run();
  const auto r8 = multi.threads(8).run();
  EXPECT_EQ(r1.samples, r8.samples);
  EXPECT_EQ(table_csv(r1.table()), table_csv(r8.table()));
}

TEST(SweepRunner, CellAndSampleLayout) {
  auto sweep = toy_sweep();
  const auto result = sweep.threads(2).run();
  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.cells[0].size(), 8u);
  ASSERT_EQ(result.samples[0].size(), 1u);
  ASSERT_EQ(result.samples[0][0].size(), 8u);
  // Point "b" scales point "a" by 2.5 for every seed.
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(result.samples[1][0][s], 2.5 * result.samples[0][0][s]);
  }
  const Aggregate a = result.aggregate(0, 0);
  EXPECT_EQ(a.n, 8u);
}

TEST(SweepRunner, RejectsEmptyMatrix) {
  SweepRunner<ToyConfig, ToyMetrics> no_points(
      [](const ToyConfig&, std::uint64_t) { return ToyMetrics{}; });
  EXPECT_THROW(no_points.run(), std::logic_error);

  SweepRunner<ToyConfig, ToyMetrics> no_seeds(
      [](const ToyConfig&, std::uint64_t) { return ToyMetrics{}; });
  no_seeds.point("a", ToyConfig{}).seeds({});
  EXPECT_THROW(no_seeds.run(), std::logic_error);
}

TEST(SweepRunner, ExceptionInCellPropagates) {
  SweepRunner<ToyConfig, ToyMetrics> sweep(
      [](const ToyConfig&, std::uint64_t seed) -> ToyMetrics {
        if (seed == 3) throw std::runtime_error("cell 3 exploded");
        return ToyMetrics{1.0};
      });
  sweep.point("a", ToyConfig{}).seeds(seed_range(1, 5)).threads(4).metric(
      "value", [](const ToyMetrics& m) { return m.value; });
  EXPECT_THROW(sweep.run(), std::runtime_error);
}

// End-to-end: a real (small) crowd experiment matrix must aggregate to
// byte-identical tables for 1 worker and N workers.
TEST(SweepRunner, CrowdSweepDeterministicAcrossThreads) {
  auto make = [] {
    scenario::CrowdConfig config;
    config.phones = 12;
    config.area_m = 40.0;
    config.clusters = 2;
    config.duration_s = 600.0;
    SweepRunner<scenario::CrowdConfig, scenario::CrowdMetrics> sweep(
        [](const scenario::CrowdConfig& base, std::uint64_t seed) {
          scenario::CrowdConfig cfg = base;
          cfg.seed = seed;
          return scenario::run_d2d_crowd(cfg);
        });
    sweep.point("12 phones", config)
        .seeds(seed_range(101, 2))
        .metric("total L3",
                [](const scenario::CrowdMetrics& m) {
                  return static_cast<double>(m.total_l3);
                })
        .metric("radio uAh", [](const scenario::CrowdMetrics& m) {
          return m.total_radio_uah;
        });
    return sweep;
  };
  auto single = make();
  auto multi = make();
  const auto r1 = single.threads(1).run();
  const auto r4 = multi.threads(4).run();
  EXPECT_EQ(r1.samples, r4.samples);
  EXPECT_EQ(table_csv(r1.table()), table_csv(r4.table()));
}

}  // namespace
}  // namespace d2dhb::runner
