#include <gtest/gtest.h>

#include <sstream>

#include "energy/energy_meter.hpp"
#include "sim/simulator.hpp"

namespace d2dhb::energy {
namespace {

TEST(EnergyReport, BreaksDownByComponent) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{40.0});
  meter.register_component("cellular", MilliAmps{320.0});
  sim.run_until(TimePoint{} + seconds(36));
  std::ostringstream os;
  meter.print_report(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("cellular"), std::string::npos);
  // 40·36/3.6 = 400 µAh and 320·36/3.6 = 3200 µAh of 3600 total.
  EXPECT_NE(out.find("400.0"), std::string::npos);
  EXPECT_NE(out.find("3200.0"), std::string::npos);
  EXPECT_NE(out.find("3600.0"), std::string::npos);
  EXPECT_NE(out.find("88.9%"), std::string::npos);  // cellular share
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

TEST(EnergyReport, EmptyMeterPrintsHeaderAndZeroTotal) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  std::ostringstream os;
  meter.print_report(os);
  EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace d2dhb::energy
