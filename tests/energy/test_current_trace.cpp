#include "energy/current_trace.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace d2dhb::energy {
namespace {

TEST(CurrentTrace, SamplesAtConfiguredInterval) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{200.0});
  CurrentTraceRecorder rec{sim, meter, milliseconds(100)};
  rec.start();
  sim.run_until(TimePoint{} + seconds(1));
  rec.stop();
  // t=0 plus 10 samples at 0.1 s.
  EXPECT_EQ(rec.samples().size(), 11u);
  for (const auto& s : rec.samples()) {
    EXPECT_DOUBLE_EQ(s.current.value, 200.0);
  }
}

TEST(CurrentTrace, CapturesTransientSpike) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio", MilliAmps{100.0});
  CurrentTraceRecorder rec{sim, meter, milliseconds(100)};
  rec.start();
  sim.schedule_after(milliseconds(300), [&] {
    meter.add_load(c, MilliAmps{500.0}, milliseconds(250));
  });
  sim.run_until(TimePoint{} + seconds(1));
  double peak = 0.0;
  for (const auto& s : rec.samples()) peak = std::max(peak, s.current.value);
  EXPECT_DOUBLE_EQ(peak, 600.0);
}

TEST(CurrentTrace, SeriesConversion) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{40.0});
  CurrentTraceRecorder rec{sim, meter};
  rec.start();
  sim.run_until(TimePoint{} + milliseconds(500));
  const Series s = rec.as_series("trace");
  EXPECT_EQ(s.name, "trace");
  ASSERT_EQ(s.xs.size(), rec.samples().size());
  EXPECT_DOUBLE_EQ(s.xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(s.ys.front(), 40.0);
}

TEST(CurrentTrace, SampledIntegralMatchesMeterForConstantDraw) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{360.0});
  CurrentTraceRecorder rec{sim, meter, milliseconds(100)};
  rec.start();
  sim.run_until(TimePoint{} + seconds(10));
  rec.stop();
  // Constant draw: trapezoid over samples is exact.
  EXPECT_NEAR(rec.integrate_samples().value, meter.total_charge().value,
              1e-6);
}

TEST(CurrentTrace, ClearDropsSamples) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{10.0});
  CurrentTraceRecorder rec{sim, meter};
  rec.start();
  sim.run_until(TimePoint{} + seconds(1));
  rec.stop();
  rec.clear();
  EXPECT_TRUE(rec.samples().empty());
  EXPECT_DOUBLE_EQ(rec.integrate_samples().value, 0.0);
}

}  // namespace
}  // namespace d2dhb::energy
