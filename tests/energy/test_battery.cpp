#include "energy/battery.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace d2dhb::energy {
namespace {

TEST(Battery, FullWhenUnused) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  Battery battery{meter, MicroAmpHours{1000.0}};
  EXPECT_DOUBLE_EQ(battery.level(), 1.0);
  EXPECT_FALSE(battery.depleted());
}

TEST(Battery, DrainsWithMeter) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("radio", MilliAmps{36.0});
  Battery battery{meter, MicroAmpHours{1000.0}};
  sim.run_until(TimePoint{} + seconds(50));  // 36·50/3.6 = 500 µAh
  EXPECT_NEAR(battery.poll().value, 500.0, 1e-9);
  EXPECT_NEAR(battery.level(), 0.5, 1e-9);
  EXPECT_FALSE(battery.depleted());
}

TEST(Battery, FiresDepletionCallbackOnce) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("radio", MilliAmps{360.0});
  int fired = 0;
  Battery battery{meter, MicroAmpHours{100.0}, [&] { ++fired; }};
  sim.run_until(TimePoint{} + seconds(10));  // 1000 µAh used >> capacity
  battery.poll();
  battery.poll();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(battery.depleted());
  EXPECT_DOUBLE_EQ(battery.poll().value, 0.0);
}

TEST(Battery, ZeroCapacityIsAlwaysEmpty) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  Battery battery{meter, MicroAmpHours{0.0}};
  EXPECT_DOUBLE_EQ(battery.level(), 0.0);
}

}  // namespace
}  // namespace d2dhb::energy
