#include "energy/energy_meter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.hpp"

namespace d2dhb::energy {
namespace {

TEST(EnergyMeter, IntegratesConstantDraw) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio", MilliAmps{360.0});
  sim.run_until(TimePoint{} + seconds(10));
  // 360 mA · 10 s / 3.6 = 1000 µAh.
  EXPECT_NEAR(meter.total_charge().value, 1000.0, 1e-9);
  EXPECT_NEAR(meter.component_charge(c).value, 1000.0, 1e-9);
}

TEST(EnergyMeter, MultipleComponentsSum) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("baseline", MilliAmps{40.0});
  meter.register_component("radio", MilliAmps{320.0});
  sim.run_until(TimePoint{} + seconds(36));
  EXPECT_NEAR(meter.total_charge().value, 3600.0, 1e-9);
  EXPECT_EQ(meter.component_count(), 2u);
}

TEST(EnergyMeter, SetCurrentSplitsIntegration) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio", MilliAmps{100.0});
  sim.run_until(TimePoint{} + seconds(18));  // 100·18/3.6 = 500
  meter.set_current(c, MilliAmps{200.0});
  sim.run_until(TimePoint{} + seconds(36));  // + 200·18/3.6 = 1000
  EXPECT_NEAR(meter.component_charge(c).value, 1500.0, 1e-9);
}

TEST(EnergyMeter, InstantaneousReflectsAllComponents) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto a = meter.register_component("a", MilliAmps{40.0});
  meter.register_component("b", MilliAmps{60.0});
  EXPECT_DOUBLE_EQ(meter.instantaneous().value, 100.0);
  meter.set_current(a, MilliAmps{10.0});
  EXPECT_DOUBLE_EQ(meter.instantaneous().value, 70.0);
}

TEST(EnergyMeter, AddLoadDecaysAfterDuration) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio", MilliAmps{0.0});
  meter.add_load(c, MilliAmps{360.0}, seconds(10));
  EXPECT_DOUBLE_EQ(meter.component_current(c).value, 360.0);
  sim.run_until(TimePoint{} + seconds(20));
  EXPECT_DOUBLE_EQ(meter.component_current(c).value, 0.0);
  EXPECT_NEAR(meter.component_charge(c).value, 1000.0, 1e-9);
}

TEST(EnergyMeter, OverlappingLoadsStack) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio", MilliAmps{0.0});
  meter.add_load(c, MilliAmps{100.0}, seconds(10));
  sim.run_until(TimePoint{} + seconds(5));
  meter.add_load(c, MilliAmps{100.0}, seconds(10));
  EXPECT_DOUBLE_EQ(meter.component_current(c).value, 200.0);
  sim.run_until(TimePoint{} + seconds(30));
  EXPECT_DOUBLE_EQ(meter.component_current(c).value, 0.0);
  // Two loads of 100 mA · 10 s = 2 · (1000/3.6) µAh.
  EXPECT_NEAR(meter.component_charge(c).value, 2000.0 / 3.6, 1e-9);
}

TEST(EnergyMeter, AddLoadRejectsNonPositiveDuration) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("radio");
  EXPECT_THROW(meter.add_load(c, MilliAmps{10.0}, Duration::zero()),
               std::invalid_argument);
}

TEST(EnergyMeter, CheckpointDeltas) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  meter.register_component("radio", MilliAmps{36.0});
  sim.run_until(TimePoint{} + seconds(10));
  const auto cp = meter.checkpoint();
  sim.run_until(TimePoint{} + seconds(20));
  EXPECT_NEAR(meter.charge_since(cp).value, 100.0, 1e-9);
}

TEST(EnergyMeter, ComponentNameLookup) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  const auto c = meter.register_component("cellular:WCDMA");
  EXPECT_EQ(meter.component_name(c), "cellular:WCDMA");
}

TEST(EnergyMeter, InvalidHandleThrows) {
  sim::Simulator sim;
  EnergyMeter meter{sim};
  EXPECT_THROW(meter.component_charge(ComponentHandle{5}), std::out_of_range);
}

}  // namespace
}  // namespace d2dhb::energy
