#include "metrics/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/registry.hpp"

namespace d2dhb::metrics {
namespace {

MetricsRegistry& small_registry(MetricsRegistry& reg) {
  reg.counter("hb.sent", {1, -1, "ue"}).inc(3);
  reg.gauge("battery", {1, -1, "phone"}).set(0.5);
  reg.histogram("bundle", {1.0, 2.0}).observe(2.0);
  return reg;
}

TEST(MetricsExport, JsonGolden) {
  MetricsRegistry reg;
  std::ostringstream os;
  export_json(small_registry(reg).snapshot(), os);
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"d2dhb.metrics.v1\",\"metrics\":[\n"
      "{\"name\":\"battery\",\"kind\":\"gauge\",\"labels\":{\"node\":1,"
      "\"component\":\"phone\"},\"value\":0.5},\n"
      "{\"name\":\"bundle\",\"kind\":\"histogram\",\"labels\":{},"
      "\"count\":1,\"sum\":2,\"buckets\":[{\"le\":1,\"count\":0},"
      "{\"le\":2,\"count\":1},{\"le\":\"inf\",\"count\":0}]},\n"
      "{\"name\":\"hb.sent\",\"kind\":\"counter\",\"labels\":{\"node\":1,"
      "\"component\":\"ue\"},\"value\":3}\n"
      "]}");
}

TEST(MetricsExport, CsvGolden) {
  MetricsRegistry reg;
  std::ostringstream os;
  export_csv(small_registry(reg).snapshot(), os);
  EXPECT_EQ(os.str(),
            "name,kind,node,cell,component,value,count,sum\n"
            "battery,gauge,1,,phone,0.5,,\n"
            "bundle,histogram,,,,2,1,2\n"
            "hb.sent,counter,1,,ue,3,3,\n");
}

TEST(MetricsExport, SamplerSerializesPoints) {
  MetricsRegistry reg;
  reg.set_sampling_enabled(true);
  Sampler& s = reg.sampler("trace");
  s.sample(TimePoint{} + seconds(1), 2.0);
  s.sample(TimePoint{} + seconds(2.5), -1.0);
  std::ostringstream os;
  export_json(reg.snapshot(), os);
  EXPECT_NE(os.str().find("\"samples\":[[1,2],[2.5,-1]]"),
            std::string::npos);
}

TEST(MetricsExport, JsonReportWrapsSections) {
  MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  std::ostringstream os;
  export_json_report({{"original", a.snapshot()}, {"d2d", b.snapshot()}},
                     os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"schema\":\"d2dhb.metrics-report.v1\",\"runs\":["),
            0u);
  EXPECT_NE(out.find("\"label\":\"original\""), std::string::npos);
  EXPECT_NE(out.find("\"label\":\"d2d\""), std::string::npos);
  // Section order is preserved.
  EXPECT_LT(out.find("\"label\":\"original\""),
            out.find("\"label\":\"d2d\""));
}

TEST(MetricsExport, EscapesStrings) {
  MetricsRegistry reg;
  reg.counter("weird\"name");
  std::ostringstream os;
  export_json(reg.snapshot(), os);
  EXPECT_NE(os.str().find("weird\\\"name"), std::string::npos);
}

TEST(MetricsExport, RuntimeNamespacePartition) {
  EXPECT_TRUE(is_runtime_metric("runtime/windows"));
  EXPECT_TRUE(is_runtime_metric("runtime/shard_busy_us"));
  EXPECT_FALSE(is_runtime_metric("hb.sent"));
  // Only the prefix counts — "runtime" must start the name.
  EXPECT_FALSE(is_runtime_metric("app/runtime/foo"));
  EXPECT_FALSE(is_runtime_metric("runtime_total"));
}

TEST(MetricsExport, DeterministicExportersDropRuntimeEntries) {
  MetricsRegistry reg;
  small_registry(reg);
  reg.gauge("runtime/wall_us").set(123.0);
  reg.counter("runtime/spans").inc(9);
  const Snapshot snapshot = reg.snapshot();

  // The deterministic JSON export is unchanged by the runtime entries:
  // byte-identical to a registry that never had them.
  MetricsRegistry clean;
  std::ostringstream with_runtime, without_runtime;
  export_json(snapshot, with_runtime);
  export_json(small_registry(clean).snapshot(), without_runtime);
  EXPECT_EQ(with_runtime.str(), without_runtime.str());

  std::ostringstream csv;
  export_csv(snapshot, csv);
  EXPECT_EQ(csv.str().find("runtime/"), std::string::npos);
}

TEST(MetricsExport, RuntimeExporterCarriesOnlyRuntimeEntries) {
  MetricsRegistry reg;
  small_registry(reg);
  reg.gauge("runtime/wall_us").set(123.0);
  std::ostringstream os;
  export_runtime_json(reg.snapshot(), os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"schema\":\"d2dhb.metrics.runtime.v1\""), 0u);
  EXPECT_NE(out.find("runtime/wall_us"), std::string::npos);
  EXPECT_EQ(out.find("hb.sent"), std::string::npos);
  EXPECT_EQ(out.find("battery"), std::string::npos);
}

TEST(MetricsExport, SnapshotExportIsReproducible) {
  // Two registries populated identically serialize byte-identically —
  // the per-run half of the thread-count determinism contract.
  MetricsRegistry a, b;
  std::ostringstream osa, osb;
  export_json(small_registry(a).snapshot(), osa);
  export_json(small_registry(b).snapshot(), osb);
  EXPECT_EQ(osa.str(), osb.str());
}

}  // namespace
}  // namespace d2dhb::metrics
