#include "metrics/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace d2dhb::metrics {
namespace {

TEST(MetricsRegistry, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hb.sent");
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 4u);
  // Re-registering the same key returns the same object.
  EXPECT_EQ(&reg.counter("hb.sent"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsSeparateSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hb.sent", {1, -1, "ue"});
  Counter& b = reg.counter("hb.sent", {2, -1, "ue"});
  EXPECT_NE(&a, &b);
  a.inc(2);
  b.inc(5);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hb.sent", {1, -1, "ue"}), 2u);
  EXPECT_EQ(snap.counter("hb.sent", {2, -1, "ue"}), 5u);
  EXPECT_EQ(snap.counter_total("hb.sent"), 7u);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
  EXPECT_THROW(reg.sampler("x"), std::logic_error);
}

TEST(MetricsRegistry, GaugeSetAndCallback) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("battery");
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);

  double external = 1.0;
  reg.gauge_fn("energy", {}, [&external] { return external; });
  external = 42.5;
  // Callback gauges read through at snapshot time.
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("energy"), 42.5);
}

TEST(MetricsRegistry, GaugeFnReRegistrationRebindsCallback) {
  MetricsRegistry reg;
  reg.gauge_fn("v", {}, [] { return 1.0; });
  reg.gauge_fn("v", {}, [] { return 2.0; });
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("v"), 2.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, HistogramBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("bundle", {1.0, 2.0, 4.0});
  h.observe(1.0);   // <= 1
  h.observe(2.0);   // <= 2
  h.observe(3.0);   // <= 4
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
}

TEST(MetricsRegistry, SamplerGatedByMasterSwitch) {
  MetricsRegistry reg;
  Sampler& s = reg.sampler("trace");
  s.sample(TimePoint{} + seconds(1), 10.0);
  EXPECT_TRUE(s.samples().empty());  // off by default

  reg.set_sampling_enabled(true);
  s.sample(TimePoint{} + seconds(2), 20.0);
  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(s.samples()[0].t, 2.0);
  EXPECT_DOUBLE_EQ(s.samples()[0].v, 20.0);

  reg.set_sampling_enabled(false);
  s.sample(TimePoint{} + seconds(3), 30.0);
  EXPECT_EQ(s.samples().size(), 1u);
}

TEST(MetricsRegistry, SnapshotSortedByNameThenLabels) {
  MetricsRegistry reg;
  reg.counter("b", {2, -1, ""});
  reg.counter("b", {1, -1, ""});
  reg.counter("a", {5, -1, ""});
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "a");
  EXPECT_EQ(snap.entries[1].name, "b");
  EXPECT_EQ(snap.entries[1].labels.node, 1u);
  EXPECT_EQ(snap.entries[2].labels.node, 2u);
}

TEST(MetricsRegistry, SnapshotFindMissingReturnsDefaults) {
  MetricsRegistry reg;
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("nope"), nullptr);
  EXPECT_EQ(snap.counter("nope"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("nope"), 0.0);
  EXPECT_TRUE(snap.empty());
}

TEST(MetricsMerge, SumsMatchingSeries) {
  MetricsRegistry a, b;
  a.counter("c").inc(2);
  b.counter("c").inc(3);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.5);
  a.histogram("h", {10.0}).observe(4.0);
  b.histogram("h", {10.0}).observe(6.0);
  const Snapshot merged = merge({a.snapshot(), b.snapshot()});
  EXPECT_EQ(merged.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(merged.gauge("g"), 4.0);
  const SnapshotEntry* h = merged.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(h->histogram.sum, 10.0);
}

TEST(MetricsMerge, DisjointSeriesUnionInSortedOrder) {
  MetricsRegistry a, b;
  a.counter("only.a").inc();
  b.counter("only.b").inc(7);
  const Snapshot merged = merge({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.entries.size(), 2u);
  EXPECT_EQ(merged.entries[0].name, "only.a");
  EXPECT_EQ(merged.entries[1].name, "only.b");
  EXPECT_EQ(merged.counter("only.b"), 7u);
}

}  // namespace
}  // namespace d2dhb::metrics
