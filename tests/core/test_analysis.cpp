#include "core/analysis.hpp"

#include <gtest/gtest.h>

namespace d2dhb::core::analysis {
namespace {

TEST(Analysis, CellularChargeMatchesCalibration) {
  // DESIGN.md §5: one isolated 54 B WCDMA heartbeat = 598.33 µAh.
  const MicroAmpHours q =
      cellular_transmission_charge(radio::wcdma_profile(), Bytes{54});
  EXPECT_NEAR(q.value, 598.33, 0.1);
}

TEST(Analysis, LargePayloadStretchesBurstCharge) {
  const auto profile = radio::wcdma_profile();
  const double small =
      cellular_transmission_charge(profile, Bytes{54}).value;
  const double big =
      cellular_transmission_charge(profile, Bytes{200'000}).value;
  // 1 s burst instead of 0.4 s at 650 mA: +0.6 s · 650 mA = +108.3 µAh.
  EXPECT_NEAR(big - small, 108.3, 0.5);
}

TEST(Analysis, L3CountsMatchProfile) {
  const auto profile = radio::wcdma_profile();
  EXPECT_EQ(cellular_transmission_l3(profile, Bytes{54}), 8u);
  EXPECT_EQ(cellular_transmission_l3(profile, Bytes{400}), 9u);
  const auto lte = radio::lte_profile();
  EXPECT_EQ(cellular_transmission_l3(lte, Bytes{54}), 7u);
}

TEST(Analysis, SignalingPredictionExact) {
  PairModel model;
  model.ues = 1;
  model.transmissions = 10;
  const PairPrediction p = predict_pair(model);
  // Original: 2 phones × 10 × 8; D2D: 10 × 8 (108 B aggregate < 150 B).
  EXPECT_EQ(p.original_l3, 160u);
  EXPECT_EQ(p.d2d_l3, 80u);
  EXPECT_DOUBLE_EQ(p.signaling_saving, 0.5);
}

TEST(Analysis, TwoUeAggregateCrossesReconfigThreshold) {
  PairModel model;
  model.ues = 2;
  model.transmissions = 4;
  const PairPrediction p = predict_pair(model);
  // Aggregate: 3·54 + 3·8 = 186 B > 150 B → 9 L3 per cycle.
  EXPECT_EQ(p.d2d_l3, 36u);
  EXPECT_EQ(p.original_l3, 96u);
}

TEST(Analysis, SavingsGrowWithTransmissions) {
  PairModel model;
  double prev = -1.0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    model.transmissions = k;
    const double s = predict_pair(model).system_energy_saving;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Analysis, BreakEvenNearTheFirstTransmission) {
  // Fig. 9: "on the period of first message forwarded, the D2D approach
  // reaches nearly the same energy consumption as the original system."
  PairModel model;
  const std::size_t k = break_even_transmissions(model);
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, 3u);
}

TEST(Analysis, FarUePushesBreakEvenOut) {
  PairModel near;
  near.distance_m = 1.0;
  PairModel far = near;
  far.distance_m = 8.0;  // pricier sends, still below the crossover
  const std::size_t far_k = break_even_transmissions(far);
  EXPECT_GT(far_k, 0u);
  EXPECT_GE(far_k, break_even_transmissions(near));
  // Beyond the crossover the system never breaks even.
  PairModel beyond = near;
  beyond.distance_m = 25.0;
  EXPECT_EQ(break_even_transmissions(beyond), 0u);
}

}  // namespace
}  // namespace d2dhb::core::analysis
