#include "core/original_agent.hpp"

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace d2dhb::core {
namespace {

class OriginalAgentTest : public ::testing::Test {
 protected:
  Phone& add_phone() {
    PhoneConfig pc;
    pc.mobility = std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{0.0, 0.0});
    return world_.add_phone(std::move(pc));
  }

  apps::AppProfile short_app(double period_s = 20.0) {
    apps::AppProfile a = apps::standard_app();
    a.heartbeat_period = seconds(period_s);
    a.expiry = seconds(period_s);
    return a;
  }

  scenario::Scenario world_;
};

TEST_F(OriginalAgentTest, EveryHeartbeatIsOneRrcCycle) {
  Phone& phone = add_phone();
  OriginalAgent& agent = world_.add_original(phone, short_app());
  agent.apps().front()->set_max_emissions(4);
  agent.start();
  world_.sim().run_until(TimePoint{} + seconds(150));
  EXPECT_EQ(agent.heartbeats_sent(), 4u);
  EXPECT_EQ(world_.server().totals().delivered, 4u);
  // 4 cycles × 8 L3 messages.
  EXPECT_EQ(world_.bs().signaling().count_for(phone.id()), 32u);
  // 4 × ~598 µAh.
  EXPECT_NEAR(phone.cellular_charge().value, 4 * 598.3, 5.0);
  EXPECT_DOUBLE_EQ(phone.wifi_charge().value, 0.0);
}

TEST_F(OriginalAgentTest, MultipleAppsShareTheModem) {
  Phone& phone = add_phone();
  OriginalAgent& agent = world_.add_original(phone, short_app(20.0));
  agent.add_app(short_app(30.0), world_.message_ids());
  agent.start();
  // Run past t=120 so the RRC promotion + burst of the last heartbeats
  // (fired at exactly t=120) completes.
  world_.sim().run_until(TimePoint{} + seconds(130));
  // 20 s app: t=20,40,...,120 → 6; 30 s app: t=30,60,90,120 → 4.
  EXPECT_EQ(agent.heartbeats_sent(), 10u);
  EXPECT_EQ(world_.bs().heartbeats_received(), 10u);
}

TEST_F(OriginalAgentTest, StopHaltsTraffic) {
  Phone& phone = add_phone();
  OriginalAgent& agent = world_.add_original(phone, short_app());
  agent.start();
  world_.sim().run_until(TimePoint{} + seconds(50));
  const auto sent = agent.heartbeats_sent();
  agent.stop();
  world_.sim().run_until(TimePoint{} + seconds(500));
  EXPECT_EQ(agent.heartbeats_sent(), sent);
}

TEST_F(OriginalAgentTest, StaysOnlineAtServer) {
  Phone& phone = add_phone();
  OriginalAgent& agent = world_.add_original(phone, short_app());
  world_.register_session(phone, 3 * seconds(20));
  agent.start();
  world_.sim().run_until(TimePoint{} + seconds(500));
  const auto& s =
      world_.server().stats(phone.id(), AppId{phone.id().value});
  EXPECT_EQ(s.offline_events, 0u);
  EXPECT_GT(s.on_time, 20u);
}

}  // namespace
}  // namespace d2dhb::core
