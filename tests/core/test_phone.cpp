#include "core/phone.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace d2dhb::core {
namespace {

class PhoneTest : public ::testing::Test {
 protected:
  PhoneTest() : medium_(sim_, nodes_, d2d::WifiDirectMedium::Params{}, Rng{1}) {}

  /// Direct Phone construction wants a non-owning model reference (in a
  /// Scenario the model lives in the strip arena); the fixture plays
  /// the arena's role and owns the models for the test's lifetime.
  PhoneConfig config(mobility::Vec2 pos = {0.0, 0.0}) {
    models_.push_back(std::make_unique<mobility::StaticMobility>(pos));
    PhoneConfig pc;
    pc.mobility_ref = models_.back().get();
    return pc;
  }

  sim::Simulator sim_;
  world::NodeTable nodes_;
  d2d::WifiDirectMedium medium_;
  radio::SignalingCounter signaling_;
  std::vector<std::unique_ptr<mobility::MobilityModel>> models_;
};

TEST_F(PhoneTest, AssemblesAllComponents) {
  Phone phone{sim_, NodeId{1}, config(), medium_, signaling_, Rng{2}};
  EXPECT_EQ(phone.id(), NodeId{1});
  EXPECT_EQ(phone.modem().owner(), NodeId{1});
  EXPECT_EQ(phone.wifi().owner(), NodeId{1});
  // Components: baseline + cellular + wifi.
  EXPECT_EQ(phone.meter().component_count(), 3u);
}

TEST_F(PhoneTest, RequiresMobility) {
  PhoneConfig pc;  // mobility left null
  EXPECT_THROW(
      (Phone{sim_, NodeId{1}, std::move(pc), medium_, signaling_, Rng{2}}),
      std::invalid_argument);
}

TEST_F(PhoneTest, BaselineDrawsButRadioChargeExcludesIt) {
  Phone phone{sim_, NodeId{1}, config(), medium_, signaling_, Rng{2}};
  sim_.run_until(TimePoint{} + seconds(36));
  // Baseline 40 mA for 36 s = 400 µAh total, but radios drew nothing.
  EXPECT_NEAR(phone.total_charge().value, 400.0, 1e-6);
  EXPECT_DOUBLE_EQ(phone.radio_charge().value, 0.0);
  EXPECT_DOUBLE_EQ(phone.cellular_charge().value, 0.0);
  EXPECT_DOUBLE_EQ(phone.wifi_charge().value, 0.0);
}

TEST_F(PhoneTest, RegisteredOnMedium) {
  Phone phone{sim_, NodeId{1}, config({3.0, 4.0}), medium_, signaling_,
              Rng{2}};
  const auto pos = medium_.position_of(NodeId{1});
  EXPECT_DOUBLE_EQ(pos.x, 3.0);
  EXPECT_DOUBLE_EQ(pos.y, 4.0);
}

TEST_F(PhoneTest, CellularTransmitChargesCellularComponent) {
  Phone phone{sim_, NodeId{1}, config(), medium_, signaling_, Rng{2}};
  net::UplinkBundle bundle;
  bundle.sender = phone.id();
  net::HeartbeatMessage m;
  m.id = MessageId{1};
  m.origin = phone.id();
  m.size = Bytes{54};
  bundle.messages = {m};
  phone.modem().transmit(std::move(bundle));
  sim_.run_until(TimePoint{} + seconds(20));
  EXPECT_NEAR(phone.cellular_charge().value, 598.3, 1.0);
  EXPECT_DOUBLE_EQ(phone.wifi_charge().value, 0.0);
  EXPECT_NEAR(phone.radio_charge().value, phone.cellular_charge().value,
              1e-9);
}

TEST_F(PhoneTest, CustomRrcProfileIsUsed) {
  PhoneConfig pc = config();
  pc.rrc = radio::lte_profile();
  Phone phone{sim_, NodeId{1}, std::move(pc), medium_, signaling_, Rng{2}};
  EXPECT_EQ(phone.modem().profile().name, "LTE");
}

}  // namespace
}  // namespace d2dhb::core
