#include "core/incentive.hpp"

#include <gtest/gtest.h>

namespace d2dhb::core {
namespace {

TEST(Incentive, CreditsAccumulate) {
  IncentiveLedger ledger;
  ledger.credit(NodeId{1}, 5);
  ledger.credit(NodeId{1}, 3);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{1}), 8.0);
  EXPECT_DOUBLE_EQ(ledger.total_issued(), 8.0);
}

TEST(Incentive, UnknownRelayHasZeroBalance) {
  IncentiveLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{9}), 0.0);
  EXPECT_DOUBLE_EQ(ledger.redeem(NodeId{9}, 10.0), 0.0);
}

TEST(Incentive, KarmaGoStyleRedemption) {
  // Karma Go: 100 credits worth ~$1 or ~100 MB (Section III-A).
  IncentiveLedger ledger;
  ledger.credit(NodeId{1}, 100);
  EXPECT_DOUBLE_EQ(ledger.redeemable_usd(NodeId{1}), 1.0);
  EXPECT_DOUBLE_EQ(ledger.redeemable_mb(NodeId{1}), 100.0);
}

TEST(Incentive, RedeemIsBoundedByBalance) {
  IncentiveLedger ledger;
  ledger.credit(NodeId{1}, 10);
  EXPECT_DOUBLE_EQ(ledger.redeem(NodeId{1}, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{1}), 6.0);
  EXPECT_DOUBLE_EQ(ledger.redeem(NodeId{1}, 100.0), 6.0);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{1}), 0.0);
}

TEST(Incentive, CustomTariff) {
  IncentiveLedger::Tariff tariff;
  tariff.credits_per_heartbeat = 2.0;
  tariff.usd_per_credit = 0.05;
  tariff.free_mb_per_credit = 3.0;
  IncentiveLedger ledger{tariff};
  ledger.credit(NodeId{1}, 10);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{1}), 20.0);
  EXPECT_DOUBLE_EQ(ledger.redeemable_usd(NodeId{1}), 1.0);
  EXPECT_DOUBLE_EQ(ledger.redeemable_mb(NodeId{1}), 60.0);
}

TEST(Incentive, PerRelayIsolation) {
  IncentiveLedger ledger;
  ledger.credit(NodeId{1}, 5);
  ledger.credit(NodeId{2}, 7);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{1}), 5.0);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{2}), 7.0);
  EXPECT_DOUBLE_EQ(ledger.total_issued(), 12.0);
  ledger.redeem(NodeId{1}, 5.0);
  EXPECT_DOUBLE_EQ(ledger.balance(NodeId{2}), 7.0);
  // total_issued is gross issuance, not net of redemption.
  EXPECT_DOUBLE_EQ(ledger.total_issued(), 12.0);
}

}  // namespace
}  // namespace d2dhb::core
