// Relay re-assessment: a moving UE switches to a closer relay instead of
// clinging to the one it met first.
#include <gtest/gtest.h>

#include "core/relay_agent.hpp"
#include "core/ue_agent.hpp"
#include "scenario/scenario.hpp"

namespace d2dhb::core {
namespace {

constexpr double kPeriod = 20.0;

class HandoverTest : public ::testing::Test {
 protected:
  apps::AppProfile app() {
    apps::AppProfile a = apps::standard_app();
    a.heartbeat_period = seconds(kPeriod);
    a.expiry = seconds(kPeriod);
    return a;
  }

  Phone& static_phone(double x) {
    PhoneConfig pc;
    pc.mobility = std::make_unique<mobility::StaticMobility>(
        mobility::Vec2{x, 0.0});
    return world_.add_phone(std::move(pc));
  }

  RelayAgent& add_relay(Phone& phone) {
    RelayAgent::Params p;
    p.own_app = app();
    p.scheduler.max_own_delay = seconds(kPeriod);
    p.scheduler.deadline_margin = seconds(2);
    return world_.add_relay(phone, p);
  }

  UeAgent::Params ue_params(double reassess_s) {
    UeAgent::Params p;
    p.app = app();
    p.feedback_timeout = seconds(1.5 * kPeriod + 10);
    p.match.max_distance = Meters{25.0};
    p.reassess_interval = seconds(reassess_s);
    return p;
  }

  scenario::Scenario world_;
};

TEST_F(HandoverTest, MovingUeSwitchesToCloserRelay) {
  Phone& relay_a = static_phone(0.0);
  Phone& relay_b = static_phone(20.0);
  // UE starts next to relay A and strolls toward relay B.
  PhoneConfig pc;
  pc.mobility = std::make_unique<mobility::LinearMobility>(
      mobility::Vec2{1.0, 0.5}, mobility::Vec2{0.05, 0.0});
  Phone& ue_phone = world_.add_phone(std::move(pc));

  RelayAgent& ra = add_relay(relay_a);
  RelayAgent& rb = add_relay(relay_b);
  UeAgent& ue = world_.add_ue(ue_phone, ue_params(60.0));
  world_.register_session(ue_phone, 3 * seconds(kPeriod));
  ra.start();
  rb.start(seconds(3));
  ue.start();

  // 0.05 m/s: at t=190 the UE is at x=10.5 (midpoint); by ~t=260 relay B
  // is clearly closer (improvement factor 0.6 satisfied around x>13.2).
  world_.sim().run_until(TimePoint{} + seconds(360));

  EXPECT_GT(ue.stats().reassessments, 2u);
  EXPECT_GE(ue.stats().handovers, 1u);
  EXPECT_EQ(ue.current_relay(), relay_b.id());
  EXPECT_EQ(ue.link_state(), UeAgent::LinkState::connected);
  // The planned switch is not an unplanned link loss.
  EXPECT_EQ(ue.stats().link_losses, 0u);
  // Both relays did some forwarding.
  EXPECT_GT(ra.stats().forwarded_received, 0u);
  EXPECT_GT(rb.stats().forwarded_received, 0u);
  // And the session never lapsed.
  const auto& s =
      world_.server().stats(ue_phone.id(), AppId{ue_phone.id().value});
  EXPECT_EQ(s.offline_events, 0u);
}

TEST_F(HandoverTest, StaticUeNeverSwitches) {
  Phone& relay_a = static_phone(0.0);
  Phone& relay_b = static_phone(18.0);
  Phone& ue_phone = static_phone(1.0);
  RelayAgent& ra = add_relay(relay_a);
  RelayAgent& rb = add_relay(relay_b);
  UeAgent& ue = world_.add_ue(ue_phone, ue_params(60.0));
  ra.start();
  rb.start(seconds(3));
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(400));
  EXPECT_GT(ue.stats().reassessments, 3u);
  EXPECT_EQ(ue.stats().handovers, 0u);
  EXPECT_EQ(ue.current_relay(), relay_a.id());
}

TEST_F(HandoverTest, DisabledByDefault) {
  Phone& relay_a = static_phone(0.0);
  Phone& ue_phone = static_phone(1.0);
  RelayAgent& ra = add_relay(relay_a);
  UeAgent::Params p = ue_params(0.0);  // interval zero = off
  UeAgent& ue = world_.add_ue(ue_phone, p);
  ra.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(300));
  EXPECT_EQ(ue.stats().reassessments, 0u);
}

}  // namespace
}  // namespace d2dhb::core
