#include "core/ue_agent.hpp"

#include <gtest/gtest.h>

#include "core/relay_agent.hpp"
#include "scenario/scenario.hpp"

namespace d2dhb::core {
namespace {

// Relay + one UE world with compressed (20 s) heartbeat periods.
class UeAgentTest : public ::testing::Test {
 protected:
  static constexpr double kPeriod = 20.0;

  Phone& add_phone(double x, double y) {
    PhoneConfig pc;
    pc.mobility =
        std::make_unique<mobility::StaticMobility>(mobility::Vec2{x, y});
    return world_.add_phone(std::move(pc));
  }

  apps::AppProfile app() {
    apps::AppProfile a = apps::standard_app();
    a.heartbeat_period = seconds(kPeriod);
    a.expiry = seconds(kPeriod);
    return a;
  }

  RelayAgent& add_relay(Phone& phone) {
    RelayAgent::Params p;
    p.own_app = app();
    p.scheduler.capacity = 7;
    p.scheduler.max_own_delay = seconds(kPeriod);
    p.scheduler.deadline_margin = seconds(2);
    return world_.add_relay(phone, p);
  }

  UeAgent& add_ue(Phone& phone) {
    UeAgent::Params p;
    p.app = app();
    p.feedback_timeout = seconds(1.5 * kPeriod + 10.0);
    p.retry_backoff = seconds(40);
    return world_.add_ue(phone, p);
  }

  scenario::Scenario world_;
};

TEST_F(UeAgentTest, DiscoversConnectsAndForwards) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(1, 0);
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(100));
  EXPECT_EQ(ue.link_state(), UeAgent::LinkState::connected);
  EXPECT_EQ(ue.current_relay(), relay_phone.id());
  EXPECT_GT(ue.stats().sent_via_d2d, 0u);
  EXPECT_EQ(ue.stats().sent_via_cellular, 0u);
  EXPECT_GT(relay.stats().forwarded_received, 0u);
  // UE never touched the cellular control channel.
  EXPECT_EQ(world_.bs().signaling().count_for(ue_phone.id()), 0u);
}

TEST_F(UeAgentTest, FeedbackAcksClearPendingEntries) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(1, 0);
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  relay.start();
  ue.start();
  ue.app().set_max_emissions(3);
  relay.own_app().set_max_emissions(3);
  world_.sim().run_until(TimePoint{} + seconds(150));
  EXPECT_EQ(ue.feedback().stats().tracked, 3u);
  EXPECT_EQ(ue.feedback().stats().acknowledged, 3u);
  EXPECT_EQ(ue.feedback().stats().timed_out, 0u);
  EXPECT_EQ(ue.stats().fallback_cellular, 0u);
}

TEST_F(UeAgentTest, NoRelayMeansDirectCellular) {
  Phone& ue_phone = add_phone(0, 0);
  UeAgent& ue = add_ue(ue_phone);
  ue.start();
  ue.app().set_max_emissions(2);
  world_.sim().run_until(TimePoint{} + seconds(120));
  EXPECT_EQ(ue.stats().sent_via_d2d, 0u);
  EXPECT_EQ(ue.stats().sent_via_cellular, 2u);
  EXPECT_GT(world_.bs().signaling().count_for(ue_phone.id()), 0u);
  EXPECT_EQ(world_.server().totals().delivered, 2u);
}

TEST_F(UeAgentTest, BackoffAfterFailedDiscovery) {
  Phone& ue_phone = add_phone(0, 0);
  UeAgent& ue = add_ue(ue_phone);
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(100));
  // First heartbeat triggered one discovery; the rest went straight to
  // cellular during backoff windows, with periodic re-discovery.
  EXPECT_GE(ue.stats().discoveries, 1u);
  EXPECT_EQ(ue.stats().matches, 0u);
  EXPECT_EQ(ue.stats().sent_via_d2d, 0u);
}

TEST_F(UeAgentTest, UseD2dFalseDegeneratesToOriginal) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(1, 0);
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent::Params p;
  p.app = app();
  p.use_d2d = false;
  UeAgent& ue = world_.add_ue(ue_phone, p);
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(100));
  EXPECT_EQ(ue.stats().sent_via_d2d, 0u);
  EXPECT_GT(ue.stats().sent_via_cellular, 0u);
  EXPECT_EQ(ue.stats().discoveries, 0u);
}

TEST_F(UeAgentTest, DistantRelayRejectedByPrejudgment) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(25, 0);  // in radio range, beyond 12 m policy
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(100));
  EXPECT_GE(ue.stats().discoveries, 1u);
  EXPECT_EQ(ue.stats().matches, 0u);
  EXPECT_GT(ue.stats().sent_via_cellular, 0u);
}

TEST_F(UeAgentTest, WalkAwayTriggersFallbackAndRediscovery) {
  Phone& relay_phone = add_phone(0, 0);
  // UE walks away at 0.3 m/s: near (6.5 m) when the first heartbeat
  // triggers pairing, inside the 12 m matching pre-judgment, and out of
  // the 30 m radio range at t ~ 98 s — mid-connection.
  PhoneConfig pc;
  pc.mobility = std::make_unique<mobility::LinearMobility>(
      mobility::Vec2{0.5, 0.0}, mobility::Vec2{0.3, 0.0});
  Phone& ue_phone = world_.add_phone(std::move(pc));
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(200));
  EXPECT_GE(ue.stats().link_losses, 1u);
  // Un-acked heartbeats were retransmitted over cellular.
  EXPECT_GT(ue.stats().fallback_cellular + ue.stats().sent_via_cellular, 0u);
  EXPECT_NE(ue.link_state(), UeAgent::LinkState::connected);
}

TEST_F(UeAgentTest, StopDisconnectsCleanly) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(1, 0);
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(60));
  ASSERT_EQ(ue.link_state(), UeAgent::LinkState::connected);
  ue.stop();
  EXPECT_EQ(ue.link_state(), UeAgent::LinkState::idle);
  EXPECT_FALSE(ue_phone.wifi().connected_to(relay_phone.id()));
  EXPECT_FALSE(relay_phone.wifi().connected_to(ue_phone.id()));
}

TEST_F(UeAgentTest, ServerNeverSeesUeOffline) {
  Phone& relay_phone = add_phone(0, 0);
  Phone& ue_phone = add_phone(1, 0);
  RelayAgent& relay = add_relay(relay_phone);
  UeAgent& ue = add_ue(ue_phone);
  world_.register_session(ue_phone, 3 * seconds(kPeriod));
  relay.start();
  ue.start();
  world_.sim().run_until(TimePoint{} + seconds(400));
  const auto& s = world_.server().stats(ue_phone.id(), AppId{ue_phone.id().value});
  EXPECT_GT(s.delivered, 10u);
  EXPECT_EQ(s.offline_events, 0u);
}

}  // namespace
}  // namespace d2dhb::core
